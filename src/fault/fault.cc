#include "fault/fault.hh"

#include <algorithm>

#include "util/str.hh"

namespace afsb::fault {

namespace {

/** splitmix64 finalizer for decorrelated per-site seeds. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

Site
siteOf(FaultKind kind)
{
    switch (kind) {
    case FaultKind::MsaWorkerCrash:
        return Site::MsaService;
    case FaultKind::GpuWorkerCrash:
        return Site::GpuService;
    case FaultKind::StorageReadError:
    case FaultKind::StorageLatencySpike:
        return Site::MsaService;
    case FaultKind::CacheCorruption:
        return Site::CacheInsert;
    case FaultKind::RequestTimeout:
    case FaultKind::NodeFailure:
        // Deadlines and node kills are scheduled on the virtual
        // clock, not by per-attempt ordinals.
        return Site::MsaService;
    }
    return Site::MsaService;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::MsaWorkerCrash:
        return "msa_worker_crash";
    case FaultKind::GpuWorkerCrash:
        return "gpu_worker_crash";
    case FaultKind::StorageReadError:
        return "storage_read_error";
    case FaultKind::StorageLatencySpike:
        return "storage_latency_spike";
    case FaultKind::CacheCorruption:
        return "cache_corruption";
    case FaultKind::RequestTimeout:
        return "request_timeout";
    case FaultKind::NodeFailure:
        return "node_failure";
    }
    return "unknown";
}

bool
Plan::empty() const
{
    return msaCrashProb <= 0.0 && gpuCrashProb <= 0.0 &&
           storageErrorProb <= 0.0 && storageSpikeProb <= 0.0 &&
           cacheCorruptProb <= 0.0 && script.empty() &&
           nodeKills.empty();
}

Injector::Injector(const Plan &plan)
    : plan_(plan),
      streams_{Rng(mix(plan.seed ^ 0x11)), Rng(mix(plan.seed ^ 0x22)),
               Rng(mix(plan.seed ^ 0x33))}
{}

bool
Injector::scripted(FaultKind kind, uint64_t ordinal,
                   bool *permanent) const
{
    for (const auto &s : plan_.script) {
        if (s.kind == kind && s.atOrdinal == ordinal) {
            if (permanent)
                *permanent = *permanent || s.permanent;
            return true;
        }
    }
    return false;
}

Injector::ServiceDecision
Injector::serviceDecision(Site site, FaultKind crashKind,
                          bool storageFaults)
{
    auto &rng = streams_[static_cast<size_t>(site)];
    const uint64_t ordinal =
        ordinals_[static_cast<size_t>(site)]++;

    // Fixed draw schedule — every attempt consumes exactly five
    // draws so recovery re-entries never desynchronize the stream.
    const double dCrash = rng.nextDouble();
    const double dPermanent = rng.nextDouble();
    const double dError = rng.nextDouble();
    const double dSpike = rng.nextDouble();
    const double dFraction = rng.nextDouble();

    const double crashProb = crashKind == FaultKind::GpuWorkerCrash
                                 ? plan_.gpuCrashProb
                                 : plan_.msaCrashProb;

    ServiceDecision out;
    out.crash = dCrash < crashProb;
    out.permanent = out.crash && dPermanent < plan_.permanentProb;
    if (scripted(crashKind, ordinal, &out.permanent))
        out.crash = true;
    if (storageFaults) {
        out.storageError = dError < plan_.storageErrorProb ||
                           scripted(FaultKind::StorageReadError,
                                    ordinal, nullptr);
        if (dSpike < plan_.storageSpikeProb ||
            scripted(FaultKind::StorageLatencySpike, ordinal,
                     nullptr))
            out.latencyFactor = plan_.storageSpikeFactor;
    }
    // Keep the abort point strictly inside the attempt so lost
    // service time is nonzero and the retry lands strictly later.
    out.failFraction = 0.05 + 0.9 * dFraction;
    return out;
}

Injector::ServiceDecision
Injector::msaService()
{
    return serviceDecision(Site::MsaService,
                           FaultKind::MsaWorkerCrash, true);
}

Injector::ServiceDecision
Injector::gpuService()
{
    return serviceDecision(Site::GpuService,
                           FaultKind::GpuWorkerCrash, false);
}

bool
Injector::cacheInsertCorrupted()
{
    auto &rng =
        streams_[static_cast<size_t>(Site::CacheInsert)];
    const uint64_t ordinal =
        ordinals_[static_cast<size_t>(Site::CacheInsert)]++;
    const double d = rng.nextDouble();
    return d < plan_.cacheCorruptProb ||
           scripted(FaultKind::CacheCorruption, ordinal, nullptr);
}

void
Injector::record(const FaultEvent &event)
{
    ++counts_[static_cast<size_t>(event.kind)];
    log_.push_back(event);
}

uint64_t
Injector::countOf(FaultKind kind) const
{
    return counts_[static_cast<size_t>(kind)];
}

std::string
Injector::renderLog() const
{
    std::string out;
    out.reserve(log_.size() * 64);
    for (const auto &e : log_) {
        out += strformat("t=%.6f kind=%s worker=%u req=%llu%s\n",
                         e.time, faultKindName(e.kind), e.worker,
                         static_cast<unsigned long long>(
                             e.requestId),
                         e.permanent ? " permanent" : "");
    }
    return out;
}

} // namespace afsb::fault
