/**
 * @file
 * Seeded, deterministic fault injection for the serving path.
 *
 * Production AF3 deployments (ParaFold-style MSA/GPU pool splits,
 * AF_Cache-style result reuse) live or die on how the cluster
 * behaves when a worker, disk read, or XLA compile *fails*. Every
 * simulator in this repo runs on a virtual clock from a fixed seed,
 * so instead of a flaky chaos harness we can make the chaos itself
 * reproducible: a fault::Plan is a pure function of (fault seed,
 * knobs, script), and an Injector derives every go/no-go decision
 * from per-site decision streams. Two runs with the same workload
 * seed and the same fault plan produce the same faults at the same
 * virtual times, the same recovery schedule, and a byte-identical
 * fault log — which is what makes the chaos/property tests in
 * tests/serve deterministic rather than probabilistic.
 *
 * Decision-stream discipline: each injection site owns an
 * independent xoshiro stream seeded from (plan seed, site id), and
 * every decision point consumes a fixed number of draws regardless
 * of the outcome. Adding a fault site therefore never perturbs the
 * decisions of the existing ones, and the serving simulator's event
 * order stays bit-stable as recovery paths re-enter the same sites.
 */

#ifndef AFSB_FAULT_FAULT_HH
#define AFSB_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace afsb::fault {

/** What broke. */
enum class FaultKind : uint8_t {
    MsaWorkerCrash = 0,  ///< MSA worker dies mid-service
    GpuWorkerCrash,      ///< GPU worker dies (XLA cache lost)
    StorageReadError,    ///< database read fails mid-service
    StorageLatencySpike, ///< read path slows by a factor
    CacheCorruption,     ///< MSA-cache entry fails its checksum
    RequestTimeout,      ///< per-stage deadline exceeded
    NodeFailure,         ///< whole node lost (multi-node serving)
};

constexpr size_t kFaultKinds = 7;

/** Canonical lower-snake name (stable; used in logs and reports). */
const char *faultKindName(FaultKind kind);

/** Injection sites; each owns an independent decision stream. */
enum class Site : uint8_t {
    MsaService = 0, ///< one decision per MSA service attempt
    GpuService,     ///< one decision per GPU service attempt
    CacheInsert,    ///< one decision per MSA-cache insertion
};

constexpr size_t kSites = 3;

/**
 * One scripted fault: fires on the @p atOrdinal-th decision (0-based)
 * at the site implied by @p kind, in addition to anything the
 * probabilistic knobs produce. Scripted entries make "exactly this
 * failure at exactly this point" tests trivial to write.
 */
struct ScriptedFault
{
    FaultKind kind = FaultKind::MsaWorkerCrash;
    uint64_t atOrdinal = 0;
    bool permanent = false; ///< crashes only: worker never respawns
};

/**
 * One scripted whole-node failure (multi-node serving only): at
 * @p atSeconds on the virtual clock the node's workers, queues, and
 * MSA-cache shard vanish; queued and in-flight requests re-route
 * through the request router to the surviving nodes. A kill that
 * would leave zero live nodes is ignored.
 */
struct NodeKill
{
    double atSeconds = 0.0;
    uint32_t node = 0;

    /** Seconds after the kill until the node rejoins with a full
     *  worker complement, cold XLA caches, and an empty cache
     *  shard; negative means it never comes back. */
    double rebuildSeconds = -1.0;
};

/**
 * A reproducible chaos schedule: seeded per-site probabilities plus
 * an optional explicit script. Default-constructed plans are empty
 * (inject nothing) and cost nothing on the serving hot path.
 */
struct Plan
{
    uint64_t seed = 0xfa017c4a05ull;

    /** P(an MSA service attempt crashes its worker). */
    double msaCrashProb = 0.0;

    /** P(a GPU service attempt crashes its worker). */
    double gpuCrashProb = 0.0;

    /** P(a crash is permanent — the worker never respawns). */
    double permanentProb = 0.0;

    /** P(an MSA service attempt hits a storage read error). */
    double storageErrorProb = 0.0;

    /** P(an MSA service attempt hits a storage latency spike). */
    double storageSpikeProb = 0.0;

    /** Service-time multiplier applied by a latency spike. */
    double storageSpikeFactor = 8.0;

    /** P(an MSA-cache insertion is corrupted in storage). */
    double cacheCorruptProb = 0.0;

    /** Explicit faults on top of the probabilistic knobs. */
    std::vector<ScriptedFault> script;

    /** Scripted whole-node failures (ignored when the serving
     *  topology has a single node). */
    std::vector<NodeKill> nodeKills;

    /** True when the plan can never inject anything. */
    bool empty() const;
};

/** One injected fault, on the virtual clock. */
struct FaultEvent
{
    double time = 0.0;
    FaultKind kind = FaultKind::MsaWorkerCrash;
    uint32_t worker = 0;     ///< victim worker id (crashes/spikes)
    uint64_t requestId = 0;  ///< request in flight at the site
    bool permanent = false;  ///< crashes only
};

/**
 * Stateful decision engine for one simulation run. The caller (the
 * serving cluster) asks a site-specific question at each decision
 * point and records the resulting fault events with their virtual
 * timestamps; renderLog() serializes the whole run for byte-compare
 * determinism tests.
 */
class Injector
{
  public:
    explicit Injector(const Plan &plan);

    /** Outcome of one service-attempt decision. */
    struct ServiceDecision
    {
        bool crash = false;       ///< worker dies this attempt
        bool permanent = false;   ///< ... and never respawns
        bool storageError = false;///< read error aborts the attempt
        /** Service-time multiplier (1.0, or the spike factor). */
        double latencyFactor = 1.0;
        /** Fraction of the (scaled) service completed before the
         *  crash / read error aborts it, in (0, 1). */
        double failFraction = 1.0;

        bool failed() const { return crash || storageError; }
    };

    /** Decide the fate of the next MSA service attempt. */
    ServiceDecision msaService();

    /** Decide the fate of the next GPU service attempt. */
    ServiceDecision gpuService();

    /** True when the next MSA-cache insertion is corrupted. */
    bool cacheInsertCorrupted();

    /** Append @p event to the fault log (caller supplies time). */
    void record(const FaultEvent &event);

    const std::vector<FaultEvent> &log() const { return log_; }

    /** Total injected faults (log size). */
    uint64_t injectedCount() const { return log_.size(); }

    /** Injected count for one kind. */
    uint64_t countOf(FaultKind kind) const;

    /** Per-kind injected counts, indexed by FaultKind. */
    const std::array<uint64_t, kFaultKinds> &countsByKind() const
    {
        return counts_;
    }

    /**
     * Canonical text serialization of the fault log, one line per
     * event — byte-identical across runs with identical seeds.
     */
    std::string renderLog() const;

    const Plan &plan() const { return plan_; }

  private:
    /** True when a scripted fault of @p kind fires at this ordinal. */
    bool scripted(FaultKind kind, uint64_t ordinal,
                  bool *permanent) const;

    ServiceDecision serviceDecision(Site site, FaultKind crashKind,
                                    bool storageFaults);

    Plan plan_;
    std::array<Rng, kSites> streams_;
    std::array<uint64_t, kSites> ordinals_{};
    std::array<uint64_t, kFaultKinds> counts_{};
    std::vector<FaultEvent> log_;
};

} // namespace afsb::fault

#endif // AFSB_FAULT_FAULT_HH
