/**
 * @file
 * Peak-memory models for the MSA tools (paper Fig 2 / Section III-C).
 *
 * nhmmer's peak RSS grows non-linearly with RNA query length; the
 * paper measured 79.3 GiB at 621 nt, 506 GiB at 935 nt, 644 GiB at
 * 1135 nt (completing only with CXL expansion), and OOM above
 * 768 GiB for 1335 nt. The model is a monotone-cubic fit through
 * those published points, extrapolating linearly beyond.
 *
 * Protein (jackhmmer) footprints are small and thread-scaled: the
 * paper reports 0.23 GiB at 1000 residues / 1 thread, ~0.9 GiB at
 * 8 threads, and ~1.7 GiB at 2000 residues / 8 threads — a linear
 * base + per-thread-buffer model fits all three points.
 */

#ifndef AFSB_MSA_MEMORY_MODEL_HH
#define AFSB_MSA_MEMORY_MODEL_HH

#include <cstddef>
#include <cstdint>

#include "bio/sequence.hh"

namespace afsb::msa {

/**
 * Modeled nhmmer peak memory (bytes) for an RNA/DNA query of
 * @p query_len nucleotides. Thread-count independent, per the
 * paper's observation.
 */
uint64_t nhmmerPeakMemoryBytes(size_t query_len);

/**
 * Modeled jackhmmer peak memory (bytes) for @p protein_residues
 * total query residues at @p threads worker threads.
 */
uint64_t jackhmmerPeakMemoryBytes(size_t protein_residues,
                                  size_t threads);

/**
 * Modeled peak memory (bytes) of the whole MSA phase for a complex:
 * the max of the per-chain tool footprints (tools run serially) plus
 * a fixed pipeline overhead.
 */
uint64_t msaPhasePeakMemoryBytes(const bio::Complex &complex_input,
                                 size_t threads);

} // namespace afsb::msa

#endif // AFSB_MSA_MEMORY_MODEL_HH
