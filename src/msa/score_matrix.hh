/**
 * @file
 * Residue substitution scoring (BLOSUM62 and nucleotide matrices).
 *
 * These drive the profile construction and the alignment kernels:
 * JackHMMER scores protein alignments against BLOSUM-derived profile
 * emissions; nhmmer uses a simple match/mismatch nucleotide model.
 */

#ifndef AFSB_MSA_SCORE_MATRIX_HH
#define AFSB_MSA_SCORE_MATRIX_HH

#include <array>
#include <cstdint>

#include "bio/alphabet.hh"

namespace afsb::msa {

/** Substitution matrix over an encoded alphabet. */
class ScoreMatrix
{
  public:
    /** BLOSUM62, remapped to the afsb protein alphabet order. */
    static const ScoreMatrix &blosum62();

    /**
     * Nucleotide matrix: +@p match on identity, -@p mismatch
     * otherwise (defaults +2/-3, BLASTN-like).
     */
    static ScoreMatrix nucleotide(int match = 2, int mismatch = 3);

    /** Score for aligning residues @p a and @p b. */
    int
    score(uint8_t a, uint8_t b) const
    {
        return scores_[a][b];
    }

    /** Alphabet size this matrix covers. */
    size_t size() const { return size_; }

    /** Largest entry (used for prefilter threshold scaling). */
    int maxScore() const;

  private:
    ScoreMatrix() = default;

    std::array<std::array<int8_t, 20>, 20> scores_{};
    size_t size_ = 0;
};

} // namespace afsb::msa

#endif // AFSB_MSA_SCORE_MATRIX_HH
