#include "msa/memory_model.hh"

#include <algorithm>

#include "util/interp.hh"
#include "util/units.hh"

namespace afsb::msa {

uint64_t
nhmmerPeakMemoryBytes(size_t query_len)
{
    // Control points from the paper (lengths in nt, peaks in GiB):
    // short queries are cheap; the published sweep anchors the rest.
    static const MonotoneCubic curve(
        {0.0, 150.0, 300.0, 621.0, 935.0, 1135.0},
        {0.5, 2.0, 8.0, 79.3, 506.0, 644.0});
    const double gib =
        std::max(0.0, curve(static_cast<double>(query_len)));
    return static_cast<uint64_t>(gib * static_cast<double>(GiB));
}

uint64_t
jackhmmerPeakMemoryBytes(size_t protein_residues, size_t threads)
{
    // base(L) + threads * perThread(L), both linear in length,
    // fitted to (1000 res, 1T) = 0.23 GiB, (1000, 8T) = 0.9 GiB,
    // (2000, 8T) = 1.7 GiB.
    const double kl = static_cast<double>(protein_residues) / 1000.0;
    const double gib =
        kl * (0.134 + 0.0957 * static_cast<double>(
                                   std::max<size_t>(1, threads)));
    return static_cast<uint64_t>(gib * static_cast<double>(GiB));
}

uint64_t
msaPhasePeakMemoryBytes(const bio::Complex &complex_input,
                        size_t threads)
{
    // Tools run chain-by-chain, so the peak is the worst chain.
    uint64_t peak = 0;
    const size_t proteinResidues =
        complex_input.totalResidues(bio::MoleculeType::Protein);
    if (proteinResidues > 0)
        peak = std::max(
            peak, jackhmmerPeakMemoryBytes(proteinResidues, threads));
    for (const auto &chain : complex_input.chains()) {
        if (chain.type() == bio::MoleculeType::Rna)
            peak = std::max(peak,
                            nhmmerPeakMemoryBytes(chain.length()));
    }
    // Fixed pipeline overhead (parsers, feature buffers): 256 MiB.
    return peak + 256 * MiB;
}

} // namespace afsb::msa
