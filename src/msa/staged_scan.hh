/**
 * @file
 * Generic staged scan pipeline: I/O prefetch -> MSV prefilter ->
 * dynamic survivor rescoring.
 *
 * The untraced database scan used to run as load -> static-block
 * parallelFor -> merge: database streaming never overlapped DP
 * compute, and prefilter-survivor skew (low-complexity queries push
 * spurious targets into the banded kernels — paper Observation 2)
 * left workers idle behind the slowest block. This engine decouples
 * the stages, ParaFold-style:
 *
 *  - **Stage 1 (I/O)** — one producer streams target chunks (in
 *    priority order when a hint is given) and publishes them on a
 *    bounded chunk queue; the bound is the prefetch depth, so
 *    streaming runs at most `prefetchChunks` chunks ahead of
 *    compute and throttles when compute falls behind.
 *  - **Stage 2 (prefilter)** — workers pop chunks and run the MSV
 *    prefilter over each target; survivors go onto a bounded MPMC
 *    survivor queue.
 *  - **Stage 3 (survivors)** — every worker opportunistically
 *    drains the survivor queue and runs the banded kernels, so
 *    band-work skew spreads at per-survivor granularity instead of
 *    serializing behind static block boundaries. When the survivor
 *    queue is full, the pusher rescores one survivor itself
 *    (help-first backpressure — never blocks, never deadlocks).
 *
 * Determinism: every target is prefiltered exactly once and every
 * survivor rescored exactly once with the same kernels and
 * thresholds as the static path, so the hit set is bit-identical at
 * any thread count; callers canonicalize ordering afterwards.
 */

#ifndef AFSB_MSA_STAGED_SCAN_HH
#define AFSB_MSA_STAGED_SCAN_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "msa/search.hh"
#include "util/task.hh"
#include "util/threadpool.hh"
#include "util/work_queue.hh"

namespace afsb::msa::staged {

/** Engine shape parameters (validated by the caller). */
struct ScanShape
{
    size_t workers = 2;        ///< pool tasks to run (>= 2)
    size_t targets = 0;        ///< total targets to scan
    size_t grain = 1;          ///< targets per chunk
    size_t prefetchChunks = 2; ///< chunk-queue bound
    size_t survivorDepth = 64; ///< survivor-queue bound

    /** Optional target indices whose chunks go first. */
    const std::vector<uint32_t> *priority = nullptr;
};

/**
 * Chunk schedule shared by both engines: chunks containing priority
 * targets first, both classes in ascending order (stable), so the
 * pass is deterministic for a given hint set.
 */
inline std::vector<uint32_t>
chunkOrder(const ScanShape &shape, size_t n, size_t grain,
           size_t nChunks)
{
    std::vector<uint32_t> order(nChunks);
    std::iota(order.begin(), order.end(), 0u);
    if (shape.priority && !shape.priority->empty() && nChunks > 1) {
        std::vector<char> hot(nChunks, 0);
        for (uint32_t t : *shape.priority)
            if (t < n)
                hot[t / grain] = 1;
        std::stable_partition(order.begin(), order.end(),
                              [&](uint32_t c) { return hot[c] != 0; });
    }
    return order;
}

/**
 * Run the staged pipeline on @p pool.
 *
 * @param stream    `void(size_t chunk, size_t begin, size_t end)` —
 *                  producer-only; simulate/stage the chunk's I/O.
 * @param prefilter `bool(size_t worker, size_t target)` — MSV
 *                  stage; true admits the target to the survivor
 *                  queue. Must be safe for concurrent distinct
 *                  workers.
 * @param rescore   `void(size_t worker, size_t target)` — banded
 *                  survivor stage.
 * @param stages    Occupancy / queue-depth counters, accumulated.
 */
template <typename StreamFn, typename PrefilterFn, typename RescoreFn>
void
runStagedScan(ThreadPool &pool, const ScanShape &shape,
              StreamFn &&stream, PrefilterFn &&prefilter,
              RescoreFn &&rescore, ScanStageStats &stages)
{
    using Clock = std::chrono::steady_clock;
    const auto secondsSince = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0)
            .count();
    };

    const size_t n = shape.targets;
    const size_t grain = std::max<size_t>(1, shape.grain);
    const size_t nChunks = (n + grain - 1) / grain;
    const size_t workers = shape.workers;
    if (n == 0 || workers < 2)
        return;

    const std::vector<uint32_t> order =
        chunkOrder(shape, n, grain, nChunks);

    BoundedWorkQueue<uint32_t> chunkQ(shape.prefetchChunks);
    BoundedWorkQueue<uint32_t> survQ(shape.survivorDepth);
    std::atomic<size_t> chunksLeft{nChunks};
    std::atomic<uint64_t> queued{0}, inlined{0};

    std::vector<double> msvSec(workers, 0.0), bandSec(workers, 0.0);
    double ioSec = 0.0;

    auto rescoreTimed = [&](size_t w, uint32_t t) {
        const auto t0 = Clock::now();
        rescore(w, t);
        bandSec[w] += secondsSince(t0);
    };

    auto processChunk = [&](size_t w, uint32_t c) {
        const size_t begin = static_cast<size_t>(c) * grain;
        const size_t end = std::min(n, begin + grain);
        for (size_t i = begin; i < end; ++i) {
            const auto t0 = Clock::now();
            const bool pass =
                prefilter(w, i);
            msvSec[w] += secondsSince(t0);
            if (!pass)
                continue;
            uint32_t idx = static_cast<uint32_t>(i);
            while (!survQ.tryPush(idx)) {
                // Full queue: help drain instead of blocking, so a
                // flood of survivors throttles the prefilter.
                uint32_t other;
                if (survQ.tryPop(other)) {
                    rescoreTimed(w, other);
                    inlined.fetch_add(1, std::memory_order_relaxed);
                }
            }
            queued.fetch_add(1, std::memory_order_relaxed);
        }
        // Last chunk out closes the survivor queue: all pushes for
        // every chunk have happened by then (including helped ones).
        if (chunksLeft.fetch_sub(1) == 1)
            survQ.close();
    };

    auto consume = [&](size_t w) {
        for (;;) {
            // Survivors first: they are the expensive skewed stage,
            // and draining them keeps the bounded queue moving.
            uint32_t s;
            while (survQ.tryPop(s))
                rescoreTimed(w, s);
            uint32_t c;
            if (!chunkQ.pop(c))
                break;
            processChunk(w, c);
        }
        uint32_t s;
        while (survQ.pop(s))
            rescoreTimed(w, s);
    };

    const auto wall0 = Clock::now();
    pool.parallelBlocks(workers, [&](size_t w, size_t, size_t) {
        if (w == 0) {
            // Stage 1: stream chunks ahead of compute, then join
            // the compute stages.
            for (uint32_t c : order) {
                const size_t begin = static_cast<size_t>(c) * grain;
                const size_t end = std::min(n, begin + grain);
                const auto t0 = Clock::now();
                stream(static_cast<size_t>(c), begin, end);
                ioSec += secondsSince(t0);
                if (!chunkQ.push(c))
                    break;  // unreachable: nothing closes chunkQ yet
            }
            chunkQ.close();
        }
        consume(w);
    });

    stages.overlappedScans += 1;
    stages.chunks += nChunks;
    stages.survivorsQueued += queued.load();
    stages.survivorsInline += inlined.load();
    const auto cq = chunkQ.stats();
    const auto sq = survQ.stats();
    stages.chunkQueuePeak =
        std::max(stages.chunkQueuePeak, cq.peakDepth);
    stages.survivorQueuePeak =
        std::max(stages.survivorQueuePeak, sq.peakDepth);
    stages.producerWaits += cq.pushWaits;
    stages.chunkWaits += cq.popWaits;
    stages.survivorWaits += sq.popWaits;
    stages.ioSeconds += ioSec;
    for (size_t w = 0; w < workers; ++w) {
        stages.msvSeconds += msvSec[w];
        stages.bandSeconds += bandSec[w];
    }
    stages.wallSeconds += secondsSince(wall0);
    stages.workersUsed =
        std::max<uint64_t>(stages.workersUsed, workers);
}

/**
 * The staged pipeline as a TaskGroup task graph (the queue-based
 * engine above kept behind `SearchConfig::taskScan = false`).
 *
 * Same three stages, but instead of worker loops blocking on bounded
 * queues, every unit of work is a task on one work-stealing group:
 *
 *  - the producer is a task that streams chunks in schedule order
 *    and spawns one *chunk task* per streamed chunk; when the
 *    prefetch window is full it throttles by running pending tasks
 *    itself (`runOne()` help-first) instead of blocking, so the
 *    streaming thread converts into a compute worker exactly when
 *    compute is the bottleneck;
 *  - a chunk task runs the MSV prefilter over its targets and chains
 *    one *rescore task* (banded Viterbi + Forward) per survivor, so
 *    the stage handoff is a task spawn rather than a queue round
 *    trip and survivors start draining while the chunk is still
 *    being prefiltered elsewhere;
 *  - the spawned-but-unscored survivor count is bounded by
 *    `survivorDepth`: past it the prefiltering task rescores the
 *    survivor in place (the same help-first backpressure as the
 *    queue engine's pusher-drains rule).
 *
 * The group borrows `workers - 1` pool workers, so with the owner
 * exactly `workers` threads participate — workersUsed and the
 * occupancy denominator stay comparable with the queue engine.
 * Callbacks receive `TaskGroup::currentSlot()` as their worker id
 * (0..workers-1, one thread per slot), so per-worker partials work
 * unchanged.  Every target is prefiltered exactly once and every
 * survivor rescored exactly once with identical kernels, so hit
 * sets and pipeline counters are bit-identical to the queue engine
 * and to the static path at any thread count.
 */
template <typename StreamFn, typename PrefilterFn, typename RescoreFn>
void
runStagedScanTasks(ThreadPool &pool, const ScanShape &shape,
                   StreamFn &&stream, PrefilterFn &&prefilter,
                   RescoreFn &&rescore, ScanStageStats &stages)
{
    using Clock = std::chrono::steady_clock;
    const auto secondsSince = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0)
            .count();
    };

    const size_t n = shape.targets;
    const size_t grain = std::max<size_t>(1, shape.grain);
    const size_t nChunks = (n + grain - 1) / grain;
    const size_t workers = shape.workers;
    if (n == 0 || workers < 2)
        return;

    const std::vector<uint32_t> order =
        chunkOrder(shape, n, grain, nChunks);
    const size_t prefetch = std::max<size_t>(1, shape.prefetchChunks);
    const size_t survivorDepth =
        std::max<size_t>(1, shape.survivorDepth);

    TaskGroup group(&pool, workers - 1);
    const size_t slots = group.slots();

    // Queue depths become in-flight counters: streamed-but-unstarted
    // chunks gate the producer; spawned-but-unscored survivors gate
    // the prefilter. Same bounds, no blocking anywhere.
    std::atomic<size_t> chunksAhead{0};
    std::atomic<size_t> survivorsAhead{0};
    std::atomic<uint64_t> queued{0}, inlined{0};
    std::atomic<uint64_t> chunkPeak{0}, survivorPeak{0};
    std::atomic<uint64_t> throttles{0};

    std::vector<double> msvSec(slots, 0.0), bandSec(slots, 0.0);
    double ioSec = 0.0;

    auto bumpPeak = [](std::atomic<uint64_t> &peak, uint64_t v) {
        uint64_t cur = peak.load(std::memory_order_relaxed);
        while (v > cur &&
               !peak.compare_exchange_weak(
                   cur, v, std::memory_order_relaxed))
            ;
    };

    auto rescoreTimed = [&](uint32_t t) {
        const size_t w = group.currentSlot();
        const auto t0 = Clock::now();
        rescore(w, static_cast<size_t>(t));
        bandSec[w] += secondsSince(t0);
    };

    auto runChunk = [&](uint32_t c) {
        // The chunk leaves the prefetch window the moment a worker
        // starts it (mirror of the queue engine's pop).
        chunksAhead.fetch_sub(1, std::memory_order_relaxed);
        const size_t w = group.currentSlot();
        const size_t begin = static_cast<size_t>(c) * grain;
        const size_t end = std::min(n, begin + grain);
        for (size_t i = begin; i < end; ++i) {
            const auto t0 = Clock::now();
            const bool pass = prefilter(w, i);
            msvSec[w] += secondsSince(t0);
            if (!pass)
                continue;
            queued.fetch_add(1, std::memory_order_relaxed);
            const uint32_t idx = static_cast<uint32_t>(i);
            if (survivorsAhead.fetch_add(
                    1, std::memory_order_relaxed) >= survivorDepth) {
                // Full survivor window: rescore in place so a flood
                // of survivors throttles the prefilter.
                survivorsAhead.fetch_sub(1,
                                         std::memory_order_relaxed);
                inlined.fetch_add(1, std::memory_order_relaxed);
                rescoreTimed(idx);
                continue;
            }
            bumpPeak(survivorPeak,
                     survivorsAhead.load(std::memory_order_relaxed));
            group.spawn([&, idx] {
                rescoreTimed(idx);
                survivorsAhead.fetch_sub(1,
                                         std::memory_order_relaxed);
            });
        }
    };

    const auto wall0 = Clock::now();
    group.spawn([&] {
        for (uint32_t c : order) {
            const size_t begin = static_cast<size_t>(c) * grain;
            const size_t end = std::min(n, begin + grain);
            const auto t0 = Clock::now();
            stream(static_cast<size_t>(c), begin, end);
            ioSec += secondsSince(t0);
            chunksAhead.fetch_add(1, std::memory_order_relaxed);
            bumpPeak(chunkPeak,
                     chunksAhead.load(std::memory_order_relaxed));
            group.spawn([&, c] { runChunk(c); });
            if (chunksAhead.load(std::memory_order_relaxed) <
                prefetch)
                continue;
            throttles.fetch_add(1, std::memory_order_relaxed);
            // Throttle by helping, never by blocking: run pending
            // tasks (usually the chunk just published) until the
            // prefetch window reopens. When there is nothing to
            // help with (every published chunk is mid-execution),
            // back off to a short sleep instead of burning a core.
            int idleSpins = 0;
            while (chunksAhead.load(std::memory_order_relaxed) >=
                   prefetch) {
                if (group.runOne())
                    idleSpins = 0;
                else if (++idleSpins <= 64)
                    std::this_thread::yield();
                else
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(50));
            }
        }
    });
    group.sync();

    stages.overlappedScans += 1;
    stages.chunks += nChunks;
    stages.survivorsQueued += queued.load();
    stages.survivorsInline += inlined.load();
    stages.chunkQueuePeak =
        std::max(stages.chunkQueuePeak, chunkPeak.load());
    stages.survivorQueuePeak =
        std::max(stages.survivorQueuePeak, survivorPeak.load());
    stages.producerWaits += throttles.load();
    stages.ioSeconds += ioSec;
    for (size_t w = 0; w < slots; ++w) {
        stages.msvSeconds += msvSec[w];
        stages.bandSeconds += bandSec[w];
    }
    stages.wallSeconds += secondsSince(wall0);
    stages.workersUsed =
        std::max<uint64_t>(stages.workersUsed, slots);
}

} // namespace afsb::msa::staged

#endif // AFSB_MSA_STAGED_SCAN_HH
