#include "msa/nhmmer.hh"

#include <algorithm>

#include "msa/memory_model.hh"
#include "msa/staged_scan.hh"
#include "util/logging.hh"

namespace afsb::msa {

bio::Sequence
reverseComplement(const bio::Sequence &seq)
{
    if (seq.type() == bio::MoleculeType::Protein)
        fatal("reverseComplement: nucleotide sequences only");
    // Alphabets are ACGU / ACGT in encoded order 0..3; complement
    // swaps A<->U(T) (0<->3) and C<->G (1<->2).
    std::vector<uint8_t> codes(seq.length());
    for (size_t i = 0; i < seq.length(); ++i)
        codes[seq.length() - 1 - i] =
            static_cast<uint8_t>(3 - seq[i]);
    return bio::Sequence(seq.id() + "_rc", seq.type(),
                         std::move(codes));
}

NhmmerResult
runNhmmer(const bio::Sequence &query, const SequenceDatabase &db,
          io::PageCache &cache, ThreadPool *pool,
          const NhmmerConfig &cfg, double now,
          const std::vector<MemTraceSink *> &sinks)
{
    if (query.type() == bio::MoleculeType::Protein)
        fatal("nhmmer: nucleotide queries only");

    NhmmerResult out;
    out.modeledPeakMemory = nhmmerPeakMemoryBytes(query.length());

    const ScoreMatrix matrix = ScoreMatrix::nucleotide();
    const ProfileHmm prof = ProfileHmm::fromSequence(query, matrix);

    // Window the database: each long target is cut into overlapping
    // windows that are scanned as independent pseudo-targets. The
    // windowed copies are the nhmmer working set; at paper scale
    // this is what exhausts memory.
    const size_t window = std::max<size_t>(
        32, static_cast<size_t>(cfg.windowFactor *
                                static_cast<double>(query.length())));
    const size_t step = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(window) *
                               (1.0 - cfg.overlap)));

    // Build the windowed target list (ids index back into db).
    std::vector<bio::Sequence> windows;
    std::vector<size_t> windowSource;
    for (size_t i = 0; i < db.size(); ++i) {
        const bio::Sequence &t = db.sequences()[i];
        for (size_t off = 0; off < t.length(); off += step) {
            const size_t end = std::min(t.length(), off + window);
            windows.push_back(t.subsequence(off, end));
            windowSource.push_back(i);
            if (cfg.bothStrands) {
                windows.push_back(
                    reverseComplement(windows.back()));
                windowSource.push_back(i);
            }
            if (end == t.length())
                break;
        }
    }
    out.windowsScanned = windows.size();

    // Scan windows through the same pipeline (single-threaded over
    // the window list per worker block).
    const size_t workers = scanWorkers(cfg.search, pool, "nhmmer");
    if (!sinks.empty() && sinks.size() < workers)
        fatal("nhmmer: fewer sinks than workers");

    constexpr uint64_t kStreamBase = 0x6800'0000'0000ull;
    const double bytesPerWindow =
        windows.empty()
            ? 0.0
            : static_cast<double>(db.info().scaledBytes) /
                  static_cast<double>(windows.size());

    auto scan = [&](MemTraceSink *sink, SearchStats &stats,
                    std::vector<Hit> &hitsOut, size_t begin,
                    size_t end) {
        KernelConfig kernel = cfg.search.kernel;
        for (size_t i = begin; i < end; ++i) {
            const bio::Sequence &target = windows[i];
            kernel.targetBase =
                kStreamBase +
                static_cast<uint64_t>(static_cast<double>(i) *
                                      bytesPerWindow);
            ++stats.targetsScanned;
            stats.residuesScanned += target.length();
            if (sink) {
                // Reader-thread parse work for this window.
                const uint64_t bytes = target.length();
                sink->instructions(wellknown::addbuf(), bytes * 24);
                sink->instructions(wellknown::seebuf(), bytes * 9);
                sink->instructions(wellknown::copyToIter(),
                                   bytes * 8);
                sink->branches(wellknown::addbuf(), bytes / 4, 0);
                sink->access({0x7f70'0000'0000ull +
                                  kernel.targetBase % (4ull << 20),
                              64, true, wellknown::addbuf()});
                const uint64_t step =
                    64ull * cfg.search.kernel.traceStride;
                for (uint64_t off = 0; off < bytes; off += step)
                    sink->access({kernel.targetBase + off, 64, true,
                                  wellknown::copyToIter()});
            }
            const auto msv = msvFilter(prof, target, kernel, sink);
            stats.cellsMsv += msv.cells;
            const int threshold =
                msvThreshold(prof, target.length(), cfg.search);
            if (msv.score < threshold)
                continue;
            ++stats.msvPassed;
            const auto vit = calcBand9(prof, target, kernel, sink);
            stats.cellsViterbi += vit.cells;
            const auto fwd = calcBand10(prof, target, kernel, sink);
            stats.cellsForward += fwd.cells;
            if (vit.score < threshold + cfg.search.viterbiMargin)
                continue;
            ++stats.viterbiPassed;
            ++stats.domainsScored;
            if (sink)
                sink->instructions(
                    wellknown::calcBand10(),
                    16ull * target.length() * prof.length());
            if (fwd.logOdds < cfg.search.forwardThreshold)
                continue;
            ++stats.hits;
            hitsOut.push_back(
                {windowSource[i], vit.score, fwd.logOdds});
        }
    };

    SearchResult combined;
    const bool overlapped =
        sinks.empty() && cfg.search.overlap && workers >= 2 &&
        pool && !ThreadPool::inWorker() && db.vfs() &&
        !windows.empty();

    std::vector<SearchStats> partial;
    std::vector<std::vector<Hit>> partialHits;
    if (overlapped) {
        // Staged overlapped scan over the window list: the producer
        // streams the database file (window-proportional byte
        // ranges, sequential in window order) while prefilter
        // workers fan out over window chunks and survivor workers
        // drain the banded rescoring dynamically — the same
        // pipeline searchDatabase uses, so nhmmer's RNA windows get
        // the identical skew/overlap treatment.
        const uint64_t dbBytes = db.info().scaledBytes;
        const size_t nWin = windows.size();
        auto fileOff = [&](size_t k) {
            return dbBytes * static_cast<uint64_t>(k) /
                   static_cast<uint64_t>(nWin);
        };

        staged::ScanShape shape;
        shape.workers = workers;
        shape.targets = nWin;
        shape.grain = scanGrain(nWin, workers);
        shape.prefetchChunks = cfg.search.prefetchChunks;
        shape.survivorDepth = cfg.search.survivorQueueDepth;

        io::BufferedReader reader(db.vfs(), &cache, db.fileId());
        std::vector<std::vector<char>> slabs(
            std::max<size_t>(2, cfg.search.prefetchChunks));
        const size_t grain = shape.grain;
        uint64_t maxChunkBytes = 1;
        for (size_t b = 0; b < nWin; b += grain)
            maxChunkBytes = std::max(
                maxChunkBytes,
                fileOff(std::min(nWin, b + grain)) - fileOff(b));
        for (auto &s : slabs)
            s.resize(maxChunkBytes);

        auto stream = [&](size_t chunk, size_t b, size_t e) {
            const uint64_t off = fileOff(b);
            const uint64_t len = fileOff(e) - off;
            if (len == 0)
                return;
            reader.seek(off);
            reader.copyToIter(slabs[chunk % slabs.size()].data(),
                              static_cast<size_t>(len),
                              now + reader.stats().ioLatency);
        };

        partial.resize(workers);
        partialHits.resize(workers);
        auto prefilter = [&](size_t w, size_t i) {
            SearchStats &stats = partial[w];
            const bio::Sequence &target = windows[i];
            KernelConfig kernel = cfg.search.kernel;
            kernel.targetBase =
                kStreamBase +
                static_cast<uint64_t>(static_cast<double>(i) *
                                      bytesPerWindow);
            ++stats.targetsScanned;
            stats.residuesScanned += target.length();
            const auto msv =
                msvFilter(prof, target, kernel, nullptr);
            stats.cellsMsv += msv.cells;
            if (msv.score <
                msvThreshold(prof, target.length(), cfg.search))
                return false;
            ++stats.msvPassed;
            return true;
        };
        auto rescore = [&](size_t w, size_t i) {
            SearchStats &stats = partial[w];
            const bio::Sequence &target = windows[i];
            KernelConfig kernel = cfg.search.kernel;
            kernel.targetBase =
                kStreamBase +
                static_cast<uint64_t>(static_cast<double>(i) *
                                      bytesPerWindow);
            const int threshold =
                msvThreshold(prof, target.length(), cfg.search);
            const auto vit =
                calcBand9(prof, target, kernel, nullptr);
            stats.cellsViterbi += vit.cells;
            const auto fwd =
                calcBand10(prof, target, kernel, nullptr);
            stats.cellsForward += fwd.cells;
            if (vit.score < threshold + cfg.search.viterbiMargin)
                return;
            ++stats.viterbiPassed;
            ++stats.domainsScored;
            if (fwd.logOdds < cfg.search.forwardThreshold)
                return;
            ++stats.hits;
            partialHits[w].push_back(
                {windowSource[i], vit.score, fwd.logOdds});
        };

        if (cfg.search.taskScan)
            staged::runStagedScanTasks(*pool, shape, stream,
                                       prefilter, rescore,
                                       combined.stats.stages);
        else
            staged::runStagedScan(*pool, shape, stream, prefilter,
                                  rescore, combined.stats.stages);

        // The producer streamed the whole file; account it the same
        // way the static path's single sequential read does.
        combined.stats.bytesStreamed += dbBytes;
        combined.stats.bytesFromDisk +=
            reader.stats().bytesFromDisk;
        combined.stats.ioLatency += reader.stats().ioLatency;
        combined.stats.stages.reader.merge(reader.stats());
    } else if (workers <= 1 || !pool) {
        partial.resize(1);
        partialHits.resize(1);
        scan(sinks.empty() ? nullptr : sinks[0], partial[0],
             partialHits[0], 0, windows.size());
    } else if (sinks.empty()) {
        // Untraced static fallback (overlap off or nested): blocks
        // finer than the worker count and let the pool balance;
        // block-order merge keeps results deterministic.
        const size_t grain = scanGrain(windows.size(), workers);
        const size_t blocks =
            (windows.size() + grain - 1) / grain;
        partial.resize(blocks);
        partialHits.resize(blocks);
        pool->parallelFor(
            windows.size(), grain, [&](size_t b, size_t e) {
                scan(nullptr, partial[b / grain],
                     partialHits[b / grain], b, e);
            });
    } else {
        // Traced: keep the per-worker equal split — the worker ->
        // sink mapping is part of the trace contract.
        partial.resize(workers);
        partialHits.resize(workers);
        const size_t chunk =
            (windows.size() + workers - 1) / workers;
        pool->parallelBlocks(workers,
                             [&](size_t, size_t wb, size_t we) {
                                 for (size_t w = wb; w < we; ++w) {
                                     const size_t b = w * chunk;
                                     const size_t e = std::min(
                                         windows.size(), b + chunk);
                                     if (b < e)
                                         scan(sinks[w], partial[w],
                                              partialHits[w], b, e);
                                 }
                             });
    }

    for (size_t w = 0; w < partial.size(); ++w) {
        combined.stats.merge(partial[w]);
        combined.hits.insert(combined.hits.end(),
                             partialHits[w].begin(),
                             partialHits[w].end());
    }

    if (!overlapped) {
        // Stream the database bytes once (nhmmer reads the file
        // sequentially regardless of window results); the
        // overlapped path already streamed them in its I/O stage.
        const io::FileId fid = db.fileId();
        const uint64_t dbBytes = db.info().scaledBytes;
        const auto io = cache.read(
            fid, 0, std::max<uint64_t>(1, dbBytes), now);
        combined.stats.bytesStreamed += dbBytes;
        combined.stats.bytesFromDisk += io.bytesFromDisk;
        combined.stats.ioLatency += io.latency;
    }

    // Deduplicate hits per source target (keep the best window).
    std::sort(combined.hits.begin(), combined.hits.end(),
              [](const Hit &a, const Hit &b) {
                  if (a.targetIndex != b.targetIndex)
                      return a.targetIndex < b.targetIndex;
                  return a.forwardLogOdds > b.forwardLogOdds;
              });
    combined.hits.erase(
        std::unique(combined.hits.begin(), combined.hits.end(),
                    [](const Hit &a, const Hit &b) {
                        return a.targetIndex == b.targetIndex;
                    }),
        combined.hits.end());
    std::sort(combined.hits.begin(), combined.hits.end(),
              [](const Hit &a, const Hit &b) {
                  return a.forwardLogOdds > b.forwardLogOdds;
              });
    combined.stats.hits = combined.hits.size();

    out.stats = combined.stats;
    out.msa = buildMsa(query, prof, db, combined, cfg.build);
    out.stats.cellsViterbi += out.msa.alignCells;
    return out;
}

} // namespace afsb::msa
