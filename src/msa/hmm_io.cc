#include "msa/hmm_io.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::msa {

std::string
writeHmm(const ProfileHmm &prof)
{
    std::string out = "AFSBHMM 1\n";
    out += strformat("LENG %zu ALPH %s\n", prof.length(),
                     prof.alphabet() == 20 ? "amino" : "nucleic");
    out += strformat("GAPO %d GAPX %d\n", prof.gaps().open,
                     prof.gaps().extend);
    for (size_t pos = 0; pos < prof.length(); ++pos) {
        out += strformat("M %zu", pos);
        for (size_t r = 0; r < prof.alphabet(); ++r)
            out += strformat(
                " %d",
                prof.matchScore(pos, static_cast<uint8_t>(r)));
        out += '\n';
    }
    out += "//\n";
    return out;
}

namespace {

int
parseIntToken(const std::string &tok, const char *what)
{
    char *end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0')
        fatal(std::string("HMM: malformed ") + what + " '" + tok +
              "'");
    return static_cast<int>(v);
}

} // namespace

ProfileHmm
readHmm(const std::string &text)
{
    const auto lines = split(text, '\n');
    size_t i = 0;
    auto nextLine = [&]() -> std::string {
        while (i < lines.size()) {
            const std::string line = trim(lines[i++]);
            if (!line.empty())
                return line;
        }
        fatal("HMM: unexpected end of document");
    };

    {
        const auto header = split(nextLine(), ' ');
        if (header.size() != 2 || header[0] != "AFSBHMM")
            fatal("HMM: missing AFSBHMM header");
        if (header[1] != "1")
            fatal("HMM: unsupported version '" + header[1] + "'");
    }

    size_t length = 0;
    size_t alphabet = 0;
    {
        const auto fields = split(nextLine(), ' ');
        if (fields.size() != 4 || fields[0] != "LENG" ||
            fields[2] != "ALPH")
            fatal("HMM: malformed LENG/ALPH line");
        length = static_cast<size_t>(
            parseIntToken(fields[1], "length"));
        if (fields[3] == "amino")
            alphabet = 20;
        else if (fields[3] == "nucleic")
            alphabet = 4;
        else
            fatal("HMM: unknown alphabet '" + fields[3] + "'");
        if (length == 0)
            fatal("HMM: zero-length profile");
    }

    GapModel gaps;
    {
        const auto fields = split(nextLine(), ' ');
        if (fields.size() != 4 || fields[0] != "GAPO" ||
            fields[2] != "GAPX")
            fatal("HMM: malformed GAPO/GAPX line");
        gaps.open = parseIntToken(fields[1], "gap-open");
        gaps.extend = parseIntToken(fields[3], "gap-extend");
    }

    // Reconstruct through a dummy sequence, then overwrite the
    // emission table via the row pointers.
    std::vector<std::vector<int16_t>> rows(length);
    for (size_t pos = 0; pos < length; ++pos) {
        const auto fields = split(nextLine(), ' ');
        if (fields.size() != alphabet + 2 || fields[0] != "M")
            fatal(strformat("HMM: malformed M line at position %zu",
                            pos));
        if (static_cast<size_t>(
                parseIntToken(fields[1], "position")) != pos)
            fatal("HMM: out-of-order M line");
        rows[pos].resize(alphabet);
        for (size_t r = 0; r < alphabet; ++r)
            rows[pos][r] = static_cast<int16_t>(
                parseIntToken(fields[r + 2], "score"));
    }
    if (nextLine() != "//")
        fatal("HMM: missing // terminator");

    return ProfileHmm::fromEmissions(std::move(rows), gaps);
}

} // namespace afsb::msa
