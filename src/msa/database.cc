#include "msa/database.hh"

#include "util/logging.hh"

namespace afsb::msa {

SequenceDatabase
SequenceDatabase::load(const io::Vfs &vfs, io::PageCache &cache,
                       const std::string &file_name,
                       bio::MoleculeType type, double now,
                       double *io_latency_out, MemTraceSink *sink)
{
    SequenceDatabase db;
    const auto opened = vfs.open(file_name);
    if (!opened)
        fatal("SequenceDatabase: no such file '" + file_name + "'");
    const io::FileId id = *opened;
    db.info_.name = file_name;
    db.info_.type = type;
    db.info_.scaledBytes = vfs.size(id);
    db.info_.paperScaleBytes = vfs.size(id);

    io::BufferedReader reader(&vfs, &cache, id, sink);
    std::string line;
    std::string headerId;
    std::string residues;
    bool have = false;

    auto flush = [&] {
        if (have) {
            db.seqs_.emplace_back(headerId, type, residues);
            residues.clear();
        }
    };

    while (reader.readLine(line, now)) {
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            const size_t sp = line.find(' ');
            headerId = sp == std::string::npos
                           ? line.substr(1)
                           : line.substr(1, sp - 1);
            if (headerId.empty())
                fatal("database: empty FASTA header in " + file_name);
            have = true;
        } else {
            if (!have)
                fatal("database: residues before header in " +
                      file_name);
            residues += line;
        }
    }
    if (reader.failed())
        fatal("database: storage read error loading " + file_name);
    flush();

    db.info_.sequenceCount = db.seqs_.size();
    db.fileId_ = id;
    db.vfs_ = &vfs;

    // Cumulative byte offsets: header line plus wrapped residue
    // lines (60 per line, writeFasta's default).
    db.offsets_.reserve(db.seqs_.size() + 1);
    uint64_t off = 0;
    db.offsets_.push_back(off);
    for (const auto &s : db.seqs_) {
        const uint64_t lines = (s.length() + 59) / 60;
        off += 2 + s.id().size() + s.length() + lines;
        db.offsets_.push_back(off);
    }

    if (io_latency_out)
        *io_latency_out += reader.stats().ioLatency;
    return db;
}

SequenceDatabase::ByteExtent
SequenceDatabase::byteExtent(size_t i) const
{
    panicIf(i + 1 >= offsets_.size(), "byteExtent: bad index");
    return {offsets_[i], offsets_[i + 1] - offsets_[i]};
}

uint64_t
SequenceDatabase::totalResidues() const
{
    uint64_t n = 0;
    for (const auto &s : seqs_)
        n += s.length();
    return n;
}

} // namespace afsb::msa
