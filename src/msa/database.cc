#include "msa/database.hh"

#include "util/logging.hh"

namespace afsb::msa {

SequenceDatabase
SequenceDatabase::load(const io::Vfs &vfs, io::PageCache &cache,
                       const std::string &file_name,
                       bio::MoleculeType type, double now,
                       double *io_latency_out, MemTraceSink *sink)
{
    SequenceDatabase db;
    const auto opened = vfs.open(file_name);
    if (!opened)
        fatal("SequenceDatabase: no such file '" + file_name + "'");
    const io::FileId id = *opened;
    db.info_.name = file_name;
    db.info_.type = type;
    db.info_.scaledBytes = vfs.size(id);
    db.info_.paperScaleBytes = vfs.size(id);

    io::BufferedReader reader(&vfs, &cache, id, sink);
    std::string line;
    std::string headerId;
    std::string residues;
    bool have = false;

    auto flush = [&] {
        if (have) {
            db.seqs_.emplace_back(headerId, type, residues);
            residues.clear();
        }
    };

    while (reader.readLine(line, now)) {
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            const size_t sp = line.find(' ');
            headerId = sp == std::string::npos
                           ? line.substr(1)
                           : line.substr(1, sp - 1);
            if (headerId.empty())
                fatal("database: empty FASTA header in " + file_name);
            have = true;
        } else {
            if (!have)
                fatal("database: residues before header in " +
                      file_name);
            residues += line;
        }
    }
    if (reader.failed())
        fatal("database: storage read error loading " + file_name);
    flush();

    db.info_.sequenceCount = db.seqs_.size();
    db.fileId_ = id;
    db.vfs_ = &vfs;

    // Cumulative byte offsets: header line plus wrapped residue
    // lines (60 per line, writeFasta's default).
    db.offsets_.reserve(db.seqs_.size() + 1);
    uint64_t off = 0;
    db.offsets_.push_back(off);
    for (const auto &s : db.seqs_) {
        const uint64_t lines = (s.length() + 59) / 60;
        off += 2 + s.id().size() + s.length() + lines;
        db.offsets_.push_back(off);
    }

    if (io_latency_out)
        *io_latency_out += reader.stats().ioLatency;
    return db;
}

SequenceDatabase::ByteExtent
SequenceDatabase::byteExtent(size_t i) const
{
    panicIf(i + 1 >= offsets_.size(), "byteExtent: bad index");
    return {offsets_[i], offsets_[i + 1] - offsets_[i]};
}

uint64_t
SequenceDatabase::totalResidues() const
{
    uint64_t n = 0;
    for (const auto &s : seqs_)
        n += s.length();
    return n;
}

io::BlockFileStats
compressDatabase(io::Vfs &vfs, const std::string &fasta_name,
                 const std::string &afbc_name)
{
    const auto opened = vfs.open(fasta_name);
    if (!opened)
        fatal("compressDatabase: no such file '" + fasta_name + "'");
    const io::FileId id = *opened;
    std::string raw(vfs.size(id), '\0');
    const size_t got = vfs.read(id, 0, raw.data(), raw.size());
    panicIf(got != raw.size(), "compressDatabase: short read");
    io::BlockFileStats stats;
    io::writeBlockFile(vfs, afbc_name, raw,
                       io::kBlockFileBlockSize, &stats);
    return stats;
}

StreamingSequenceDatabase
StreamingSequenceDatabase::open(const io::Vfs &vfs,
                                io::PageCache &cache,
                                const std::string &afbc_name,
                                bio::MoleculeType type, double now,
                                uint64_t decode_budget)
{
    const auto opened = vfs.open(afbc_name);
    if (!opened)
        fatal("StreamingSequenceDatabase: no such file '" +
              afbc_name + "'");

    StreamingSequenceDatabase db;
    db.reader_ = std::make_unique<io::BlockFileReader>(
        &vfs, &cache, *opened, decode_budget, now);
    db.info_.name = afbc_name;
    db.info_.type = type;
    db.info_.scaledBytes = db.reader_->rawSize();
    db.info_.paperScaleBytes = db.reader_->rawSize();

    // Indexing pass: record id / length / logical extent per
    // target, residue bytes are decoded and dropped.
    std::string line;
    uint64_t lineStart = 0;
    TargetIndex cur;
    bool have = false;
    auto flush = [&](uint64_t end_off) {
        if (!have)
            return;
        cur.extent = end_off - cur.offset;
        db.totalResidues_ += cur.length;
        db.indexBytes_ += sizeof(TargetIndex) + cur.id.size();
        db.index_.push_back(std::move(cur));
        cur = TargetIndex{};
    };
    while (true) {
        lineStart = db.reader_->tellLogical();
        if (!db.reader_->readLine(line, now))
            break;
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush(lineStart);
            const size_t sp = line.find(' ');
            cur.id = sp == std::string::npos
                         ? line.substr(1)
                         : line.substr(1, sp - 1);
            if (cur.id.empty())
                fatal("streaming db: empty FASTA header in " +
                      afbc_name);
            cur.offset = lineStart;
            have = true;
        } else {
            if (!have)
                fatal("streaming db: residues before header in " +
                      afbc_name);
            cur.length += static_cast<uint32_t>(line.size());
        }
    }
    flush(db.reader_->rawSize());
    db.info_.sequenceCount = db.index_.size();
    return db;
}

SequenceDatabase::ByteExtent
StreamingSequenceDatabase::byteExtent(size_t i) const
{
    const auto &t = index_.at(i);
    return {t.offset, t.extent};
}

bio::Sequence
StreamingSequenceDatabase::materialize(size_t i, double now) const
{
    const auto &t = index_.at(i);
    std::string fasta(static_cast<size_t>(t.extent), '\0');
    const size_t got =
        reader_->readAt(t.offset, fasta.data(), fasta.size(), now);
    panicIf(got != fasta.size(), "streaming db: short extent read");

    // Strip the header line and residue-line breaks — same bytes
    // SequenceDatabase::load feeds the Sequence constructor.
    const size_t hdrEnd = fasta.find('\n');
    panicIf(hdrEnd == std::string::npos || fasta[0] != '>',
            "streaming db: extent is not a FASTA record");
    std::string residues;
    residues.reserve(t.length);
    for (size_t p = hdrEnd + 1; p < fasta.size(); ++p)
        if (fasta[p] != '\n')
            residues.push_back(fasta[p]);
    return bio::Sequence(t.id, info_.type, residues);
}

uint64_t
StreamingSequenceDatabase::peakResidentBytes() const
{
    return reader_->stats().peakResidentBytes + indexBytes_;
}

} // namespace afsb::msa
