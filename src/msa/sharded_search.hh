/**
 * @file
 * Sharded multi-node database scan.
 *
 * The synthetic sequence database is partitioned into contiguous
 * target shards, one per simulated node; each node runs the
 * profile-HMM cascade over only its slice (SearchConfig's
 * targetBegin/targetEnd subrange) and ships its MSV survivors and
 * accepted alignments to node 0 through the modeled interconnect.
 * The gather uses displacement-counted buffers — per-shard element
 * counts plus exclusive prefix-sum displacements into one packed
 * wire buffer — the classic MPI_Alltoallv shape, so the comm trace
 * records exactly the bytes an MPI jackhmmer port would move.
 *
 * Because every per-target accept/reject decision in the cascade is
 * independent of its neighbors, the union of shard-local results
 * over a disjoint partition equals the whole-database scan, and the
 * canonical final ordering (descending Forward score, target-index
 * tie break; survivors ascending) makes the merged result
 * bit-identical to a single-node searchDatabase() over the same
 * database. nodes <= 1 delegates directly to searchDatabase() and
 * never touches the interconnect — the nodes=1 equivalence anchor.
 */

#ifndef AFSB_MSA_SHARDED_SEARCH_HH
#define AFSB_MSA_SHARDED_SEARCH_HH

#include <cstdint>
#include <vector>

#include "msa/search.hh"
#include "net/interconnect.hh"

namespace afsb::msa {

/** Wire cost of one MSV-survivor index (uint32 target id). */
inline constexpr uint64_t kSurvivorWireBytes = 4;

/** Wire cost of one accepted hit: uint64 target index, int32
 *  Viterbi score, double Forward log-odds. */
inline constexpr uint64_t kHitWireBytes = 20;

/** Result of one sharded scan. */
struct ShardedSearchResult
{
    /** Merged result, ordered exactly as searchDatabase() orders
     *  a single-node scan of the same database. */
    SearchResult merged;

    /** Per-shard element counts and exclusive prefix-sum byte
     *  displacements for the gathered buffers (size nodes; empty
     *  after the nodes<=1 delegation path). */
    std::vector<uint32_t> survivorCounts;
    std::vector<uint64_t> survivorDispls;
    std::vector<uint32_t> hitCounts;
    std::vector<uint64_t> hitDispls;

    /** Simulated time when node 0 holds every shard's data (equal
     *  to the scan start when no cross-node transfer happened). */
    double gatherCompleteSeconds = 0.0;
};

/**
 * Contiguous shard bounds for @p shard of @p nodes over @p n
 * targets: [shard*n/nodes, (shard+1)*n/nodes).
 */
std::pair<size_t, size_t> shardRange(size_t n, uint32_t nodes,
                                     uint32_t shard);

/**
 * Scan @p db sharded across @p topology.nodes simulated nodes.
 *
 * Each shard scans its slice with @p cfg (the subrange fields are
 * overwritten per shard); shards other than 0 then send their
 * survivors (SurvivorExchange) and hits (AlignmentGather) to node 0
 * through @p net at time @p now. @p net may be null only when
 * topology.nodes <= 1.
 *
 * The shard scans share @p cache — a deliberate approximation (the
 * page-cache stats describe aggregate traffic, not per-node
 * residency); the hit and survivor sets are unaffected because
 * caching never changes cascade decisions.
 */
ShardedSearchResult searchDatabaseSharded(
    const ProfileHmm &prof, const SequenceDatabase &db,
    io::PageCache &cache, ThreadPool *pool, const SearchConfig &cfg,
    const net::TopologyConfig &topology, net::Interconnect *net,
    double now = 0.0);

} // namespace afsb::msa

#endif // AFSB_MSA_SHARDED_SEARCH_HH
