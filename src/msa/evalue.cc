#include "msa/evalue.hh"

#include <algorithm>
#include <cmath>

#include "bio/seqgen.hh"
#include "util/logging.hh"

namespace afsb::msa {

GumbelParams
fitGumbel(const ProfileHmm &prof, Rng &rng, size_t samples,
          size_t target_len)
{
    panicIf(samples < 10, "fitGumbel: need >= 10 samples");

    const auto type = prof.alphabet() == 20
                          ? bio::MoleculeType::Protein
                          : bio::MoleculeType::Rna;
    bio::SequenceGenerator gen(rng.next());

    // Viterbi scores of random targets follow a Gumbel law for
    // local alignment.
    std::vector<double> scores;
    scores.reserve(samples);
    KernelConfig cfg;
    for (size_t i = 0; i < samples; ++i) {
        const auto target = gen.random("r", type, target_len);
        scores.push_back(static_cast<double>(
            calcBand9(prof, target, cfg).score));
    }

    // Method of moments: Var = pi^2 / (6 lambda^2),
    // mean = mu + gamma / lambda.
    double mean = 0.0;
    for (double s : scores)
        mean += s;
    mean /= static_cast<double>(scores.size());
    double var = 0.0;
    for (double s : scores)
        var += (s - mean) * (s - mean);
    var /= static_cast<double>(scores.size() - 1);

    constexpr double kEulerGamma = 0.5772156649015329;
    constexpr double kPi = 3.141592653589793;

    GumbelParams params;
    params.refTargetLen = target_len;
    if (var > 0.0) {
        params.lambda = kPi / std::sqrt(6.0 * var);
        params.mu = mean - kEulerGamma / params.lambda;
    } else {
        params.mu = mean;
    }
    return params;
}

double
pValue(const GumbelParams &params, double score, size_t target_len)
{
    // Edge correction: the number of alignment start points grows
    // with target length, shifting the location parameter.
    const double lenRatio =
        static_cast<double>(std::max<size_t>(1, target_len)) /
        static_cast<double>(params.refTargetLen);
    const double mu =
        params.mu + std::log(lenRatio) / params.lambda;
    const double z = params.lambda * (score - mu);
    // P(S >= s) = 1 - exp(-exp(-z)), stable for both tails.
    if (z > 30.0)
        return std::exp(-z);  // ~ e^-z for large z
    return 1.0 - std::exp(-std::exp(-z));
}

double
eValue(const GumbelParams &params, double score,
       size_t db_sequences, size_t avg_target_len)
{
    return static_cast<double>(db_sequences) *
           pValue(params, score, avg_target_len);
}

bool
includeInNextRound(const GumbelParams &params, double score,
                   size_t db_sequences, size_t avg_target_len,
                   double threshold)
{
    return eValue(params, score, db_sequences, avg_target_len) <
           threshold;
}

} // namespace afsb::msa
