/**
 * @file
 * JackHMMER analog: iterative profile search for protein chains.
 *
 * Round 1 searches with a single-sequence profile; each later round
 * rebuilds the profile from the alignment accumulated so far and
 * searches again, converging on a deeper MSA. The iteration count,
 * like HMMER's -N, is configurable (AF3 uses shallow iteration).
 */

#ifndef AFSB_MSA_JACKHMMER_HH
#define AFSB_MSA_JACKHMMER_HH

#include <vector>

#include "msa/msa_builder.hh"
#include "msa/search.hh"

namespace afsb::msa {

/** Iterative-search configuration. */
struct JackhmmerConfig
{
    SearchConfig search;
    MsaBuildConfig build;

    /** Search rounds (HMMER default 5; AF3 pipelines use fewer). */
    size_t iterations = 2;

    /**
     * Feed each round's MSV-survivor set to the next round as
     * `SearchConfig::priorityTargets` (AF_Cache-style cross-round
     * reuse): the overlapped scan streams and prefilters those
     * chunks first, so the band-heavy targets that dominated the
     * last pass overlap the re-stream of everything else. Never
     * changes hits.
     */
    bool carrySurvivors = true;
};

/** Result of a full jackhmmer run for one chain. */
struct JackhmmerResult
{
    MsaResult msa;
    SearchStats stats;            ///< totals across rounds
    std::vector<SearchStats> perRound;
    size_t rounds = 0;
};

/**
 * Run iterative search of @p query against @p db.
 * @param pool Optional thread pool (threads from cfg.search).
 * @param sinks Optional per-worker trace sinks.
 */
JackhmmerResult runJackhmmer(
    const bio::Sequence &query, const SequenceDatabase &db,
    io::PageCache &cache, ThreadPool *pool,
    const JackhmmerConfig &cfg, double now = 0.0,
    const std::vector<MemTraceSink *> &sinks = {});

} // namespace afsb::msa

#endif // AFSB_MSA_JACKHMMER_HH
