/**
 * @file
 * Karlin-Altschul significance statistics for search hits.
 *
 * HMMER reports E-values — the expected number of false hits at a
 * given score over a database of a given size — from the extreme-
 * value (Gumbel) distribution of local alignment scores. This module
 * estimates the Gumbel parameters (lambda, K) for a profile by
 * sampling scores against synthetic random sequences, then converts
 * bit scores to E-values and P-values. The search engine uses it to
 * annotate hits; it also exposes the jackhmmer-style inclusion
 * threshold test.
 */

#ifndef AFSB_MSA_EVALUE_HH
#define AFSB_MSA_EVALUE_HH

#include "msa/dp_kernels.hh"
#include "msa/profile_hmm.hh"
#include "util/rng.hh"

namespace afsb::msa {

/** Fitted Gumbel (EVD) parameters for one profile. */
struct GumbelParams
{
    double lambda = 0.32;  ///< score scale (per raw score unit)
    double mu = 0.0;       ///< location for a reference length

    /** Reference target length the fit used. */
    size_t refTargetLen = 256;
};

/**
 * Fit Gumbel parameters for @p prof by scoring @p samples random
 * sequences of length @p target_len (method of moments on the
 * simulated Viterbi score distribution).
 */
GumbelParams fitGumbel(const ProfileHmm &prof, Rng &rng,
                       size_t samples = 200,
                       size_t target_len = 256);

/**
 * P(score >= s) for a single comparison against a target of
 * @p target_len residues, with the standard edge-length
 * correction mu' = mu + ln(L/L_ref) / lambda.
 */
double pValue(const GumbelParams &params, double score,
              size_t target_len);

/**
 * E-value over a database of @p db_sequences targets of average
 * length @p avg_target_len.
 */
double eValue(const GumbelParams &params, double score,
              size_t db_sequences, size_t avg_target_len);

/**
 * jackhmmer-style inclusion test: include a hit in the next
 * alignment round when its E-value is below @p threshold
 * (default 0.001, HMMER's --incE default region).
 */
bool includeInNextRound(const GumbelParams &params, double score,
                        size_t db_sequences, size_t avg_target_len,
                        double threshold = 1e-3);

} // namespace afsb::msa

#endif // AFSB_MSA_EVALUE_HH
