/**
 * @file
 * k-mer MinHash sketches for similarity-keyed MSA reuse.
 *
 * Real serving traffic is full of near-duplicate chains (point
 * mutants, truncations); an exact content-addressed cache misses all
 * of them. A MinHash sketch over the query's k-mer set gives an
 * unbiased Jaccard estimate between two queries in O(hashes) time,
 * and LSH banding over the signature turns "find a near-identical
 * cached query" into a handful of hash-table probes — the AF_Cache
 * similarity tier.
 *
 * Sketches are salted with chain modality and the workload variant
 * index, so distinct variants of one sample are uncorrelated while
 * point-mutated copies of the same (sample, variant) land within a
 * few signature positions of each other.
 */

#ifndef AFSB_MSA_SKETCH_HH
#define AFSB_MSA_SKETCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bio/sequence.hh"

namespace afsb::msa {

/** MinHash/LSH shape knobs. */
struct SketchConfig
{
    /** k-mer width. 6 keeps a 2%-mutated chain at Jaccard ~0.8. */
    size_t k = 6;

    /** Signature size (number of independent min-hashes). */
    size_t hashes = 32;

    /**
     * LSH bands over the signature; rows per band = hashes / bands.
     * 8 bands x 4 rows puts the collision-probability knee near
     * Jaccard 0.6 — below it near-misses rarely collide, above it
     * near-duplicates almost always do.
     */
    size_t bands = 8;

    size_t rowsPerBand() const { return hashes / bands; }
};

/** MinHash signature of one query (all MSA-eligible chains). */
struct QuerySketch
{
    std::vector<uint64_t> minhash; ///< size = SketchConfig::hashes

    bool empty() const { return minhash.empty(); }

    /**
     * One 64-bit hash per LSH band (bands of rowsPerBand()
     * consecutive signature slots). Two sketches that agree on every
     * slot of any band collide in that band's hash table.
     */
    std::vector<uint64_t> bandHashes(const SketchConfig &cfg) const;
};

/**
 * Sketch a query complex: the union of k-mer sets over its
 * MSA-eligible chains, salted with chain modality and @p variant.
 * Chains shorter than k contribute a single whole-chain token so no
 * query sketches empty.
 */
QuerySketch sketchComplex(const bio::Complex &complex,
                          uint32_t variant,
                          const SketchConfig &cfg = {});

/** Sketch a single raw code vector (testing / chain-level use). */
QuerySketch sketchCodes(const std::vector<uint8_t> &codes,
                        uint64_t salt, const SketchConfig &cfg = {});

/**
 * Unbiased Jaccard estimate: fraction of matching signature slots.
 * 0 when either sketch is empty or the sizes differ.
 */
double jaccardEstimate(const QuerySketch &a, const QuerySketch &b);

} // namespace afsb::msa

#endif // AFSB_MSA_SKETCH_HH
