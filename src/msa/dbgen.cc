#include "msa/dbgen.hh"

#include <algorithm>

#include "bio/fasta.hh"
#include "bio/seqgen.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::msa {

size_t
generateDatabase(io::Vfs &vfs, const std::string &file_name,
                 const std::vector<const bio::Sequence *> &queries,
                 bio::MoleculeType type, const DbGenConfig &cfg)
{
    bio::SequenceGenerator gen(cfg.seed);
    std::vector<bio::Sequence> seqs;
    seqs.reserve(cfg.decoyCount +
                 queries.size() *
                     (cfg.homologsPerQuery + cfg.fragmentsPerQuery));

    // Background decoys, some with low-complexity inserts.
    for (size_t i = 0; i < cfg.decoyCount; ++i) {
        const size_t len = static_cast<size_t>(gen.rng().nextRange(
            static_cast<int64_t>(cfg.decoyMinLen),
            static_cast<int64_t>(cfg.decoyMaxLen)));
        const std::string id = strformat("decoy%05zu", i);
        if (type == bio::MoleculeType::Protein &&
            gen.rng().nextBool(cfg.lowComplexityFraction)) {
            // Insert a homopolymer run of 16-48 residues; Q and other
            // repeat-prone residues weighted like real proteomes.
            static const char kRepeatResidues[] = "QQQQQAGPSE";
            const char res = kRepeatResidues[gen.rng().nextBounded(
                sizeof(kRepeatResidues) - 1)];
            const size_t run = static_cast<size_t>(
                gen.rng().nextRange(16, 48));
            seqs.push_back(gen.withHomopolymer(
                id, std::max(len, run + 8), run, res));
        } else {
            seqs.push_back(gen.random(id, type, len));
        }
    }

    // Planted homologs and partial fragments per query chain.
    for (size_t q = 0; q < queries.size(); ++q) {
        const bio::Sequence &query = *queries[q];
        for (size_t h = 0; h < cfg.homologsPerQuery; ++h) {
            bio::MutationParams params;
            // Homologs range from close (5%) to remote (35%).
            params.substitutionRate =
                0.05 + 0.30 * static_cast<double>(h) /
                           std::max<size_t>(1, cfg.homologsPerQuery);
            params.insertionRate = 0.01;
            params.deletionRate = 0.01;
            seqs.push_back(gen.mutate(
                query, strformat("hom_q%zu_%zu", q, h), params));
        }
        for (size_t f = 0; f < cfg.fragmentsPerQuery; ++f) {
            const size_t frag = std::max<size_t>(
                24, query.length() / 4);
            const size_t total =
                frag + 40 + gen.rng().nextBounded(80);
            seqs.push_back(gen.embedFragment(
                query, strformat("frag_q%zu_%zu", q, f), frag,
                total));
        }
    }

    // Deterministic shuffle so planted sequences are spread across
    // the file (affects page-cache behaviour realistically).
    for (size_t i = seqs.size(); i > 1; --i)
        std::swap(seqs[i - 1], seqs[gen.rng().nextBounded(i)]);

    vfs.createFile(file_name, bio::writeFasta(seqs));
    return seqs.size();
}

} // namespace afsb::msa
