/**
 * @file
 * MSA assembly from accepted hits.
 *
 * Hits are re-aligned to the query profile with traceback and placed
 * into rows of an M x N alignment (M sequences including the query,
 * N = query length). The result carries the (M x N x d) feature-
 * tensor dimensions AF3 derives from the alignment.
 */

#ifndef AFSB_MSA_MSA_BUILDER_HH
#define AFSB_MSA_MSA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "msa/database.hh"
#include "msa/profile_hmm.hh"
#include "msa/search.hh"

namespace afsb::msa {

/** Character used for alignment gaps. */
constexpr char kGapChar = '-';

/** A built alignment for one query chain. */
struct MsaResult
{
    /** Aligned rows (query first), each exactly queryLength chars. */
    std::vector<std::string> rows;

    /** Source identifiers parallel to rows. */
    std::vector<std::string> rowIds;

    size_t queryLength = 0;
    uint64_t alignCells = 0;  ///< traceback DP cells spent

    size_t depth() const { return rows.size(); }

    /** Mean fraction of non-gap residues identical to the query. */
    double meanIdentity() const;

    /**
     * Bytes of the (M x N x d) MSA feature representation AF3 will
     * embed, at feature dimension @p d (AF3 uses 64 for the MSA
     * track) in float32.
     */
    uint64_t
    featureBytes(size_t d = 64) const
    {
        return static_cast<uint64_t>(rows.size()) * queryLength * d *
               sizeof(float);
    }
};

/** Builder configuration. */
struct MsaBuildConfig
{
    /** Keep at most this many rows (HMMER keeps top hits). */
    size_t maxRows = 512;

    /** Drop rows that are more than this fraction gaps. */
    double maxGapFraction = 0.7;

    KernelConfig kernel;
};

/**
 * Assemble the MSA for @p query from @p result's hits against @p db.
 * The query becomes row 0.
 */
MsaResult buildMsa(const bio::Sequence &query, const ProfileHmm &prof,
                   const SequenceDatabase &db,
                   const SearchResult &result,
                   const MsaBuildConfig &cfg = {});

} // namespace afsb::msa

#endif // AFSB_MSA_MSA_BUILDER_HH
