#include "msa/jackhmmer.hh"

#include "util/logging.hh"

namespace afsb::msa {

JackhmmerResult
runJackhmmer(const bio::Sequence &query, const SequenceDatabase &db,
             io::PageCache &cache, ThreadPool *pool,
             const JackhmmerConfig &cfg, double now,
             const std::vector<MemTraceSink *> &sinks)
{
    if (query.type() != bio::MoleculeType::Protein)
        fatal("jackhmmer: protein queries only");

    JackhmmerResult out;
    const ScoreMatrix &matrix = ScoreMatrix::blosum62();
    ProfileHmm prof = ProfileHmm::fromSequence(query, matrix);

    SearchResult last;
    std::vector<uint32_t> carried;
    for (size_t round = 0; round < cfg.iterations; ++round) {
        SearchConfig roundCfg = cfg.search;
        roundCfg.streamEpoch =
            cfg.search.streamEpoch + static_cast<uint32_t>(round);
        // Pre-order this pass by the previous round's survivor set:
        // the expensive banded rescans surface first and overlap
        // the rest of the database stream.
        if (cfg.carrySurvivors && !carried.empty())
            roundCfg.priorityTargets = &carried;
        last = searchDatabase(prof, db, cache, pool, roundCfg,
                              now + out.stats.ioLatency, sinks);
        carried = last.msvSurvivors;
        out.perRound.push_back(last.stats);
        out.stats.merge(last.stats);
        ++out.rounds;

        if (round + 1 == cfg.iterations || last.hits.empty())
            break;

        // Rebuild the profile from the current alignment. Gap
        // positions take the query residue (consensus carry-over),
        // so rows stay fixed-length for the column model.
        const MsaResult msa =
            buildMsa(query, prof, db, last, cfg.build);
        std::vector<bio::Sequence> rowSeqs;
        rowSeqs.reserve(msa.rows.size());
        for (const auto &row : msa.rows) {
            std::string filled = row;
            for (size_t i = 0; i < filled.size(); ++i)
                if (filled[i] == kGapChar)
                    filled[i] = msa.rows.front()[i];
            rowSeqs.emplace_back("row", query.type(), filled);
        }
        std::vector<const bio::Sequence *> ptrs;
        ptrs.reserve(rowSeqs.size());
        for (const auto &s : rowSeqs)
            ptrs.push_back(&s);
        prof = ProfileHmm::fromAlignment(ptrs, matrix);
    }

    out.msa = buildMsa(query, prof, db, last, cfg.build);
    out.stats.cellsViterbi += out.msa.alignCells;
    // Hit re-alignment ("scoring and filtering" of candidate
    // alignments) is real DP work; low-complexity queries inflate
    // it through their flood of spurious hits (Observation 2).
    if (!sinks.empty() && out.msa.alignCells > 0)
        sinks[0]->instructions(wellknown::calcBand9(),
                               out.msa.alignCells * 2);
    return out;
}

} // namespace afsb::msa
