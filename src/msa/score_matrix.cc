#include "msa/score_matrix.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::msa {

namespace {

// Canonical BLOSUM62 in the traditional ARNDCQEGHILKMFPSTWYV order.
const char kCanonicalOrder[] = "ARNDCQEGHILKMFPSTWYV";

constexpr int8_t kBlosum62[20][20] = {
    { 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,
       0, -3, -2,  0},
    {-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1,
      -1, -3, -2, -3},
    {-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,
       0, -4, -2, -3},
    {-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0,
      -1, -4, -3, -3},
    { 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1,
      -1, -2, -2, -1},
    {-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0,
      -1, -2, -1, -2},
    {-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0,
      -1, -3, -2, -2},
    { 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0,
      -2, -2, -3, -3},
    {-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1,
      -2, -2,  2, -3},
    {-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2,
      -1, -3, -1,  3},
    {-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2,
      -1, -2, -1,  1},
    {-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0,
      -1, -3, -2, -2},
    {-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1,
      -1, -1, -1,  1},
    {-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2,
      -2,  1,  3, -1},
    {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1,
      -1, -4, -3, -2},
    { 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,
       1, -3, -2, -2},
    { 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,
       5, -2, -2,  0},
    {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3,
      -2, 11,  2, -3},
    {-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2,
      -2,  2,  7, -1},
    { 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,
       0, -3, -1,  4},
};

} // namespace

const ScoreMatrix &
ScoreMatrix::blosum62()
{
    static const ScoreMatrix matrix = [] {
        ScoreMatrix m;
        m.size_ = 20;
        // Map canonical order into the afsb alphabetical encoding.
        int remap[20];
        for (int i = 0; i < 20; ++i) {
            const int code = bio::encodeResidue(
                bio::MoleculeType::Protein, kCanonicalOrder[i]);
            panicIf(code < 0, "blosum62: bad canonical symbol");
            remap[i] = code;
        }
        for (int i = 0; i < 20; ++i)
            for (int j = 0; j < 20; ++j)
                m.scores_[remap[i]][remap[j]] = kBlosum62[i][j];
        return m;
    }();
    return matrix;
}

ScoreMatrix
ScoreMatrix::nucleotide(int match, int mismatch)
{
    ScoreMatrix m;
    m.size_ = 4;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            m.scores_[i][j] = static_cast<int8_t>(
                i == j ? match : -mismatch);
    return m;
}

int
ScoreMatrix::maxScore() const
{
    int best = -128;
    for (size_t i = 0; i < size_; ++i)
        for (size_t j = 0; j < size_; ++j)
            best = std::max(best, static_cast<int>(scores_[i][j]));
    return best;
}

} // namespace afsb::msa
