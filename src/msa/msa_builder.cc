#include "msa/msa_builder.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::msa {

double
MsaResult::meanIdentity() const
{
    if (rows.size() < 2 || queryLength == 0)
        return 0.0;
    const std::string &query = rows.front();
    double sum = 0.0;
    for (size_t r = 1; r < rows.size(); ++r) {
        size_t same = 0, considered = 0;
        for (size_t i = 0; i < queryLength; ++i) {
            if (rows[r][i] == kGapChar)
                continue;
            ++considered;
            same += rows[r][i] == query[i];
        }
        sum += considered
                   ? static_cast<double>(same) /
                         static_cast<double>(considered)
                   : 0.0;
    }
    return sum / static_cast<double>(rows.size() - 1);
}

MsaResult
buildMsa(const bio::Sequence &query, const ProfileHmm &prof,
         const SequenceDatabase &db, const SearchResult &result,
         const MsaBuildConfig &cfg)
{
    MsaResult out;
    out.queryLength = query.length();
    out.rows.push_back(query.toString());
    out.rowIds.push_back(query.id());

    const size_t take = std::min(cfg.maxRows, result.hits.size());
    for (size_t h = 0; h < take; ++h) {
        const Hit &hit = result.hits[h];
        const bio::Sequence &target =
            db.sequences()[hit.targetIndex];
        const auto aln = alignToProfile(prof, target, cfg.kernel);
        out.alignCells += aln.cells;
        if (aln.score <= 0)
            continue;

        std::string row(query.length(), kGapChar);
        size_t placed = 0;
        for (size_t k = 0; k < aln.profileToTarget.size(); ++k) {
            const int32_t t = aln.profileToTarget[k];
            if (t < 0)
                continue;
            row[k] = bio::decodeResidue(
                target.type(), target[static_cast<size_t>(t)]);
            ++placed;
        }
        const double gapFrac =
            1.0 - static_cast<double>(placed) /
                      static_cast<double>(query.length());
        if (gapFrac > cfg.maxGapFraction)
            continue;
        out.rows.push_back(std::move(row));
        out.rowIds.push_back(target.id());
    }
    return out;
}

} // namespace afsb::msa
