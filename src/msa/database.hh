/**
 * @file
 * Sequence databases for the MSA search engine.
 *
 * A database is materialized as FASTA inside the virtual file store
 * and parsed through the buffered-reader path, so every search
 * exercises the same I/O plumbing the paper profiles (page cache,
 * NVMe model, addbuf/seebuf/copy_to_iter). Alongside the scaled-down
 * materialized bytes, each database carries its paper-scale size so
 * the capacity models see realistic footprints (e.g. the 89 GiB RNA
 * collection).
 */

#ifndef AFSB_MSA_DATABASE_HH
#define AFSB_MSA_DATABASE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bio/sequence.hh"
#include "io/blockfile.hh"
#include "io/buffered_reader.hh"
#include "io/pagecache.hh"
#include "io/vfs.hh"

namespace afsb::msa {

/** Static description of one reference database. */
struct DatabaseInfo
{
    std::string name;              ///< e.g. "uniref_small"
    bio::MoleculeType type = bio::MoleculeType::Protein;
    uint64_t paperScaleBytes = 0;  ///< real-world collection size
    uint64_t scaledBytes = 0;      ///< materialized FASTA size
    size_t sequenceCount = 0;

    /** Ratio paper-scale / scaled, used for work extrapolation. */
    double
    scaleFactor() const
    {
        return scaledBytes
                   ? static_cast<double>(paperScaleBytes) /
                         static_cast<double>(scaledBytes)
                   : 1.0;
    }
};

/** A parsed, in-memory database plus its provenance. */
class SequenceDatabase
{
  public:
    /**
     * Parse @p file_name from the store through the buffered-reader
     * path at simulated time @p now.
     * @param io_latency_out Accumulated simulated I/O seconds.
     */
    static SequenceDatabase load(const io::Vfs &vfs,
                                 io::PageCache &cache,
                                 const std::string &file_name,
                                 bio::MoleculeType type, double now,
                                 double *io_latency_out = nullptr,
                                 MemTraceSink *sink = nullptr);

    const DatabaseInfo &info() const { return info_; }
    const std::vector<bio::Sequence> &sequences() const
    {
        return seqs_;
    }
    size_t size() const { return seqs_.size(); }

    /** Total residues across all targets. */
    uint64_t totalResidues() const;

    /** Set the paper-scale size this database stands in for. */
    void setPaperScaleBytes(uint64_t bytes)
    {
        info_.paperScaleBytes = bytes;
    }

    /** Approximate FASTA byte range of target @p i in the file. */
    struct ByteExtent
    {
        uint64_t offset = 0;
        uint64_t length = 0;
    };

    /**
     * Byte extent of target @p i, used by the scan loop to stream
     * the file through the page-cache model while computing.
     */
    ByteExtent byteExtent(size_t i) const;

    /** Backing file id in the store. */
    io::FileId fileId() const { return fileId_; }

    /**
     * File store the database was parsed from (valid while the
     * store outlives this object). The staged scan's prefetcher
     * re-streams the FASTA bytes through a BufferedReader, which
     * needs the Vfs alongside the page cache.
     */
    const io::Vfs *vfs() const { return vfs_; }

  private:
    DatabaseInfo info_;
    std::vector<bio::Sequence> seqs_;
    std::vector<uint64_t> offsets_;  ///< cumulative FASTA offsets
    io::FileId fileId_ = 0;
    const io::Vfs *vfs_ = nullptr;
};

/**
 * Compress a materialized FASTA file into an AFBC container in the
 * same store (see io/blockfile.hh). @return Compression accounting.
 */
io::BlockFileStats compressDatabase(io::Vfs &vfs,
                                    const std::string &fasta_name,
                                    const std::string &afbc_name);

/**
 * A database scanned out of a block-compressed AFBC container
 * without materializing its sequences in RAM.
 *
 * open() makes one indexing pass over the logical FASTA stream
 * (through the bounded decode cache) recording each target's id,
 * length, and logical byte extent — but not its residues. Targets
 * are re-decoded on demand by materialize(); a sequential scan
 * therefore keeps only the decode budget plus one reader window
 * resident, however large the collection. That is how the paper's
 * 89 GiB RNA footprint fits a few-MiB RAM budget here.
 */
class StreamingSequenceDatabase
{
  public:
    /** Default decoded-block budget (8 MiB). */
    static constexpr uint64_t kDefaultDecodeBudget = 8ull << 20;

    /**
     * Open @p afbc_name (an AFBC container of FASTA bytes) and
     * build the target index at simulated time @p now.
     */
    static StreamingSequenceDatabase
    open(const io::Vfs &vfs, io::PageCache &cache,
         const std::string &afbc_name, bio::MoleculeType type,
         double now,
         uint64_t decode_budget = kDefaultDecodeBudget);

    const DatabaseInfo &info() const { return info_; }
    size_t size() const { return index_.size(); }
    uint64_t totalResidues() const { return totalResidues_; }

    /** Set the paper-scale size this database stands in for. */
    void
    setPaperScaleBytes(uint64_t bytes)
    {
        info_.paperScaleBytes = bytes;
    }

    /** Target id without decoding its residues. */
    const std::string &id(size_t i) const { return index_.at(i).id; }

    /** Residue count without decoding. */
    size_t
    length(size_t i) const
    {
        return index_.at(i).length;
    }

    /** Logical (uncompressed FASTA) byte extent of target @p i. */
    SequenceDatabase::ByteExtent byteExtent(size_t i) const;

    /**
     * Decode target @p i into a full Sequence at simulated time
     * @p now. Identical codes to what SequenceDatabase::load would
     * have parsed from the same FASTA bytes.
     */
    bio::Sequence materialize(size_t i, double now) const;

    /** Decode-cache / residency accounting. */
    const io::BlockFileReader::Stats &
    blockStats() const
    {
        return reader_->stats();
    }

    /** Compressed-side reader counters (disk bytes, I/O latency). */
    const io::ReaderStats &
    readerStats() const
    {
        return reader_->readerStats();
    }

    /** Peak resident bytes: decode LRU + reader window + index. */
    uint64_t peakResidentBytes() const;

  private:
    struct TargetIndex
    {
        std::string id;
        uint64_t offset = 0;  ///< logical extent begin
        uint64_t extent = 0;  ///< logical extent length
        uint32_t length = 0;  ///< residue count
    };

    DatabaseInfo info_;
    std::vector<TargetIndex> index_;
    uint64_t totalResidues_ = 0;
    uint64_t indexBytes_ = 0;

    /** unique_ptr so the database stays movable (the reader holds
     *  an internal window and LRU). Mutable: decoding through the
     *  LRU is logically const access to immutable file bytes. */
    mutable std::unique_ptr<io::BlockFileReader> reader_;
};

} // namespace afsb::msa

#endif // AFSB_MSA_DATABASE_HH
