#include "msa/profile_hmm.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace afsb::msa {

ProfileHmm
ProfileHmm::fromSequence(const bio::Sequence &query,
                         const ScoreMatrix &matrix, GapModel gaps)
{
    if (query.empty())
        fatal("ProfileHmm: empty query");
    ProfileHmm p;
    p.length_ = query.length();
    p.alphabet_ = matrix.size();
    p.gaps_ = gaps;
    p.emissions_.resize(p.length_ * p.alphabet_);
    for (size_t pos = 0; pos < p.length_; ++pos) {
        const uint8_t q = query[pos];
        for (size_t r = 0; r < p.alphabet_; ++r) {
            const int s = matrix.score(q, static_cast<uint8_t>(r));
            p.emissions_[pos * p.alphabet_ + r] =
                static_cast<int16_t>(s);
            p.maxEmission_ = std::max(p.maxEmission_, s);
        }
    }
    return p;
}

ProfileHmm
ProfileHmm::fromAlignment(
    const std::vector<const bio::Sequence *> &aligned,
    const ScoreMatrix &matrix, GapModel gaps)
{
    if (aligned.empty())
        fatal("ProfileHmm: empty alignment");
    const size_t len = aligned.front()->length();
    for (const auto *s : aligned)
        if (s->length() != len)
            fatal("ProfileHmm: alignment rows differ in length");

    ProfileHmm p;
    p.length_ = len;
    p.alphabet_ = matrix.size();
    p.gaps_ = gaps;
    p.emissions_.resize(p.length_ * p.alphabet_);

    // Column residue counts with +1 pseudocounts become half-bit
    // log-odds emissions against the background model — the same
    // scale BLOSUM62 is expressed in, so scan thresholds carry over
    // across jackhmmer rounds.
    const auto type = aligned.front()->type();
    std::vector<double> counts(p.alphabet_);
    for (size_t pos = 0; pos < len; ++pos) {
        std::fill(counts.begin(), counts.end(), 1.0);
        for (const auto *s : aligned)
            counts[(*s)[pos]] += 1.0;
        double total = 0.0;
        for (double c : counts)
            total += c;
        for (size_t r = 0; r < p.alphabet_; ++r) {
            const double freq = counts[r] / total;
            const double bg = bio::backgroundFrequency(
                type, static_cast<uint8_t>(r));
            const int s = static_cast<int>(
                std::lround(2.0 * std::log2(freq / bg)));
            p.emissions_[pos * p.alphabet_ + r] =
                static_cast<int16_t>(s);
            p.maxEmission_ = std::max(p.maxEmission_, s);
        }
    }
    return p;
}

ProfileHmm
ProfileHmm::fromEmissions(std::vector<std::vector<int16_t>> rows,
                          GapModel gaps)
{
    if (rows.empty())
        fatal("ProfileHmm: no emission rows");
    const size_t alphabet = rows.front().size();
    if (alphabet != 20 && alphabet != 4)
        fatal("ProfileHmm: alphabet must be 20 or 4");

    ProfileHmm p;
    p.length_ = rows.size();
    p.alphabet_ = alphabet;
    p.gaps_ = gaps;
    p.emissions_.reserve(p.length_ * alphabet);
    for (const auto &row : rows) {
        if (row.size() != alphabet)
            fatal("ProfileHmm: ragged emission rows");
        for (int16_t s : row) {
            p.emissions_.push_back(s);
            p.maxEmission_ =
                std::max(p.maxEmission_, static_cast<int>(s));
        }
    }
    return p;
}

} // namespace afsb::msa
