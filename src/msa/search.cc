#include "msa/search.hh"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "msa/staged_scan.hh"
#include "util/grain.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::msa {

void
ScanStageStats::merge(const ScanStageStats &other)
{
    overlappedScans += other.overlappedScans;
    chunks += other.chunks;
    survivorsQueued += other.survivorsQueued;
    survivorsInline += other.survivorsInline;
    chunkQueuePeak = std::max(chunkQueuePeak, other.chunkQueuePeak);
    survivorQueuePeak =
        std::max(survivorQueuePeak, other.survivorQueuePeak);
    producerWaits += other.producerWaits;
    chunkWaits += other.chunkWaits;
    survivorWaits += other.survivorWaits;
    ioSeconds += other.ioSeconds;
    msvSeconds += other.msvSeconds;
    bandSeconds += other.bandSeconds;
    wallSeconds += other.wallSeconds;
    workersUsed = std::max(workersUsed, other.workersUsed);
    reader.merge(other.reader);
}

void
SearchStats::merge(const SearchStats &other)
{
    targetsScanned += other.targetsScanned;
    residuesScanned += other.residuesScanned;
    msvPassed += other.msvPassed;
    viterbiPassed += other.viterbiPassed;
    domainsScored += other.domainsScored;
    hits += other.hits;
    cellsMsv += other.cellsMsv;
    cellsViterbi += other.cellsViterbi;
    cellsForward += other.cellsForward;
    bytesStreamed += other.bytesStreamed;
    bytesFromDisk += other.bytesFromDisk;
    ioLatency += other.ioLatency;
    stages.merge(other.stages);
}

size_t
scanWorkers(const SearchConfig &cfg, const ThreadPool *pool,
            const char *who)
{
    if (!pool)
        return 1;
    if (cfg.threads > pool->size())
        warn(strformat("%s: threads=%zu exceeds pool size %zu; "
                       "clamping to %zu",
                       who, cfg.threads, pool->size(),
                       pool->size()));
    return std::max<size_t>(1,
                            std::min(cfg.threads, pool->size()));
}

size_t
scanGrain(size_t n, size_t workers)
{
    return grain::forScan(n, workers);
}

int
msvThreshold(const ProfileHmm &prof, size_t target_len,
             const SearchConfig &cfg)
{
    // Karlin-Altschul expectation: the best random ungapped segment
    // grows as ln(M*L)/lambda. BLOSUM62 lambda ~= 0.32 in raw-score
    // units; the nucleotide matrix is steeper.
    const double lambda = prof.alphabet() == 20 ? 0.32 : 0.62;
    const double ml = static_cast<double>(prof.length()) *
                      static_cast<double>(std::max<size_t>(
                          1, target_len));
    return static_cast<int>(
        std::lround(std::log(ml) / lambda + cfg.msvSlack));
}

namespace {

/**
 * Per-epoch virtual stream window base: within a pass the scan
 * streams sequentially (prefetchable, compulsory misses once), and
 * every new pass over the collection is fresh — exactly how
 * re-reading a paper-scale database behaves.
 */
uint64_t
streamEpochBase(const SequenceDatabase &db, const SearchConfig &cfg)
{
    constexpr uint64_t kStreamBase = 0x6000'0000'0000ull;
    return kStreamBase +
           static_cast<uint64_t>(cfg.streamEpoch) *
               (db.info().scaledBytes + (1ull << 20));
}

/**
 * The filter cascade proper for one parsed target: MSV prefilter,
 * banded Viterbi/Forward on survivors, domain accounting. Shared by
 * the static range scan, the delta re-search, and the streaming
 * scan so every path applies bit-identical thresholds.
 */
void
pipelineTarget(const ProfileHmm &prof, const bio::Sequence &target,
               const KernelConfig &kernel, const SearchConfig &cfg,
               size_t i, MemTraceSink *sink, SearchResult &out)
{
    ++out.stats.targetsScanned;
    out.stats.residuesScanned += target.length();

    const auto msv = msvFilter(prof, target, kernel, sink);
    out.stats.cellsMsv += msv.cells;
    const int threshold = msvThreshold(prof, target.length(), cfg);
    if (msv.score < threshold)
        return;
    ++out.stats.msvPassed;
    out.msvSurvivors.push_back(static_cast<uint32_t>(i));

    // MSV survivors run both banded kernels (HMMER rescored
    // every survivor with Forward before domain definition).
    const auto vit = calcBand9(prof, target, kernel, sink);
    out.stats.cellsViterbi += vit.cells;
    const auto fwd = calcBand10(prof, target, kernel, sink);
    out.stats.cellsForward += fwd.cells;
    if (vit.score < threshold + cfg.viterbiMargin)
        return;
    ++out.stats.viterbiPassed;

    // Every surviving candidate goes through domain definition
    // and null2 rescoring — full-width DP over the envelope.
    // This is where low-complexity queries burn their time: the
    // "ambiguous or partial alignments that still must be
    // scored and filtered" (paper Observation 2).
    ++out.stats.domainsScored;
    if (sink)
        sink->instructions(
            wellknown::calcBand10(),
            16ull * target.length() * prof.length());

    if (fwd.logOdds < cfg.forwardThreshold)
        return;

    ++out.stats.hits;
    out.hits.push_back({i, vit.score, fwd.logOdds});
}

/**
 * Run one target through the full filter cascade: page-cache
 * streaming, MSV prefilter, banded Viterbi/Forward on survivors.
 * Shared by the static range scan and the delta re-search so both
 * apply bit-identical thresholds and accounting.
 */
void
scanTarget(const ProfileHmm &prof, const SequenceDatabase &db,
           io::PageCache &cache, std::mutex &cache_mutex,
           const SearchConfig &cfg, uint64_t epoch_base, double now,
           size_t i, MemTraceSink *sink, SearchResult &out)
{
    const bio::Sequence &target = db.sequences()[i];
    const auto extent = db.byteExtent(i);
    KernelConfig kernel = cfg.kernel;
    kernel.targetBase = epoch_base + extent.offset;

    // Stream the target's bytes through the page-cache model;
    // the cache is shared state, so guard it. (Real HMMER also
    // funnels reads through one esl_buffer.)
    {
        std::lock_guard lock(cache_mutex);
        const auto io =
            cache.read(db.fileId(), extent.offset, extent.length,
                       now + out.stats.ioLatency);
        out.stats.bytesStreamed += extent.length;
        out.stats.bytesFromDisk += io.bytesFromDisk;
        out.stats.ioLatency += io.latency;
    }

    // Reader-thread work: the master thread parses and buffers
    // this target before any worker can align it. Instruction
    // densities per input byte are HMMER-calibrated (Table IV
    // puts addbuf+seebuf at ~23% of MSA cycles); copy_to_iter
    // first-touches the target's stream lines, which is where
    // its cache misses come from.
    if (sink) {
        const uint64_t bytes = extent.length;
        sink->instructions(wellknown::addbuf(), bytes * 24);
        sink->instructions(wellknown::seebuf(), bytes * 9);
        sink->instructions(wellknown::copyToIter(), bytes * 8);
        sink->branches(wellknown::addbuf(), bytes / 4, 0);
        // Per-target header allocation from the recycled
        // malloc pool (hot after warm-up).
        sink->access({0x7f70'0000'0000ull +
                          kernel.targetBase % (4ull << 20),
                      64, true, wellknown::addbuf()});
        const uint64_t step =
            64ull * cfg.kernel.traceStride;
        for (uint64_t off = 0; off < bytes; off += step) {
            sink->access({kernel.targetBase + off, 64, true,
                          wellknown::copyToIter()});
            // Cyclic parse buffer touches (addbuf/seebuf).
            constexpr uint64_t kParseBuf = 0x7f40'0000'0000ull;
            sink->access({kParseBuf + off % (256 * 1024), 64,
                          false, wellknown::addbuf()});
            if (off % (2 * step) == 0)
                sink->access({kParseBuf + off % (256 * 1024),
                              32, false, wellknown::seebuf()});
        }
    }

    pipelineTarget(prof, target, kernel, cfg, i, sink, out);
}

/** Per-worker scan over an index range. */
void
scanRange(const ProfileHmm &prof, const SequenceDatabase &db,
          io::PageCache &cache, std::mutex &cache_mutex,
          const SearchConfig &cfg, double now, size_t begin,
          size_t end, MemTraceSink *sink, SearchResult &out)
{
    const uint64_t epochBase = streamEpochBase(db, cfg);
    for (size_t i = begin; i < end; ++i)
        scanTarget(prof, db, cache, cache_mutex, cfg, epochBase, now,
                   i, sink, out);
}

/**
 * Staged overlapped scan (see staged_scan.hh): one producer streams
 * target chunks through a BufferedReader into rotating slabs while
 * the remaining workers prefilter chunks and dynamically drain
 * prefilter survivors. Kernel calls and thresholds are identical to
 * scanRange's, so the hit set is bit-identical to the static path.
 */
void
scanOverlapped(const ProfileHmm &prof, const SequenceDatabase &db,
               io::PageCache &cache, ThreadPool &pool,
               const SearchConfig &cfg, double now, size_t workers,
               SearchResult &result)
{
    const auto &targets = db.sequences();
    const size_t n = db.size();

    staged::ScanShape shape;
    shape.workers = workers;
    shape.targets = n;
    shape.grain = scanGrain(n, workers);
    shape.prefetchChunks = cfg.prefetchChunks;
    shape.survivorDepth = cfg.survivorQueueDepth;
    shape.priority = cfg.priorityTargets;

    // Same per-epoch virtual stream window as scanRange (the
    // kernels only consult it for trace addresses, but keeping the
    // configs identical makes path equivalence unconditional).
    const uint64_t epochBase = streamEpochBase(db, cfg);

    // Stage 1 state: one sequential reader plus rotating staging
    // slabs sized for the largest chunk. The slab copy is the
    // copy_to_iter byte movement the parse stage performs in HMMER;
    // the chunk-queue bound keeps at most `prefetchChunks` slabs in
    // flight, which is what makes this double buffering rather than
    // unbounded readahead.
    io::BufferedReader reader(db.vfs(), &cache, db.fileId());
    const size_t grain = shape.grain;
    uint64_t maxChunkBytes = 1;
    for (size_t b = 0; b < n; b += grain) {
        const size_t e = std::min(n, b + grain);
        const auto first = db.byteExtent(b);
        const auto last = db.byteExtent(e - 1);
        maxChunkBytes = std::max(
            maxChunkBytes, last.offset + last.length - first.offset);
    }
    std::vector<std::vector<char>> slabs(
        std::max<size_t>(2, cfg.prefetchChunks));
    for (auto &s : slabs)
        s.resize(maxChunkBytes);

    SearchStats ioStats;
    auto stream = [&](size_t chunk, size_t begin, size_t end) {
        const auto first = db.byteExtent(begin);
        const auto last = db.byteExtent(end - 1);
        const uint64_t len =
            last.offset + last.length - first.offset;
        reader.seek(first.offset);
        auto &slab = slabs[chunk % slabs.size()];
        reader.copyToIter(slab.data(), static_cast<size_t>(len),
                          now + reader.stats().ioLatency);
        ioStats.bytesStreamed += len;
    };

    std::vector<SearchResult> partial(workers);
    auto prefilter = [&](size_t w, size_t i) {
        SearchResult &mine = partial[w];
        const bio::Sequence &target = targets[i];
        KernelConfig kernel = cfg.kernel;
        kernel.targetBase = epochBase + db.byteExtent(i).offset;

        ++mine.stats.targetsScanned;
        mine.stats.residuesScanned += target.length();
        const auto msv = msvFilter(prof, target, kernel, nullptr);
        mine.stats.cellsMsv += msv.cells;
        if (msv.score < msvThreshold(prof, target.length(), cfg))
            return false;
        ++mine.stats.msvPassed;
        mine.msvSurvivors.push_back(static_cast<uint32_t>(i));
        return true;
    };

    auto rescore = [&](size_t w, size_t i) {
        SearchResult &mine = partial[w];
        const bio::Sequence &target = targets[i];
        KernelConfig kernel = cfg.kernel;
        kernel.targetBase = epochBase + db.byteExtent(i).offset;
        const int threshold =
            msvThreshold(prof, target.length(), cfg);

        const auto vit = calcBand9(prof, target, kernel, nullptr);
        mine.stats.cellsViterbi += vit.cells;
        const auto fwd = calcBand10(prof, target, kernel, nullptr);
        mine.stats.cellsForward += fwd.cells;
        if (vit.score < threshold + cfg.viterbiMargin)
            return;
        ++mine.stats.viterbiPassed;
        ++mine.stats.domainsScored;
        if (fwd.logOdds < cfg.forwardThreshold)
            return;
        ++mine.stats.hits;
        mine.hits.push_back({i, vit.score, fwd.logOdds});
    };

    if (cfg.taskScan)
        staged::runStagedScanTasks(pool, shape, stream, prefilter,
                                   rescore, result.stats.stages);
    else
        staged::runStagedScan(pool, shape, stream, prefilter,
                              rescore, result.stats.stages);

    // Counter merges are commutative, and hit/survivor ordering is
    // canonicalized by the caller, so worker-order concatenation is
    // deterministic at any thread count.
    for (auto &p : partial) {
        result.stats.merge(p.stats);
        result.hits.insert(result.hits.end(), p.hits.begin(),
                           p.hits.end());
        result.msvSurvivors.insert(result.msvSurvivors.end(),
                                   p.msvSurvivors.begin(),
                                   p.msvSurvivors.end());
    }
    result.stats.bytesStreamed += ioStats.bytesStreamed;
    result.stats.bytesFromDisk += reader.stats().bytesFromDisk;
    result.stats.ioLatency += reader.stats().ioLatency;
    result.stats.stages.reader.merge(reader.stats());
}

} // namespace

SearchResult
searchDatabase(const ProfileHmm &prof, const SequenceDatabase &db,
               io::PageCache &cache, ThreadPool *pool,
               const SearchConfig &cfg, double now,
               const std::vector<MemTraceSink *> &sinks)
{
    const size_t n = db.size();
    const size_t workers = scanWorkers(cfg, pool, "searchDatabase");
    if (!sinks.empty() && sinks.size() < workers)
        fatal("searchDatabase: fewer sinks than workers");

    SearchResult result;
    // Shard subrange [b, e): the default config covers the whole
    // database and changes nothing; a shard's slice disables the
    // overlapped path (its chunk schedule is a whole-file
    // contract) and partitions only its own targets.
    const size_t b = std::min(cfg.targetBegin, n);
    const size_t e = std::min(cfg.targetEnd, n);
    if (b >= e)
        return result;
    const size_t count = e - b;
    const bool fullRange = b == 0 && e == n;

    std::mutex cacheMutex;
    if (workers <= 1 || !pool) {
        scanRange(prof, db, cache, cacheMutex, cfg, now, b, e,
                  sinks.empty() ? nullptr : sinks[0], result);
    } else if (fullRange && sinks.empty() && cfg.overlap &&
               db.vfs() && !ThreadPool::inWorker()) {
        // Untraced overlapped scan: staged producer/consumer
        // pipeline with dynamic survivor scheduling. Falls through
        // to the static partition when the scan is nested inside a
        // pool worker (bounded queues + nested dispatch would
        // deadlock) or the database carries no file store.
        scanOverlapped(prof, db, cache, *pool, cfg, now, workers,
                       result);
    } else if (sinks.empty()) {
        // Untraced wall-clock scan: targets cost wildly different
        // amounts (MSV survivors run two more kernels), so carve the
        // range into blocks much finer than the worker count and let
        // the pool balance them. Partials are merged in block order,
        // so results are deterministic for a given worker count.
        const size_t grain = scanGrain(count, workers);
        const size_t blocks = (count + grain - 1) / grain;
        std::vector<SearchResult> partial(blocks);
        pool->parallelFor(count, grain,
                          [&](size_t begin, size_t end) {
                              scanRange(prof, db, cache, cacheMutex,
                                        cfg, now, b + begin, b + end,
                                        nullptr,
                                        partial[begin / grain]);
                          });
        for (auto &p : partial) {
            result.stats.merge(p.stats);
            result.hits.insert(result.hits.end(), p.hits.begin(),
                               p.hits.end());
            result.msvSurvivors.insert(result.msvSurvivors.end(),
                                       p.msvSurvivors.begin(),
                                       p.msvSurvivors.end());
        }
    } else {
        // Traced scan: the worker -> sink -> target partition is
        // part of the simulated trace contract; keep the original
        // equal-count split so the streams stay byte-identical.
        std::vector<SearchResult> partial(workers);
        const size_t chunk = (count + workers - 1) / workers;
        pool->parallelBlocks(
            workers, [&](size_t, size_t wb, size_t we) {
                for (size_t w = wb; w < we; ++w) {
                    const size_t begin = b + w * chunk;
                    const size_t end = std::min(e, begin + chunk);
                    if (begin >= end)
                        continue;
                    scanRange(prof, db, cache, cacheMutex, cfg, now,
                              begin, end, sinks[w], partial[w]);
                }
            });
        for (auto &p : partial) {
            result.stats.merge(p.stats);
            result.hits.insert(result.hits.end(), p.hits.begin(),
                               p.hits.end());
            result.msvSurvivors.insert(result.msvSurvivors.end(),
                                       p.msvSurvivors.begin(),
                                       p.msvSurvivors.end());
        }
    }

    // Canonical ordering regardless of which path (and which worker
    // interleaving) produced the results: hits by descending Forward
    // score with the target index as a total-order tie break,
    // survivors ascending.
    std::sort(result.hits.begin(), result.hits.end(),
              [](const Hit &a, const Hit &b) {
                  if (a.forwardLogOdds != b.forwardLogOdds)
                      return a.forwardLogOdds > b.forwardLogOdds;
                  return a.targetIndex < b.targetIndex;
              });
    std::sort(result.msvSurvivors.begin(),
              result.msvSurvivors.end());
    return result;
}

DeltaSearchResult
deltaSearch(const ProfileHmm &prof, const SequenceDatabase &db,
            io::PageCache &cache, const SearchConfig &cfg,
            const std::vector<uint32_t> &survivors, double now,
            double min_retention)
{
    DeltaSearchResult delta;
    const size_t n = db.size();
    const uint64_t epochBase = streamEpochBase(db, cfg);
    std::mutex cacheMutex;

    // The survivor set is a small fraction of the database (the MSV
    // pass rate is ~20-30%), so the delta runs single-threaded; its
    // whole point is doing orders of magnitude less work than the
    // full scan, not parallelizing what's left.
    for (const uint32_t idx : survivors) {
        if (idx >= n)
            continue; // stale survivor beyond this database's range
        ++delta.survivorsRescored;
        scanTarget(prof, db, cache, cacheMutex, cfg, epochBase, now,
                   idx, nullptr, delta.result);
    }
    delta.survivorsRetained = delta.result.stats.msvPassed;

    // Acceptance: if the mutated query drops too many of the cached
    // survivors at the prefilter, the cached set likely also misses
    // targets a full scan would now admit — reject and let the
    // caller fall back to the full sharded scan.
    delta.accepted = delta.survivorsRescored > 0 &&
                     delta.retention() >= min_retention;

    std::sort(delta.result.hits.begin(), delta.result.hits.end(),
              [](const Hit &a, const Hit &b) {
                  if (a.forwardLogOdds != b.forwardLogOdds)
                      return a.forwardLogOdds > b.forwardLogOdds;
                  return a.targetIndex < b.targetIndex;
              });
    std::sort(delta.result.msvSurvivors.begin(),
              delta.result.msvSurvivors.end());
    return delta;
}

SearchResult
searchDatabaseStreaming(const ProfileHmm &prof,
                        const StreamingSequenceDatabase &db,
                        const SearchConfig &cfg, double now)
{
    SearchResult result;
    const size_t n = db.size();
    const size_t b = std::min(cfg.targetBegin, n);
    const size_t e = std::min(cfg.targetEnd, n);

    // Same per-epoch virtual window as the in-RAM scan so the
    // kernels' trace-address config matches (no sink is ever
    // attached here, but identical configs keep the equivalence
    // unconditional).
    constexpr uint64_t kStreamBase = 0x6000'0000'0000ull;
    const uint64_t epochBase =
        kStreamBase + static_cast<uint64_t>(cfg.streamEpoch) *
                          (db.info().scaledBytes + (1ull << 20));

    const uint64_t disk0 = db.readerStats().bytesFromDisk;
    const double lat0 = db.readerStats().ioLatency;
    for (size_t i = b; i < e; ++i) {
        // Decode through the bounded block LRU; sequential scans
        // keep at most the decode budget resident, so the loop
        // never materializes the collection.
        const bio::Sequence target = db.materialize(i, now);
        const auto extent = db.byteExtent(i);
        KernelConfig kernel = cfg.kernel;
        kernel.targetBase = epochBase + extent.offset;
        result.stats.bytesStreamed += extent.length;
        pipelineTarget(prof, target, kernel, cfg, i, nullptr,
                       result);
    }
    result.stats.bytesFromDisk +=
        db.readerStats().bytesFromDisk - disk0;
    result.stats.ioLatency += db.readerStats().ioLatency - lat0;

    std::sort(result.hits.begin(), result.hits.end(),
              [](const Hit &a, const Hit &b) {
                  if (a.forwardLogOdds != b.forwardLogOdds)
                      return a.forwardLogOdds > b.forwardLogOdds;
                  return a.targetIndex < b.targetIndex;
              });
    std::sort(result.msvSurvivors.begin(),
              result.msvSurvivors.end());
    return result;
}

} // namespace afsb::msa
