#include "msa/sketch.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::msa {

namespace {

/** splitmix64 finalizer: the repo's standard cheap bit mixer. */
uint64_t
mix64(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Per-slot hash seed: one virtual hash function per signature
 *  position, derived deterministically from the slot index. */
uint64_t
slotSeed(size_t slot)
{
    return mix64(0x9e3779b97f4a7c15ull * (slot + 1));
}

/** Fold one k-mer hash into every signature slot's running min. */
void
foldKmer(uint64_t kmer_hash, std::vector<uint64_t> &minhash)
{
    for (size_t s = 0; s < minhash.size(); ++s) {
        const uint64_t h = mix64(kmer_hash ^ slotSeed(s));
        minhash[s] = std::min(minhash[s], h);
    }
}

} // namespace

std::vector<uint64_t>
QuerySketch::bandHashes(const SketchConfig &cfg) const
{
    std::vector<uint64_t> bands;
    if (minhash.size() != cfg.hashes || cfg.bands == 0)
        return bands;
    const size_t rows = cfg.rowsPerBand();
    panicIf(rows == 0 || cfg.bands * rows != cfg.hashes,
            "QuerySketch: bands must divide hashes");
    bands.reserve(cfg.bands);
    for (size_t b = 0; b < cfg.bands; ++b) {
        // FNV-1a over the band's rows plus a band salt, so the same
        // row values in different bands hash apart.
        uint64_t h = 0xcbf29ce484222325ull ^ mix64(b + 0x5151ull);
        for (size_t r = 0; r < rows; ++r) {
            h ^= minhash[b * rows + r];
            h *= 0x100000001b3ull;
        }
        bands.push_back(mix64(h));
    }
    return bands;
}

QuerySketch
sketchCodes(const std::vector<uint8_t> &codes, uint64_t salt,
            const SketchConfig &cfg)
{
    QuerySketch sketch;
    if (cfg.hashes == 0)
        return sketch;
    sketch.minhash.assign(cfg.hashes, UINT64_MAX);

    const size_t k = std::max<size_t>(1, cfg.k);
    if (codes.size() < k) {
        // Whole-chain token: short chains still sketch, and two
        // identical short chains still match exactly.
        uint64_t h = salt ^ 0x7307ull;
        for (const uint8_t c : codes)
            h = mix64(h ^ c);
        foldKmer(h, sketch.minhash);
        return sketch;
    }

    // Rolling FNV-style window: hash the k codes at each offset.
    // Residue alphabets are tiny (<= 20 symbols) so k-mer identity,
    // not hash dispersion per symbol, is what matters.
    for (size_t i = 0; i + k <= codes.size(); ++i) {
        uint64_t h = salt ^ 0xcbf29ce484222325ull;
        for (size_t j = 0; j < k; ++j) {
            h ^= codes[i + j];
            h *= 0x100000001b3ull;
        }
        foldKmer(mix64(h), sketch.minhash);
    }
    return sketch;
}

QuerySketch
sketchComplex(const bio::Complex &complex, uint32_t variant,
              const SketchConfig &cfg)
{
    QuerySketch sketch;
    if (cfg.hashes == 0)
        return sketch;
    sketch.minhash.assign(cfg.hashes, UINT64_MAX);

    const uint64_t variantSalt =
        mix64(0xaf3'0000ull + static_cast<uint64_t>(variant));
    bool any = false;
    for (const bio::Sequence *chain : complex.msaChains()) {
        // Salt per modality: a protein k-mer and an RNA k-mer with
        // equal codes must not collide.
        const uint64_t salt =
            variantSalt ^
            mix64(static_cast<uint64_t>(chain->type()) + 0xbeefull);
        const QuerySketch chainSketch =
            sketchCodes(chain->codes(), salt, cfg);
        for (size_t s = 0; s < cfg.hashes; ++s)
            sketch.minhash[s] = std::min(sketch.minhash[s],
                                         chainSketch.minhash[s]);
        any = true;
    }
    if (!any)
        sketch.minhash.clear();
    return sketch;
}

double
jaccardEstimate(const QuerySketch &a, const QuerySketch &b)
{
    if (a.empty() || a.minhash.size() != b.minhash.size())
        return 0.0;
    size_t agree = 0;
    for (size_t s = 0; s < a.minhash.size(); ++s)
        agree += a.minhash[s] == b.minhash[s];
    return static_cast<double>(agree) /
           static_cast<double>(a.minhash.size());
}

} // namespace afsb::msa
