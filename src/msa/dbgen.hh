/**
 * @file
 * Synthetic reference-database generation.
 *
 * Substitutes for UniRef/Rfam (see DESIGN.md §1): a deterministic mix
 * of background decoys, planted homologs (mutated copies of the
 * query chains so searches return real hit distributions), planted
 * partial fragments, and low-complexity decoy regions. Low-
 * complexity decoys are what make poly-Q queries slow: their
 * repetitive stretches cross the prefilter threshold against
 * repetitive queries, forcing the expensive banded kernels to run —
 * the mechanism behind the paper's Observation 2.
 */

#ifndef AFSB_MSA_DBGEN_HH
#define AFSB_MSA_DBGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.hh"
#include "io/vfs.hh"

namespace afsb::msa {

/** Knobs for database synthesis. */
struct DbGenConfig
{
    uint64_t seed = 0xdbdbdbdb;

    /** Number of background decoy sequences. */
    size_t decoyCount = 1500;

    /** Decoy length range. */
    size_t decoyMinLen = 80;
    size_t decoyMaxLen = 400;

    /**
     * Fraction of decoys that carry a low-complexity insert (real
     * proteomes are ~5-10% low-complexity by region).
     */
    double lowComplexityFraction = 0.30;

    /** Homologs planted per query chain. */
    size_t homologsPerQuery = 12;

    /** Partial fragments planted per query chain. */
    size_t fragmentsPerQuery = 10;

    /** Paper-scale size this database stands in for (bytes). */
    uint64_t paperScaleBytes = 0;
};

/**
 * Synthesize a database for @p queries and materialize it as FASTA
 * in @p vfs under @p file_name.
 * @return Number of sequences written.
 */
size_t generateDatabase(io::Vfs &vfs, const std::string &file_name,
                        const std::vector<const bio::Sequence *> &queries,
                        bio::MoleculeType type,
                        const DbGenConfig &cfg = {});

/** Default paper-scale sizes for the standard AF3 databases. */
namespace paperdb {

/** Reduced UniRef-like protein collection (AF3 uses ~60 GiB). */
constexpr uint64_t kProteinDbBytes = 60ull << 30;

/** RNA nucleotide collection (paper: "an 89 GiB RNA database"). */
constexpr uint64_t kRnaDbBytes = 89ull << 30;

} // namespace paperdb

} // namespace afsb::msa

#endif // AFSB_MSA_DBGEN_HH
