/**
 * @file
 * Profile-HMM serialization in an HMMER3-inspired text format.
 *
 * Lets pipelines persist profiles between jackhmmer rounds or ship
 * pre-built profiles (HMMER's .hmm files play the same role). The
 * format is line-oriented and versioned:
 *
 *   AFSBHMM 1
 *   LENG <match states>  ALPH <amino|nucleic>
 *   GAPO <open>  GAPX <extend>
 *   M <pos> <score per alphabet symbol...>
 *   //
 */

#ifndef AFSB_MSA_HMM_IO_HH
#define AFSB_MSA_HMM_IO_HH

#include <string>

#include "msa/profile_hmm.hh"

namespace afsb::msa {

/** Serialize @p prof to the AFSBHMM text format. */
std::string writeHmm(const ProfileHmm &prof);

/**
 * Parse an AFSBHMM document.
 * @throws FatalError on malformed input, version mismatch, or
 *         inconsistent dimensions.
 */
ProfileHmm readHmm(const std::string &text);

} // namespace afsb::msa

#endif // AFSB_MSA_HMM_IO_HH
