#include "msa/dp_kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace afsb::msa {

namespace {

constexpr int kNeg = -1 << 20;  ///< "minus infinity" for int DP

/**
 * Instruction cost per DP cell after 16-lane SIMD amortization,
 * expressed as a rational (num/den) so accounting stays integral.
 * HMMER's vector kernels retire well under one instruction per
 * cell on the MSV filter and slightly more on the float pipeline.
 */
constexpr uint64_t kMsvInstrNum = 3, kMsvInstrDen = 5;       // 0.6
constexpr uint64_t kViterbiInstrNum = 6, kViterbiInstrDen = 5; // 1.2
constexpr uint64_t kForwardInstrNum = 8, kForwardInstrDen = 5; // 1.6

/** Cheap deterministic hash for arena addresses. */
inline uint64_t
arenaHash(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 29;
    return x;
}

/**
 * Deterministic virtual windows for the profile emission table and
 * the rolling DP rows. Tracing the buffers' real heap addresses
 * would leak allocator layout and ASLR state into the cache
 * simulator's set indexing, making miss counts (and therefore
 * simulated seconds) vary run to run. Fixed bases preserve the
 * locality structure that matters — profile rows shared across
 * targets, DP rows alternating in place — while keeping every
 * simulated run bit-identical for a given input.
 */
constexpr uint64_t kProfileBase = 0x7f10'0000'0000ull;
constexpr uint64_t kDpBase = 0x7f20'0000'0000ull;

/** Virtual address of the profile emission entry (pos, res). */
inline uint64_t
profAddr(const ProfileHmm &prof, size_t pos, uint8_t res)
{
    return kProfileBase +
           (pos * prof.alphabet() + res) * sizeof(int16_t);
}

/** 64-byte-aligned slot size for a DP row of @p bytes (mirrors the
 *  allocator placing the rows back to back). */
inline uint64_t
dpSlot(uint64_t bytes)
{
    return (bytes + 63) & ~63ull;
}

/** Emit the per-SIMD-block reference bundle. */
inline void
emitBlock(MemTraceSink *sink, const KernelConfig &cfg, FuncId func,
          uint64_t profile_addr, uint64_t dp_read_addr,
          uint64_t dp_write_addr, size_t row, uint64_t cell)
{
    sink->access({profile_addr, 32, false, func});
    sink->access({dp_read_addr, 64, false, func});
    sink->access({dp_write_addr, 64, true, func});
    if (cfg.targetBase) {
        // Align to the sampled-trace line grid so stream lines are
        // always ones the reader (copy_to_iter) touched first —
        // compulsory misses belong to the copy, re-reads to us.
        const uint64_t grid = 64ull * cfg.traceStride;
        sink->access({cfg.targetBase + (row / grid) * grid, 16,
                      false, func});
    }
    // Metadata reference: head line of a pseudo-random arena page
    // every other block (page-diverse, line-light).
    if (cell % (2 * 16 * cfg.traceStride) == 0) {
        const uint64_t h = arenaHash(cell + cfg.targetBase * 3);
        const uint64_t page = h % (cfg.arenaBytes / 4096);
        // One fixed line per page (the allocator's chunk header),
        // at a hashed page-dependent offset so the line population
        // is spread over all cache sets (page-aligned or otherwise
        // correlated offsets conflict-thrash a subset of sets).
        const uint64_t lineOff = (arenaHash(page) % 64) * 64;
        sink->access({cfg.arenaBase + page * 4096 + lineOff, 8,
                      false, func});
    }
    // Capacity reference: random line across the whole arena
    // (sampled like everything else, so the stride weight cancels).
    if (cell % (kArenaCells * cfg.traceStride) == 0) {
        const uint64_t slot =
            arenaHash(cell * 0x9e3779b97f4a7c15ull +
                      cfg.targetBase) %
            (cfg.arenaBytes / 64);
        sink->access({cfg.arenaBase + slot * 64, 8, false, func});
    }
}

/** Batched end-of-kernel accounting. */
inline void
finishKernel(MemTraceSink *sink, FuncId func, uint64_t cells,
             uint64_t instr_num, uint64_t instr_den,
             uint64_t data_branch_div)
{
    sink->instructions(func, cells * instr_num / instr_den);
    // SIMD leaves one loop branch per ~8 cells and one
    // data-dependent guard per data_branch_div cells.
    sink->branches(func, cells / 8, cells / data_branch_div);
}

/** Band bounds for target row j (1-based), center following the
 *  main diagonal. */
inline void
bandBounds(size_t j, size_t target_len, size_t profile_len,
           size_t band, size_t &k_lo, size_t &k_hi)
{
    const size_t center =
        (j * profile_len + target_len / 2) / target_len;
    k_lo = center > band ? center - band : 1;
    k_lo = std::max<size_t>(k_lo, 1);
    k_hi = std::min(profile_len, center + band);
    if (k_hi < k_lo)
        k_hi = k_lo;
}

} // namespace

MsvResult
msvFilter(const ProfileHmm &prof, const bio::Sequence &target,
          const KernelConfig &cfg, MemTraceSink *sink)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    MsvResult result;
    if (L == 0 || M == 0)
        return result;

    // Single rolling row: S[k] = best ungapped segment ending at
    // (j, k). Two alternating buffers keep diagonal dependencies.
    std::vector<int> prev(M + 1, 0);
    std::vector<int> cur(M + 1, 0);

    const uint64_t blockStride =
        static_cast<uint64_t>(kSimdWidth) * cfg.traceStride;
    const uint64_t slot = dpSlot((M + 1) * sizeof(int));
    uint64_t vPrev = kDpBase;
    uint64_t vCur = kDpBase + slot;
    int best = 0;
    uint64_t cell = 0;
    // The integer filter pipeline (SSV/MSV + Viterbi) is what the
    // paper's calc_band_9 symbol covers; attribute it there.
    const FuncId func = wellknown::calcBand9();
    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        cur[0] = 0;
        for (size_t k = 1; k <= M; ++k) {
            const int emit = prof.matchScore(k - 1, res);
            const int s = std::max(0, prev[k - 1] + emit);
            cur[k] = s;
            best = std::max(best, s);
            if (sink && (cell % blockStride) == 0)
                emitBlock(sink, cfg, func,
                          profAddr(prof, k - 1, res),
                          vPrev + (k - 1) * sizeof(int),
                          vCur + k * sizeof(int), j - 1, cell);
            ++cell;
        }
        prev.swap(cur);
        std::swap(vPrev, vCur);
    }
    result.score = best;
    result.cells = cell;
    if (sink)
        finishKernel(sink, func, cell, kMsvInstrNum, kMsvInstrDen,
                     16);
    return result;
}

ViterbiResult
calcBand9(const ProfileHmm &prof, const bio::Sequence &target,
          const KernelConfig &cfg, MemTraceSink *sink)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    ViterbiResult result;
    if (L == 0 || M == 0)
        return result;

    const int open = prof.gaps().open;
    const int extend = prof.gaps().extend;

    std::vector<int> prevM(M + 1, kNeg), prevI(M + 1, kNeg),
        prevD(M + 1, kNeg);
    std::vector<int> curM(M + 1, kNeg), curI(M + 1, kNeg),
        curD(M + 1, kNeg);

    const uint64_t blockStride =
        static_cast<uint64_t>(kSimdWidth) * cfg.traceStride;
    // Six rows allocated back to back: prevM/I/D then curM/I/D.
    const uint64_t slot = dpSlot((M + 1) * sizeof(int));
    uint64_t vPrevM = kDpBase;
    uint64_t vCurM = kDpBase + 3 * slot;
    int best = 0;
    uint64_t cell = 0;
    const FuncId func = wellknown::calcBand9();

    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        size_t kLo, kHi;
        bandBounds(j, L, M, cfg.band, kLo, kHi);
        std::fill(curM.begin(), curM.end(), kNeg);
        std::fill(curI.begin(), curI.end(), kNeg);
        std::fill(curD.begin(), curD.end(), kNeg);

        for (size_t k = kLo; k <= kHi; ++k) {
            const int emit = prof.matchScore(k - 1, res);
            const int diag = std::max(
                {0, prevM[k - 1], prevI[k - 1], prevD[k - 1]});
            const int m = diag + emit;
            curM[k] = m;
            curI[k] = std::max(prevM[k] - open, prevI[k] - extend);
            curD[k] =
                std::max(curM[k - 1] - open, curD[k - 1] - extend);
            if (m > best) {
                best = m;
                result.endTarget = j - 1;
                result.endProfile = k - 1;
            }
            if (sink && (cell % blockStride) == 0)
                emitBlock(sink, cfg, func,
                          profAddr(prof, k - 1, res),
                          vPrevM + (k - 1) * sizeof(int),
                          vCurM + k * sizeof(int), j - 1, cell);
            ++cell;
        }
        prevM.swap(curM);
        prevI.swap(curI);
        prevD.swap(curD);
        std::swap(vPrevM, vCurM);
    }
    result.score = best;
    result.cells = cell;
    if (sink)
        finishKernel(sink, func, cell, kViterbiInstrNum,
                     kViterbiInstrDen, 8);
    return result;
}

ForwardResult
calcBand10(const ProfileHmm &prof, const bio::Sequence &target,
           const KernelConfig &cfg, MemTraceSink *sink)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    ForwardResult result;
    if (L == 0 || M == 0)
        return result;

    // Probability-space Forward with per-row rescaling (the HMMER3
    // approach). Emission probabilities come from half-bit scores:
    // p = 2^(score/2), normalized by entry mass 1/M.
    constexpr double tMM = 0.90, tIM = 0.40, tDM = 0.40;
    constexpr double tMI = 0.05, tII = 0.60;
    constexpr double tMD = 0.05, tDD = 0.60;
    const double entry = 1.0 / static_cast<double>(M);

    std::vector<double> prevM(M + 1, 0.0), prevI(M + 1, 0.0),
        prevD(M + 1, 0.0);
    std::vector<double> curM(M + 1, 0.0), curI(M + 1, 0.0),
        curD(M + 1, 0.0);

    const uint64_t blockStride =
        static_cast<uint64_t>(kSimdWidth) * cfg.traceStride;
    const uint64_t slot = dpSlot((M + 1) * sizeof(double));
    uint64_t vPrevM = kDpBase;
    uint64_t vCurM = kDpBase + 3 * slot;
    double total = 0.0;
    double logScale = 0.0;
    uint64_t cell = 0;
    const FuncId func = wellknown::calcBand10();

    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        size_t kLo, kHi;
        bandBounds(j, L, M, cfg.band, kLo, kHi);
        std::fill(curM.begin(), curM.end(), 0.0);
        std::fill(curI.begin(), curI.end(), 0.0);
        std::fill(curD.begin(), curD.end(), 0.0);

        double rowMax = 0.0;
        for (size_t k = kLo; k <= kHi; ++k) {
            const double emit = std::exp2(
                0.5 * prof.matchScore(k - 1, res));
            const double m =
                emit * (prevM[k - 1] * tMM + prevI[k - 1] * tIM +
                        prevD[k - 1] * tDM + entry);
            curM[k] = m;
            curI[k] = prevM[k] * tMI + prevI[k] * tII;
            curD[k] = curM[k - 1] * tMD + curD[k - 1] * tDD;
            total += m * 0.05;  // exit mass
            rowMax = std::max(rowMax, m);
            if (sink && (cell % blockStride) == 0)
                emitBlock(sink, cfg, func,
                          profAddr(prof, k - 1, res),
                          vPrevM + (k - 1) * sizeof(double),
                          vCurM + k * sizeof(double), j - 1, cell);
            ++cell;
        }

        // Rescale to avoid overflow on long, similar targets.
        if (rowMax > 1e100) {
            const double inv = 1e-100;
            for (size_t k = kLo; k <= kHi; ++k) {
                curM[k] *= inv;
                curI[k] *= inv;
                curD[k] *= inv;
            }
            total *= inv;
            logScale += 100.0 * std::log2(10.0);
        }
        prevM.swap(curM);
        prevI.swap(curI);
        prevD.swap(curD);
        std::swap(vPrevM, vCurM);
    }
    result.logOdds =
        total > 0.0 ? std::log2(total) + logScale : -1e9;
    result.cells = cell;
    if (sink)
        finishKernel(sink, func, cell, kForwardInstrNum,
                     kForwardInstrDen, 16);
    return result;
}

AlignmentResult
alignToProfile(const ProfileHmm &prof, const bio::Sequence &target,
               const KernelConfig &cfg)
{
    (void)cfg;
    const size_t M = prof.length();
    const size_t L = target.length();
    AlignmentResult result;
    result.profileToTarget.assign(M, -1);
    if (L == 0 || M == 0)
        return result;

    const int open = prof.gaps().open;
    const int extend = prof.gaps().extend;

    // Full (unbanded) local affine DP with backpointers; only run on
    // the handful of accepted hits, so the O(L*M) footprint is fine.
    const size_t W = M + 1;
    std::vector<int> sM((L + 1) * W, kNeg), sI((L + 1) * W, kNeg),
        sD((L + 1) * W, kNeg);
    // Backpointers: bM 0=start 1=M 2=I 3=D; bI 0=M 1=I; bD 0=M 1=D.
    std::vector<uint8_t> bM((L + 1) * W, 0), bI((L + 1) * W, 0),
        bD((L + 1) * W, 0);

    for (size_t k = 0; k < W; ++k)
        sM[k] = kNeg;

    int best = 0;
    size_t bestJ = 0, bestK = 0;
    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        const size_t row = j * W;
        const size_t prow = (j - 1) * W;
        sM[row] = kNeg;
        for (size_t k = 1; k <= M; ++k) {
            const int emit = prof.matchScore(k - 1, res);
            // Match state.
            int d = 0;
            uint8_t bp = 0;
            if (sM[prow + k - 1] > d) {
                d = sM[prow + k - 1];
                bp = 1;
            }
            if (sI[prow + k - 1] > d) {
                d = sI[prow + k - 1];
                bp = 2;
            }
            if (sD[prow + k - 1] > d) {
                d = sD[prow + k - 1];
                bp = 3;
            }
            const int m = d + emit;
            sM[row + k] = m;
            bM[row + k] = bp;
            if (m > best) {
                best = m;
                bestJ = j;
                bestK = k;
            }
            // Insert (consume target, keep profile position).
            const int iFromM = sM[prow + k] - open;
            const int iFromI = sI[prow + k] - extend;
            if (iFromM >= iFromI) {
                sI[row + k] = iFromM;
                bI[row + k] = 0;
            } else {
                sI[row + k] = iFromI;
                bI[row + k] = 1;
            }
            // Delete (consume profile, keep target position).
            const int dFromM = sM[row + k - 1] - open;
            const int dFromD = sD[row + k - 1] - extend;
            if (dFromM >= dFromD) {
                sD[row + k] = dFromM;
                bD[row + k] = 0;
            } else {
                sD[row + k] = dFromD;
                bD[row + k] = 1;
            }
            ++result.cells;
        }
    }
    result.score = best;
    if (best <= 0)
        return result;

    // Traceback from the best match cell.
    size_t j = bestJ, k = bestK;
    int state = 0;  // 0=M, 1=I, 2=D
    while (j > 0 && k > 0) {
        const size_t idx = j * W + k;
        if (state == 0) {
            result.profileToTarget[k - 1] =
                static_cast<int32_t>(j - 1);
            const uint8_t bp = bM[idx];
            if (bp == 0)
                break;  // local alignment start
            state = bp - 1;  // 1->M, 2->I, 3->D
            --j;
            --k;
        } else if (state == 1) {
            state = bI[idx] == 0 ? 0 : 1;
            --j;
        } else {
            state = bD[idx] == 0 ? 0 : 2;
            --k;
        }
    }
    return result;
}

} // namespace afsb::msa
