#include "msa/dp_kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"
#include "util/simd.hh"

namespace afsb::msa {

namespace {

constexpr int kNeg = -1 << 20;  ///< "minus infinity" for int DP

/**
 * Instruction cost per DP cell after 16-lane SIMD amortization,
 * expressed as a rational (num/den) so accounting stays integral.
 * HMMER's vector kernels retire well under one instruction per
 * cell on the MSV filter and slightly more on the float pipeline.
 */
constexpr uint64_t kMsvInstrNum = 3, kMsvInstrDen = 5;       // 0.6
constexpr uint64_t kViterbiInstrNum = 6, kViterbiInstrDen = 5; // 1.2
constexpr uint64_t kForwardInstrNum = 8, kForwardInstrDen = 5; // 1.6

/** Cheap deterministic hash for arena addresses. */
inline uint64_t
arenaHash(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 29;
    return x;
}

/**
 * Deterministic virtual windows for the profile emission table and
 * the rolling DP rows. Tracing the buffers' real heap addresses
 * would leak allocator layout and ASLR state into the cache
 * simulator's set indexing, making miss counts (and therefore
 * simulated seconds) vary run to run. Fixed bases preserve the
 * locality structure that matters — profile rows shared across
 * targets, DP rows alternating in place — while keeping every
 * simulated run bit-identical for a given input.
 */
constexpr uint64_t kProfileBase = 0x7f10'0000'0000ull;
constexpr uint64_t kDpBase = 0x7f20'0000'0000ull;

/** Virtual address of the profile emission entry (pos, res). */
inline uint64_t
profAddr(const ProfileHmm &prof, size_t pos, uint8_t res)
{
    return kProfileBase +
           (pos * prof.alphabet() + res) * sizeof(int16_t);
}

/** 64-byte-aligned slot size for a DP row of @p bytes (mirrors the
 *  allocator placing the rows back to back). */
inline uint64_t
dpSlot(uint64_t bytes)
{
    return (bytes + 63) & ~63ull;
}

/** Emit the per-SIMD-block reference bundle. */
inline void
emitBlock(MemTraceSink *sink, const KernelConfig &cfg, FuncId func,
          uint64_t profile_addr, uint64_t dp_read_addr,
          uint64_t dp_write_addr, size_t row, uint64_t cell)
{
    sink->access({profile_addr, 32, false, func});
    sink->access({dp_read_addr, 64, false, func});
    sink->access({dp_write_addr, 64, true, func});
    if (cfg.targetBase) {
        // Align to the sampled-trace line grid so stream lines are
        // always ones the reader (copy_to_iter) touched first —
        // compulsory misses belong to the copy, re-reads to us.
        const uint64_t grid = 64ull * cfg.traceStride;
        sink->access({cfg.targetBase + (row / grid) * grid, 16,
                      false, func});
    }
    // Metadata reference: head line of a pseudo-random arena page
    // every other block (page-diverse, line-light).
    if (cell % (2 * 16 * cfg.traceStride) == 0) {
        const uint64_t h = arenaHash(cell + cfg.targetBase * 3);
        const uint64_t page = h % (cfg.arenaBytes / 4096);
        // One fixed line per page (the allocator's chunk header),
        // at a hashed page-dependent offset so the line population
        // is spread over all cache sets (page-aligned or otherwise
        // correlated offsets conflict-thrash a subset of sets).
        const uint64_t lineOff = (arenaHash(page) % 64) * 64;
        sink->access({cfg.arenaBase + page * 4096 + lineOff, 8,
                      false, func});
    }
    // Capacity reference: random line across the whole arena
    // (sampled like everything else, so the stride weight cancels).
    if (cell % (kArenaCells * cfg.traceStride) == 0) {
        const uint64_t slot =
            arenaHash(cell * 0x9e3779b97f4a7c15ull +
                      cfg.targetBase) %
            (cfg.arenaBytes / 64);
        sink->access({cfg.arenaBase + slot * 64, 8, false, func});
    }
}

/** Batched end-of-kernel accounting. */
inline void
finishKernel(MemTraceSink *sink, FuncId func, uint64_t cells,
             uint64_t instr_num, uint64_t instr_den,
             uint64_t data_branch_div)
{
    sink->instructions(func, cells * instr_num / instr_den);
    // SIMD leaves one loop branch per ~8 cells and one
    // data-dependent guard per data_branch_div cells.
    sink->branches(func, cells / 8, cells / data_branch_div);
}

/** Band bounds for target row j (1-based), center following the
 *  main diagonal. */
inline void
bandBounds(size_t j, size_t target_len, size_t profile_len,
           size_t band, size_t &k_lo, size_t &k_hi)
{
    const size_t center =
        (j * profile_len + target_len / 2) / target_len;
    k_lo = center > band ? center - band : 1;
    k_lo = std::max<size_t>(k_lo, 1);
    k_hi = std::min(profile_len, center + band);
    if (k_hi < k_lo)
        k_hi = k_lo;
}

/*
 * Native (untraced) striped kernels
 * ---------------------------------
 * The scalar loops above interleave trace emission with the DP
 * recurrence, which forces a branch and a strided int16 emission
 * lookup into every cell. The implementations below are what runs on
 * the wall-clock path (sink == nullptr): per-residue emission rows
 * are transposed into contiguous int/double arrays once per target,
 * and each DP row is computed in stripes the compiler autovectorizes
 * — the M and I states depend only on the previous row, the
 * loop-carried D state runs as a short scalar second pass. Integer
 * results are bit-identical to the scalar path; the Forward kernel
 * evaluates the same expressions in the same accumulation order.
 */

/** Transposed per-residue int emission rows, filled lazily so short
 *  targets never pay for unused alphabet letters. */
class IntEmissions
{
  public:
    explicit IntEmissions(const ProfileHmm &prof)
        : prof_(prof), m_(prof.length()),
          data_(prof.alphabet() * prof.length()),
          built_(prof.alphabet(), 0)
    {}

    const int *row(uint8_t res)
    {
        int *r = data_.data() + static_cast<size_t>(res) * m_;
        if (!built_[res]) {
            for (size_t k = 0; k < m_; ++k)
                r[k] = prof_.matchScore(k, res);
            built_[res] = 1;
        }
        return r;
    }

  private:
    const ProfileHmm &prof_;
    size_t m_;
    std::vector<int> data_;
    std::vector<uint8_t> built_;
};

/** Transposed per-residue Forward emission probabilities,
 *  exp2(score/2), computed once per residue instead of per cell.
 *  Same exp2 call per (pos, res) as the scalar loop, so values are
 *  bit-identical. */
class DoubleEmissions
{
  public:
    explicit DoubleEmissions(const ProfileHmm &prof)
        : prof_(prof), m_(prof.length()),
          data_(prof.alphabet() * prof.length()),
          built_(prof.alphabet(), 0)
    {}

    const double *row(uint8_t res)
    {
        double *r = data_.data() + static_cast<size_t>(res) * m_;
        if (!built_[res]) {
            for (size_t k = 0; k < m_; ++k)
                r[k] = std::exp2(0.5 * prof_.matchScore(k, res));
            built_[res] = 1;
        }
        return r;
    }

  private:
    const ProfileHmm &prof_;
    size_t m_;
    std::vector<double> data_;
    std::vector<uint8_t> built_;
};

MsvResult
msvFilterFast(const ProfileHmm &prof, const bio::Sequence &target)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    MsvResult result;

    IntEmissions emit(prof);
    std::vector<int> rowA(M + 1, 0), rowB(M + 1, 0);
    int *prev = rowA.data();
    int *cur = rowB.data();
    int best = 0;
    for (size_t j = 1; j <= L; ++j) {
        const int *AFSB_RESTRICT e = emit.row(target[j - 1]);
        const int *AFSB_RESTRICT p = prev;
        int *AFSB_RESTRICT c = cur;
        c[0] = 0;
        int rowBest = 0;
        AFSB_VECTORIZE_LOOP
        for (size_t k = 0; k < M; ++k) {
            const int s = std::max(0, p[k] + e[k]);
            c[k + 1] = s;
            rowBest = std::max(rowBest, s);
        }
        best = std::max(best, rowBest);
        std::swap(prev, cur);
    }
    result.score = best;
    result.cells = static_cast<uint64_t>(L) * M;
    return result;
}

ViterbiResult
calcBand9Fast(const ProfileHmm &prof, const bio::Sequence &target,
              const KernelConfig &cfg)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    ViterbiResult result;

    const int open = prof.gaps().open;
    const int extend = prof.gaps().extend;
    IntEmissions emit(prof);

    std::vector<int> bufs[6];
    for (auto &b : bufs)
        b.assign(M + 1, kNeg);
    int *pM = bufs[0].data(), *pI = bufs[1].data(),
        *pD = bufs[2].data();
    int *cM = bufs[3].data(), *cI = bufs[4].data(),
        *cD = bufs[5].data();

    int best = 0;
    uint64_t cells = 0;
    for (size_t j = 1; j <= L; ++j) {
        const int *AFSB_RESTRICT e = emit.row(target[j - 1]);
        size_t kLo, kHi;
        bandBounds(j, L, M, cfg.band, kLo, kHi);
        std::fill(cM, cM + M + 1, kNeg);
        std::fill(cI, cI + M + 1, kNeg);
        std::fill(cD, cD + M + 1, kNeg);

        {
            // M and I read the previous row only: no carried
            // dependence, a straight-line vector stripe.
            const int *AFSB_RESTRICT prevM = pM;
            const int *AFSB_RESTRICT prevI = pI;
            const int *AFSB_RESTRICT prevD = pD;
            int *AFSB_RESTRICT curM = cM;
            int *AFSB_RESTRICT curI = cI;
            AFSB_VECTORIZE_LOOP
            for (size_t k = kLo; k <= kHi; ++k) {
                const int diag = std::max(
                    std::max(0, prevM[k - 1]),
                    std::max(prevI[k - 1], prevD[k - 1]));
                curM[k] = diag + e[k - 1];
                curI[k] = std::max(prevM[k] - open,
                                   prevI[k] - extend);
            }
        }
        // D carries along the row: short scalar chain.
        for (size_t k = kLo; k <= kHi; ++k)
            cD[k] = std::max(cM[k - 1] - open, cD[k - 1] - extend);

        // The scalar loop records the first cell whose score beats
        // every earlier cell; that is the first occurrence of the
        // row max whenever the row max improves on `best`.
        int rowMax = kNeg;
        {
            const int *AFSB_RESTRICT curM = cM;
            AFSB_VECTORIZE_LOOP
            for (size_t k = kLo; k <= kHi; ++k)
                rowMax = std::max(rowMax, curM[k]);
        }
        if (rowMax > best) {
            best = rowMax;
            result.endTarget = j - 1;
            for (size_t k = kLo; k <= kHi; ++k) {
                if (cM[k] == rowMax) {
                    result.endProfile = k - 1;
                    break;
                }
            }
        }
        cells += kHi - kLo + 1;
        std::swap(pM, cM);
        std::swap(pI, cI);
        std::swap(pD, cD);
    }
    result.score = best;
    result.cells = cells;
    return result;
}

ForwardResult
calcBand10Fast(const ProfileHmm &prof, const bio::Sequence &target,
               const KernelConfig &cfg)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    ForwardResult result;

    constexpr double tMM = 0.90, tIM = 0.40, tDM = 0.40;
    constexpr double tMI = 0.05, tII = 0.60;
    constexpr double tMD = 0.05, tDD = 0.60;
    const double entry = 1.0 / static_cast<double>(M);
    DoubleEmissions emit(prof);

    std::vector<double> bufs[6];
    for (auto &b : bufs)
        b.assign(M + 1, 0.0);
    double *pM = bufs[0].data(), *pI = bufs[1].data(),
           *pD = bufs[2].data();
    double *cM = bufs[3].data(), *cI = bufs[4].data(),
           *cD = bufs[5].data();

    double total = 0.0;
    double logScale = 0.0;
    uint64_t cells = 0;
    for (size_t j = 1; j <= L; ++j) {
        const double *AFSB_RESTRICT e = emit.row(target[j - 1]);
        size_t kLo, kHi;
        bandBounds(j, L, M, cfg.band, kLo, kHi);
        std::fill(cM, cM + M + 1, 0.0);
        std::fill(cI, cI + M + 1, 0.0);
        std::fill(cD, cD + M + 1, 0.0);

        {
            const double *AFSB_RESTRICT prevM = pM;
            const double *AFSB_RESTRICT prevI = pI;
            const double *AFSB_RESTRICT prevD = pD;
            double *AFSB_RESTRICT curM = cM;
            double *AFSB_RESTRICT curI = cI;
            AFSB_VECTORIZE_LOOP
            for (size_t k = kLo; k <= kHi; ++k) {
                curM[k] = e[k - 1] *
                          (prevM[k - 1] * tMM + prevI[k - 1] * tIM +
                           prevD[k - 1] * tDM + entry);
                curI[k] = prevM[k] * tMI + prevI[k] * tII;
            }
        }
        for (size_t k = kLo; k <= kHi; ++k)
            cD[k] = cM[k - 1] * tMD + cD[k - 1] * tDD;

        // Exit mass and row max in the scalar loop's ascending-k
        // accumulation order, so `total` sums identically.
        double rowMax = 0.0;
        for (size_t k = kLo; k <= kHi; ++k) {
            total += cM[k] * 0.05;
            rowMax = std::max(rowMax, cM[k]);
        }

        if (rowMax > 1e100) {
            const double inv = 1e-100;
            for (size_t k = kLo; k <= kHi; ++k) {
                cM[k] *= inv;
                cI[k] *= inv;
                cD[k] *= inv;
            }
            total *= inv;
            logScale += 100.0 * std::log2(10.0);
        }
        cells += kHi - kLo + 1;
        std::swap(pM, cM);
        std::swap(pI, cI);
        std::swap(pD, cD);
    }
    result.logOdds =
        total > 0.0 ? std::log2(total) + logScale : -1e9;
    result.cells = cells;
    return result;
}

} // namespace

MsvResult
msvFilter(const ProfileHmm &prof, const bio::Sequence &target,
          const KernelConfig &cfg, MemTraceSink *sink)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    MsvResult result;
    if (L == 0 || M == 0)
        return result;
    if (sink == nullptr && !cfg.forceScalar)
        return msvFilterFast(prof, target);

    // Single rolling row: S[k] = best ungapped segment ending at
    // (j, k). Two alternating buffers keep diagonal dependencies.
    std::vector<int> prev(M + 1, 0);
    std::vector<int> cur(M + 1, 0);

    const uint64_t blockStride =
        static_cast<uint64_t>(kSimdWidth) * cfg.traceStride;
    const uint64_t slot = dpSlot((M + 1) * sizeof(int));
    uint64_t vPrev = kDpBase;
    uint64_t vCur = kDpBase + slot;
    int best = 0;
    uint64_t cell = 0;
    // The integer filter pipeline (SSV/MSV + Viterbi) is what the
    // paper's calc_band_9 symbol covers; attribute it there.
    const FuncId func = wellknown::calcBand9();
    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        cur[0] = 0;
        for (size_t k = 1; k <= M; ++k) {
            const int emit = prof.matchScore(k - 1, res);
            const int s = std::max(0, prev[k - 1] + emit);
            cur[k] = s;
            best = std::max(best, s);
            if (sink && (cell % blockStride) == 0)
                emitBlock(sink, cfg, func,
                          profAddr(prof, k - 1, res),
                          vPrev + (k - 1) * sizeof(int),
                          vCur + k * sizeof(int), j - 1, cell);
            ++cell;
        }
        prev.swap(cur);
        std::swap(vPrev, vCur);
    }
    result.score = best;
    result.cells = cell;
    if (sink)
        finishKernel(sink, func, cell, kMsvInstrNum, kMsvInstrDen,
                     16);
    return result;
}

ViterbiResult
calcBand9(const ProfileHmm &prof, const bio::Sequence &target,
          const KernelConfig &cfg, MemTraceSink *sink)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    ViterbiResult result;
    if (L == 0 || M == 0)
        return result;
    if (sink == nullptr && !cfg.forceScalar)
        return calcBand9Fast(prof, target, cfg);

    const int open = prof.gaps().open;
    const int extend = prof.gaps().extend;

    std::vector<int> prevM(M + 1, kNeg), prevI(M + 1, kNeg),
        prevD(M + 1, kNeg);
    std::vector<int> curM(M + 1, kNeg), curI(M + 1, kNeg),
        curD(M + 1, kNeg);

    const uint64_t blockStride =
        static_cast<uint64_t>(kSimdWidth) * cfg.traceStride;
    // Six rows allocated back to back: prevM/I/D then curM/I/D.
    const uint64_t slot = dpSlot((M + 1) * sizeof(int));
    uint64_t vPrevM = kDpBase;
    uint64_t vCurM = kDpBase + 3 * slot;
    int best = 0;
    uint64_t cell = 0;
    const FuncId func = wellknown::calcBand9();

    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        size_t kLo, kHi;
        bandBounds(j, L, M, cfg.band, kLo, kHi);
        std::fill(curM.begin(), curM.end(), kNeg);
        std::fill(curI.begin(), curI.end(), kNeg);
        std::fill(curD.begin(), curD.end(), kNeg);

        for (size_t k = kLo; k <= kHi; ++k) {
            const int emit = prof.matchScore(k - 1, res);
            const int diag = std::max(
                {0, prevM[k - 1], prevI[k - 1], prevD[k - 1]});
            const int m = diag + emit;
            curM[k] = m;
            curI[k] = std::max(prevM[k] - open, prevI[k] - extend);
            curD[k] =
                std::max(curM[k - 1] - open, curD[k - 1] - extend);
            if (m > best) {
                best = m;
                result.endTarget = j - 1;
                result.endProfile = k - 1;
            }
            if (sink && (cell % blockStride) == 0)
                emitBlock(sink, cfg, func,
                          profAddr(prof, k - 1, res),
                          vPrevM + (k - 1) * sizeof(int),
                          vCurM + k * sizeof(int), j - 1, cell);
            ++cell;
        }
        prevM.swap(curM);
        prevI.swap(curI);
        prevD.swap(curD);
        std::swap(vPrevM, vCurM);
    }
    result.score = best;
    result.cells = cell;
    if (sink)
        finishKernel(sink, func, cell, kViterbiInstrNum,
                     kViterbiInstrDen, 8);
    return result;
}

ForwardResult
calcBand10(const ProfileHmm &prof, const bio::Sequence &target,
           const KernelConfig &cfg, MemTraceSink *sink)
{
    const size_t M = prof.length();
    const size_t L = target.length();
    ForwardResult result;
    if (L == 0 || M == 0)
        return result;
    if (sink == nullptr && !cfg.forceScalar)
        return calcBand10Fast(prof, target, cfg);

    // Probability-space Forward with per-row rescaling (the HMMER3
    // approach). Emission probabilities come from half-bit scores:
    // p = 2^(score/2), normalized by entry mass 1/M.
    constexpr double tMM = 0.90, tIM = 0.40, tDM = 0.40;
    constexpr double tMI = 0.05, tII = 0.60;
    constexpr double tMD = 0.05, tDD = 0.60;
    const double entry = 1.0 / static_cast<double>(M);

    std::vector<double> prevM(M + 1, 0.0), prevI(M + 1, 0.0),
        prevD(M + 1, 0.0);
    std::vector<double> curM(M + 1, 0.0), curI(M + 1, 0.0),
        curD(M + 1, 0.0);

    const uint64_t blockStride =
        static_cast<uint64_t>(kSimdWidth) * cfg.traceStride;
    const uint64_t slot = dpSlot((M + 1) * sizeof(double));
    uint64_t vPrevM = kDpBase;
    uint64_t vCurM = kDpBase + 3 * slot;
    double total = 0.0;
    double logScale = 0.0;
    uint64_t cell = 0;
    const FuncId func = wellknown::calcBand10();

    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        size_t kLo, kHi;
        bandBounds(j, L, M, cfg.band, kLo, kHi);
        std::fill(curM.begin(), curM.end(), 0.0);
        std::fill(curI.begin(), curI.end(), 0.0);
        std::fill(curD.begin(), curD.end(), 0.0);

        double rowMax = 0.0;
        for (size_t k = kLo; k <= kHi; ++k) {
            const double emit = std::exp2(
                0.5 * prof.matchScore(k - 1, res));
            const double m =
                emit * (prevM[k - 1] * tMM + prevI[k - 1] * tIM +
                        prevD[k - 1] * tDM + entry);
            curM[k] = m;
            curI[k] = prevM[k] * tMI + prevI[k] * tII;
            curD[k] = curM[k - 1] * tMD + curD[k - 1] * tDD;
            total += m * 0.05;  // exit mass
            rowMax = std::max(rowMax, m);
            if (sink && (cell % blockStride) == 0)
                emitBlock(sink, cfg, func,
                          profAddr(prof, k - 1, res),
                          vPrevM + (k - 1) * sizeof(double),
                          vCurM + k * sizeof(double), j - 1, cell);
            ++cell;
        }

        // Rescale to avoid overflow on long, similar targets.
        if (rowMax > 1e100) {
            const double inv = 1e-100;
            for (size_t k = kLo; k <= kHi; ++k) {
                curM[k] *= inv;
                curI[k] *= inv;
                curD[k] *= inv;
            }
            total *= inv;
            logScale += 100.0 * std::log2(10.0);
        }
        prevM.swap(curM);
        prevI.swap(curI);
        prevD.swap(curD);
        std::swap(vPrevM, vCurM);
    }
    result.logOdds =
        total > 0.0 ? std::log2(total) + logScale : -1e9;
    result.cells = cell;
    if (sink)
        finishKernel(sink, func, cell, kForwardInstrNum,
                     kForwardInstrDen, 16);
    return result;
}

AlignmentResult
alignToProfile(const ProfileHmm &prof, const bio::Sequence &target,
               const KernelConfig &cfg)
{
    (void)cfg;
    const size_t M = prof.length();
    const size_t L = target.length();
    AlignmentResult result;
    result.profileToTarget.assign(M, -1);
    if (L == 0 || M == 0)
        return result;

    const int open = prof.gaps().open;
    const int extend = prof.gaps().extend;

    // Full (unbanded) local affine DP with backpointers; only run on
    // the handful of accepted hits, so the O(L*M) footprint is fine.
    const size_t W = M + 1;
    std::vector<int> sM((L + 1) * W, kNeg), sI((L + 1) * W, kNeg),
        sD((L + 1) * W, kNeg);
    // Backpointers: bM 0=start 1=M 2=I 3=D; bI 0=M 1=I; bD 0=M 1=D.
    std::vector<uint8_t> bM((L + 1) * W, 0), bI((L + 1) * W, 0),
        bD((L + 1) * W, 0);

    for (size_t k = 0; k < W; ++k)
        sM[k] = kNeg;

    int best = 0;
    size_t bestJ = 0, bestK = 0;
    for (size_t j = 1; j <= L; ++j) {
        const uint8_t res = target[j - 1];
        const size_t row = j * W;
        const size_t prow = (j - 1) * W;
        sM[row] = kNeg;
        for (size_t k = 1; k <= M; ++k) {
            const int emit = prof.matchScore(k - 1, res);
            // Match state.
            int d = 0;
            uint8_t bp = 0;
            if (sM[prow + k - 1] > d) {
                d = sM[prow + k - 1];
                bp = 1;
            }
            if (sI[prow + k - 1] > d) {
                d = sI[prow + k - 1];
                bp = 2;
            }
            if (sD[prow + k - 1] > d) {
                d = sD[prow + k - 1];
                bp = 3;
            }
            const int m = d + emit;
            sM[row + k] = m;
            bM[row + k] = bp;
            if (m > best) {
                best = m;
                bestJ = j;
                bestK = k;
            }
            // Insert (consume target, keep profile position).
            const int iFromM = sM[prow + k] - open;
            const int iFromI = sI[prow + k] - extend;
            if (iFromM >= iFromI) {
                sI[row + k] = iFromM;
                bI[row + k] = 0;
            } else {
                sI[row + k] = iFromI;
                bI[row + k] = 1;
            }
            // Delete (consume profile, keep target position).
            const int dFromM = sM[row + k - 1] - open;
            const int dFromD = sD[row + k - 1] - extend;
            if (dFromM >= dFromD) {
                sD[row + k] = dFromM;
                bD[row + k] = 0;
            } else {
                sD[row + k] = dFromD;
                bD[row + k] = 1;
            }
            ++result.cells;
        }
    }
    result.score = best;
    if (best <= 0)
        return result;

    // Traceback from the best match cell.
    size_t j = bestJ, k = bestK;
    int state = 0;  // 0=M, 1=I, 2=D
    while (j > 0 && k > 0) {
        const size_t idx = j * W + k;
        if (state == 0) {
            result.profileToTarget[k - 1] =
                static_cast<int32_t>(j - 1);
            const uint8_t bp = bM[idx];
            if (bp == 0)
                break;  // local alignment start
            state = bp - 1;  // 1->M, 2->I, 3->D
            --j;
            --k;
        } else if (state == 1) {
            state = bI[idx] == 0 ? 0 : 1;
            --j;
        } else {
            state = bD[idx] == 0 ? 0 : 2;
            --k;
        }
    }
    return result;
}

} // namespace afsb::msa
