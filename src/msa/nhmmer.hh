/**
 * @file
 * nhmmer analog: windowed nucleotide homology search for RNA chains.
 *
 * nhmmer scans long nucleotide targets in overlapping windows on
 * both strands [Wheeler & Eddy 2013]. Its working set — window
 * buffers, per-window DP matrices, and candidate-envelope state that
 * scales with the query model length — is what drives the paper's
 * Fig 2 memory blow-up (79 GiB at 621 nt -> 506 GiB at 935 nt, OOM
 * beyond 1335 nt at 768 GiB). The search itself runs here at scaled
 * size; peak memory is reported by the calibrated model in
 * memory_model.hh, which this engine consults before running —
 * reproducing AF3's lack of a static pre-check as a configurable
 * OOM failure.
 */

#ifndef AFSB_MSA_NHMMER_HH
#define AFSB_MSA_NHMMER_HH

#include "msa/msa_builder.hh"
#include "msa/search.hh"

namespace afsb::msa {

/** nhmmer-style windowed-scan configuration. */
struct NhmmerConfig
{
    SearchConfig search;
    MsaBuildConfig build;

    /** Window length as a multiple of the query length. */
    double windowFactor = 1.5;

    /** Window overlap fraction. */
    double overlap = 0.5;

    /** Scan the reverse strand too. */
    bool bothStrands = true;
};

/** Result of an nhmmer run for one nucleotide chain. */
struct NhmmerResult
{
    MsaResult msa;
    SearchStats stats;
    uint64_t windowsScanned = 0;

    /** Modeled peak memory for this query at paper scale (bytes). */
    uint64_t modeledPeakMemory = 0;
};

/**
 * Run windowed nucleotide search of @p query against @p db.
 * RNA and DNA queries accepted.
 */
NhmmerResult runNhmmer(const bio::Sequence &query,
                       const SequenceDatabase &db,
                       io::PageCache &cache, ThreadPool *pool,
                       const NhmmerConfig &cfg, double now = 0.0,
                       const std::vector<MemTraceSink *> &sinks = {});

/** Reverse-complement of a nucleotide sequence. */
bio::Sequence reverseComplement(const bio::Sequence &seq);

} // namespace afsb::msa

#endif // AFSB_MSA_NHMMER_HH
