/**
 * @file
 * Plan7-style profile hidden Markov model.
 *
 * JackHMMER builds a profile from the query (round 1) or from the
 * accumulated alignment (later rounds) and scans the database with
 * it. The profile here follows the HMMER structure in miniature:
 * per-position match emission scores (query residue + BLOSUM-derived
 * pseudocounts, converted to integer log-odds), affine
 * insert/delete transitions, and local (Smith-Waterman-like) entry
 * and exit so alignments may start and end anywhere.
 */

#ifndef AFSB_MSA_PROFILE_HMM_HH
#define AFSB_MSA_PROFILE_HMM_HH

#include <cstdint>
#include <vector>

#include "bio/sequence.hh"
#include "msa/score_matrix.hh"

namespace afsb::msa {

/** Transition penalties (positive costs subtracted from scores). */
struct GapModel
{
    int open = 11;     ///< gap-open cost (BLOSUM62 default)
    int extend = 1;    ///< gap-extend cost
};

/** Position-specific scoring profile. */
class ProfileHmm
{
  public:
    /**
     * Single-sequence profile: emissions are the substitution-matrix
     * column of the query residue at each position.
     */
    static ProfileHmm fromSequence(const bio::Sequence &query,
                                   const ScoreMatrix &matrix,
                                   GapModel gaps = {});

    /**
     * Profile from a set of aligned same-length sequences (a trivial
     * alignment column model with +1 pseudocounts), used by
     * jackhmmer iterations after hits are included.
     */
    static ProfileHmm fromAlignment(
        const std::vector<const bio::Sequence *> &aligned,
        const ScoreMatrix &matrix, GapModel gaps = {});

    /**
     * Profile from explicit per-position emission rows (HMM file
     * deserialization). All rows must share one alphabet size of 20
     * or 4; fatal() otherwise.
     */
    static ProfileHmm fromEmissions(
        std::vector<std::vector<int16_t>> rows, GapModel gaps = {});

    /** Number of match states (query length). */
    size_t length() const { return length_; }

    /** Alphabet size (20 protein, 4 nucleotide). */
    size_t alphabet() const { return alphabet_; }

    /** Match emission score at position @p pos for residue @p res. */
    int
    matchScore(size_t pos, uint8_t res) const
    {
        return emissions_[pos * alphabet_ + res];
    }

    /** Raw emission row pointer for the inner DP loops. */
    const int16_t *
    row(size_t pos) const
    {
        return emissions_.data() + pos * alphabet_;
    }

    const GapModel &gaps() const { return gaps_; }

    /** Maximum attainable per-position score. */
    int maxEmission() const { return maxEmission_; }

    /** Bytes used by the emission table (memory accounting). */
    size_t footprintBytes() const
    {
        return emissions_.size() * sizeof(int16_t);
    }

  private:
    size_t length_ = 0;
    size_t alphabet_ = 0;
    GapModel gaps_;
    int maxEmission_ = 0;
    std::vector<int16_t> emissions_;  ///< length_ x alphabet_
};

} // namespace afsb::msa

#endif // AFSB_MSA_PROFILE_HMM_HH
