/**
 * @file
 * The database-scan engine: HMMER-style accelerated pipeline.
 *
 * Every target flows through MSV prefilter -> banded Viterbi
 * (calc_band_9) -> banded Forward rescore (calc_band_10); only
 * prefilter survivors reach the expensive kernels. Low-complexity
 * queries (poly-Q) push many spurious targets past the prefilter,
 * inflating calc_band work — the paper's Observation 2 mechanism.
 *
 * The scan streams the database file through the page-cache model
 * (so the Desktop's 64 GiB configuration shows disk traffic where
 * the Server's 512 GiB does not) and partitions targets across a
 * thread pool with per-thread trace sinks for the cache simulator.
 */

#ifndef AFSB_MSA_SEARCH_HH
#define AFSB_MSA_SEARCH_HH

#include <cstdint>
#include <vector>

#include "msa/database.hh"
#include "msa/dp_kernels.hh"
#include "msa/profile_hmm.hh"
#include "util/threadpool.hh"

namespace afsb::msa {

/** Scan configuration. */
struct SearchConfig
{
    KernelConfig kernel;

    /** Worker threads scanning the database. */
    size_t threads = 1;

    /** Bits of headroom added to the random-expectation prefilter
     *  threshold; lower admits more targets to the DP kernels.
     *  HMMER's filter cascade is deliberately permissive (~20-30%
     *  of targets reach the banded kernels here). */
    double msvSlack = 6.0;

    /** Viterbi score margin (above the MSV threshold) for a target
     *  to proceed to Forward rescoring. */
    int viterbiMargin = 12;

    /** Forward log-odds threshold for final hit acceptance. */
    double forwardThreshold = 18.0;

    /**
     * Stream epoch: distinct database passes (jackhmmer rounds) get
     * distinct virtual address windows so a re-scan misses the
     * caches the way re-reading a 60 GiB collection would.
     */
    uint32_t streamEpoch = 0;
};

/** One accepted hit. */
struct Hit
{
    size_t targetIndex = 0;
    int viterbiScore = 0;
    double forwardLogOdds = 0.0;
};

/** Aggregated counters for one scan. */
struct SearchStats
{
    uint64_t targetsScanned = 0;
    uint64_t residuesScanned = 0;
    uint64_t msvPassed = 0;       ///< survived the prefilter
    uint64_t viterbiPassed = 0;   ///< candidate alignments
    uint64_t domainsScored = 0;   ///< post-pipeline domain passes
    uint64_t hits = 0;

    uint64_t cellsMsv = 0;
    uint64_t cellsViterbi = 0;
    uint64_t cellsForward = 0;

    uint64_t bytesStreamed = 0;   ///< through the page-cache model
    uint64_t bytesFromDisk = 0;
    double ioLatency = 0.0;       ///< simulated seconds

    void merge(const SearchStats &other);

    /** Prefilter pass rate. */
    double
    msvPassRate() const
    {
        return targetsScanned
                   ? static_cast<double>(msvPassed) /
                         static_cast<double>(targetsScanned)
                   : 0.0;
    }
};

/** Result of one database scan. */
struct SearchResult
{
    std::vector<Hit> hits;  ///< sorted by descending Forward score
    SearchStats stats;
};

/**
 * Scan @p db with @p prof.
 *
 * @param prof Query profile.
 * @param db Parsed database (shared, read-only).
 * @param cache Page-cache model for streaming simulation.
 * @param pool Thread pool; the scan uses min(cfg.threads, pool size)
 *        workers. Pass nullptr for single-threaded scanning.
 * @param cfg Pipeline thresholds and kernel knobs.
 * @param now Simulated start time (for I/O modeling).
 * @param sinks Optional per-worker trace sinks (size >= threads) for
 *        the cache simulator; empty disables tracing.
 */
SearchResult searchDatabase(
    const ProfileHmm &prof, const SequenceDatabase &db,
    io::PageCache &cache, ThreadPool *pool, const SearchConfig &cfg,
    double now = 0.0,
    const std::vector<MemTraceSink *> &sinks = {});

/**
 * Prefilter threshold for a profile: the expected best random
 * ungapped segment score against a target of length @p target_len
 * plus cfg.msvSlack bits (Karlin-Altschul-style log expectation).
 */
int msvThreshold(const ProfileHmm &prof, size_t target_len,
                 const SearchConfig &cfg);

} // namespace afsb::msa

#endif // AFSB_MSA_SEARCH_HH
