/**
 * @file
 * The database-scan engine: HMMER-style accelerated pipeline.
 *
 * Every target flows through MSV prefilter -> banded Viterbi
 * (calc_band_9) -> banded Forward rescore (calc_band_10); only
 * prefilter survivors reach the expensive kernels. Low-complexity
 * queries (poly-Q) push many spurious targets past the prefilter,
 * inflating calc_band work — the paper's Observation 2 mechanism.
 *
 * The scan streams the database file through the page-cache model
 * (so the Desktop's 64 GiB configuration shows disk traffic where
 * the Server's 512 GiB does not) and partitions targets across a
 * thread pool with per-thread trace sinks for the cache simulator.
 */

#ifndef AFSB_MSA_SEARCH_HH
#define AFSB_MSA_SEARCH_HH

#include <cstdint>
#include <vector>

#include "msa/database.hh"
#include "msa/dp_kernels.hh"
#include "msa/profile_hmm.hh"
#include "util/threadpool.hh"

namespace afsb::msa {

/** Scan configuration. */
struct SearchConfig
{
    KernelConfig kernel;

    /** Worker threads scanning the database. */
    size_t threads = 1;

    /** Bits of headroom added to the random-expectation prefilter
     *  threshold; lower admits more targets to the DP kernels.
     *  HMMER's filter cascade is deliberately permissive (~20-30%
     *  of targets reach the banded kernels here). */
    double msvSlack = 6.0;

    /** Viterbi score margin (above the MSV threshold) for a target
     *  to proceed to Forward rescoring. */
    int viterbiMargin = 12;

    /** Forward log-odds threshold for final hit acceptance. */
    double forwardThreshold = 18.0;

    /**
     * Stream epoch: distinct database passes (jackhmmer rounds) get
     * distinct virtual address windows so a re-scan misses the
     * caches the way re-reading a 60 GiB collection would.
     */
    uint32_t streamEpoch = 0;

    /**
     * Staged overlapped scan (untraced multi-thread path only): an
     * I/O stage prefetches target chunks through a BufferedReader
     * into rotating slabs while MSV prefilter workers fan out over
     * the chunk queue and banded-kernel workers drain prefilter
     * survivors from a bounded MPMC queue. Off falls back to the
     * static block-partitioned scan. Traced scans (any sink
     * attached) always use the static partition — the per-worker
     * trace streams are the simulator's stability contract.
     */
    bool overlap = true;

    /**
     * Chunk-queue bound: how many prefetched chunks the I/O stage
     * may run ahead of compute (the double-buffering depth; also
     * the number of staging slabs).
     */
    size_t prefetchChunks = 2;

    /**
     * Survivor-queue bound. Prefilter workers that would overflow
     * it rescore a queued survivor themselves (backpressure by
     * helping), so band-heavy queries throttle the prefilter
     * instead of growing an unbounded backlog.
     */
    size_t survivorQueueDepth = 64;

    /**
     * Schedule the overlapped scan on the TaskGroup runtime
     * (staged::runStagedScanTasks): streaming, prefiltering, and
     * survivor rescoring become work-stealing tasks chained per
     * chunk — the producer throttles by helping instead of blocking
     * on the chunk queue, and each MSV survivor's banded rescore is
     * spawned as its own task instead of crossing an MPMC queue.
     * Off falls back to the queue-based staged engine. Hit sets,
     * survivor lists, and pipeline counters are identical either
     * way; only thread scheduling differs.
     */
    bool taskScan = true;

    /**
     * Target index subrange [targetBegin, min(targetEnd, db size))
     * to scan — how a shard scans only its slice of a partitioned
     * database (msa/sharded_search.hh). The default covers the
     * whole database and leaves every code path (including the
     * staged overlapped scan) exactly as before; a proper subrange
     * always uses the statically partitioned scan.
     */
    size_t targetBegin = 0;
    size_t targetEnd = SIZE_MAX;

    /**
     * Optional scan-priority hint: target indices (e.g. the
     * previous jackhmmer round's MSV survivors) whose chunks are
     * streamed and prefiltered first, so the expensive banded
     * rescoring surfaces early and overlaps the remaining stream.
     * Only consulted by the overlapped path; never changes the hit
     * set. Not owned; must outlive the call.
     */
    const std::vector<uint32_t> *priorityTargets = nullptr;
};

/** One accepted hit. */
struct Hit
{
    size_t targetIndex = 0;
    int viterbiScore = 0;
    double forwardLogOdds = 0.0;
};

/**
 * Per-stage counters for the overlapped staged scan. Zero when only
 * the static/serial/traced paths ran. Busy-seconds are real
 * wall-clock (not simulated) and attribute where a thread sweep
 * saturates: I/O-bound scans show producer waits and low compute
 * occupancy; band-skewed scans show survivor-queue pressure.
 */
struct ScanStageStats
{
    uint64_t overlappedScans = 0;   ///< scans that took the staged path
    uint64_t chunks = 0;            ///< prefetched target chunks
    uint64_t survivorsQueued = 0;   ///< survivors pushed to the queue
    uint64_t survivorsInline = 0;   ///< rescored by the pusher (backpressure)

    uint64_t chunkQueuePeak = 0;    ///< max prefetched chunks in flight
    uint64_t survivorQueuePeak = 0; ///< max queued survivors
    uint64_t producerWaits = 0;     ///< I/O stage blocked on full chunk queue
    uint64_t chunkWaits = 0;        ///< compute starved waiting for a chunk
    uint64_t survivorWaits = 0;     ///< drain blocked on an empty survivor queue

    double ioSeconds = 0.0;         ///< producer stage busy time
    double msvSeconds = 0.0;        ///< prefilter busy time, summed over workers
    double bandSeconds = 0.0;       ///< survivor-stage busy time, summed
    double wallSeconds = 0.0;       ///< staged-scan wall time, summed
    uint64_t workersUsed = 0;       ///< max workers across merged scans

    /** Prefetch-reader counters (refills, copies, disk bytes). */
    io::ReaderStats reader;

    void merge(const ScanStageStats &other);

    /** Fraction of worker-seconds spent busy in any stage. */
    double
    occupancy() const
    {
        const double denom = static_cast<double>(workersUsed) *
                             wallSeconds;
        return denom > 0.0
                   ? (ioSeconds + msvSeconds + bandSeconds) / denom
                   : 0.0;
    }
};

/** Aggregated counters for one scan. */
struct SearchStats
{
    uint64_t targetsScanned = 0;
    uint64_t residuesScanned = 0;
    uint64_t msvPassed = 0;       ///< survived the prefilter
    uint64_t viterbiPassed = 0;   ///< candidate alignments
    uint64_t domainsScored = 0;   ///< post-pipeline domain passes
    uint64_t hits = 0;

    uint64_t cellsMsv = 0;
    uint64_t cellsViterbi = 0;
    uint64_t cellsForward = 0;

    uint64_t bytesStreamed = 0;   ///< through the page-cache model
    uint64_t bytesFromDisk = 0;
    double ioLatency = 0.0;       ///< simulated seconds

    /** Staged-scan stage attribution (overlapped path only). */
    ScanStageStats stages;

    void merge(const SearchStats &other);

    /** Prefilter pass rate. */
    double
    msvPassRate() const
    {
        return targetsScanned
                   ? static_cast<double>(msvPassed) /
                         static_cast<double>(targetsScanned)
                   : 0.0;
    }
};

/** Result of one database scan. */
struct SearchResult
{
    std::vector<Hit> hits;  ///< sorted by descending Forward score
    SearchStats stats;

    /**
     * Target indices that passed the MSV prefilter, ascending.
     * jackhmmer feeds these back as the next round's
     * `SearchConfig::priorityTargets` so band-heavy targets are
     * rescanned first (AF_Cache-style cross-round reuse).
     */
    std::vector<uint32_t> msvSurvivors;
};

/**
 * Scan @p db with @p prof.
 *
 * @param prof Query profile.
 * @param db Parsed database (shared, read-only).
 * @param cache Page-cache model for streaming simulation.
 * @param pool Thread pool; the scan uses min(cfg.threads, pool size)
 *        workers. Pass nullptr for single-threaded scanning.
 * @param cfg Pipeline thresholds and kernel knobs.
 * @param now Simulated start time (for I/O modeling).
 * @param sinks Optional per-worker trace sinks (size >= threads) for
 *        the cache simulator; empty disables tracing.
 */
SearchResult searchDatabase(
    const ProfileHmm &prof, const SequenceDatabase &db,
    io::PageCache &cache, ThreadPool *pool, const SearchConfig &cfg,
    double now = 0.0,
    const std::vector<MemTraceSink *> &sinks = {});

/** Outcome of a delta re-search against a cached survivor set. */
struct DeltaSearchResult
{
    /**
     * True when the delta's acceptance check held: the rescored
     * survivor set retained at least `minRetention` of its members
     * past the MSV prefilter. A rejected delta means the cached
     * survivor set no longer covers this query — the caller must
     * fall back to a full database scan.
     */
    bool accepted = false;

    /** Hits/stats over the survivor subset only (canonical order). */
    SearchResult result;

    uint64_t survivorsRescored = 0; ///< cached survivors re-run
    uint64_t survivorsRetained = 0; ///< still past the MSV filter

    double
    retention() const
    {
        return survivorsRescored
                   ? static_cast<double>(survivorsRetained) /
                         static_cast<double>(survivorsRescored)
                   : 0.0;
    }
};

/**
 * Delta re-search: rescore only @p survivors (a cached query's MSV
 * survivor set, ascending target indices) against @p prof instead of
 * scanning the whole database — the similarity-cache fast path for a
 * near-identical query. Runs the identical MSV -> Viterbi -> Forward
 * pipeline per target (same thresholds, same page-cache streaming),
 * so for the *same* query the delta's hit set equals the full scan's
 * (full-scan hits are always a subset of its MSV survivors).
 *
 * Acceptance: the fraction of survivors still passing the MSV
 * prefilter must be >= @p min_retention (and the set non-empty);
 * otherwise `accepted` is false and `result` must be discarded in
 * favor of a full scan.
 */
DeltaSearchResult deltaSearch(const ProfileHmm &prof,
                              const SequenceDatabase &db,
                              io::PageCache &cache,
                              const SearchConfig &cfg,
                              const std::vector<uint32_t> &survivors,
                              double now = 0.0,
                              double min_retention = 0.5);

/**
 * Scan a block-compressed streaming database: targets are decoded
 * on demand through the container's bounded LRU (see
 * msa/database.hh), so peak residency is the decode budget — not
 * the collection size. Single-threaded sequential pass; runs the
 * identical per-target filter cascade as searchDatabase, so the hit
 * set over the same FASTA bytes is bit-identical to the in-RAM
 * scan's. I/O (compressed-side reads through the page cache /
 * storage models) is accounted in the returned stats.
 */
SearchResult searchDatabaseStreaming(
    const ProfileHmm &prof, const StreamingSequenceDatabase &db,
    const SearchConfig &cfg, double now = 0.0);

/**
 * Prefilter threshold for a profile: the expected best random
 * ungapped segment score against a target of length @p target_len
 * plus cfg.msvSlack bits (Karlin-Altschul-style log expectation).
 */
int msvThreshold(const ProfileHmm &prof, size_t target_len,
                 const SearchConfig &cfg);

/**
 * Worker count for a scan: min(cfg.threads, pool size), at least 1.
 * Warns (once per call) when cfg.threads exceeds the pool — the
 * request cannot be honored and used to clamp silently.
 * @param who Caller name for the warning ("searchDatabase", ...).
 */
size_t scanWorkers(const SearchConfig &cfg, const ThreadPool *pool,
                   const char *who);

/**
 * Shared block-size policy for scan parallelism: ~8 blocks per
 * worker so skewed per-target cost load-balances, with a floor of
 * one target per block.
 */
size_t scanGrain(size_t n, size_t workers);

} // namespace afsb::msa

#endif // AFSB_MSA_SEARCH_HH
