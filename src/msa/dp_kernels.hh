/**
 * @file
 * The MSA alignment compute kernels.
 *
 * These are the analogs of the hot functions the paper's perf
 * profile attributes most MSA cycles to (Table IV):
 *
 *  - msvFilter    — ungapped max-segment prefilter (HMMER MSV/SSV
 *                   stage); runs over every database target.
 *  - calcBand9    — banded affine-gap Viterbi over the profile; runs
 *                   on targets passing the prefilter. The paper's
 *                   calc_band_9 symbol.
 *  - calcBand10   — banded Forward rescore in probability space with
 *                   per-row rescaling; the calc_band_10 symbol.
 *  - alignToProfile — banded Viterbi with traceback, used to place
 *                   accepted hits into MSA rows.
 *
 * All kernels do real arithmetic over real sequences; with a
 * MemTraceSink attached they additionally emit a (sampled) memory
 * reference stream plus instruction/branch counts so the cache
 * simulator can reproduce the paper's per-platform counters.
 *
 * Two execution paths
 * -------------------
 * Each kernel has two implementations that compute the same values:
 *
 *  - traced/scalar: the reference cell-by-cell loop, interleaved
 *    with per-SIMD-block trace emission. Selected whenever a
 *    MemTraceSink is attached (or KernelConfig::forceScalar is set).
 *    Its trace stream, instruction counts, and results are the
 *    stability contract for the cache simulator — they must stay
 *    byte-identical across refactors.
 *  - native/striped: branch-light loops over transposed per-residue
 *    emission rows, written so the compiler autovectorizes the
 *    previous-row-only recurrences (M/I states; the loop-carried D
 *    state runs as a short scalar pass). Selected when no sink is
 *    attached — the wall-clock path the paper's Table IV timings
 *    come from. Integer kernels (msvFilter, calcBand9) return
 *    bit-identical results to the scalar path; calcBand10 evaluates
 *    the same expressions in the same order, differing at most by
 *    FP contraction when the compiler fuses multiply-adds.
 */

#ifndef AFSB_MSA_DP_KERNELS_HH
#define AFSB_MSA_DP_KERNELS_HH

#include <cstdint>
#include <vector>

#include "bio/sequence.hh"
#include "msa/profile_hmm.hh"
#include "util/memtrace.hh"

namespace afsb::msa {

/** Shared kernel knobs. */
struct KernelConfig
{
    /** Half-width of the DP band around the main diagonal. */
    size_t band = 96;

    /**
     * Trace sampling stride in SIMD blocks: with a sink attached,
     * one 16-cell SIMD block in @p traceStride emits its memory
     * references (the consumer weights misses back by the same
     * stride). 1 = every block.
     */
    uint32_t traceStride = 1;

    /**
     * Paper-scale virtual base address of the target residues.
     * The scan engine spreads targets across the full reference-
     * collection address space so the simulated hierarchy sees the
     * real streaming footprint (60+ GiB), not the scaled-down file.
     * 0 disables the stream reference.
     */
    uint64_t targetBase = 0;

    /**
     * Sparse-rescue heap arena (HMMER's per-target allocation
     * churn). Two access classes are emitted into it:
     *
     *  - metadata references (one per SIMD block): one line at the
     *    head of a pseudo-random arena page — page-diverse but
     *    line-light, so they thrash AMD's 4 KiB-page dTLB (the
     *    paper's 20-37% rates) while staying L2-resident, and
     *    Intel's THP-backed dTLB covers them (~0.01%);
     *  - capacity references (one per kArenaCells cells): random
     *    lines across the whole arena, whose ~13 MiB working set
     *    exceeds Intel's effective LLC share at every thread count
     *    but fits AMD's 64 MiB until thread slicing shrinks the
     *    share — the Table III LLC-miss contrast.
     */
    uint64_t arenaBase = 0x7f50'0000'0000ull;
    uint64_t arenaBytes = 13ull << 20;

    /**
     * Force the traced/scalar reference loops even without a sink.
     * Used by equivalence tests and the bench_kernels baselines; the
     * untraced default picks the striped native path.
     */
    bool forceScalar = false;
};

/** Cells between successive arena capacity references. */
constexpr uint64_t kArenaCells = 32768;

/** SIMD width the instruction/trace accounting assumes (HMMER's
 *  16-lane int8/float vector kernels). */
constexpr uint32_t kSimdWidth = 16;

/** Result of the ungapped prefilter. */
struct MsvResult
{
    int score = 0;        ///< best ungapped segment score
    uint64_t cells = 0;   ///< DP cells computed
};

/** Result of the banded Viterbi kernel. */
struct ViterbiResult
{
    int score = 0;        ///< best local alignment score
    size_t endTarget = 0; ///< target index of the best cell
    size_t endProfile = 0;///< profile position of the best cell
    uint64_t cells = 0;
};

/** Result of the banded Forward kernel. */
struct ForwardResult
{
    double logOdds = 0.0; ///< log2 odds vs the null model
    uint64_t cells = 0;
};

/** Result of traceback alignment. */
struct AlignmentResult
{
    int score = 0;
    uint64_t cells = 0;

    /**
     * For each profile position, the aligned target index, or -1
     * when the position is deleted in the target.
     */
    std::vector<int32_t> profileToTarget;
};

/** Ungapped max-segment prefilter over the full target. */
MsvResult msvFilter(const ProfileHmm &prof,
                    const bio::Sequence &target,
                    const KernelConfig &cfg = {},
                    MemTraceSink *sink = nullptr);

/** Banded affine-gap local Viterbi (calc_band_9 analog). */
ViterbiResult calcBand9(const ProfileHmm &prof,
                        const bio::Sequence &target,
                        const KernelConfig &cfg = {},
                        MemTraceSink *sink = nullptr);

/** Banded Forward rescore (calc_band_10 analog). */
ForwardResult calcBand10(const ProfileHmm &prof,
                         const bio::Sequence &target,
                         const KernelConfig &cfg = {},
                         MemTraceSink *sink = nullptr);

/** Banded Viterbi with traceback for MSA row construction. */
AlignmentResult alignToProfile(const ProfileHmm &prof,
                               const bio::Sequence &target,
                               const KernelConfig &cfg = {});

} // namespace afsb::msa

#endif // AFSB_MSA_DP_KERNELS_HH
