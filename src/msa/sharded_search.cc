#include "msa/sharded_search.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::msa {

std::pair<size_t, size_t>
shardRange(size_t n, uint32_t nodes, uint32_t shard)
{
    if (nodes == 0 || shard >= nodes)
        fatal("shardRange: shard out of range");
    const size_t begin = n * shard / nodes;
    const size_t end = n * (shard + 1) / nodes;
    return {begin, end};
}

ShardedSearchResult
searchDatabaseSharded(const ProfileHmm &prof,
                      const SequenceDatabase &db, io::PageCache &cache,
                      ThreadPool *pool, const SearchConfig &cfg,
                      const net::TopologyConfig &topology,
                      net::Interconnect *net, double now)
{
    ShardedSearchResult out;
    out.gatherCompleteSeconds = now;

    const uint32_t nodes = topology.nodes;
    if (nodes <= 1) {
        // Single node: the unsharded scan, verbatim — same code
        // path, same result bytes, no interconnect involvement.
        out.merged = searchDatabase(prof, db, cache, pool, cfg, now);
        return out;
    }
    if (!net)
        fatal("searchDatabaseSharded: interconnect required for "
              "nodes > 1");

    const size_t n = db.size();
    std::vector<SearchResult> shard(nodes);
    for (uint32_t s = 0; s < nodes; ++s) {
        const auto [begin, end] = shardRange(n, nodes, s);
        SearchConfig local = cfg;
        local.targetBegin = begin;
        local.targetEnd = end;
        shard[s] =
            searchDatabase(prof, db, cache, pool, local, now);
    }

    // Displacement-counted gather to node 0: counts first, then the
    // exclusive prefix sum locating each shard's span in the packed
    // receive buffer. Shard 0's contribution is already resident.
    out.survivorCounts.resize(nodes);
    out.survivorDispls.resize(nodes);
    out.hitCounts.resize(nodes);
    out.hitDispls.resize(nodes);
    uint64_t survivorOffset = 0;
    uint64_t hitOffset = 0;
    for (uint32_t s = 0; s < nodes; ++s) {
        out.survivorCounts[s] =
            static_cast<uint32_t>(shard[s].msvSurvivors.size());
        out.hitCounts[s] =
            static_cast<uint32_t>(shard[s].hits.size());
        out.survivorDispls[s] = survivorOffset;
        out.hitDispls[s] = hitOffset;
        survivorOffset += out.survivorCounts[s] * kSurvivorWireBytes;
        hitOffset += out.hitCounts[s] * kHitWireBytes;
    }

    double gathered = now;
    for (uint32_t s = 1; s < nodes; ++s) {
        const auto sv =
            net->send(now, s, 0,
                      out.survivorCounts[s] * kSurvivorWireBytes,
                      net::MsgKind::SurvivorExchange, s);
        const auto al =
            net->send(now, s, 0, out.hitCounts[s] * kHitWireBytes,
                      net::MsgKind::AlignmentGather, s);
        gathered = std::max(gathered,
                            std::max(sv.arriveTime, al.arriveTime));
    }
    out.gatherCompleteSeconds = gathered;

    // Merge in shard order, then impose the same canonical ordering
    // searchDatabase() ends with; the disjoint partition makes the
    // result bit-identical to the single-node scan.
    SearchResult &merged = out.merged;
    for (auto &p : shard) {
        merged.stats.merge(p.stats);
        merged.hits.insert(merged.hits.end(), p.hits.begin(),
                           p.hits.end());
        merged.msvSurvivors.insert(merged.msvSurvivors.end(),
                                   p.msvSurvivors.begin(),
                                   p.msvSurvivors.end());
    }
    std::sort(merged.hits.begin(), merged.hits.end(),
              [](const Hit &a, const Hit &b) {
                  if (a.forwardLogOdds != b.forwardLogOdds)
                      return a.forwardLogOdds > b.forwardLogOdds;
                  return a.targetIndex < b.targetIndex;
              });
    std::sort(merged.msvSurvivors.begin(),
              merged.msvSurvivors.end());
    return out;
}

} // namespace afsb::msa
