#include "sys/memory_model.hh"

#include <algorithm>

namespace afsb::sys {

MemFit
MemoryModel::classify(uint64_t bytes) const
{
    if (bytes <= spec_.dramBytes)
        return MemFit::FitsDram;
    if (bytes <= spec_.dramBytes + spec_.cxlBytes)
        return MemFit::NeedsCxl;
    return MemFit::Oom;
}

MemFit
MemoryModel::allocate(uint64_t bytes)
{
    const MemFit fit = classify(inUse_ + bytes);
    if (fit == MemFit::Oom)
        return fit;
    inUse_ += bytes;
    peak_ = std::max(peak_, inUse_);
    return fit;
}

void
MemoryModel::release(uint64_t bytes)
{
    inUse_ = bytes > inUse_ ? 0 : inUse_ - bytes;
}

uint64_t
MemoryModel::cxlResident() const
{
    return inUse_ > spec_.dramBytes ? inUse_ - spec_.dramBytes : 0;
}

double
MemoryModel::latencyFactor() const
{
    if (inUse_ == 0 || cxlResident() == 0)
        return 1.0;
    const double frac = static_cast<double>(cxlResident()) /
                        static_cast<double>(inUse_);
    return 1.0 + frac * (spec_.cxlLatencyFactor - 1.0);
}

} // namespace afsb::sys
