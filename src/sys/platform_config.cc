#include "sys/platform_config.hh"

#include <cstdint>

#include "io/textfile.hh"
#include "util/logging.hh"

namespace afsb::sys {

namespace {

constexpr const char *kFormat = "afsb-platform";
constexpr int64_t kVersion = 1;

[[noreturn]] void
badKey(const std::string &context, const std::string &section,
       const std::string &key)
{
    fatal("platform config " + context + ": unknown key '" + key +
          "' in " + section + " section");
}

uint64_t
asUint(const JsonValue &v, const std::string &context,
       const std::string &key)
{
    const int64_t n = v.asInt();
    if (n < 0)
        fatal("platform config " + context + ": key '" + key +
              "' must be non-negative");
    return static_cast<uint64_t>(n);
}

JsonValue
cacheToJson(const CacheGeometry &c)
{
    auto j = JsonValue::makeObject();
    j["size"] = JsonValue(c.size);
    j["associativity"] = JsonValue(uint64_t{c.associativity});
    j["line_size"] = JsonValue(uint64_t{c.lineSize});
    j["latency_cycles"] = JsonValue(c.latencyCycles);
    return j;
}

CacheGeometry
cacheFromJson(const JsonValue &doc, const std::string &context,
              const std::string &section)
{
    CacheGeometry c;
    for (const auto &[key, value] : doc.asObject()) {
        if (key == "size")
            c.size = asUint(value, context, key);
        else if (key == "associativity")
            c.associativity =
                static_cast<uint32_t>(asUint(value, context, key));
        else if (key == "line_size")
            c.lineSize =
                static_cast<uint32_t>(asUint(value, context, key));
        else if (key == "latency_cycles")
            c.latencyCycles = value.asNumber();
        else
            badKey(context, section, key);
    }
    return c;
}

JsonValue
cpuToJson(const CpuSpec &c)
{
    auto j = JsonValue::makeObject();
    j["name"] = JsonValue(c.name);
    j["vendor"] = JsonValue(c.vendor);
    j["cores"] = JsonValue(uint64_t{c.cores});
    j["threads"] = JsonValue(uint64_t{c.threads});
    j["base_clock_ghz"] = JsonValue(c.baseClockGhz);
    j["max_clock_ghz"] = JsonValue(c.maxClockGhz);
    j["all_core_clock_ghz"] = JsonValue(c.allCoreClockGhz);
    j["l1d"] = cacheToJson(c.l1d);
    j["l2"] = cacheToJson(c.l2);
    j["llc"] = cacheToJson(c.llc);
    j["dtlb_entries"] = JsonValue(uint64_t{c.dtlbEntries});
    j["dtlb_miss_penalty_cycles"] =
        JsonValue(c.dtlbMissPenaltyCycles);
    j["tlb_page_bytes"] = JsonValue(c.tlbPageBytes);
    j["llc_chain_prefetch"] = JsonValue(c.llcChainPrefetch);
    j["llc_effective_factor"] = JsonValue(c.llcEffectiveFactor);
    j["base_ipc"] = JsonValue(c.baseIpc);
    j["vector_flops_per_cycle"] = JsonValue(c.vectorFlopsPerCycle);
    j["mispredict_penalty_cycles"] =
        JsonValue(c.mispredictPenaltyCycles);
    j["data_branch_miss_rate"] = JsonValue(c.dataBranchMissRate);
    j["mem_latency_cycles"] = JsonValue(c.memLatencyCycles);
    j["mem_bandwidth"] = JsonValue(c.memBandwidth);
    j["traffic_amplification"] = JsonValue(c.trafficAmplification);
    j["mlp"] = JsonValue(c.mlp);
    j["mlp_cache_hits"] = JsonValue(c.mlpCacheHits);
    return j;
}

CpuSpec
cpuFromJson(const JsonValue &doc, const std::string &context)
{
    CpuSpec c;
    for (const auto &[key, value] : doc.asObject()) {
        if (key == "name")
            c.name = value.asString();
        else if (key == "vendor")
            c.vendor = value.asString();
        else if (key == "cores")
            c.cores =
                static_cast<uint32_t>(asUint(value, context, key));
        else if (key == "threads")
            c.threads =
                static_cast<uint32_t>(asUint(value, context, key));
        else if (key == "base_clock_ghz")
            c.baseClockGhz = value.asNumber();
        else if (key == "max_clock_ghz")
            c.maxClockGhz = value.asNumber();
        else if (key == "all_core_clock_ghz")
            c.allCoreClockGhz = value.asNumber();
        else if (key == "l1d")
            c.l1d = cacheFromJson(value, context, "cpu.l1d");
        else if (key == "l2")
            c.l2 = cacheFromJson(value, context, "cpu.l2");
        else if (key == "llc")
            c.llc = cacheFromJson(value, context, "cpu.llc");
        else if (key == "dtlb_entries")
            c.dtlbEntries =
                static_cast<uint32_t>(asUint(value, context, key));
        else if (key == "dtlb_miss_penalty_cycles")
            c.dtlbMissPenaltyCycles = value.asNumber();
        else if (key == "tlb_page_bytes")
            c.tlbPageBytes = asUint(value, context, key);
        else if (key == "llc_chain_prefetch")
            c.llcChainPrefetch = value.asBool();
        else if (key == "llc_effective_factor")
            c.llcEffectiveFactor = value.asNumber();
        else if (key == "base_ipc")
            c.baseIpc = value.asNumber();
        else if (key == "vector_flops_per_cycle")
            c.vectorFlopsPerCycle = value.asNumber();
        else if (key == "mispredict_penalty_cycles")
            c.mispredictPenaltyCycles = value.asNumber();
        else if (key == "data_branch_miss_rate")
            c.dataBranchMissRate = value.asNumber();
        else if (key == "mem_latency_cycles")
            c.memLatencyCycles = value.asNumber();
        else if (key == "mem_bandwidth")
            c.memBandwidth = value.asNumber();
        else if (key == "traffic_amplification")
            c.trafficAmplification = value.asNumber();
        else if (key == "mlp")
            c.mlp = value.asNumber();
        else if (key == "mlp_cache_hits")
            c.mlpCacheHits = value.asNumber();
        else
            badKey(context, "cpu", key);
    }
    if (c.cores == 0)
        fatal("platform config " + context +
              ": cpu.cores must be >= 1");
    return c;
}

JsonValue
gpuToJson(const GpuSpec &g)
{
    auto j = JsonValue::makeObject();
    j["name"] = JsonValue(g.name);
    j["peak_flops"] = JsonValue(g.peakFlops);
    j["mem_bandwidth"] = JsonValue(g.memBandwidth);
    j["vram_bytes"] = JsonValue(g.vramBytes);
    j["kernel_launch_us"] = JsonValue(g.kernelLaunchUs);
    j["unified_mem_penalty"] = JsonValue(g.unifiedMemPenalty);
    return j;
}

GpuSpec
gpuFromJson(const JsonValue &doc, const std::string &context)
{
    GpuSpec g;
    for (const auto &[key, value] : doc.asObject()) {
        if (key == "name")
            g.name = value.asString();
        else if (key == "peak_flops")
            g.peakFlops = value.asNumber();
        else if (key == "mem_bandwidth")
            g.memBandwidth = value.asNumber();
        else if (key == "vram_bytes")
            g.vramBytes = asUint(value, context, key);
        else if (key == "kernel_launch_us")
            g.kernelLaunchUs = value.asNumber();
        else if (key == "unified_mem_penalty")
            g.unifiedMemPenalty = value.asNumber();
        else
            badKey(context, "gpu", key);
    }
    return g;
}

JsonValue
memoryToJson(const MemorySpec &m)
{
    auto j = JsonValue::makeObject();
    j["dram_bytes"] = JsonValue(m.dramBytes);
    j["cxl_bytes"] = JsonValue(m.cxlBytes);
    j["cxl_latency_factor"] = JsonValue(m.cxlLatencyFactor);
    return j;
}

MemorySpec
memoryFromJson(const JsonValue &doc, const std::string &context)
{
    MemorySpec m;
    for (const auto &[key, value] : doc.asObject()) {
        if (key == "dram_bytes")
            m.dramBytes = asUint(value, context, key);
        else if (key == "cxl_bytes")
            m.cxlBytes = asUint(value, context, key);
        else if (key == "cxl_latency_factor")
            m.cxlLatencyFactor = value.asNumber();
        else
            badKey(context, "memory", key);
    }
    return m;
}

JsonValue
storageToJson(const io::StorageSpec &s)
{
    auto j = JsonValue::makeObject();
    j["name"] = JsonValue(s.name);
    j["seq_read_bandwidth"] = JsonValue(s.seqReadBandwidth);
    j["base_latency"] = JsonValue(s.baseLatency);
    j["queue_depth"] = JsonValue(uint64_t{s.queueDepth});
    return j;
}

io::StorageSpec
storageFromJson(const JsonValue &doc, const std::string &context)
{
    io::StorageSpec s;
    for (const auto &[key, value] : doc.asObject()) {
        if (key == "name")
            s.name = value.asString();
        else if (key == "seq_read_bandwidth")
            s.seqReadBandwidth = value.asNumber();
        else if (key == "base_latency")
            s.baseLatency = value.asNumber();
        else if (key == "queue_depth")
            s.queueDepth =
                static_cast<uint32_t>(asUint(value, context, key));
        else
            badKey(context, "storage", key);
    }
    return s;
}

} // namespace

JsonValue
platformToJson(const PlatformSpec &platform)
{
    auto j = JsonValue::makeObject();
    j["format"] = JsonValue(kFormat);
    j["version"] = JsonValue(kVersion);
    j["name"] = JsonValue(platform.name);
    j["cpu"] = cpuToJson(platform.cpu);
    j["gpu"] = gpuToJson(platform.gpu);
    j["memory"] = memoryToJson(platform.memory);
    j["storage"] = storageToJson(platform.storage);
    return j;
}

PlatformSpec
platformFromJson(const JsonValue &doc, const std::string &context)
{
    if (!doc.isObject())
        fatal("platform config " + context +
              ": document must be a JSON object");
    if (!doc.has("format") ||
        doc.at("format").asString() != kFormat)
        fatal("platform config " + context +
              ": missing or wrong 'format' (expected \"" +
              std::string(kFormat) + "\")");
    if (!doc.has("version") || doc.at("version").asInt() != kVersion)
        fatal("platform config " + context +
              ": unsupported 'version' (expected 1)");

    PlatformSpec p;
    for (const auto &[key, value] : doc.asObject()) {
        if (key == "format" || key == "version")
            continue;
        else if (key == "name")
            p.name = value.asString();
        else if (key == "cpu")
            p.cpu = cpuFromJson(value, context);
        else if (key == "gpu")
            p.gpu = gpuFromJson(value, context);
        else if (key == "memory")
            p.memory = memoryFromJson(value, context);
        else if (key == "storage")
            p.storage = storageFromJson(value, context);
        else
            badKey(context, "top-level", key);
    }
    if (p.name.empty())
        fatal("platform config " + context +
              ": missing 'name'");
    return p;
}

PlatformSpec
loadPlatformFile(const std::string &path)
{
    const std::string text = io::readTextFile(path);
    JsonValue doc;
    try {
        doc = parseJson(text);
    } catch (const FatalError &e) {
        fatal("platform config " + path + ": " + e.what());
    }
    return platformFromJson(doc, path);
}

std::vector<std::string>
builtinPlatformNames()
{
    return {"server", "server-cxl", "desktop", "desktop-128"};
}

PlatformSpec
resolvePlatform(const std::string &nameOrPath)
{
    if (nameOrPath == "server")
        return serverPlatform();
    if (nameOrPath == "server-cxl")
        return serverPlatformWithCxl();
    if (nameOrPath == "desktop")
        return desktopPlatform();
    if (nameOrPath == "desktop-128")
        return desktopPlatformUpgraded();
    if (nameOrPath.find('/') != std::string::npos ||
        (nameOrPath.size() > 5 &&
         nameOrPath.substr(nameOrPath.size() - 5) == ".json"))
        return loadPlatformFile(nameOrPath);
    fatal("unknown platform '" + nameOrPath +
          "' (builtin: server, server-cxl, desktop, desktop-128; "
          "or a path to a *.json platform config)");
}

} // namespace afsb::sys
