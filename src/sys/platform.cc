#include "sys/platform.hh"

#include <algorithm>

#include "util/units.hh"

namespace afsb::sys {

double
PlatformSpec::effectiveClockGhz(uint32_t active_threads) const
{
    // One busy core sustains max boost; clocks taper linearly to the
    // all-core frequency as cores fill.
    const uint32_t t = std::max<uint32_t>(1, active_threads);
    if (t >= cpu.cores)
        return cpu.allCoreClockGhz;
    const double frac = static_cast<double>(t - 1) /
                        static_cast<double>(cpu.cores - 1);
    return cpu.maxClockGhz -
           frac * (cpu.maxClockGhz - cpu.allCoreClockGhz);
}

PlatformSpec
serverPlatform()
{
    PlatformSpec p;
    p.name = "Server";

    CpuSpec &c = p.cpu;
    c.name = "Intel Xeon Gold 5416S";
    c.vendor = "intel";
    c.cores = 16;
    c.threads = 32;
    c.baseClockGhz = 2.0;
    c.maxClockGhz = 4.0;
    c.allCoreClockGhz = 2.8;
    c.l1d = {48 * KiB, 12, 64, 5};
    c.l2 = {2 * MiB, 16, 64, 16};
    c.llc = {30 * MiB, 15, 64, 50};
    // Sapphire Rapids-era STLB is large and paired with aggressive
    // page-walk caching: the paper measures ~0.01% dTLB misses.
    c.dtlbEntries = 8192;
    c.dtlbMissPenaltyCycles = 25;
    c.tlbPageBytes = 2 * MiB;  // THP-backed arenas + large STLB
    c.llcChainPrefetch = false;
    c.llcEffectiveFactor = 0.25;  // non-inclusive victim LLC
    c.baseIpc = 4.3;
    c.vectorFlopsPerCycle = 64.0;  // AVX-512, two FMA pipes
    c.mispredictPenaltyCycles = 17;
    // Golden-Cove-class predictor: ~0.2% observed on the MSA mix.
    c.dataBranchMissRate = 0.006;
    c.memLatencyCycles = 380;          // DDR5-4400, farther uncore
    c.memBandwidth = 2.2e11;           // 8ch DDR5-4400, effective
    c.mlp = 6.0;                       // deep load/fill queues

    GpuSpec &g = p.gpu;
    g.name = "NVIDIA H100 80GB";
    g.peakFlops = 4.0e14;              // sustained BF16 on AF3 shapes
    g.memBandwidth = 3.35e12;          // HBM3
    g.vramBytes = 80ull * GiB;
    g.kernelLaunchUs = 5.0;
    g.unifiedMemPenalty = 4.0;

    p.memory.dramBytes = 512ull * GiB;
    p.memory.cxlBytes = 0;

    p.storage.name = "pcie4-nvme-server";
    p.storage.seqReadBandwidth = 6.8e9;
    p.storage.baseLatency = 80e-6;
    return p;
}

PlatformSpec
serverPlatformWithCxl()
{
    PlatformSpec p = serverPlatform();
    p.name = "Server+CXL";
    p.memory.cxlBytes = 256ull * GiB;
    return p;
}

PlatformSpec
desktopPlatform()
{
    PlatformSpec p;
    p.name = "Desktop";

    CpuSpec &c = p.cpu;
    c.name = "AMD Ryzen 9 7900X";
    c.vendor = "amd";
    c.cores = 12;
    c.threads = 24;
    c.baseClockGhz = 4.7;
    c.maxClockGhz = 5.6;
    c.allCoreClockGhz = 5.1;
    c.l1d = {32 * KiB, 8, 64, 4};
    c.l2 = {1 * MiB, 8, 64, 14};
    c.llc = {64 * MiB, 16, 64, 47};
    // Zen 4's L2 dTLB is modest relative to the MSA footprint; the
    // paper measures 20-37% dTLB misses on this workload.
    c.dtlbEntries = 96;
    // Zen page-walk caches keep the effective walk cost tiny even
    // at the high miss rates the paper measures (IPC stays ~3).
    c.dtlbMissPenaltyCycles = 2;
    c.tlbPageBytes = 4096;     // fragmented 4 KiB mappings
    c.llcChainPrefetch = true;
    c.llcEffectiveFactor = 1.0;
    c.baseIpc = 3.2;
    c.vectorFlopsPerCycle = 32.0;  // Zen 4 double-pumped AVX-512
    c.mispredictPenaltyCycles = 14;
    // ~0.9% observed branch-miss rate on the MSA mix.
    c.dataBranchMissRate = 0.03;
    c.memLatencyCycles = 420;          // higher clock -> more cycles
    c.memBandwidth = 7.0e10;           // 2ch DDR5-6000, effective
    c.mlp = 3.0;

    GpuSpec &g = p.gpu;
    g.name = "NVIDIA RTX 4080 16GB";
    g.peakFlops = 6.0e13;              // sustained FP16 on AF3 shapes
    g.memBandwidth = 7.17e11;          // GDDR6X
    g.vramBytes = 16ull * GiB;
    g.kernelLaunchUs = 6.0;
    g.unifiedMemPenalty = 6.0;

    p.memory.dramBytes = 64ull * GiB;
    p.memory.cxlBytes = 0;

    p.storage.name = "pcie4-nvme-desktop";
    p.storage.seqReadBandwidth = 6.5e9;
    p.storage.baseLatency = 70e-6;
    return p;
}

PlatformSpec
desktopPlatformUpgraded()
{
    PlatformSpec p = desktopPlatform();
    p.name = "Desktop-128G";
    p.memory.dramBytes = 128ull * GiB;
    // Paper: the upgrade swapped in DDR4-3600-class DIMM throughput.
    p.cpu.memBandwidth = 5.0e10;
    return p;
}

} // namespace afsb::sys
