/**
 * @file
 * Host-memory capacity tracking and OOM semantics.
 *
 * "AF3 does not perform static memory validation ... the process may
 * terminate unexpectedly" (Section III-C). This model reproduces
 * that: allocations are checked against DRAM, then CXL expansion;
 * exceeding both raises an OOM. The AFSysBench memory estimator
 * (core/memory_estimator.hh) is the Section VI countermeasure built
 * on top.
 */

#ifndef AFSB_SYS_MEMORY_MODEL_HH
#define AFSB_SYS_MEMORY_MODEL_HH

#include <cstdint>

#include "sys/platform.hh"

namespace afsb::sys {

/** Placement of an allocation in the memory tiers. */
enum class MemFit
{
    FitsDram,   ///< entirely in DRAM
    NeedsCxl,   ///< spills into the CXL expander
    Oom,        ///< exceeds DRAM + CXL: the paper's OOM kill
};

/** Tier-aware occupancy tracker for one run. */
class MemoryModel
{
  public:
    explicit MemoryModel(const MemorySpec &spec) : spec_(spec) {}

    /** Classify a hypothetical peak without allocating. */
    MemFit classify(uint64_t bytes) const;

    /**
     * Record an allocation. @return the placement; Oom allocations
     * are not recorded.
     */
    MemFit allocate(uint64_t bytes);

    /** Release a prior allocation. */
    void release(uint64_t bytes);

    uint64_t inUse() const { return inUse_; }
    uint64_t peak() const { return peak_; }

    /** Bytes currently beyond DRAM (resident on CXL). */
    uint64_t cxlResident() const;

    /**
     * Average memory-latency multiplier for the current occupancy:
     * 1.0 when all in DRAM, blending toward the CXL factor as the
     * footprint spills.
     */
    double latencyFactor() const;

    const MemorySpec &spec() const { return spec_; }

  private:
    MemorySpec spec_;
    uint64_t inUse_ = 0;
    uint64_t peak_ = 0;
};

} // namespace afsb::sys

#endif // AFSB_SYS_MEMORY_MODEL_HH
