/**
 * @file
 * Hardware platform descriptions (paper Table I).
 *
 * Two reference systems:
 *  - Server:  Intel Xeon Gold 5416S (16C/32T, 2.0/4.0 GHz, 30 MB
 *             shared LLC, DDR5-4400, 512 GiB, optional 256 GiB CXL)
 *             + NVIDIA H100 80 GB.
 *  - Desktop: AMD Ryzen 9 7900X (12C/24T, 4.7/5.6 GHz, 64 MB shared
 *             LLC, DDR5-6000, 64 GiB) + NVIDIA RTX 4080 16 GB.
 *
 * The microarchitectural parameters (base IPC envelope, TLB reach,
 * latencies, mispredict penalties) are calibration constants chosen
 * so the trace-driven simulator reproduces the counter shapes in the
 * paper's Table III; they are documented per field.
 */

#ifndef AFSB_SYS_PLATFORM_HH
#define AFSB_SYS_PLATFORM_HH

#include <cstdint>
#include <string>

#include "io/storage.hh"

namespace afsb::sys {

/** One cache level's geometry. */
struct CacheGeometry
{
    uint64_t size = 0;       ///< bytes
    uint32_t associativity = 8;
    uint32_t lineSize = 64;
    double latencyCycles = 4;
};

/** CPU microarchitecture + chip-level parameters. */
struct CpuSpec
{
    std::string name;
    std::string vendor;      ///< "intel" / "amd"
    uint32_t cores = 1;
    uint32_t threads = 2;    ///< hardware threads (SMT)
    double baseClockGhz = 2.0;
    double maxClockGhz = 4.0;
    double allCoreClockGhz = 3.0;  ///< sustained all-core boost

    CacheGeometry l1d;
    CacheGeometry l2;
    CacheGeometry llc;       ///< shared across cores

    /** dTLB reach in entries (first + second level, effective). */
    uint32_t dtlbEntries = 1536;
    double dtlbMissPenaltyCycles = 30;

    /**
     * Effective page size the dTLB covers. Intel's THP-friendly
     * allocator + large STLB behave like 2 MiB pages on this
     * workload (the paper measures ~0.01% dTLB misses); AMD's
     * effective reach corresponds to fragmented 4 KiB pages.
     */
    uint64_t tlbPageBytes = 4096;

    /** Running stream prefetcher at the LLC (AMD's large-LLC
     *  behaviour; Intel's 30 MB LLC cannot hold the prefetch-ahead
     *  window under this workload's pressure). */
    bool llcChainPrefetch = false;

    /**
     * Fraction of the nominal LLC capacity effectively available to
     * one thread's data. Intel's non-inclusive victim LLC plus code
     * and uncore sharing leave well under the headline 30 MB; AMD's
     * CCD caches behave close to nominal.
     */
    double llcEffectiveFactor = 1.0;

    /** Peak sustainable IPC on integer-heavy DP code. */
    double baseIpc = 3.5;

    /**
     * Peak vector FLOPs retired per core per cycle (fp32 FMA lanes
     * x 2 ops), the compute ceiling for the CPU-side operator
     * roofline used by cachesim cost attribution. AVX-512 with dual
     * FMA pipes sustains 64; a double-pumped 256-bit datapath or a
     * single 512-bit RVV engine sustains 32.
     */
    double vectorFlopsPerCycle = 32.0;

    /** Branch mispredict flush penalty. */
    double mispredictPenaltyCycles = 15;

    /**
     * Mispredict rate on data-dependent branches. Calibrated so
     * Table III's branch-miss column lands near the published
     * 0.2% (Intel, deeper predictor) vs 0.9% (AMD) overall rates on
     * the MSA mix.
     */
    double dataBranchMissRate = 0.05;

    /** DRAM access latency (cycles at max clock) and bandwidth. */
    double memLatencyCycles = 300;
    double memBandwidth = 2.0e11;  ///< bytes/s

    /**
     * DRAM traffic per demand LLC miss, as a multiple of the line
     * size: prefetch fills plus dirty writebacks roughly triple the
     * demand-miss byte count on streaming workloads.
     */
    double trafficAmplification = 3.0;

    /** Memory-level parallelism: overlapping outstanding misses. */
    double mlp = 3.0;

    /** Overlap factor for on-chip cache-hit latency (out-of-order
     *  cores hide most L2/LLC hit latency). */
    double mlpCacheHits = 12.0;
};

/** GPU device parameters for the roofline executor. */
struct GpuSpec
{
    std::string name;
    double peakFlops = 1e14;        ///< sustained bf16/fp16 FLOP/s
    double memBandwidth = 1e12;     ///< bytes/s
    uint64_t vramBytes = 16ull << 30;
    double kernelLaunchUs = 6.0;    ///< per-kernel dispatch cost
    double unifiedMemPenalty = 6.0; ///< slowdown when spilling VRAM
};

/** Host memory configuration. */
struct MemorySpec
{
    uint64_t dramBytes = 64ull << 30;
    uint64_t cxlBytes = 0;          ///< optional expander capacity
    double cxlLatencyFactor = 2.5;  ///< CXL vs DRAM latency ratio
};

/** A complete platform (Table I column). */
struct PlatformSpec
{
    std::string name;
    CpuSpec cpu;
    GpuSpec gpu;
    MemorySpec memory;
    io::StorageSpec storage;

    /** Total memory including any CXL expansion. */
    uint64_t
    totalMemoryBytes() const
    {
        return memory.dramBytes + memory.cxlBytes;
    }

    /** Sustained clock when @p active_threads cores are busy. */
    double effectiveClockGhz(uint32_t active_threads) const;
};

/** The paper's Server platform (Xeon 5416S + H100). */
PlatformSpec serverPlatform();

/** Server with the 256 GiB CXL expander attached (Fig 2 runs). */
PlatformSpec serverPlatformWithCxl();

/** The paper's Desktop platform (Ryzen 7900X + RTX 4080). */
PlatformSpec desktopPlatform();

/** Desktop after the 128 GiB upgrade used for 6QNR (Section III-B). */
PlatformSpec desktopPlatformUpgraded();

} // namespace afsb::sys

#endif // AFSB_SYS_PLATFORM_HH
