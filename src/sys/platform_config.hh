/**
 * @file
 * Platform-as-data: JSON serialization of PlatformSpec.
 *
 * The paper characterizes two physical machines (Table I); the
 * simulator generalizes beyond them by loading platform descriptions
 * from JSON config files (the configs/platforms directory ships a
 * RISC-V vector server, a CXL-tiered host, and a small-VRAM GPU).
 * Parsing
 * is strict in both directions: every field of the spec has exactly
 * one key, missing keys fall back to the field's default, and any
 * unknown key is a hard error with file context — a typoed knob must
 * never silently revert to a default mid-study.
 */

#ifndef AFSB_SYS_PLATFORM_CONFIG_HH
#define AFSB_SYS_PLATFORM_CONFIG_HH

#include <string>
#include <vector>

#include "sys/platform.hh"
#include "util/json.hh"

namespace afsb::sys {

/** Serialize @p platform to the JSON config schema. */
JsonValue platformToJson(const PlatformSpec &platform);

/**
 * Parse a platform config document.
 * @param context Source label ("riscv-cpu.json") for error messages.
 * @throws FatalError on unknown keys, type mismatches, or a bad
 *         format/version header.
 */
PlatformSpec platformFromJson(const JsonValue &doc,
                              const std::string &context);

/** Load and parse a platform config file from the host filesystem. */
PlatformSpec loadPlatformFile(const std::string &path);

/** Builtin platform names accepted by resolvePlatform(). */
std::vector<std::string> builtinPlatformNames();

/**
 * Resolve @p nameOrPath to a platform: a builtin name ("server",
 * "server-cxl", "desktop", "desktop-128") or a path to a *.json
 * config file (anything containing '/' or ending in ".json").
 * @throws FatalError when the name is unknown or the file is bad.
 */
PlatformSpec resolvePlatform(const std::string &nameOrPath);

} // namespace afsb::sys

#endif // AFSB_SYS_PLATFORM_CONFIG_HH
