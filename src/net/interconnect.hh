/**
 * @file
 * Deterministic modeled interconnect.
 *
 * Each ordered endpoint pair (src, dst) owns an independent
 * full-duplex link (non-blocking switch). A message first pays the
 * sender's serialization cost, then queues behind earlier traffic on
 * its link (the link is busy for bytes/bandwidth), then the wire
 * latency. Everything is a pure function of the send sequence, so a
 * simulation that issues sends in a deterministic order gets
 * bit-identical delivery times, link statistics, and a byte-stable
 * communication trace.
 *
 * Costs:
 *   serialize = bytes / serializeBytesPerSec        (0 when rate 0)
 *   start     = max(sendTime + serialize, linkFreeAt[src][dst])
 *   transfer  = bytes / bandwidthBytesPerSec        (0 when bw 0)
 *   arrive    = start + transfer + latency
 *   linkFreeAt[src][dst] = start + transfer
 *
 * Local sends (src == dst) are free, unrecorded, and keep a
 * single-node run's event sequence untouched — the nodes=1
 * equivalence contract.
 */

#ifndef AFSB_NET_INTERCONNECT_HH
#define AFSB_NET_INTERCONNECT_HH

#include <vector>

#include "net/comm_trace.hh"
#include "net/topology.hh"

namespace afsb::net {

/** Accumulated counters for one directed link. */
struct LinkStats
{
    uint32_t src = 0;
    uint32_t dst = 0;
    uint64_t messages = 0;
    uint64_t bytes = 0;
    double busySeconds = 0.0; ///< wire occupancy (transfer time)
};

/** Whole-fabric counters. */
struct CommStats
{
    uint64_t messages = 0;
    uint64_t bytes = 0;
    double serializeSeconds = 0.0;
    double transferSeconds = 0.0; ///< summed wire occupancy
    double latencySeconds = 0.0;  ///< summed wire latency

    /** Endpoint-seconds of communication the fabric performed. */
    double
    commSeconds() const
    {
        return serializeSeconds + transferSeconds + latencySeconds;
    }
};

class Interconnect
{
  public:
    explicit Interconnect(const TopologyConfig &topology);

    /** Outcome of one send. */
    struct Delivery
    {
        double arriveTime = 0.0;
        double serializeSeconds = 0.0;
        double transferSeconds = 0.0;
    };

    /**
     * Send @p bytes from @p src to @p dst at @p now. Local sends
     * (src == dst) cost nothing and are not recorded. fatal() on an
     * endpoint id outside the topology.
     */
    Delivery send(double now, uint32_t src, uint32_t dst,
                  uint64_t bytes, MsgKind kind, uint64_t tag = 0);

    const TopologyConfig &topology() const { return topology_; }
    const CommStats &stats() const { return stats_; }
    const CommTrace &trace() const { return trace_; }

    /**
     * Per-link counters for links that carried at least one
     * message, sorted by (src, dst) — the stable order reports
     * emit.
     */
    std::vector<LinkStats> activeLinks() const;

  private:
    TopologyConfig topology_;
    std::vector<LinkStats> links_; ///< dense endpoints^2, row major
    std::vector<double> freeAt_;   ///< per-link earliest idle time
    CommStats stats_;
    CommTrace trace_;
};

} // namespace afsb::net

#endif // AFSB_NET_INTERCONNECT_HH
