#include "net/comm_trace.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::net {

const char *
msgKindName(MsgKind kind)
{
    switch (kind) {
    case MsgKind::RouteRequest:
        return "route_request";
    case MsgKind::RouteResponse:
        return "route_response";
    case MsgKind::CacheLookup:
        return "cache_lookup";
    case MsgKind::CacheReply:
        return "cache_reply";
    case MsgKind::CacheResult:
        return "cache_result";
    case MsgKind::CacheInsert:
        return "cache_insert";
    case MsgKind::SurvivorExchange:
        return "survivor_exchange";
    case MsgKind::AlignmentGather:
        return "alignment_gather";
    }
    return "unknown";
}

bool
msgKindByName(const std::string &name, MsgKind *out)
{
    for (size_t k = 0; k < kMsgKinds; ++k) {
        const auto kind = static_cast<MsgKind>(k);
        if (name == msgKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

std::string
CommTrace::render() const
{
    std::string out = "# afsb-comm-trace v1\n";
    out.reserve(out.size() + events_.size() * 96);
    for (const auto &e : events_) {
        out += strformat(
            "t=%.6f src=%u dst=%u kind=%s bytes=%llu ser=%.6f "
            "xfer=%.6f arrive=%.6f tag=%llu\n",
            e.sendTime, e.src, e.dst, msgKindName(e.kind),
            static_cast<unsigned long long>(e.bytes),
            e.serializeSeconds, e.transferSeconds, e.arriveTime,
            static_cast<unsigned long long>(e.tag));
    }
    return out;
}

namespace {

/** The `value` of a `key=value` token; fatal on key mismatch. */
std::string
expectField(const std::string &token, const char *key, size_t line)
{
    const size_t eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != key)
        fatal(strformat("comm trace line %zu: expected %s=..., got "
                        "'%s'",
                        line + 1, key, token.c_str()));
    return token.substr(eq + 1);
}

/**
 * Strict numeric field parsers: the whole value must be consumed
 * ("1.5x" or an empty value is an error, not a silent prefix
 * parse), matching the throw-with-context convention of the SLO
 * report and JSON parsers.
 */
double
numberField(const std::string &value, const char *key, size_t line)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size())
        fatal(strformat("comm trace line %zu: bad number '%s' for "
                        "%s",
                        line + 1, value.c_str(), key));
    return v;
}

uint64_t
uintField(const std::string &value, const char *key, size_t line)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() ||
        value[0] == '-')
        fatal(strformat("comm trace line %zu: bad integer '%s' for "
                        "%s",
                        line + 1, value.c_str(), key));
    return v;
}

} // namespace

std::vector<CommEvent>
parseCommTrace(const std::string &text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    if (lines.empty() || lines[0] != "# afsb-comm-trace v1")
        fatal("comm trace: missing '# afsb-comm-trace v1' header");

    std::vector<CommEvent> events;
    for (size_t ln = 1; ln < lines.size(); ++ln) {
        const std::string &line = lines[ln];
        if (line.empty())
            continue;
        std::vector<std::string> tokens;
        size_t pos = 0;
        while (pos < line.size()) {
            size_t sp = line.find(' ', pos);
            if (sp == std::string::npos)
                sp = line.size();
            if (sp > pos)
                tokens.push_back(line.substr(pos, sp - pos));
            pos = sp + 1;
        }
        if (tokens.size() != 9)
            fatal(strformat("comm trace line %zu: expected 9 "
                            "fields, got %zu",
                            ln + 1, tokens.size()));
        CommEvent e;
        e.sendTime =
            numberField(expectField(tokens[0], "t", ln), "t", ln);
        e.src = static_cast<uint32_t>(uintField(
            expectField(tokens[1], "src", ln), "src", ln));
        e.dst = static_cast<uint32_t>(uintField(
            expectField(tokens[2], "dst", ln), "dst", ln));
        const std::string kind = expectField(tokens[3], "kind", ln);
        if (!msgKindByName(kind, &e.kind))
            fatal(strformat("comm trace line %zu: unknown message "
                            "kind '%s'",
                            ln + 1, kind.c_str()));
        e.bytes = uintField(expectField(tokens[4], "bytes", ln),
                            "bytes", ln);
        e.serializeSeconds = numberField(
            expectField(tokens[5], "ser", ln), "ser", ln);
        e.transferSeconds = numberField(
            expectField(tokens[6], "xfer", ln), "xfer", ln);
        e.arriveTime = numberField(
            expectField(tokens[7], "arrive", ln), "arrive", ln);
        e.tag = uintField(expectField(tokens[8], "tag", ln), "tag",
                          ln);
        events.push_back(e);
    }
    return events;
}

} // namespace afsb::net
