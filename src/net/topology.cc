#include "net/topology.hh"

namespace afsb::net {

TopologyConfig
datacenterTopology(uint32_t nodes)
{
    TopologyConfig t;
    t.name = "datacenter-100g";
    t.nodes = nodes;
    t.link.bandwidthBytesPerSec = 12.5e9;
    t.link.latencySeconds = 5e-6;
    return t;
}

TopologyConfig
commodityTopology(uint32_t nodes)
{
    TopologyConfig t;
    t.name = "commodity-10g";
    t.nodes = nodes;
    t.link.bandwidthBytesPerSec = 1.25e9;
    t.link.latencySeconds = 50e-6;
    return t;
}

TopologyConfig
zeroCostTopology(uint32_t nodes)
{
    TopologyConfig t;
    t.name = "zero-cost";
    t.nodes = nodes;
    t.link.bandwidthBytesPerSec = 0.0;
    t.link.latencySeconds = 0.0;
    t.link.serializeBytesPerSec = 0.0;
    return t;
}

} // namespace afsb::net
