/**
 * @file
 * CCL-style communication trace: every cross-node message as a
 * typed, timestamped record.
 *
 * Collective-communication benchmarks (CCL-Bench) argue that a
 * compute timeline without the matching communication trace hides
 * exactly the costs that dominate at scale. Here every
 * Interconnect::send appends one CommEvent; the trace renders to a
 * canonical one-line-per-event text that is byte-identical across
 * runs with identical seeds, and parses back for analysis — the
 * same write/parse/re-render contract the SLO report and fault log
 * follow.
 */

#ifndef AFSB_NET_COMM_TRACE_HH
#define AFSB_NET_COMM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace afsb::net {

/** Why the bytes moved. */
enum class MsgKind : uint8_t {
    RouteRequest = 0,  ///< router forwards a request to its node
    RouteResponse,     ///< node returns the finished structure
    CacheLookup,       ///< MSA-cache probe to the owning shard
    CacheReply,        ///< negative probe reply (control only)
    CacheResult,       ///< cached MSA shipped to the querying node
    CacheInsert,       ///< freshly computed MSA stored on its owner
    SurvivorExchange,  ///< shard-local scan survivor indices
    AlignmentGather,   ///< shard-local hit records to the root
};

constexpr size_t kMsgKinds = 8;

/** Canonical lower-snake name (stable; used in traces). */
const char *msgKindName(MsgKind kind);

/** Inverse of msgKindName; false when @p name is unknown. */
bool msgKindByName(const std::string &name, MsgKind *out);

/** One message on the virtual clock. */
struct CommEvent
{
    double sendTime = 0.0;     ///< when the sender issued it
    double arriveTime = 0.0;   ///< when the receiver has it
    uint32_t src = 0;
    uint32_t dst = 0;
    uint64_t bytes = 0;
    MsgKind kind = MsgKind::RouteRequest;
    double serializeSeconds = 0.0; ///< sender-side marshalling
    double transferSeconds = 0.0;  ///< on-the-wire occupancy
    uint64_t tag = 0;              ///< request id / shard id
};

/** Append-only event log with a canonical text form. */
class CommTrace
{
  public:
    void
    append(const CommEvent &event)
    {
        events_.push_back(event);
    }

    const std::vector<CommEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /**
     * Canonical serialization: a `# afsb-comm-trace v1` header line
     * followed by one `t=... src=... dst=... kind=... bytes=...
     * ser=... xfer=... arrive=... tag=...` line per event, %.6f
     * timestamps. Byte-identical across runs with identical seeds.
     */
    std::string render() const;

  private:
    std::vector<CommEvent> events_;
};

/**
 * Parse a canonical trace back into events.
 * @throws FatalError on a malformed header, line, or field.
 */
std::vector<CommEvent> parseCommTrace(const std::string &text);

} // namespace afsb::net

#endif // AFSB_NET_COMM_TRACE_HH
