/**
 * @file
 * Cluster interconnect topology configuration.
 *
 * The paper characterizes a single host; the serving north star is a
 * multi-node deployment where the synthetic sequence database is
 * sharded across nodes and a request router fans traffic out to
 * per-node MSA/GPU pools. Cross-node transfers then stop being an
 * invisible constant and become first-class measurable events
 * (CCL-Bench's motivation): every byte moved pays a modeled
 * serialization cost at the sender plus per-link latency and
 * bandwidth, and every message lands in a communication trace next
 * to the compute timeline.
 *
 * A TopologyConfig plays the same role for the network that the
 * Table-1 PlatformSpec plays for a host: a small named value object
 * with presets, swept by benches. The model is a non-blocking
 * switch: every ordered endpoint pair (src, dst) owns an
 * independent full-duplex link, so congestion is per-pair
 * serialization, not fabric-wide.
 */

#ifndef AFSB_NET_TOPOLOGY_HH
#define AFSB_NET_TOPOLOGY_HH

#include <cstdint>
#include <string>

namespace afsb::net {

/** One directed link's capability (uniform across the fabric). */
struct LinkSpec
{
    /**
     * Link bandwidth in bytes/second; 0 means infinite (transfers
     * are instantaneous once serialized and past the wire latency).
     */
    double bandwidthBytesPerSec = 12.5e9; // 100 Gb/s

    /** One-way wire latency per message. */
    double latencySeconds = 5e-6;

    /**
     * Sender-side marshalling throughput in bytes/second; 0 means
     * free. Paid before the message reaches the link, on top of
     * transfer time (the memcpy/protobuf cost CCL traces attribute
     * to the endpoint rather than the wire).
     */
    double serializeBytesPerSec = 0.0;

    /** True when using this link costs no simulated time at all. */
    bool
    free() const
    {
        return bandwidthBytesPerSec <= 0.0 &&
               latencySeconds <= 0.0 && serializeBytesPerSec <= 0.0;
    }
};

/** Whole-fabric description. */
struct TopologyConfig
{
    std::string name = "uniform";

    /** Simulated compute nodes (shards). 1 = the single-host paper
     *  setup; no interconnect traffic is ever generated. */
    uint32_t nodes = 1;

    /** Uniform per-link capability. */
    LinkSpec link;

    /**
     * Endpoint count: the compute nodes plus the request router,
     * which sits at endpoint id nodes (see routerId()).
     */
    uint32_t
    endpoints() const
    {
        return nodes + 1;
    }

    /** Endpoint id of the request router / front end. */
    uint32_t
    routerId() const
    {
        return nodes;
    }
};

/** 100 Gb/s, 5 us — a contemporary datacenter NIC. */
TopologyConfig datacenterTopology(uint32_t nodes);

/** 10 Gb/s, 50 us — commodity Ethernet between desktops. */
TopologyConfig commodityTopology(uint32_t nodes);

/** All-zero-cost links: shape of a multi-node run, none of the
 *  price. The nodes=1 / zero-cost pair is the determinism anchor
 *  the equivalence tests compare against. */
TopologyConfig zeroCostTopology(uint32_t nodes);

} // namespace afsb::net

#endif // AFSB_NET_TOPOLOGY_HH
