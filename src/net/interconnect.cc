#include "net/interconnect.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::net {

Interconnect::Interconnect(const TopologyConfig &topology)
    : topology_(topology)
{
    if (topology_.nodes == 0)
        fatal("net: topology needs at least one node");
    const size_t n = topology_.endpoints();
    links_.resize(n * n);
    freeAt_.assign(n * n, 0.0);
    for (size_t s = 0; s < n; ++s)
        for (size_t d = 0; d < n; ++d) {
            links_[s * n + d].src = static_cast<uint32_t>(s);
            links_[s * n + d].dst = static_cast<uint32_t>(d);
        }
}

Interconnect::Delivery
Interconnect::send(double now, uint32_t src, uint32_t dst,
                   uint64_t bytes, MsgKind kind, uint64_t tag)
{
    const uint32_t n = topology_.endpoints();
    if (src >= n || dst >= n)
        fatal(strformat("net: endpoint %u/%u outside topology of "
                        "%u endpoints",
                        src, dst, n));
    if (src == dst)
        return {now, 0.0, 0.0};

    const LinkSpec &link = topology_.link;
    const double serialize =
        link.serializeBytesPerSec > 0.0
            ? static_cast<double>(bytes) / link.serializeBytesPerSec
            : 0.0;
    const double transfer =
        link.bandwidthBytesPerSec > 0.0
            ? static_cast<double>(bytes) / link.bandwidthBytesPerSec
            : 0.0;

    const size_t li = static_cast<size_t>(src) * n + dst;
    const double start =
        std::max(now + serialize, freeAt_[li]);
    const double arrive = start + transfer + link.latencySeconds;
    freeAt_[li] = start + transfer;

    LinkStats &ls = links_[li];
    ++ls.messages;
    ls.bytes += bytes;
    ls.busySeconds += transfer;

    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.serializeSeconds += serialize;
    stats_.transferSeconds += transfer;
    stats_.latencySeconds += link.latencySeconds;

    CommEvent e;
    e.sendTime = now;
    e.arriveTime = arrive;
    e.src = src;
    e.dst = dst;
    e.bytes = bytes;
    e.kind = kind;
    e.serializeSeconds = serialize;
    e.transferSeconds = transfer;
    e.tag = tag;
    trace_.append(e);

    return {arrive, serialize, transfer};
}

std::vector<LinkStats>
Interconnect::activeLinks() const
{
    std::vector<LinkStats> out;
    for (const auto &ls : links_)
        if (ls.messages > 0)
            out.push_back(ls);
    // links_ is row-major over (src, dst), so the filtered list is
    // already sorted by (src, dst).
    return out;
}

} // namespace afsb::net
