/**
 * @file
 * CPU-side profile of the GPU-initialization phase (paper Table V).
 *
 * During XLA's preparation the host repeatedly allocates and
 * zero-fills large tensors (std::vector::_M_fill_insert), walks
 * shape metadata to size them (xla::ShapeUtil::ByteSizeOf), and
 * copies weights from the page cache (copy_to_iter). The paper
 * attributes 12-17% of page faults, 4-6% of dTLB misses, and 6-7%
 * of LLC misses to these symbols respectively.
 *
 * The model derives each symbol's event count from the operator
 * graph (allocation volume, tensor count, weight bytes) and divides
 * by a whole-phase event total whose components scale with token
 * count — reproducing both the magnitudes and the direction in
 * which each share moves as inputs grow.
 */

#ifndef AFSB_GPUSIM_INIT_PROFILE_HH
#define AFSB_GPUSIM_INIT_PROFILE_HH

#include <string>
#include <vector>

#include "gpusim/xla.hh"
#include "model/flops.hh"
#include "sys/platform.hh"

namespace afsb::gpusim {

/** One Table V row. */
struct InitBottleneckRow
{
    std::string eventType;  ///< "Page Faults" / "dTLB Load Misses" /
                            ///< "LLC Load Misses"
    std::string function;   ///< profiled symbol
    double overheadPct = 0.0;
};

/**
 * Event-share profile of the initialization phase for an input of
 * @p tokens tokens on @p platform.
 */
std::vector<InitBottleneckRow> profileInitPhase(
    const sys::PlatformSpec &platform, size_t tokens,
    const model::ModelConfig &cfg = model::paperConfig());

/**
 * Modeled wall-clock of the GPU-initialization phase on
 * @p platform: driver/context setup plus VRAM mapping, scaled by
 * host single-thread speed — the same cost model evaluateXlaPhases
 * charges a cold process. The serving cluster uses this as the
 * boot cost a respawned GPU worker repays before it can accept
 * work again (its persistent XLA cache is lost separately and
 * re-warms per shape bucket on the first requests it serves).
 */
double initPhaseSeconds(const sys::PlatformSpec &platform,
                        const XlaCostModel &costs = {});

} // namespace afsb::gpusim

#endif // AFSB_GPUSIM_INIT_PROFILE_HH
