/**
 * @file
 * JAX/XLA runtime-overhead model: GPU initialization, ahead-of-time
 * kernel compilation, and finalization.
 *
 * The paper finds these CPU-side phases dominate Server inference
 * for short inputs (>75% for 2PV7 on Xeon+H100) while the Desktop
 * spends most time in actual GPU compute (Fig 8), and proposes
 * persistent model state to amortize them (Section VI). The model:
 *
 *  - GPU init: driver/context setup plus VRAM mapping proportional
 *    to device memory (80 GB H100 maps slower than a 16 GB 4080),
 *    all scaled by host single-thread speed (it is one CPU thread).
 *  - XLA compile: a per-kernel cost for every unique (layer, shape)
 *    pair, scaled by host single-thread speed; a warm compilation
 *    cache (persistent state) skips recompilation.
 *  - Finalize: host-side output assembly and teardown.
 */

#ifndef AFSB_GPUSIM_XLA_HH
#define AFSB_GPUSIM_XLA_HH

#include <cstdint>
#include <set>
#include <vector>

#include "model/flops.hh"
#include "opgraph/ir.hh"
#include "sys/platform.hh"

namespace afsb::gpusim {

/** Compilation-cache key: layer kind + token-bucket. */
struct ShapeKey
{
    model::LayerKind kind;
    uint32_t tokenBucket;
    auto operator<=>(const ShapeKey &) const = default;
};

/**
 * XLA compilation cache. Persisting this object across inference
 * requests is the paper's "maintaining persistent model state"
 * optimization; a fresh cache per request reproduces the default
 * Docker-based behaviour.
 */
class XlaCache
{
  public:
    /** Default bucket width for shape polymorphism (XLA
     *  re-specializes on shape changes beyond padding buckets). */
    static constexpr uint32_t kBucketTokens = 64;

    /** @param bucketTokens Bucket width in tokens; clamped to >= 1
     *  (width 1 compiles one executable per exact token count). */
    explicit XlaCache(uint32_t bucketTokens = kBucketTokens)
        : bucketTokens_(bucketTokens == 0 ? 1 : bucketTokens)
    {}

    /** True when the shape is already compiled (and record it). */
    bool lookupOrInsert(model::LayerKind kind, size_t tokens);

    /** Bucket a token count falls into. */
    uint32_t
    bucketOf(size_t tokens) const
    {
        return static_cast<uint32_t>(tokens / bucketTokens_);
    }

    /**
     * Execution length for @p tokens: the largest token count in its
     * bucket (the shape the bucket's one compiled executable must
     * support). Batched dispatches pad every member to this, so the
     * padded length stays inside the member bucket and one
     * executable covers the whole bucket. Width 1 pads nothing.
     */
    size_t
    paddedTokens(size_t tokens) const
    {
        return static_cast<size_t>(bucketOf(tokens) + 1) *
                   bucketTokens_ -
               1;
    }

    uint32_t bucketTokens() const { return bucketTokens_; }

    size_t size() const { return compiled_.size(); }
    void clear() { compiled_.clear(); }

  private:
    uint32_t bucketTokens_;
    std::set<ShapeKey> compiled_;
};

/** Host-side overhead parameters (calibration constants). */
struct XlaCostModel
{
    /** Reference single-thread clock the constants are measured at. */
    double refClockGhz = 5.6;

    /** Driver + CUDA context setup at the reference clock. */
    double baseInitSeconds = 6.0;

    /** Per-GiB VRAM mapping/registration cost. */
    double initPerVramGib = 0.16;

    /** Per-unique-kernel compile cost at the reference clock. */
    double compileSecondsPerKernel = 0.09;

    /** Host-side finalize (result assembly, teardown). */
    double baseFinalizeSeconds = 4.0;

    /** Finalize cost per token (output size dependent). */
    double finalizePerToken = 0.008;
};

/** Computed host-side phase durations. */
struct XlaPhases
{
    double initSeconds = 0.0;
    double compileSeconds = 0.0;
    double finalizeSeconds = 0.0;
    uint32_t kernelsCompiled = 0;
};

/** Host single-thread slowdown vs the calibration reference. */
double hostClockFactor(const sys::PlatformSpec &platform,
                       const XlaCostModel &costs = {});

/**
 * Evaluate host-side overheads for running @p graph on @p platform.
 * @param cache Compilation cache (mutated: new shapes inserted).
 */
XlaPhases evaluateXlaPhases(
    const sys::PlatformSpec &platform,
    const opgraph::OpGraph &graph, size_t tokens, XlaCache &cache,
    const XlaCostModel &costs = {});

/**
 * Legacy inline-op-list overload. Kept as the pre-IR reference
 * path: tests/opgraph/test_roofline_identity.cc replays it to
 * byte-compare the IR-driven simulator against the original
 * arithmetic.
 */
XlaPhases evaluateXlaPhases(
    const sys::PlatformSpec &platform,
    const std::vector<model::LayerInstance> &graph, size_t tokens,
    XlaCache &cache, const XlaCostModel &costs = {});

} // namespace afsb::gpusim

#endif // AFSB_GPUSIM_XLA_HH
