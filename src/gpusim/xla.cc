#include "gpusim/xla.hh"

#include "util/units.hh"

namespace afsb::gpusim {

bool
XlaCache::lookupOrInsert(model::LayerKind kind, size_t tokens)
{
    const ShapeKey key{kind, bucketOf(tokens)};
    return !compiled_.insert(key).second;
}

double
hostClockFactor(const sys::PlatformSpec &platform,
                const XlaCostModel &costs)
{
    return costs.refClockGhz / platform.cpu.maxClockGhz;
}

namespace {

/** Shared phase arithmetic; @p kernelsCompiled already summed. */
XlaPhases
phasesFor(const sys::PlatformSpec &platform, size_t tokens,
          uint32_t kernelsCompiled, const XlaCostModel &costs)
{
    XlaPhases out;

    // Host phases run on one thread at the platform's peak clock;
    // slower hosts (Server's 4.0 GHz Xeon vs Desktop's 5.6 GHz
    // Ryzen) stretch every phase.
    const double hostFactor = hostClockFactor(platform, costs);

    out.initSeconds =
        hostFactor *
        (costs.baseInitSeconds +
         costs.initPerVramGib *
             static_cast<double>(platform.gpu.vramBytes) /
             static_cast<double>(GiB));

    out.kernelsCompiled = kernelsCompiled;
    out.compileSeconds = hostFactor *
                         costs.compileSecondsPerKernel *
                         out.kernelsCompiled;

    out.finalizeSeconds =
        hostFactor * (costs.baseFinalizeSeconds +
                      costs.finalizePerToken *
                          static_cast<double>(tokens));
    return out;
}

} // namespace

XlaPhases
evaluateXlaPhases(const sys::PlatformSpec &platform,
                  const opgraph::OpGraph &graph, size_t tokens,
                  XlaCache &cache, const XlaCostModel &costs)
{
    uint32_t kernelsCompiled = 0;
    for (const auto &op : graph.ops) {
        if (!cache.lookupOrInsert(op.kind, tokens))
            kernelsCompiled += op.kernels;
    }
    return phasesFor(platform, tokens, kernelsCompiled, costs);
}

XlaPhases
evaluateXlaPhases(const sys::PlatformSpec &platform,
                  const std::vector<model::LayerInstance> &graph,
                  size_t tokens, XlaCache &cache,
                  const XlaCostModel &costs)
{
    uint32_t kernelsCompiled = 0;
    for (const auto &layer : graph) {
        if (!cache.lookupOrInsert(layer.kind, tokens))
            kernelsCompiled += layer.cost.kernels;
    }
    return phasesFor(platform, tokens, kernelsCompiled, costs);
}

} // namespace afsb::gpusim
