/**
 * @file
 * Nsight-Systems-like phase timeline for the inference simulation.
 */

#ifndef AFSB_GPUSIM_TIMELINE_HH
#define AFSB_GPUSIM_TIMELINE_HH

#include <string>
#include <vector>

namespace afsb::gpusim {

/** Category lanes in the timeline. */
enum class TimelineLane { Host, Compile, GpuCompute, Transfer };

/** One span. */
struct TimelineSpan
{
    std::string name;
    TimelineLane lane = TimelineLane::Host;
    double start = 0.0;
    double duration = 0.0;
};

/** Ordered collection of spans with an ASCII renderer. */
class Timeline
{
  public:
    /** Append a span beginning at the current end of its lane. */
    void addSpan(std::string name, TimelineLane lane,
                 double duration);

    /** Append at an explicit start time. */
    void addSpanAt(std::string name, TimelineLane lane, double start,
                   double duration);

    const std::vector<TimelineSpan> &spans() const { return spans_; }

    /** End time of the whole timeline. */
    double endTime() const;

    /** Total duration within one lane. */
    double laneTotal(TimelineLane lane) const;

    /** Render an ASCII summary (one bar per span, width 60). */
    std::string render() const;

  private:
    std::vector<TimelineSpan> spans_;
};

/** Lane display name. */
std::string laneName(TimelineLane lane);

} // namespace afsb::gpusim

#endif // AFSB_GPUSIM_TIMELINE_HH
