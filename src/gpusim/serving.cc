#include "gpusim/serving.hh"

#include <algorithm>

namespace afsb::gpusim {

std::vector<ServingRequest>
batchRequests(size_t count, size_t tokens)
{
    std::vector<ServingRequest> out(count);
    for (auto &r : out)
        r.tokens = tokens;
    return out;
}

ServingResult
simulateServing(const sys::PlatformSpec &platform,
                const std::vector<ServingRequest> &requests,
                const ServingOptions &options)
{
    ServingResult result;
    result.requests.reserve(requests.size());

    XlaCache persistentCache;
    double clock = 0.0;
    for (const auto &request : requests) {
        XlaCache freshCache;
        XlaCache &cache = options.persistentModelState
                              ? persistentCache
                              : freshCache;

        InferenceSimOptions inferOptions = options.inference;
        inferOptions.gpuAlreadyInitialized =
            options.persistentModelState && !result.requests.empty();
        const auto sim = simulateInference(platform, request.tokens,
                                           cache, inferOptions);

        ServedRequest served;
        served.tokens = request.tokens;
        served.startSeconds =
            std::max(clock, request.arrivalSeconds);
        served.serviceSeconds = sim.totalSeconds();
        served.compileSeconds = sim.compileSeconds;
        served.finishSeconds =
            served.startSeconds + served.serviceSeconds;
        served.latencySeconds =
            served.finishSeconds - request.arrivalSeconds;
        clock = served.finishSeconds;
        result.requests.push_back(served);
    }

    // Degenerate streams must still produce well-defined
    // aggregates: an empty request list keeps every metric at 0.0
    // (no NaN/inf from 0/0), and a single request defines the
    // steady state as its own latency below.
    if (result.requests.empty())
        return result;

    result.makespanSeconds = clock;
    result.throughputPerHour =
        result.makespanSeconds > 0.0
            ? 3600.0 *
                  static_cast<double>(result.requests.size()) /
                  result.makespanSeconds
            : 0.0;
    result.firstRequestLatency =
        result.requests.front().latencySeconds;

    double latencySum = 0.0;
    double steadySum = 0.0;
    for (size_t i = 0; i < result.requests.size(); ++i) {
        latencySum += result.requests[i].latencySeconds;
        if (i > 0)
            steadySum += result.requests[i].serviceSeconds;
    }
    result.meanLatency =
        latencySum / static_cast<double>(result.requests.size());
    result.steadyLatency =
        result.requests.size() > 1
            ? steadySum /
                  static_cast<double>(result.requests.size() - 1)
            : result.firstRequestLatency;
    return result;
}

} // namespace afsb::gpusim
