#include "gpusim/inference_sim.hh"

#include <algorithm>

#include "opgraph/build.hh"
#include "util/logging.hh"

namespace afsb::gpusim {

double
InferenceSimResult::pairformerSeconds() const
{
    double total = 0.0;
    for (const auto &[name, secs] : layerSeconds) {
        for (int k = 0; k <= 13; ++k) {
            const auto kind = static_cast<model::LayerKind>(k);
            if (model::layerKindName(kind) == name &&
                model::isPairformerLayer(kind))
                total += secs;
        }
    }
    return total;
}

double
InferenceSimResult::diffusionSeconds() const
{
    double total = 0.0;
    for (const auto &[name, secs] : layerSeconds) {
        for (int k = 0; k <= 13; ++k) {
            const auto kind = static_cast<model::LayerKind>(k);
            if (model::layerKindName(kind) == name &&
                model::isDiffusionLayer(kind))
                total += secs;
        }
    }
    return total;
}

InferenceSimResult
simulateInference(const sys::PlatformSpec &platform, size_t tokens,
                  XlaCache &cache,
                  const InferenceSimOptions &options)
{
    InferenceSimResult result;
    const auto &cfg = options.config;
    // The IR is the single source of the op list: its per-op costs
    // are copied bit-for-bit from the analytic layer model, so this
    // replay is bit-identical to the pre-IR inline path (enforced
    // by tests/opgraph/test_roofline_identity.cc).
    const auto graph = opgraph::buildInferenceGraph(tokens, cfg);

    // Memory placement: weights + activations vs VRAM.
    const uint64_t footprint =
        model::activationBytes(tokens, cfg) + model::weightBytes(cfg);
    const bool spills = footprint > platform.gpu.vramBytes;
    if (spills && !options.unifiedMemory) {
        result.oom = true;
        return result;
    }
    result.usedUnifiedMemory = spills;
    // Only the overflow fraction pays the unified-memory penalty.
    const double spillFraction =
        spills ? 1.0 - static_cast<double>(platform.gpu.vramBytes) /
                           static_cast<double>(footprint)
               : 0.0;

    // Host phases. Extra threads help only the parallelizable
    // share of preprocessing (dispatch is one host thread).
    XlaPhases phases =
        evaluateXlaPhases(platform, graph, tokens, cache);
    const double threadScale =
        (1.0 - options.hostParallelFraction) +
        options.hostParallelFraction /
            std::max<uint32_t>(1, options.threads);
    result.initSeconds = options.gpuAlreadyInitialized
                             ? 0.0
                             : phases.initSeconds * threadScale;
    result.compileSeconds = phases.compileSeconds * threadScale;
    result.finalizeSeconds = phases.finalizeSeconds * threadScale;

    result.timeline.addSpan("gpu_init", TimelineLane::Host,
                            result.initSeconds);
    result.timeline.addSpanAt("xla_compile", TimelineLane::Compile,
                              result.initSeconds,
                              result.compileSeconds);

    // GPU execution of the operator graph.
    GpuDevice device(platform.gpu);
    const double gpuStart =
        result.initSeconds + result.compileSeconds;
    double cursor = gpuStart;
    for (const auto &op : graph.ops) {
        double layerTotal = 0.0;
        for (uint32_t i = 0; i < op.count; ++i) {
            // The spill penalty applies to the bandwidth-bound
            // portion, weighted by how much of the footprint lives
            // across the PCIe link.
            const double t = device.executeKernel(
                op.flops,
                op.trafficBytes() *
                    (1.0 + spillFraction *
                               (platform.gpu.unifiedMemPenalty -
                                1.0)),
                false);
            layerTotal += t;
        }
        result.layerSeconds[op.name()] += layerTotal;
        result.timeline.addSpanAt(op.name(),
                                  TimelineLane::GpuCompute, cursor,
                                  layerTotal);
        cursor += layerTotal;
    }
    result.gpuComputeSeconds = cursor - gpuStart;
    result.deviceStats = device.stats();

    result.timeline.addSpanAt("finalize", TimelineLane::Host, cursor,
                              result.finalizeSeconds);
    return result;
}

size_t
maxBatchForVram(const sys::PlatformSpec &platform,
                size_t execTokens, const model::ModelConfig &cfg)
{
    const uint64_t weights = model::weightBytes(cfg);
    const uint64_t act = model::activationBytes(execTokens, cfg);
    if (platform.gpu.vramBytes <= weights || act == 0)
        return 1;
    const uint64_t fit = (platform.gpu.vramBytes - weights) / act;
    return std::max<size_t>(1, static_cast<size_t>(fit));
}

BatchedInferenceResult
simulateBatchedInference(const sys::PlatformSpec &platform,
                         const std::vector<size_t> &tokensList,
                         XlaCache &cache,
                         const InferenceSimOptions &options,
                         uint32_t gpus)
{
    BatchedInferenceResult out;
    out.batchSize = tokensList.size();
    out.gpus = std::max<uint32_t>(1, gpus);
    if (tokensList.empty())
        return out;

    const auto &cfg = options.config;
    if (tokensList.size() == 1) {
        // A solo dispatch runs at its native length and must be
        // bit-identical to the unbatched simulator.
        const auto solo = simulateInference(platform, tokensList[0],
                                            cache, options);
        out.oom = solo.oom;
        out.usedUnifiedMemory = solo.usedUnifiedMemory;
        out.execTokens = tokensList[0];
        out.initSeconds = solo.initSeconds;
        out.compileSeconds = solo.compileSeconds;
        out.gpuComputeSeconds = solo.gpuComputeSeconds;
        out.finalizeSeconds = solo.finalizeSeconds;
        out.deviceStats = solo.deviceStats;
        if (!solo.oom)
            out.usefulFlops =
                opgraph::buildInferenceGraph(tokensList[0], cfg)
                    .totalFlops();
        return out;
    }

    const uint32_t bucket = cache.bucketOf(tokensList[0]);
    size_t sumTokens = 0;
    for (size_t t : tokensList) {
        panicIf(cache.bucketOf(t) != bucket,
                "batched inference: members span token buckets");
        sumTokens += t;
    }
    const size_t execTokens = cache.paddedTokens(tokensList[0]);
    out.execTokens = execTokens;
    const auto graph =
        opgraph::buildInferenceGraph(execTokens, cfg);

    // Round-robin data parallelism: device g serves members
    // g, g+G, g+2G, ...; the largest shard bounds the GPU phase.
    const size_t batch = tokensList.size();
    const uint32_t devices = out.gpus;
    const size_t maxShard = (batch + devices - 1) / devices;

    // Memory placement per device: replicated weights + the shard's
    // padded activations vs VRAM.
    const uint64_t footprint =
        static_cast<uint64_t>(maxShard) *
            model::activationBytes(execTokens, cfg) +
        model::weightBytes(cfg);
    const bool spills = footprint > platform.gpu.vramBytes;
    if (spills && !options.unifiedMemory) {
        out.oom = true;
        return out;
    }
    out.usedUnifiedMemory = spills;
    const double spillFraction =
        spills ? 1.0 - static_cast<double>(platform.gpu.vramBytes) /
                           static_cast<double>(footprint)
               : 0.0;

    // Host phases are paid once for the whole batch: one shared
    // (layer, bucket) compile — execTokens stays inside the member
    // bucket by construction — and one init on a cold worker.
    const XlaPhases phases =
        evaluateXlaPhases(platform, graph, execTokens, cache);
    const double threadScale =
        (1.0 - options.hostParallelFraction) +
        options.hostParallelFraction /
            std::max<uint32_t>(1, options.threads);
    out.initSeconds = options.gpuAlreadyInitialized
                          ? 0.0
                          : phases.initSeconds * threadScale;
    out.compileSeconds = phases.compileSeconds * threadScale;

    // Finalize: the base (teardown, dispatch unwind) amortizes over
    // the batch; per-token output assembly covers every member's
    // real tokens (pad tokens produce no output).
    const XlaCostModel costs;
    out.finalizeSeconds =
        hostClockFactor(platform, costs) *
        (costs.baseFinalizeSeconds +
         costs.finalizePerToken * static_cast<double>(sumTokens)) *
        threadScale;

    // GPU execution: every kernel runs batch-scaled (flops and
    // activation traffic x shard size), which amortizes the launch
    // cost and the utilization ramp across members. Each device in
    // the fan-out executes its own shard; the phase ends when the
    // largest shard does.
    for (uint32_t g = 0; g < devices; ++g) {
        const size_t shard =
            batch / devices + (g < batch % devices ? 1 : 0);
        if (shard == 0)
            continue;
        GpuDevice device(platform.gpu);
        double shardSeconds = 0.0;
        for (const auto &op : graph.ops) {
            for (uint32_t i = 0; i < op.count; ++i)
                shardSeconds += device.executeKernel(
                    op.flops * static_cast<double>(shard),
                    op.trafficBytes() *
                        static_cast<double>(shard) *
                        (1.0 +
                         spillFraction *
                             (platform.gpu.unifiedMemPenalty - 1.0)),
                    false);
        }
        out.gpuComputeSeconds =
            std::max(out.gpuComputeSeconds, shardSeconds);
        const DeviceStats st = device.stats();
        out.deviceStats.kernelsLaunched += st.kernelsLaunched;
        out.deviceStats.flopsExecuted += st.flopsExecuted;
        out.deviceStats.bytesMoved += st.bytesMoved;
        out.deviceStats.busySeconds += st.busySeconds;
        out.deviceStats.launchSeconds += st.launchSeconds;
    }

    // Useful vs pad FLOPs: the device executed every member at the
    // padded length; only the members' native graphs are useful.
    const double executedFlops =
        graph.totalFlops() * static_cast<double>(batch);
    for (size_t t : tokensList)
        out.usefulFlops +=
            opgraph::buildInferenceGraph(t, cfg).totalFlops();
    out.paddedFlops = std::max(0.0, executedFlops - out.usefulFlops);
    return out;
}

} // namespace afsb::gpusim
