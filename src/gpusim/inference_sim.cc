#include "gpusim/inference_sim.hh"

#include <algorithm>

namespace afsb::gpusim {

double
InferenceSimResult::pairformerSeconds() const
{
    double total = 0.0;
    for (const auto &[name, secs] : layerSeconds) {
        for (int k = 0; k <= 13; ++k) {
            const auto kind = static_cast<model::LayerKind>(k);
            if (model::layerKindName(kind) == name &&
                model::isPairformerLayer(kind))
                total += secs;
        }
    }
    return total;
}

double
InferenceSimResult::diffusionSeconds() const
{
    double total = 0.0;
    for (const auto &[name, secs] : layerSeconds) {
        for (int k = 0; k <= 13; ++k) {
            const auto kind = static_cast<model::LayerKind>(k);
            if (model::layerKindName(kind) == name &&
                model::isDiffusionLayer(kind))
                total += secs;
        }
    }
    return total;
}

InferenceSimResult
simulateInference(const sys::PlatformSpec &platform, size_t tokens,
                  XlaCache &cache,
                  const InferenceSimOptions &options)
{
    InferenceSimResult result;
    const auto &cfg = options.config;
    const auto graph = model::operatorGraph(tokens, cfg);

    // Memory placement: weights + activations vs VRAM.
    const uint64_t footprint =
        model::activationBytes(tokens, cfg) + model::weightBytes(cfg);
    const bool spills = footprint > platform.gpu.vramBytes;
    if (spills && !options.unifiedMemory) {
        result.oom = true;
        return result;
    }
    result.usedUnifiedMemory = spills;
    // Only the overflow fraction pays the unified-memory penalty.
    const double spillFraction =
        spills ? 1.0 - static_cast<double>(platform.gpu.vramBytes) /
                           static_cast<double>(footprint)
               : 0.0;

    // Host phases. Extra threads help only the parallelizable
    // share of preprocessing (dispatch is one host thread).
    XlaPhases phases =
        evaluateXlaPhases(platform, graph, tokens, cache);
    const double threadScale =
        (1.0 - options.hostParallelFraction) +
        options.hostParallelFraction /
            std::max<uint32_t>(1, options.threads);
    result.initSeconds = options.gpuAlreadyInitialized
                             ? 0.0
                             : phases.initSeconds * threadScale;
    result.compileSeconds = phases.compileSeconds * threadScale;
    result.finalizeSeconds = phases.finalizeSeconds * threadScale;

    result.timeline.addSpan("gpu_init", TimelineLane::Host,
                            result.initSeconds);
    result.timeline.addSpanAt("xla_compile", TimelineLane::Compile,
                              result.initSeconds,
                              result.compileSeconds);

    // GPU execution of the operator graph.
    GpuDevice device(platform.gpu);
    const double gpuStart =
        result.initSeconds + result.compileSeconds;
    double cursor = gpuStart;
    for (const auto &layer : graph) {
        double layerTotal = 0.0;
        for (uint32_t i = 0; i < layer.count; ++i) {
            // The spill penalty applies to the bandwidth-bound
            // portion, weighted by how much of the footprint lives
            // across the PCIe link.
            const double t = device.executeKernel(
                layer.cost.flops,
                layer.cost.bytes *
                    (1.0 + spillFraction *
                               (platform.gpu.unifiedMemPenalty -
                                1.0)),
                false);
            layerTotal += t;
        }
        result.layerSeconds[model::layerKindName(layer.kind)] +=
            layerTotal;
        result.timeline.addSpanAt(model::layerKindName(layer.kind),
                                  TimelineLane::GpuCompute, cursor,
                                  layerTotal);
        cursor += layerTotal;
    }
    result.gpuComputeSeconds = cursor - gpuStart;
    result.deviceStats = device.stats();

    result.timeline.addSpanAt("finalize", TimelineLane::Host, cursor,
                              result.finalizeSeconds);
    return result;
}

} // namespace afsb::gpusim
