/**
 * @file
 * Inference-serving simulation: first-request latency and sustained
 * throughput with and without persistent model state.
 *
 * The paper's Related Work highlights GPU cold starts as unexplored
 * for JAX/XLA pipelines ("first-request latency — critical for
 * interactive workloads — remains largely unexplored"); Section VI
 * proposes persistent model state as the remedy. This simulator
 * quantifies it: a stream of inference requests (possibly of mixed
 * input sizes) is served by one GPU worker either cold (fresh XLA
 * cache per request, the Docker-per-request deployment) or warm
 * (one long-lived process with a shared cache).
 */

#ifndef AFSB_GPUSIM_SERVING_HH
#define AFSB_GPUSIM_SERVING_HH

#include <vector>

#include "gpusim/inference_sim.hh"

namespace afsb::gpusim {

/** One client request: an input of @p tokens tokens. */
struct ServingRequest
{
    size_t tokens = 0;
    double arrivalSeconds = 0.0;  ///< arrival time (open loop)
};

/** Per-request outcome. */
struct ServedRequest
{
    size_t tokens = 0;
    double startSeconds = 0.0;
    double finishSeconds = 0.0;
    double serviceSeconds = 0.0;   ///< init+compile+gpu+finalize
    double latencySeconds = 0.0;   ///< finish - arrival (queueing in)
    double compileSeconds = 0.0;
};

/** Aggregate serving metrics. */
struct ServingResult
{
    std::vector<ServedRequest> requests;
    double makespanSeconds = 0.0;
    double throughputPerHour = 0.0;
    double meanLatency = 0.0;
    double firstRequestLatency = 0.0;

    /** Mean latency of the steady-state tail (requests after the
     *  first), isolating the cold-start penalty. */
    double steadyLatency = 0.0;
};

/** Serving-policy knobs. */
struct ServingOptions
{
    /** Keep one process alive with a shared XLA cache (Section VI
     *  persistent model state) vs a fresh container per request. */
    bool persistentModelState = false;

    InferenceSimOptions inference;
};

/**
 * Serve @p requests in arrival order on one @p platform worker.
 */
ServingResult simulateServing(
    const sys::PlatformSpec &platform,
    const std::vector<ServingRequest> &requests,
    const ServingOptions &options = {});

/**
 * Convenience: @p count identical requests of @p tokens arriving
 * at time 0 (closed-loop batch).
 */
std::vector<ServingRequest> batchRequests(size_t count,
                                          size_t tokens);

} // namespace afsb::gpusim

#endif // AFSB_GPUSIM_SERVING_HH
