/**
 * @file
 * Full inference-phase simulation (the Fig 8 / Fig 9 / Table VI
 * generator).
 *
 * Executes the AF3 operator graph at paper scale on the roofline
 * device, preceded by the XLA host phases, with unified-memory
 * spill when activations exceed VRAM (the 6QNR-on-RTX4080 case) and
 * an Nsight-like timeline. Kernel dispatch is modeled as a single
 * host thread (the paper's explanation for flat inference thread
 * scaling): extra CPU threads only accelerate the (small) parallel
 * share of host preprocessing.
 */

#ifndef AFSB_GPUSIM_INFERENCE_SIM_HH
#define AFSB_GPUSIM_INFERENCE_SIM_HH

#include <map>
#include <string>

#include "gpusim/device.hh"
#include "gpusim/timeline.hh"
#include "gpusim/xla.hh"
#include "model/flops.hh"

namespace afsb::gpusim {

/** Options for one simulated inference request. */
struct InferenceSimOptions
{
    /** Host threads available to the inference process. */
    uint32_t threads = 1;

    /** Allow spilling past VRAM via unified memory; without it an
     *  over-VRAM request fails (OOM). */
    bool unifiedMemory = true;

    /** The process already holds a CUDA context and mapped VRAM
     *  (long-lived server): skip GPU initialization. */
    bool gpuAlreadyInitialized = false;

    /** Model configuration (paper dimensions by default). */
    model::ModelConfig config = model::paperConfig();

    /**
     * Fraction of host preprocessing that parallelizes across
     * threads; dispatch itself is single-threaded (Nsight finding).
     */
    double hostParallelFraction = 0.15;
};

/** Phase breakdown of one inference request (Fig 8 bars). */
struct InferenceSimResult
{
    bool oom = false;            ///< exceeded VRAM without UM
    bool usedUnifiedMemory = false;

    double initSeconds = 0.0;    ///< GPU/driver initialization
    double compileSeconds = 0.0; ///< XLA compilation
    double gpuComputeSeconds = 0.0;
    double finalizeSeconds = 0.0;

    /** Per-layer GPU seconds (Fig 9 / Table VI). */
    std::map<std::string, double> layerSeconds;

    Timeline timeline;
    DeviceStats deviceStats;

    double
    totalSeconds() const
    {
        return initSeconds + compileSeconds + gpuComputeSeconds +
               finalizeSeconds;
    }

    /** Share of total spent outside GPU compute. */
    double
    overheadFraction() const
    {
        const double t = totalSeconds();
        return t > 0.0 ? (t - gpuComputeSeconds) / t : 0.0;
    }

    /** Seconds in Pairformer-module layers. */
    double pairformerSeconds() const;

    /** Seconds in Diffusion-module layers. */
    double diffusionSeconds() const;
};

/**
 * Simulate one inference request.
 * @param cache XLA compilation cache; reuse across calls to model
 *        persistent model state (Section VI optimization).
 */
InferenceSimResult simulateInference(
    const sys::PlatformSpec &platform, size_t tokens,
    XlaCache &cache, const InferenceSimOptions &options = {});

} // namespace afsb::gpusim

#endif // AFSB_GPUSIM_INFERENCE_SIM_HH
