/**
 * @file
 * Full inference-phase simulation (the Fig 8 / Fig 9 / Table VI
 * generator).
 *
 * Executes the AF3 operator graph at paper scale on the roofline
 * device, preceded by the XLA host phases, with unified-memory
 * spill when activations exceed VRAM (the 6QNR-on-RTX4080 case) and
 * an Nsight-like timeline. Kernel dispatch is modeled as a single
 * host thread (the paper's explanation for flat inference thread
 * scaling): extra CPU threads only accelerate the (small) parallel
 * share of host preprocessing.
 */

#ifndef AFSB_GPUSIM_INFERENCE_SIM_HH
#define AFSB_GPUSIM_INFERENCE_SIM_HH

#include <map>
#include <string>

#include "gpusim/device.hh"
#include "gpusim/timeline.hh"
#include "gpusim/xla.hh"
#include "model/flops.hh"

namespace afsb::gpusim {

/** Options for one simulated inference request. */
struct InferenceSimOptions
{
    /** Host threads available to the inference process. */
    uint32_t threads = 1;

    /** Allow spilling past VRAM via unified memory; without it an
     *  over-VRAM request fails (OOM). */
    bool unifiedMemory = true;

    /** The process already holds a CUDA context and mapped VRAM
     *  (long-lived server): skip GPU initialization. */
    bool gpuAlreadyInitialized = false;

    /** Model configuration (paper dimensions by default). */
    model::ModelConfig config = model::paperConfig();

    /**
     * Fraction of host preprocessing that parallelizes across
     * threads; dispatch itself is single-threaded (Nsight finding).
     */
    double hostParallelFraction = 0.15;
};

/** Phase breakdown of one inference request (Fig 8 bars). */
struct InferenceSimResult
{
    bool oom = false;            ///< exceeded VRAM without UM
    bool usedUnifiedMemory = false;

    double initSeconds = 0.0;    ///< GPU/driver initialization
    double compileSeconds = 0.0; ///< XLA compilation
    double gpuComputeSeconds = 0.0;
    double finalizeSeconds = 0.0;

    /** Per-layer GPU seconds (Fig 9 / Table VI). */
    std::map<std::string, double> layerSeconds;

    Timeline timeline;
    DeviceStats deviceStats;

    double
    totalSeconds() const
    {
        return initSeconds + compileSeconds + gpuComputeSeconds +
               finalizeSeconds;
    }

    /** Share of total spent outside GPU compute. */
    double
    overheadFraction() const
    {
        const double t = totalSeconds();
        return t > 0.0 ? (t - gpuComputeSeconds) / t : 0.0;
    }

    /** Seconds in Pairformer-module layers. */
    double pairformerSeconds() const;

    /** Seconds in Diffusion-module layers. */
    double diffusionSeconds() const;
};

/**
 * Simulate one inference request.
 * @param cache XLA compilation cache; reuse across calls to model
 *        persistent model state (Section VI optimization).
 */
InferenceSimResult simulateInference(
    const sys::PlatformSpec &platform, size_t tokens,
    XlaCache &cache, const InferenceSimOptions &options = {});

/**
 * Outcome of one batched dispatch: B requests from the same token
 * bucket executed together. The batch pays the host phases once
 * (one shared (layer, bucket) compile, one finalize base), runs
 * batch-scaled kernels on the roofline device — amortizing launch
 * overhead and the per-kernel utilization ramp — and accounts the
 * FLOPs spent on pad tokens separately from useful work.
 */
struct BatchedInferenceResult
{
    bool oom = false; ///< a per-device shard exceeds VRAM without UM
    bool usedUnifiedMemory = false;

    size_t batchSize = 0;
    size_t execTokens = 0; ///< padded per-member execution length
    uint32_t gpus = 1;     ///< devices the batch fanned out across

    double initSeconds = 0.0;
    double compileSeconds = 0.0;
    double gpuComputeSeconds = 0.0; ///< max over device shards
    double finalizeSeconds = 0.0;

    /** FLOPs that serve real tokens vs pad tokens. */
    double usefulFlops = 0.0;
    double paddedFlops = 0.0;

    /** Aggregated over all devices in the fan-out. */
    DeviceStats deviceStats;

    double
    totalSeconds() const
    {
        return initSeconds + compileSeconds + gpuComputeSeconds +
               finalizeSeconds;
    }

    /** Share of executed FLOPs burned on padding. */
    double
    paddingWasteFraction() const
    {
        const double total = usefulFlops + paddedFlops;
        return total > 0.0 ? paddedFlops / total : 0.0;
    }
};

/**
 * Largest batch whose activations fit one device alongside the
 * replicated weights at execution length @p execTokens; at least 1
 * (a single over-VRAM request falls back to unified memory or OOM,
 * exactly like the solo path).
 */
size_t maxBatchForVram(const sys::PlatformSpec &platform,
                       size_t execTokens,
                       const model::ModelConfig &cfg);

/**
 * Simulate one batched dispatch of @p tokensList requests, which
 * must all fall in the same @p cache token bucket. A batch of one
 * runs at its native length and reproduces simulateInference
 * bit-identically; larger batches pad every member to the bucket's
 * execution length (cache.paddedTokens). With @p gpus > 1 the batch
 * shards round-robin across data-parallel devices (weights
 * replicated, compile still paid once) and the GPU phase is the
 * slowest shard.
 */
BatchedInferenceResult simulateBatchedInference(
    const sys::PlatformSpec &platform,
    const std::vector<size_t> &tokensList, XlaCache &cache,
    const InferenceSimOptions &options = {}, uint32_t gpus = 1);

} // namespace afsb::gpusim

#endif // AFSB_GPUSIM_INFERENCE_SIM_HH
