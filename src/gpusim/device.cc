#include "gpusim/device.hh"

#include <algorithm>

namespace afsb::gpusim {

GpuDevice::GpuDevice(const sys::GpuSpec &spec) : spec_(spec) {}

double
GpuDevice::achievableFlops(double flops) const
{
    // Throughput ramp: a kernel reaches the device's sustained rate
    // only once its volume amortizes wave quantization (~2 us of
    // ramp at full rate). Bigger machines need bigger kernels to
    // saturate — H100 more so than a 4080.
    const double rampFlops = spec_.peakFlops * 2e-6;
    const double eff = flops / (flops + rampFlops);
    return std::max(spec_.peakFlops * eff, 1.0);
}

double
GpuDevice::executeKernel(double flops, double bytes,
                         bool oversubscribed)
{
    const double computeTime = flops / achievableFlops(flops);
    double memTime = bytes / spec_.memBandwidth;
    if (oversubscribed)
        memTime *= spec_.unifiedMemPenalty;
    const double busy = std::max(computeTime, memTime);
    const double launch = spec_.kernelLaunchUs * 1e-6;

    ++stats_.kernelsLaunched;
    stats_.flopsExecuted += flops;
    stats_.bytesMoved += bytes;
    stats_.busySeconds += busy;
    stats_.launchSeconds += launch;
    return busy + launch;
}

} // namespace afsb::gpusim
