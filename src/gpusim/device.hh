/**
 * @file
 * Roofline GPU device model.
 *
 * Kernels take max(flops / achievable-flops, bytes / bandwidth) plus
 * a fixed launch cost. Achievable throughput ramps with kernel size
 * (small kernels cannot fill the machine), which is what lets the
 * same operator graph be compute-bound on an RTX 4080 but
 * launch/ramp-bound on an H100 — the Fig 8 contrast.
 */

#ifndef AFSB_GPUSIM_DEVICE_HH
#define AFSB_GPUSIM_DEVICE_HH

#include <cstdint>

#include "sys/platform.hh"

namespace afsb::gpusim {

/** Accumulated device counters. */
struct DeviceStats
{
    uint64_t kernelsLaunched = 0;
    double flopsExecuted = 0.0;
    double bytesMoved = 0.0;
    double busySeconds = 0.0;
    double launchSeconds = 0.0;
};

/** One simulated GPU. */
class GpuDevice
{
  public:
    explicit GpuDevice(const sys::GpuSpec &spec);

    const sys::GpuSpec &spec() const { return spec_; }

    /**
     * Execute one kernel.
     * @param flops Arithmetic volume.
     * @param bytes DRAM traffic.
     * @param oversubscribed True when the working set spills VRAM
     *        (unified-memory mode): bandwidth-bound time is
     *        multiplied by the spill penalty.
     * @return Kernel duration in seconds (including launch).
     */
    double executeKernel(double flops, double bytes,
                         bool oversubscribed = false);

    /** Achievable FLOP/s for a kernel of @p flops volume. */
    double achievableFlops(double flops) const;

    const DeviceStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    sys::GpuSpec spec_;
    DeviceStats stats_;
};

} // namespace afsb::gpusim

#endif // AFSB_GPUSIM_DEVICE_HH
