#include "gpusim/timeline.hh"

#include <algorithm>

#include "util/str.hh"
#include "util/units.hh"

namespace afsb::gpusim {

std::string
laneName(TimelineLane lane)
{
    switch (lane) {
      case TimelineLane::Host: return "host";
      case TimelineLane::Compile: return "compile";
      case TimelineLane::GpuCompute: return "gpu";
      case TimelineLane::Transfer: return "transfer";
    }
    return "?";
}

void
Timeline::addSpan(std::string name, TimelineLane lane,
                  double duration)
{
    double start = 0.0;
    for (const auto &s : spans_)
        if (s.lane == lane)
            start = std::max(start, s.start + s.duration);
    addSpanAt(std::move(name), lane, start, duration);
}

void
Timeline::addSpanAt(std::string name, TimelineLane lane,
                    double start, double duration)
{
    spans_.push_back({std::move(name), lane, start, duration});
}

double
Timeline::endTime() const
{
    double end = 0.0;
    for (const auto &s : spans_)
        end = std::max(end, s.start + s.duration);
    return end;
}

double
Timeline::laneTotal(TimelineLane lane) const
{
    double total = 0.0;
    for (const auto &s : spans_)
        if (s.lane == lane)
            total += s.duration;
    return total;
}

std::string
Timeline::render() const
{
    const double end = endTime();
    if (end <= 0.0)
        return "(empty timeline)\n";
    constexpr int width = 60;
    std::string out;
    for (const auto &s : spans_) {
        const int startCol = static_cast<int>(s.start / end * width);
        int len = static_cast<int>(s.duration / end * width);
        len = std::max(1, len);
        std::string bar(static_cast<size_t>(startCol), ' ');
        bar += std::string(static_cast<size_t>(
                               std::min(len, width - startCol)),
                           '#');
        out += strformat("%-10s %-28s |%-*s| %s\n",
                         laneName(s.lane).c_str(), s.name.c_str(),
                         width, bar.c_str(),
                         formatSeconds(s.duration).c_str());
    }
    return out;
}

} // namespace afsb::gpusim
