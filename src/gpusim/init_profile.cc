#include "gpusim/init_profile.hh"

#include "opgraph/build.hh"
#include "util/memtrace.hh"
#include "util/units.hh"

namespace afsb::gpusim {

std::vector<InitBottleneckRow>
profileInitPhase(const sys::PlatformSpec &platform, size_t tokens,
                 const model::ModelConfig &cfg)
{
    (void)platform;
    const double n = static_cast<double>(tokens);

    // --- Page faults -----------------------------------------------------
    // _M_fill_insert zero-fills freshly reserved tensor buffers:
    // one soft fault per 4 KiB page of activation memory.
    const double allocBytes =
        static_cast<double>(model::activationBytes(tokens, cfg));
    const double fillFaults = allocBytes / 4096.0;
    // The rest of the phase (imports, Python runtime, driver maps,
    // weight mmaps) faults a fixed page population plus buffers
    // growing with the activation footprint.
    const double otherFaults = 2.5e6 + allocBytes / 1200.0;

    // --- dTLB misses -------------------------------------------------
    // ByteSizeOf walks per-tensor shape metadata: a handful of
    // pointer-chasing misses per compiled kernel, independent of N.
    const double graphKernels = [&] {
        double k = 0.0;
        for (const auto &op :
             opgraph::buildInferenceGraph(tokens, cfg).ops)
            k += static_cast<double>(op.kernels) * op.count;
        return k;
    }();
    const double byteSizeOfMisses = 5.0 * graphKernels;
    // Everything else's dTLB misses grow with the activation
    // footprint being touched.
    const double otherTlbMisses = 2.5e6 + allocBytes / 3000.0;

    // --- LLC misses --------------------------------------------------
    // copy_to_iter streams the model weights (token independent)
    // plus the input feature block from the page cache.
    const double weightBytes =
        static_cast<double>(model::weightBytes(cfg));
    const double copyMisses =
        (weightBytes + n * cfg.msaFeatureDim * 4.0) / 64.0;
    const double otherLlcMisses = 7.5e7 + allocBytes / 700.0;

    auto pct = [](double part, double rest) {
        return 100.0 * part / (part + rest);
    };

    return {
        {"Page Faults", "std::vector::_M_fill_insert",
         pct(fillFaults, otherFaults)},
        {"dTLB Load Misses", "xla::ShapeUtil::ByteSizeOf",
         pct(byteSizeOfMisses, otherTlbMisses)},
        {"LLC Load Misses", "copy_to_iter",
         pct(copyMisses, otherLlcMisses)},
    };
}

double
initPhaseSeconds(const sys::PlatformSpec &platform,
                 const XlaCostModel &costs)
{
    const double hostFactor =
        costs.refClockGhz / platform.cpu.maxClockGhz;
    return hostFactor *
           (costs.baseInitSeconds +
            costs.initPerVramGib *
                static_cast<double>(platform.gpu.vramBytes) /
                static_cast<double>(GiB));
}

} // namespace afsb::gpusim
