/**
 * @file
 * End-to-end AF3 inference over the mini tensor engine.
 *
 * Ties embedder -> Pairformer -> Diffusion together and captures a
 * per-layer wall-clock profile (the JAX-profiler analog used for the
 * executable validation of Fig 9 / Table VI shapes).
 */

#ifndef AFSB_MODEL_AF3_MODEL_HH
#define AFSB_MODEL_AF3_MODEL_HH

#include <map>
#include <string>

#include "bio/sequence.hh"
#include "model/confidence.hh"
#include "model/diffusion.hh"
#include "model/embedder.hh"
#include "model/flops.hh"
#include "model/pairformer.hh"

namespace afsb::model {

/** Wall-clock per layer name, accumulated across invocations. */
using LayerProfile = std::map<std::string, double>;

/** Inference output: structure, confidence, and layer profile. */
struct InferenceResult
{
    Structure structure;
    ConfidenceResult confidence;
    LayerProfile profile;

    /** Seconds spent in Pairformer layers. */
    double pairformerSeconds() const;

    /** Seconds spent in Diffusion layers. */
    double diffusionSeconds() const;
};

/** The assembled model. */
class Af3Model
{
  public:
    /**
     * Build with random weights from @p seed.
     */
    Af3Model(const ModelConfig &cfg, uint64_t seed);

    /**
     * Run inference for @p complex_input.
     * @param msa Per-chain MSA depths from the MSA phase.
     * @param sample_seed Seed for the diffusion noise (AF3's
     *        modelSeeds semantics).
     */
    InferenceResult infer(const bio::Complex &complex_input,
                          const MsaFeatures &msa,
                          uint64_t sample_seed = 1) const;

    const ModelConfig &config() const { return cfg_; }

  private:
    ModelConfig cfg_;
    EmbedderWeights embedder_;
    Pairformer pairformer_;
    DiffusionModule diffusion_;
    ConfidenceWeights confidence_;
};

} // namespace afsb::model

#endif // AFSB_MODEL_AF3_MODEL_HH
