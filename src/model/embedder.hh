/**
 * @file
 * Input embedder: complex + MSA features -> initial pair/single.
 *
 * AF3 greatly reduces MSA usage relative to AF2: alignment features
 * are summarized into a per-position profile that is folded into the
 * single representation and a relative-position / chain-identity
 * encoding seeds the pair representation. Token count equals total
 * residues across chains (all modalities).
 */

#ifndef AFSB_MODEL_EMBEDDER_HH
#define AFSB_MODEL_EMBEDDER_HH

#include <vector>

#include "bio/sequence.hh"
#include "model/pairformer.hh"

namespace afsb::model {

/** Per-chain MSA summary fed into the embedder. */
struct MsaFeatures
{
    /** MSA depth per chain (0 for chains without alignments). */
    std::vector<size_t> depthPerChain;
};

/** Embedder weights. */
struct EmbedderWeights
{
    Tensor residueEmbed;  ///< (25, c_s) token-type embedding
    Tensor pairPosEmbed;  ///< (65, c_z)  clipped relative position
    Tensor msaProj;       ///< (1, c_s)   depth scalar projection

    static EmbedderWeights init(const ModelConfig &cfg, Rng &rng);
};

/** Build the initial model state for @p complex_input. */
PairState embedInput(const bio::Complex &complex_input,
                     const MsaFeatures &msa,
                     const EmbedderWeights &weights,
                     const ModelConfig &cfg);

} // namespace afsb::model

#endif // AFSB_MODEL_EMBEDDER_HH
