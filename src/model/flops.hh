/**
 * @file
 * Analytic arithmetic/traffic costs of the AF3 operator graph.
 *
 * For every layer the model executes, this module computes the
 * floating-point operations, the DRAM byte traffic, and the number
 * of GPU kernels it lowers to at a given token count N and model
 * configuration. The GPU simulator replays the resulting operator
 * list through its roofline model to produce the paper's Fig 8/9
 * and Table VI at published scale — while the mini tensor engine
 * executes the identical graph shape for correctness.
 */

#ifndef AFSB_MODEL_FLOPS_HH
#define AFSB_MODEL_FLOPS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/config.hh"

namespace afsb::model {

/** Layer taxonomy matching the paper's Fig 9 slices. */
enum class LayerKind
{
    InputEmbedding,
    TriangleMultOutgoing,
    TriangleMultIncoming,
    TriangleAttnStarting,
    TriangleAttnEnding,
    PairTransition,
    SingleAttention,
    SingleTransition,
    DiffusionConditioning,
    LocalAttentionEncoder,
    GlobalAttention,
    LocalAttentionDecoder,
    CoordinateUpdate,
    ConfidenceHead,
};

/** Display name ("triangle attention", ...). */
std::string layerKindName(LayerKind kind);

/**
 * Reverse lookup of layerKindName, for the opgraph IR parsers.
 * @return false when @p name is not a known layer kind.
 */
bool layerKindByName(const std::string &name, LayerKind *kind);

/** True for Pairformer-module layers (red slices in Fig 9). */
bool isPairformerLayer(LayerKind kind);

/** True for Diffusion-module layers (blue slices in Fig 9). */
bool isDiffusionLayer(LayerKind kind);

/** Cost of one layer instance. */
struct LayerCost
{
    double flops = 0.0;
    double bytes = 0.0;     ///< DRAM traffic (activations + weights)
    uint32_t kernels = 1;   ///< GPU kernels the layer lowers to
};

/** One entry of the operator graph: a layer and its repeat count. */
struct LayerInstance
{
    LayerKind kind;
    uint32_t count = 1;     ///< total executions in one inference
    LayerCost cost;         ///< per-execution cost
};

/** Cost of a single execution of @p kind at @p tokens tokens. */
LayerCost layerCost(LayerKind kind, size_t tokens,
                    const ModelConfig &cfg);

/**
 * The full inference operator graph at @p tokens tokens:
 * embedding, cfg.pairformerBlocks Pairformer blocks, and
 * cfg.diffusionSteps denoising iterations.
 */
std::vector<LayerInstance> operatorGraph(size_t tokens,
                                         const ModelConfig &cfg);

/** Total FLOPs over a graph. */
double totalFlops(const std::vector<LayerInstance> &graph);

/**
 * Peak activation memory (bytes) at @p tokens: dominated by the
 * (N, N, c_z) pair tensor plus attention workspace; determines
 * whether inference fits GPU VRAM (the 6QNR unified-memory case).
 */
uint64_t activationBytes(size_t tokens, const ModelConfig &cfg);

/** Model weight bytes at the configured dimensions. */
uint64_t weightBytes(const ModelConfig &cfg);

} // namespace afsb::model

#endif // AFSB_MODEL_FLOPS_HH
