/**
 * @file
 * Task-graph schedulers for the barrier-heavy model phases.
 *
 * The fork-join fast paths in layers.cc / diffusion.cc run each
 * sub-layer as a sequence of parallelFor sweeps with an implicit
 * barrier between every sweep: layer-norm all lines, barrier,
 * project all lines, barrier, run all attention units, barrier,
 * apply the residual, barrier, next sub-layer.  At the tail of every
 * sweep most workers idle while the last task drains.
 *
 * The schedulers here recast one Pairformer block and one diffusion
 * token-transformer stack as TaskGroup task graphs instead: work is
 * decomposed into the same units the fork-join path uses (rowops row
 * blocks, unitk attention/einsum units), and dependencies are
 * expressed with TaskGroup gates, so independent units of the *next*
 * sub-layer start as soon as the lines they read are finished — the
 * epilogue of triangle-mult-outgoing on one line block overlaps the
 * prologue of triangle-mult-incoming on another.
 *
 * Determinism: every task calls the same compiled bodies
 * (tensor::rowops, model::unitk) on the same pre-assigned ranges and
 * output slots as the fork-join path; partitions are pure functions
 * of the problem shape (16-line blocks, fixed unit ids) and
 * GEMM-backed ranges start on even rows.  Results are therefore
 * bit-identical to the fork-join path at every pool size — the
 * TaskGraph sweep tests byte-compare both engines across worker
 * counts.
 *
 * All tensors a graph touches are allocated on the spawning thread
 * before any task runs (the tensor::Arena is single-threaded by
 * contract); each sync window opens its own Arena::Scope so scratch
 * is rewound as the graph advances.
 */

#ifndef AFSB_MODEL_BLOCK_GRAPH_HH
#define AFSB_MODEL_BLOCK_GRAPH_HH

#include "model/diffusion.hh"
#include "model/pairformer.hh"

namespace afsb::model::graph {

/**
 * True when the task-graph scheduler should run: opted in
 * (cfg.taskGraph), a pool to schedule on, fast kernels selected, no
 * per-layer timing hook (the hook needs sub-layer barriers for
 * attribution), and not already inside a pool worker or task (where
 * a group would run inline and the classic path is cheaper).
 */
bool taskGraphEligible(const ModelConfig &cfg, bool hooked);

/**
 * One Pairformer block as a task graph: three sync windows —
 * {triMultOut, triMultIn}, {triAttnStart, triAttnEnd}, {pairTrans,
 * singleAttn, singleTrans} — with per-line-block chaining between
 * the sub-layers inside a window.  Updates pair and single in place;
 * bit-identical to the layers.cc sequence.
 */
void runPairformerBlock(Tensor &pair, Tensor &single,
                        const PairformerBlockWeights &w,
                        const ModelConfig &cfg);

/**
 * The diffusion token-transformer stack (local encoder, global
 * attention, local decoder) as a task graph: attention blocks are
 * grouped into sync windows of four, and inside a window each
 * token-row block chains residual + transition + next block's
 * projections without waiting for the other rows.  Updates h in
 * place; bit-identical to the tokenAttention loop in diffusion.cc.
 */
void runDiffusionTokenStack(Tensor &h, const DiffusionWeights &w,
                            const ModelConfig &cfg);

} // namespace afsb::model::graph

#endif // AFSB_MODEL_BLOCK_GRAPH_HH
