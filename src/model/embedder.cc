#include "model/embedder.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace afsb::model {

EmbedderWeights
EmbedderWeights::init(const ModelConfig &cfg, Rng &rng)
{
    EmbedderWeights w;
    // 20 amino acids + 4 nucleotides + 1 unknown = 25 token types.
    w.residueEmbed = Tensor::randomNormal({25, cfg.singleDim}, rng,
                                          0.5f);
    // Relative positions clipped to [-32, 32].
    w.pairPosEmbed = Tensor::randomNormal({65, cfg.pairDim}, rng,
                                          0.5f);
    w.msaProj = Tensor::randomNormal({1, cfg.singleDim}, rng, 0.1f);
    return w;
}

namespace {

/** Token-type index: protein residues 0-19, nucleotides 20-23. */
size_t
tokenType(const bio::Sequence &chain, size_t pos)
{
    if (chain.type() == bio::MoleculeType::Protein)
        return chain[pos];
    return 20 + chain[pos];
}

} // namespace

PairState
embedInput(const bio::Complex &complex_input, const MsaFeatures &msa,
           const EmbedderWeights &weights, const ModelConfig &cfg)
{
    const size_t n = complex_input.totalResidues();
    panicIf(n == 0, "embedInput: empty complex");
    if (!msa.depthPerChain.empty() &&
        msa.depthPerChain.size() != complex_input.chainCount())
        fatal("embedInput: MSA depth vector does not match chains");

    PairState state;
    state.single = Tensor({n, cfg.singleDim});
    state.pair = Tensor({n, n, cfg.pairDim});

    // Single representation: token-type embedding + MSA-depth
    // signal (log-scaled, shared projection).
    std::vector<size_t> chainOf(n);
    std::vector<size_t> posInChain(n);
    size_t tok = 0;
    for (size_t c = 0; c < complex_input.chainCount(); ++c) {
        const auto &chain = complex_input.chains()[c];
        const double depth =
            msa.depthPerChain.empty() ? 0.0
                                      : static_cast<double>(
                                            msa.depthPerChain[c]);
        const float msaSignal =
            static_cast<float>(std::log1p(depth));
        for (size_t p = 0; p < chain.length(); ++p, ++tok) {
            chainOf[tok] = c;
            posInChain[tok] = p;
            const size_t type = tokenType(chain, p);
            float *row = state.single.data() + tok * cfg.singleDim;
            const float *emb =
                weights.residueEmbed.data() + type * cfg.singleDim;
            for (size_t d = 0; d < cfg.singleDim; ++d)
                row[d] = emb[d] +
                         msaSignal * weights.msaProj[d];
        }
    }

    // Pair representation: clipped relative-position embedding for
    // same-chain pairs; a distinct bucket (index 64) for cross-chain
    // pairs.
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            size_t bucket;
            if (chainOf[i] == chainOf[j]) {
                const ptrdiff_t rel =
                    static_cast<ptrdiff_t>(posInChain[i]) -
                    static_cast<ptrdiff_t>(posInChain[j]);
                bucket = static_cast<size_t>(
                    std::clamp<ptrdiff_t>(rel, -32, 32) + 32);
            } else {
                bucket = 64;
            }
            float *row =
                state.pair.data() + (i * n + j) * cfg.pairDim;
            const float *emb = weights.pairPosEmbed.data() +
                               bucket * cfg.pairDim;
            for (size_t d = 0; d < cfg.pairDim; ++d)
                row[d] = emb[d];
        }
    }
    return state;
}

} // namespace afsb::model
