#include "model/layers.hh"

#include <cmath>
#include <cstring>

#include "model/unit_kernels.hh"

#include "util/grain.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace afsb::model {

using tensor::add;
using tensor::Arena;
using tensor::gelu;
using tensor::gemmAcc;
using tensor::layerNorm;
using tensor::linear;
using tensor::sigmoid;

namespace {

/** Xavier-ish init: stddev 1/sqrt(fan_in). */
Tensor
initWeight(size_t in, size_t out, Rng &rng)
{
    return Tensor::randomNormal(
        {in, out}, rng,
        1.0f / std::sqrt(static_cast<float>(in)));
}

/** Row-parallel helper: fn(begin, end) over [0, n) pair rows. Each
 *  row is computed whole by one task, so results match serial. */
void
forPairRows(size_t n, ThreadPool *pool,
            const std::function<void(size_t, size_t)> &fn)
{
    if (pool)
        pool->parallelFor(n, 1, fn);
    else
        fn(0, n);
}

/** Work-unit dispatcher for the GEMM-shaped kernels: fn(begin, end)
 *  over [0, units), grain sized so one task carries roughly
 *  @p flops_per_unit-independent ~0.25 Mflop of work. Units are
 *  self-contained, so any partition gives identical results. */
void
forUnits(size_t units, size_t flops_per_unit, ThreadPool *pool,
         const std::function<void(size_t, size_t)> &fn)
{
    if (!pool) {
        fn(0, units);
        return;
    }
    pool->parallelFor(units, grain::forFlops(flops_per_unit), fn);
}

/**
 * The reference triangle-attention loop (seed implementation,
 * unchanged): per (i, h, j), strided dot-product logits over the
 * intermediates kk, std::exp softmax, strided context accumulation.
 */
void
triangleAttentionNaive(Tensor &ctx, const Tensor &q, const Tensor &k,
                       const Tensor &v, const Tensor &bias, size_t n,
                       size_t heads, size_t dh, bool starting,
                       ThreadPool *pool)
{
    const size_t hd = heads * dh;
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(dh));
    forPairRows(n, pool, [&](size_t i0, size_t i1) {
        std::vector<float> logits(n);
        std::vector<float> probs(n);
        for (size_t i = i0; i < i1; ++i) {
            for (size_t h = 0; h < heads; ++h) {
                const size_t ho = h * dh;
                for (size_t j = 0; j < n; ++j) {
                    const float *qv =
                        q.data() + (i * n + j) * hd + ho;
                    // Logits over intermediates kk.
                    float mx = -1e30f;
                    for (size_t kk = 0; kk < n; ++kk) {
                        const float *kv =
                            starting
                                ? k.data() + (i * n + kk) * hd + ho
                                : k.data() + (kk * n + j) * hd + ho;
                        float dot = 0.0f;
                        for (size_t d = 0; d < dh; ++d)
                            dot += qv[d] * kv[d];
                        const float b =
                            starting
                                ? bias[(j * n + kk) * heads + h]
                                : bias[(kk * n + i) * heads + h];
                        logits[kk] = dot * invSqrt + b;
                        mx = std::max(mx, logits[kk]);
                    }
                    float sum = 0.0f;
                    for (size_t kk = 0; kk < n; ++kk) {
                        probs[kk] = std::exp(logits[kk] - mx);
                        sum += probs[kk];
                    }
                    const float inv = 1.0f / sum;
                    float *AFSB_RESTRICT o =
                        ctx.data() + (i * n + j) * hd + ho;
                    for (size_t kk = 0; kk < n; ++kk) {
                        const float p = probs[kk] * inv;
                        const float *AFSB_RESTRICT vv =
                            starting
                                ? v.data() + (i * n + kk) * hd + ho
                                : v.data() + (kk * n + j) * hd + ho;
                        AFSB_VECTORIZE_LOOP
                        for (size_t d = 0; d < dh; ++d)
                            o[d] += p * vv[d];
                    }
                }
            }
        }
    });
}

/**
 * GEMM-shaped triangle attention. One unit = one (line, head): the
 * n x n logit matrix for that line is built as
 *   logits = (invSqrt * Q_line) * K_line^T + B_head
 * with Q addressed in place (strided rows through the microkernel),
 * K gathered once into a contiguous dh x n transposed slab, and the
 * bias pre-packed per head (shared by every line). After a fastExpf
 * row softmax, the context is the second GEMM
 *   ctx_line = P * V_line
 * with V addressed in place. ~4*n^2*dh flops per unit.
 */
void
triangleAttentionFast(Tensor &ctx, const Tensor &qs, const Tensor &k,
                      const Tensor &v, const Tensor &bias, size_t n,
                      size_t heads, size_t dh, bool starting,
                      ThreadPool *pool, Arena *arena)
{
    // Bias pre-pack, per head: P_h(x, y) is the bias added to
    // logits[x][y] in this mode (see unitk::packTriBiasRows).
    Tensor biasPack = Tensor::uninitialized({heads, n, n}, arena);
    forUnits(heads * n, 2 * n, pool, [&](size_t r0, size_t r1) {
        unitk::packTriBiasRows(biasPack.data(), bias.data(), n,
                               heads, starting, r0, r1);
    });

    forUnits(n * heads, 4 * n * n * dh, pool,
             [&](size_t u0, size_t u1) {
        for (size_t u = u0; u < u1; ++u)
            unitk::triAttnUnit(ctx.data(), qs.data(), k.data(),
                               v.data(), biasPack.data(), n, heads,
                               dh, starting, u, unitk::tlsScratchA(),
                               unitk::tlsScratchB());
    });
}

/** Reference einsum loop (seed implementation, unchanged). */
void
triangleMultNaive(Tensor &out, const Tensor &a, const Tensor &b,
                  size_t n, size_t c, bool outgoing,
                  ThreadPool *pool)
{
    forPairRows(n, pool, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            for (size_t j = 0; j < n; ++j) {
                float *AFSB_RESTRICT o =
                    out.data() + (i * n + j) * c;
                for (size_t k = 0; k < n; ++k) {
                    const float *AFSB_RESTRICT ai =
                        outgoing ? a.data() + (i * n + k) * c
                                 : a.data() + (k * n + i) * c;
                    const float *AFSB_RESTRICT bj =
                        outgoing ? b.data() + (j * n + k) * c
                                 : b.data() + (k * n + j) * c;
                    AFSB_VECTORIZE_LOOP
                    for (size_t ch = 0; ch < c; ++ch)
                        o[ch] += ai[ch] * bj[ch];
                }
            }
        }
    });
}

/** Swap the two line dims of an (n, n, c) tensor, keeping the
 *  contiguous channel rows intact: dst(i, k, :) = src(k, i, :).
 *  Brings the incoming orientation into outgoing layout so the hot
 *  einsum loop below always walks k with stride c. */
Tensor
transposeLines(const Tensor &src, size_t n, size_t c,
               ThreadPool *pool, Arena *arena)
{
    Tensor dst = Tensor::uninitialized({n, n, c}, arena);
    forUnits(n, 2 * n * c, pool, [&](size_t i0, size_t i1) {
        unitk::transposeLinesRange(dst.data(), src.data(), n, c, i0,
                                   i1);
    });
    return dst;
}

/**
 * Register-tiled einsum over the contiguous channel axis:
 * out[i,j,ch] = sum_k A(i,k)[ch] * B(j,k)[ch].
 *
 * The naive loop already vectorizes over the c contiguous channels,
 * so decomposing into c per-channel N x N GEMMs loses everything it
 * gains to the stride-c gathers (one cache line touched per element;
 * measured ~1.0x). Instead keep channels in the vector lanes and
 * tile the (i, j) space: for a block of kChanBlock = 16 channels
 * (exactly one cache line) and kColTile = 4 output columns, the
 * 4 x 16 accumulator tile fits in eight YMM registers and stays
 * there across the whole k sweep -- per k step that is ten vector
 * loads and eight FMAs with no accumulator spill, and each a-row
 * load is shared by four columns. The j loop runs outside i within
 * a kRowTile-row unit so the four b-rows stay cache-resident across
 * the tile, cutting naive's full-B re-stream per output row (the
 * real bottleneck: ~n/kRowTile x less B traffic).
 *
 * One unit = kRowTile output rows, each (i, j, ch) accumulated in
 * ascending k by exactly one task => bit-identical across pool
 * sizes. Channel / column remainders take scalar tail loops with
 * the same summation order.
 */
void
triangleMultFast(Tensor &out, const Tensor &a, const Tensor &b,
                 size_t n, size_t c, bool outgoing, ThreadPool *pool,
                 Arena *arena)
{
    Tensor aT, bT;
    const float *ap = a.data();
    const float *bp = b.data();
    if (!outgoing) {
        aT = transposeLines(a, n, c, pool, arena);
        bT = transposeLines(b, n, c, pool, arena);
        ap = aT.data();
        bp = bT.data();
    }

    forUnits(unitk::multUnits(n),
             2 * n * n * c * unitk::kMultRowTile, pool,
             [&](size_t u0, size_t u1) {
        for (size_t u = u0; u < u1; ++u)
            unitk::triMultTile(out.data(), ap, bp, n, c, u);
    });
}

} // namespace

TriangleMultWeights
TriangleMultWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t c = cfg.pairDim;
    TriangleMultWeights w;
    w.projA = initWeight(c, c, rng);
    w.projB = initWeight(c, c, rng);
    w.gateA = initWeight(c, c, rng);
    w.gateB = initWeight(c, c, rng);
    w.outProj = initWeight(c, c, rng);
    w.outGate = initWeight(c, c, rng);
    w.bias = Tensor({c});
    return w;
}

uint64_t
TriangleMultWeights::bytes() const
{
    return projA.bytes() + projB.bytes() + gateA.bytes() +
           gateB.bytes() + outProj.bytes() + outGate.bytes() +
           bias.bytes();
}

TriangleAttnWeights
TriangleAttnWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t c = cfg.pairDim;
    const size_t hd = cfg.heads * cfg.headDim;
    TriangleAttnWeights w;
    w.q = initWeight(c, hd, rng);
    w.k = initWeight(c, hd, rng);
    w.v = initWeight(c, hd, rng);
    w.biasProj = initWeight(c, cfg.heads, rng);
    w.outProj = initWeight(hd, c, rng);
    w.outBias = Tensor({c});
    return w;
}

uint64_t
TriangleAttnWeights::bytes() const
{
    return q.bytes() + k.bytes() + v.bytes() + biasProj.bytes() +
           outProj.bytes() + outBias.bytes();
}

TransitionWeights
TransitionWeights::init(size_t dim, Rng &rng)
{
    TransitionWeights w;
    w.w1 = initWeight(dim, 4 * dim, rng);
    w.b1 = Tensor({4 * dim});
    w.w2 = initWeight(4 * dim, dim, rng);
    w.b2 = Tensor({dim});
    return w;
}

uint64_t
TransitionWeights::bytes() const
{
    return w1.bytes() + b1.bytes() + w2.bytes() + b2.bytes();
}

SingleAttnWeights
SingleAttnWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t hd = cfg.heads * cfg.headDim;
    SingleAttnWeights w;
    w.q = initWeight(cfg.singleDim, hd, rng);
    w.k = initWeight(cfg.singleDim, hd, rng);
    w.v = initWeight(cfg.singleDim, hd, rng);
    w.pairBias = initWeight(cfg.pairDim, cfg.heads, rng);
    w.outProj = initWeight(hd, cfg.singleDim, rng);
    w.outBias = Tensor({cfg.singleDim});
    return w;
}

uint64_t
SingleAttnWeights::bytes() const
{
    return q.bytes() + k.bytes() + v.bytes() + pairBias.bytes() +
           outProj.bytes() + outBias.bytes();
}

Tensor
triangleAttentionCore(const Tensor &q, const Tensor &k,
                      const Tensor &v, const Tensor &bias,
                      size_t heads, size_t headDim, bool starting,
                      bool naive, ThreadPool *pool, Arena *arena)
{
    panicIf(q.rank() != 3 || q.dim(0) != q.dim(1),
            "triangleAttentionCore: q must be (N, N, h*dh)");
    const size_t n = q.dim(0);
    const size_t hd = heads * headDim;
    panicIf(q.dim(2) != hd,
            "triangleAttentionCore: channel dim mismatch");

    Tensor ctx = Tensor::zeros({n, n, hd}, arena);
    if (naive) {
        triangleAttentionNaive(ctx, q, k, v, bias, n, heads,
                               headDim, starting, pool);
    } else {
        const Tensor qs = tensor::scale(
            q, 1.0f / std::sqrt(static_cast<float>(headDim)),
            arena);
        triangleAttentionFast(ctx, qs, k, v, bias, n, heads,
                              headDim, starting, pool, arena);
    }
    return ctx;
}

Tensor
triangleMultEinsum(const Tensor &a, const Tensor &b, bool outgoing,
                   bool naive, ThreadPool *pool, Arena *arena)
{
    panicIf(a.rank() != 3 || a.dim(0) != a.dim(1) ||
                a.shape() != b.shape(),
            "triangleMultEinsum: inputs must both be (N, N, c)");
    const size_t n = a.dim(0);
    const size_t c = a.dim(2);

    if (naive) {
        Tensor out = Tensor::zeros({n, n, c}, arena);
        triangleMultNaive(out, a, b, n, c, outgoing, pool);
        return out;
    }
    Tensor out = Tensor::uninitialized({n, n, c}, arena);
    triangleMultFast(out, a, b, n, c, outgoing, pool, arena);
    return out;
}

Tensor
singleAttentionCore(const Tensor &q, const Tensor &k,
                    const Tensor &v, const Tensor &bias,
                    size_t heads, size_t headDim, bool naive,
                    ThreadPool *pool, Arena *arena)
{
    panicIf(q.rank() != 2, "singleAttentionCore: q must be (N, h*dh)");
    const size_t n = q.dim(0);
    const size_t dh = headDim;
    const size_t hd = heads * dh;
    panicIf(q.dim(1) != hd,
            "singleAttentionCore: channel dim mismatch");
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(dh));

    Tensor ctx = Tensor::zeros({n, hd}, arena);
    if (naive) {
        // Reference loop (seed implementation, unchanged).
        forPairRows(n, pool, [&](size_t i0, size_t i1) {
            std::vector<float> logits(n);
            for (size_t i = i0; i < i1; ++i) {
                for (size_t h = 0; h < heads; ++h) {
                    const size_t ho = h * dh;
                    const float *qv = q.data() + i * hd + ho;
                    float mx = -1e30f;
                    for (size_t j = 0; j < n; ++j) {
                        const float *kv = k.data() + j * hd + ho;
                        float dot = 0.0f;
                        for (size_t d = 0; d < dh; ++d)
                            dot += qv[d] * kv[d];
                        logits[j] = dot * invSqrt +
                                    bias[(i * n + j) * heads + h];
                        mx = std::max(mx, logits[j]);
                    }
                    float sum = 0.0f;
                    for (size_t j = 0; j < n; ++j) {
                        logits[j] = std::exp(logits[j] - mx);
                        sum += logits[j];
                    }
                    const float inv = 1.0f / sum;
                    float *AFSB_RESTRICT o =
                        ctx.data() + i * hd + ho;
                    for (size_t j = 0; j < n; ++j) {
                        const float p = logits[j] * inv;
                        const float *AFSB_RESTRICT vv =
                            v.data() + j * hd + ho;
                        AFSB_VECTORIZE_LOOP
                        for (size_t d = 0; d < dh; ++d)
                            o[d] += p * vv[d];
                    }
                }
            }
        });
        return ctx;
    }

    // One unit per head: the triangle-attention unit without the
    // line loop. Bias pack P_h(i, j) = bias[(i*n+j)*heads+h].
    const Tensor qs = tensor::scale(q, invSqrt, arena);
    forUnits(heads, 4 * n * n * dh, pool, [&](size_t h0, size_t h1) {
        for (size_t h = h0; h < h1; ++h)
            unitk::singleAttnHead(ctx.data(), qs.data(), k.data(),
                                  v.data(), bias.data(), n, heads, dh,
                                  h, unitk::tlsScratchA(),
                                  unitk::tlsScratchB());
    });
    return ctx;
}

void
triangleMultiplicativeUpdate(Tensor &pair,
                             const TriangleMultWeights &w,
                             const ModelConfig &cfg, bool outgoing)
{
    panicIf(pair.rank() != 3 || pair.dim(0) != pair.dim(1),
            "triangleMult: pair must be (N, N, c)");
    ThreadPool *pool = cfg.pool;
    Arena *arena = cfg.arena;
    Arena::Scope scope(arena);

    const Tensor normed = layerNorm(pair, 1e-5f, pool, arena);
    const Tensor a = tensor::mul(
        sigmoid(linear(normed, w.gateA, pool, arena), arena),
        linear(normed, w.projA, pool, arena), arena);
    const Tensor b = tensor::mul(
        sigmoid(linear(normed, w.gateB, pool, arena), arena),
        linear(normed, w.projB, pool, arena), arena);

    const Tensor out = triangleMultEinsum(a, b, outgoing,
                                          cfg.forceNaive, pool,
                                          arena);
    const Tensor update =
        linear(layerNorm(out, 1e-5f, pool, arena), w.outProj,
               w.bias, pool, arena);
    const Tensor gate = sigmoid(
        linear(normed, w.outGate, pool, arena), arena);
    tensor::addInPlace(pair, tensor::mul(update, gate, arena));
}

void
triangleAttention(Tensor &pair, const TriangleAttnWeights &w,
                  const ModelConfig &cfg, bool starting)
{
    panicIf(pair.rank() != 3 || pair.dim(0) != pair.dim(1),
            "triangleAttention: pair must be (N, N, c)");
    ThreadPool *pool = cfg.pool;
    Arena *arena = cfg.arena;
    Arena::Scope scope(arena);

    const Tensor normed = layerNorm(pair, 1e-5f, pool, arena);
    const Tensor q = linear(normed, w.q, pool, arena); // (N,N,h*dh)
    const Tensor k = linear(normed, w.k, pool, arena);
    const Tensor v = linear(normed, w.v, pool, arena);
    const Tensor bias =
        linear(normed, w.biasProj, pool, arena);  // (N, N, h)

    const Tensor ctx =
        triangleAttentionCore(q, k, v, bias, cfg.heads, cfg.headDim,
                              starting, cfg.forceNaive, pool, arena);
    tensor::addInPlace(
        pair, linear(ctx, w.outProj, w.outBias, pool, arena));
}

void
pairTransition(Tensor &pair, const TransitionWeights &w,
               ThreadPool *pool, Arena *arena)
{
    Arena::Scope scope(arena);
    const Tensor h =
        gelu(linear(layerNorm(pair, 1e-5f, pool, arena), w.w1, w.b1,
                    pool, arena),
             arena);
    tensor::addInPlace(pair, linear(h, w.w2, w.b2, pool, arena));
}

void
singleAttentionWithPairBias(Tensor &single, const Tensor &pair,
                            const SingleAttnWeights &w,
                            const ModelConfig &cfg)
{
    panicIf(single.rank() != 2, "singleAttention: single is (N, c)");
    ThreadPool *pool = cfg.pool;
    Arena *arena = cfg.arena;
    Arena::Scope scope(arena);

    const Tensor normed = layerNorm(single, 1e-5f, pool, arena);
    const Tensor q = linear(normed, w.q, pool, arena);  // (N, h*dh)
    const Tensor k = linear(normed, w.k, pool, arena);
    const Tensor v = linear(normed, w.v, pool, arena);
    const Tensor bias =
        linear(layerNorm(pair, 1e-5f, pool, arena), w.pairBias,
               pool, arena);  // (N, N, h)

    const Tensor ctx =
        singleAttentionCore(q, k, v, bias, cfg.heads, cfg.headDim,
                            cfg.forceNaive, pool, arena);
    tensor::addInPlace(
        single, linear(ctx, w.outProj, w.outBias, pool, arena));
}

} // namespace afsb::model
