#include "model/layers.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace afsb::model {

using tensor::add;
using tensor::gelu;
using tensor::layerNorm;
using tensor::linear;
using tensor::sigmoid;

namespace {

/** Zero bias helper for projection layers without bias terms. */
Tensor
zeroBias(size_t dim)
{
    return Tensor({dim});
}

/** Xavier-ish init: stddev 1/sqrt(fan_in). */
Tensor
initWeight(size_t in, size_t out, Rng &rng)
{
    return Tensor::randomNormal(
        {in, out}, rng,
        1.0f / std::sqrt(static_cast<float>(in)));
}

/** Row-parallel helper: fn(begin, end) over [0, n) pair rows. Each
 *  row is computed whole by one task, so results match serial. */
void
forPairRows(size_t n, ThreadPool *pool,
            const std::function<void(size_t, size_t)> &fn)
{
    if (pool)
        pool->parallelFor(n, 1, fn);
    else
        fn(0, n);
}

} // namespace

TriangleMultWeights
TriangleMultWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t c = cfg.pairDim;
    TriangleMultWeights w;
    w.projA = initWeight(c, c, rng);
    w.projB = initWeight(c, c, rng);
    w.gateA = initWeight(c, c, rng);
    w.gateB = initWeight(c, c, rng);
    w.outProj = initWeight(c, c, rng);
    w.outGate = initWeight(c, c, rng);
    w.bias = Tensor({c});
    return w;
}

TriangleAttnWeights
TriangleAttnWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t c = cfg.pairDim;
    const size_t hd = cfg.heads * cfg.headDim;
    TriangleAttnWeights w;
    w.q = initWeight(c, hd, rng);
    w.k = initWeight(c, hd, rng);
    w.v = initWeight(c, hd, rng);
    w.biasProj = initWeight(c, cfg.heads, rng);
    w.outProj = initWeight(hd, c, rng);
    w.outBias = Tensor({c});
    return w;
}

TransitionWeights
TransitionWeights::init(size_t dim, Rng &rng)
{
    TransitionWeights w;
    w.w1 = initWeight(dim, 4 * dim, rng);
    w.b1 = Tensor({4 * dim});
    w.w2 = initWeight(4 * dim, dim, rng);
    w.b2 = Tensor({dim});
    return w;
}

SingleAttnWeights
SingleAttnWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t hd = cfg.heads * cfg.headDim;
    SingleAttnWeights w;
    w.q = initWeight(cfg.singleDim, hd, rng);
    w.k = initWeight(cfg.singleDim, hd, rng);
    w.v = initWeight(cfg.singleDim, hd, rng);
    w.pairBias = initWeight(cfg.pairDim, cfg.heads, rng);
    w.outProj = initWeight(hd, cfg.singleDim, rng);
    w.outBias = Tensor({cfg.singleDim});
    return w;
}

void
triangleMultiplicativeUpdate(Tensor &pair,
                             const TriangleMultWeights &w,
                             bool outgoing, ThreadPool *pool)
{
    panicIf(pair.rank() != 3 || pair.dim(0) != pair.dim(1),
            "triangleMult: pair must be (N, N, c)");
    const size_t n = pair.dim(0);
    const size_t c = pair.dim(2);
    const Tensor zb = zeroBias(c);

    const Tensor normed = layerNorm(pair, 1e-5f, pool);
    const Tensor a =
        tensor::mul(sigmoid(linear(normed, w.gateA, zb, pool)),
                    linear(normed, w.projA, zb, pool));
    const Tensor b =
        tensor::mul(sigmoid(linear(normed, w.gateB, zb, pool)),
                    linear(normed, w.projB, zb, pool));

    // The O(N^3 c) triangle einsum, row-parallel over i.
    Tensor out({n, n, c});
    forPairRows(n, pool, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            for (size_t j = 0; j < n; ++j) {
                float *AFSB_RESTRICT o =
                    out.data() + (i * n + j) * c;
                for (size_t k = 0; k < n; ++k) {
                    const float *AFSB_RESTRICT ai =
                        outgoing ? a.data() + (i * n + k) * c
                                 : a.data() + (k * n + i) * c;
                    const float *AFSB_RESTRICT bj =
                        outgoing ? b.data() + (j * n + k) * c
                                 : b.data() + (k * n + j) * c;
                    AFSB_VECTORIZE_LOOP
                    for (size_t ch = 0; ch < c; ++ch)
                        o[ch] += ai[ch] * bj[ch];
                }
            }
        }
    });

    const Tensor update =
        linear(layerNorm(out, 1e-5f, pool), w.outProj, w.bias, pool);
    const Tensor gate = sigmoid(linear(normed, w.outGate, zb, pool));
    tensor::addInPlace(pair, tensor::mul(update, gate));
}

void
triangleAttention(Tensor &pair, const TriangleAttnWeights &w,
                  const ModelConfig &cfg, bool starting)
{
    panicIf(pair.rank() != 3 || pair.dim(0) != pair.dim(1),
            "triangleAttention: pair must be (N, N, c)");
    const size_t n = pair.dim(0);
    const size_t heads = cfg.heads;
    const size_t dh = cfg.headDim;
    const size_t hd = heads * dh;
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(dh));

    ThreadPool *pool = cfg.pool;
    const Tensor normed = layerNorm(pair, 1e-5f, pool);
    const Tensor zbHd = zeroBias(hd);
    const Tensor zbH = zeroBias(heads);
    const Tensor q = linear(normed, w.q, zbHd, pool); // (N, N, h*dh)
    const Tensor k = linear(normed, w.k, zbHd, pool);
    const Tensor v = linear(normed, w.v, zbHd, pool);
    const Tensor bias =
        linear(normed, w.biasProj, zbH, pool);  // (N,N,h)

    Tensor ctx({n, n, hd});
    // Row-parallel over i; each (i, j, h) cell is independent, the
    // per-task scratch keeps the dispatch allocation-free inside.
    forPairRows(n, pool, [&](size_t i0, size_t i1) {
        std::vector<float> logits(n);
        std::vector<float> probs(n);
        for (size_t i = i0; i < i1; ++i) {
            for (size_t h = 0; h < heads; ++h) {
                const size_t ho = h * dh;
                for (size_t j = 0; j < n; ++j) {
                    const float *qv =
                        q.data() + (i * n + j) * hd + ho;
                    // Logits over intermediates kk.
                    float mx = -1e30f;
                    for (size_t kk = 0; kk < n; ++kk) {
                        const float *kv =
                            starting
                                ? k.data() + (i * n + kk) * hd + ho
                                : k.data() + (kk * n + j) * hd + ho;
                        float dot = 0.0f;
                        for (size_t d = 0; d < dh; ++d)
                            dot += qv[d] * kv[d];
                        const float b =
                            starting
                                ? bias[(j * n + kk) * heads + h]
                                : bias[(kk * n + i) * heads + h];
                        logits[kk] = dot * invSqrt + b;
                        mx = std::max(mx, logits[kk]);
                    }
                    float sum = 0.0f;
                    for (size_t kk = 0; kk < n; ++kk) {
                        probs[kk] = std::exp(logits[kk] - mx);
                        sum += probs[kk];
                    }
                    const float inv = 1.0f / sum;
                    float *AFSB_RESTRICT o =
                        ctx.data() + (i * n + j) * hd + ho;
                    for (size_t kk = 0; kk < n; ++kk) {
                        const float p = probs[kk] * inv;
                        const float *AFSB_RESTRICT vv =
                            starting
                                ? v.data() + (i * n + kk) * hd + ho
                                : v.data() + (kk * n + j) * hd + ho;
                        AFSB_VECTORIZE_LOOP
                        for (size_t d = 0; d < dh; ++d)
                            o[d] += p * vv[d];
                    }
                }
            }
        }
    });
    tensor::addInPlace(pair,
                       linear(ctx, w.outProj, w.outBias, pool));
}

void
pairTransition(Tensor &pair, const TransitionWeights &w,
               ThreadPool *pool)
{
    const Tensor h =
        gelu(linear(layerNorm(pair, 1e-5f, pool), w.w1, w.b1, pool));
    tensor::addInPlace(pair, linear(h, w.w2, w.b2, pool));
}

void
singleAttentionWithPairBias(Tensor &single, const Tensor &pair,
                            const SingleAttnWeights &w,
                            const ModelConfig &cfg)
{
    panicIf(single.rank() != 2, "singleAttention: single is (N, c)");
    const size_t n = single.dim(0);
    const size_t heads = cfg.heads;
    const size_t dh = cfg.headDim;
    const size_t hd = heads * dh;
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(dh));

    ThreadPool *pool = cfg.pool;
    const Tensor normed = layerNorm(single, 1e-5f, pool);
    const Tensor zbHd = zeroBias(hd);
    const Tensor zbH = zeroBias(heads);
    const Tensor q = linear(normed, w.q, zbHd, pool);  // (N, h*dh)
    const Tensor k = linear(normed, w.k, zbHd, pool);
    const Tensor v = linear(normed, w.v, zbHd, pool);
    const Tensor bias =
        linear(layerNorm(pair, 1e-5f, pool), w.pairBias, zbH,
               pool);  // (N, N, h)

    Tensor ctx({n, hd});
    forPairRows(n, pool, [&](size_t i0, size_t i1) {
        std::vector<float> logits(n);
        for (size_t i = i0; i < i1; ++i) {
            for (size_t h = 0; h < heads; ++h) {
                const size_t ho = h * dh;
                const float *qv = q.data() + i * hd + ho;
                float mx = -1e30f;
                for (size_t j = 0; j < n; ++j) {
                    const float *kv = k.data() + j * hd + ho;
                    float dot = 0.0f;
                    for (size_t d = 0; d < dh; ++d)
                        dot += qv[d] * kv[d];
                    logits[j] = dot * invSqrt +
                                bias[(i * n + j) * heads + h];
                    mx = std::max(mx, logits[j]);
                }
                float sum = 0.0f;
                for (size_t j = 0; j < n; ++j) {
                    logits[j] = std::exp(logits[j] - mx);
                    sum += logits[j];
                }
                const float inv = 1.0f / sum;
                float *AFSB_RESTRICT o = ctx.data() + i * hd + ho;
                for (size_t j = 0; j < n; ++j) {
                    const float p = logits[j] * inv;
                    const float *AFSB_RESTRICT vv =
                        v.data() + j * hd + ho;
                    AFSB_VECTORIZE_LOOP
                    for (size_t d = 0; d < dh; ++d)
                        o[d] += p * vv[d];
                }
            }
        }
    });
    tensor::addInPlace(single,
                       linear(ctx, w.outProj, w.outBias, pool));
}

} // namespace afsb::model
