#include "model/unit_kernels.hh"

#include <algorithm>
#include <cstring>

#include "tensor/ops.hh"
#include "util/simd.hh"

namespace afsb::model::unitk {

using tensor::gemmAcc;

std::vector<float> &
tlsScratchA()
{
    thread_local std::vector<float> v;
    return v;
}

std::vector<float> &
tlsScratchB()
{
    thread_local std::vector<float> v;
    return v;
}

/* Moved verbatim from layers.cc (and deduplicated with the copy in
 * diffusion.cc): the exp pass carries no reduction so it vectorizes
 * without -ffast-math; four partial sums break the serial float add
 * chain the compiler may not reassociate. */
void
softmaxRowsFast(float *AFSB_RESTRICT m, size_t rows, size_t n)
{
    for (size_t r = 0; r < rows; ++r) {
        float *AFSB_RESTRICT row = m + r * n;
        float mx = row[0];
        for (size_t i = 1; i < n; ++i)
            mx = std::max(mx, row[i]);
        AFSB_VECTORIZE_LOOP
        for (size_t i = 0; i < n; ++i)
            row[i] = fastExpf(row[i] - mx);
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            s0 += row[i];
            s1 += row[i + 1];
            s2 += row[i + 2];
            s3 += row[i + 3];
        }
        for (; i < n; ++i)
            s0 += row[i];
        const float inv = 1.0f / ((s0 + s1) + (s2 + s3));
        AFSB_VECTORIZE_LOOP
        for (size_t i2 = 0; i2 < n; ++i2)
            row[i2] *= inv;
    }
}

void
packTriBiasRows(float *pack, const float *bias, size_t n,
                size_t heads, bool starting, size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const size_t h = r / n;
        const size_t x = r % n;
        float *AFSB_RESTRICT dst = pack + (h * n + x) * n;
        if (starting) {
            const float *AFSB_RESTRICT src =
                bias + x * n * heads + h;
            for (size_t y = 0; y < n; ++y)
                dst[y] = src[y * heads];
        } else {
            const float *AFSB_RESTRICT src = bias + x * heads + h;
            for (size_t y = 0; y < n; ++y)
                dst[y] = src[y * n * heads];
        }
    }
}

void
triAttnUnit(float *ctx, const float *qs, const float *k,
            const float *v, const float *biasPack, size_t n,
            size_t heads, size_t dh, bool starting, size_t u,
            std::vector<float> &ktpScratch,
            std::vector<float> &logitScratch)
{
    const size_t hd = heads * dh;
    ktpScratch.resize(dh * n);
    logitScratch.resize(n * n);
    float *AFSB_RESTRICT ktp = ktpScratch.data();
    float *AFSB_RESTRICT logits = logitScratch.data();

    const size_t line = u / heads;
    const size_t h = u % heads;
    const size_t ho = h * dh;

    // Line bases: starting fixes i = line (unit rows sweep j, logits
    // columns sweep kk along row i); ending fixes j = line (rows
    // sweep i, columns sweep kk down column j).  Row strides through
    // the (N, N, hd) tensors follow.
    const size_t lineBase = starting ? line * n * hd : line * hd;
    const size_t rowStride = starting ? hd : n * hd;

    // K^T slab: ktp[d][kk] = K(kk)[d] for this line/head.
    const float *AFSB_RESTRICT kbase = k + lineBase + ho;
    for (size_t kk = 0; kk < n; ++kk) {
        const float *AFSB_RESTRICT kv = kbase + kk * rowStride;
        for (size_t d = 0; d < dh; ++d)
            ktp[d * n + kk] = kv[d];
    }

    // logits = bias pack, then += Qs * K^T.
    std::memcpy(logits, biasPack + h * n * n, n * n * sizeof(float));
    gemmAcc(qs + lineBase + ho, rowStride, ktp, n, logits, n, n, dh,
            n);

    softmaxRowsFast(logits, n, n);

    // ctx_line += P * V (ctx rows start zeroed).
    gemmAcc(logits, n, v + lineBase + ho, rowStride,
            ctx + lineBase + ho, rowStride, n, n, dh);
}

void
transposeLinesRange(float *dst, const float *src, size_t n, size_t c,
                    size_t i0, size_t i1)
{
    for (size_t i = i0; i < i1; ++i)
        for (size_t k = 0; k < n; ++k)
            std::memcpy(dst + (i * n + k) * c,
                        src + (k * n + i) * c, c * sizeof(float));
}

/* Moved verbatim from layers.cc triangleMultFast: 4 x 16 register
 * accumulator tile held across the whole k sweep; see that history
 * for the full rationale.  One unit = kMultRowTile output lines,
 * each (i, j, ch) accumulated in ascending k by exactly one caller
 * => bit-identical across schedulers. */
void
triMultTile(float *out, const float *AFSB_RESTRICT ap,
            const float *AFSB_RESTRICT bp, size_t n, size_t c,
            size_t u)
{
    constexpr size_t kChanBlock = 16;
    constexpr size_t kColTile = 4;

    const size_t cFull = c - c % kChanBlock;
    const size_t jFull = n - n % kColTile;
    const size_t i0 = u * kMultRowTile;
    const size_t i1 = std::min(n, i0 + kMultRowTile);
    for (size_t ch0 = 0; ch0 < cFull; ch0 += kChanBlock) {
        for (size_t j0 = 0; j0 < jFull; j0 += kColTile) {
            // Named accumulators (not acc[t][e]) so the tile is
            // fully unrolled and register-promoted; a rolled t loop
            // round-trips the tile through the stack every
            // iteration.
            const float *AFSB_RESTRICT b0 =
                bp + (j0 + 0) * n * c + ch0;
            const float *AFSB_RESTRICT b1 =
                bp + (j0 + 1) * n * c + ch0;
            const float *AFSB_RESTRICT b2 =
                bp + (j0 + 2) * n * c + ch0;
            const float *AFSB_RESTRICT b3 =
                bp + (j0 + 3) * n * c + ch0;
            for (size_t i = i0; i < i1; ++i) {
                const float *AFSB_RESTRICT arow =
                    ap + i * n * c + ch0;
                float acc0[kChanBlock] = {};
                float acc1[kChanBlock] = {};
                float acc2[kChanBlock] = {};
                float acc3[kChanBlock] = {};
                for (size_t k = 0; k < n; ++k) {
                    const float *AFSB_RESTRICT av = arow + k * c;
                    const float *AFSB_RESTRICT bv0 = b0 + k * c;
                    const float *AFSB_RESTRICT bv1 = b1 + k * c;
                    const float *AFSB_RESTRICT bv2 = b2 + k * c;
                    const float *AFSB_RESTRICT bv3 = b3 + k * c;
                    AFSB_VECTORIZE_LOOP
                    for (size_t e = 0; e < kChanBlock; ++e) {
                        const float av_e = av[e];
                        acc0[e] += av_e * bv0[e];
                        acc1[e] += av_e * bv1[e];
                        acc2[e] += av_e * bv2[e];
                        acc3[e] += av_e * bv3[e];
                    }
                }
                float *AFSB_RESTRICT orow =
                    out + (i * n + j0) * c + ch0;
                std::memcpy(orow, acc0, kChanBlock * sizeof(float));
                std::memcpy(orow + c, acc1,
                            kChanBlock * sizeof(float));
                std::memcpy(orow + 2 * c, acc2,
                            kChanBlock * sizeof(float));
                std::memcpy(orow + 3 * c, acc3,
                            kChanBlock * sizeof(float));
            }
        }
        // Column tail: j in [jFull, n), one column at a time.
        for (size_t j = jFull; j < n; ++j) {
            const float *AFSB_RESTRICT brow = bp + j * n * c + ch0;
            for (size_t i = i0; i < i1; ++i) {
                const float *AFSB_RESTRICT arow =
                    ap + i * n * c + ch0;
                float acc[kChanBlock] = {};
                for (size_t k = 0; k < n; ++k) {
                    const float *AFSB_RESTRICT av = arow + k * c;
                    const float *AFSB_RESTRICT bv = brow + k * c;
                    AFSB_VECTORIZE_LOOP
                    for (size_t e = 0; e < kChanBlock; ++e)
                        acc[e] += av[e] * bv[e];
                }
                std::memcpy(out + (i * n + j) * c + ch0, acc,
                            kChanBlock * sizeof(float));
            }
        }
    }
    // Channel tail: ch in [cFull, c), runtime-width tile.
    if (cFull < c) {
        const size_t ctail = c - cFull;
        for (size_t i = i0; i < i1; ++i) {
            const float *AFSB_RESTRICT arow = ap + i * n * c + cFull;
            for (size_t j = 0; j < n; ++j) {
                const float *AFSB_RESTRICT brow =
                    bp + j * n * c + cFull;
                float acc[16] = {};
                for (size_t k = 0; k < n; ++k) {
                    const float *AFSB_RESTRICT av = arow + k * c;
                    const float *AFSB_RESTRICT bv = brow + k * c;
                    for (size_t e = 0; e < ctail; ++e)
                        acc[e] += av[e] * bv[e];
                }
                float *AFSB_RESTRICT o =
                    out + (i * n + j) * c + cFull;
                for (size_t e = 0; e < ctail; ++e)
                    o[e] = acc[e];
            }
        }
    }
}

void
singleAttnHead(float *ctx, const float *qs, const float *k,
               const float *v, const float *bias, size_t n,
               size_t heads, size_t dh, size_t h,
               std::vector<float> &ktpScratch,
               std::vector<float> &logitScratch)
{
    const size_t hd = heads * dh;
    ktpScratch.resize(dh * n);
    logitScratch.resize(n * n);
    float *AFSB_RESTRICT ktp = ktpScratch.data();
    float *AFSB_RESTRICT logits = logitScratch.data();

    const size_t ho = h * dh;
    for (size_t j = 0; j < n; ++j) {
        const float *AFSB_RESTRICT kv = k + j * hd + ho;
        for (size_t d = 0; d < dh; ++d)
            ktp[d * n + j] = kv[d];
    }
    for (size_t i = 0; i < n; ++i) {
        float *AFSB_RESTRICT dst = logits + i * n;
        const float *AFSB_RESTRICT src = bias + i * n * heads + h;
        for (size_t j = 0; j < n; ++j)
            dst[j] = src[j * heads];
    }
    gemmAcc(qs + ho, hd, ktp, n, logits, n, n, dh, n);
    softmaxRowsFast(logits, n, n);
    gemmAcc(logits, n, v + ho, hd, ctx + ho, hd, n, n, dh);
}

void
tokenAttnSlab(float *ktp, const float *k, size_t n, size_t heads,
              size_t dh, size_t h)
{
    const size_t hd = heads * dh;
    const size_t ho = h * dh;
    for (size_t j = 0; j < n; ++j) {
        const float *AFSB_RESTRICT kv = k + j * hd + ho;
        for (size_t d = 0; d < dh; ++d)
            ktp[d * n + j] = kv[d];
    }
}

void
tokenAttnRows(float *ctx, const float *qs, const float *ktp,
              const float *v, size_t n, size_t heads, size_t dh,
              size_t h, size_t window, size_t r0, size_t r1,
              std::vector<float> &logitScratch)
{
    const size_t hd = heads * dh;
    const size_t ho = h * dh;
    const size_t rows = r1 - r0;
    if (window == 0) {
        logitScratch.resize(rows * n);
        float *AFSB_RESTRICT logits = logitScratch.data();
        std::fill(logits, logits + rows * n, 0.0f);
        gemmAcc(qs + r0 * hd + ho, hd, ktp, n, logits, n, rows, dh,
                n);
        softmaxRowsFast(logits, rows, n);
        gemmAcc(logits, n, v + ho, hd, ctx + r0 * hd + ho, hd, rows,
                n, dh);
        return;
    }
    logitScratch.resize(window);
    float *AFSB_RESTRICT logits = logitScratch.data();
    for (size_t i = r0; i < r1; ++i) {
        const size_t lo = i > window / 2 ? i - window / 2 : 0;
        const size_t hi = std::min(n, lo + window);
        const size_t len = hi - lo;
        std::fill(logits, logits + len, 0.0f);
        gemmAcc(qs + i * hd + ho, hd, ktp + lo, n, logits, len, 1,
                dh, len);
        softmaxRowsFast(logits, 1, len);
        gemmAcc(logits, len, v + lo * hd + ho, hd,
                ctx + i * hd + ho, hd, 1, len, dh);
    }
}

} // namespace afsb::model::unitk
