/**
 * @file
 * Pairformer building blocks (paper Section II-B).
 *
 * The pair representation is an (N x N x c) tensor; the single
 * representation is (N x c_s). The four layers here are the ones the
 * paper's profiling shows matter:
 *
 *  - Triangle multiplicative update (outgoing/incoming):
 *      z_ij += g(z) * Linear(LN(sum_k a_ik (.) b_jk))      [O(N^3 c)]
 *  - Triangle self-attention (starting/ending node): attention over
 *    intermediates k with the third triangle edge as bias [O(N^3 d)]
 *  - Pair transition: 2-layer MLP on each pair element.
 *  - Single attention with pair bias: sequence attention whose
 *    logits are biased by the pair representation.
 *
 * Each O(N^3) kernel exists in two forms: a reference naive-loop
 * variant (the seed implementation, kept verbatim) and a GEMM-shaped
 * fast path that runs the same arithmetic through the cache-blocked
 * matmul microkernel (tensor::gemmAcc). ModelConfig::forceNaive
 * selects the reference form; the fast paths are held to <= 1e-4 max
 * relative difference against it and are bit-identical across pool
 * sizes and with/without a workspace arena.
 */

#ifndef AFSB_MODEL_LAYERS_HH
#define AFSB_MODEL_LAYERS_HH

#include "model/config.hh"
#include "tensor/arena.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace afsb::model {

using tensor::Tensor;

/** Weights for one triangle multiplicative update. */
struct TriangleMultWeights
{
    Tensor projA, projB;    ///< (c, c) value projections
    Tensor gateA, gateB;    ///< (c, c) gating projections
    Tensor outProj;         ///< (c, c)
    Tensor outGate;         ///< (c, c)
    Tensor bias;            ///< (c)

    static TriangleMultWeights init(const ModelConfig &cfg, Rng &rng);

    /** Total parameter bytes across every member tensor. */
    uint64_t bytes() const;
};

/** Weights for one triangle attention layer. */
struct TriangleAttnWeights
{
    Tensor q, k, v;         ///< (c, heads*headDim)
    Tensor biasProj;        ///< (c, heads)
    Tensor outProj;         ///< (heads*headDim, c)
    Tensor outBias;         ///< (c)

    static TriangleAttnWeights init(const ModelConfig &cfg, Rng &rng);

    /** Total parameter bytes across every member tensor. */
    uint64_t bytes() const;
};

/** Weights for the pair-transition MLP. */
struct TransitionWeights
{
    Tensor w1, b1;          ///< (c, 4c), (4c)
    Tensor w2, b2;          ///< (4c, c), (c)

    static TransitionWeights init(size_t dim, Rng &rng);

    /** Total parameter bytes across every member tensor. */
    uint64_t bytes() const;
};

/** Weights for single attention with pair bias. */
struct SingleAttnWeights
{
    Tensor q, k, v;         ///< (c_s, heads*headDim)
    Tensor pairBias;        ///< (c_z, heads)
    Tensor outProj;         ///< (heads*headDim, c_s)
    Tensor outBias;         ///< (c_s)

    static SingleAttnWeights init(const ModelConfig &cfg, Rng &rng);

    /** Total parameter bytes across every member tensor. */
    uint64_t bytes() const;
};

/**
 * Triangle-attention core: given projected q/k/v (N, N, heads*headDim)
 * and the bias projection (N, N, heads), produce the attention
 * context (N, N, heads*headDim).
 *
 * The fast path treats each (line, head) as one unit of work — a
 * line is a fixed i (starting mode) or fixed j (ending mode) — and
 * runs it as two GEMMs around a row softmax: logits = Qs * K^T + B_h
 * (K transposed into a contiguous per-head slab, bias pre-packed per
 * head), then ctx = P * V with V addressed in place through the
 * strided microkernel. Each unit is computed start-to-finish by one
 * task with a fixed internal order, so results are bit-identical at
 * every pool size.
 *
 * @param naive Run the reference per-(i,j,k) loop instead.
 */
Tensor triangleAttentionCore(const Tensor &q, const Tensor &k,
                             const Tensor &v, const Tensor &bias,
                             size_t heads, size_t headDim,
                             bool starting, bool naive,
                             ThreadPool *pool = nullptr,
                             tensor::Arena *arena = nullptr);

/**
 * Triangle multiplicative-update core: the O(N^3 c) einsum
 *   out[i,j,ch] = sum_k a[i,k,ch] * b[j,k,ch]        (outgoing)
 *   out[i,j,ch] = sum_k a[k,i,ch] * b[k,j,ch]        (incoming)
 * over (N, N, c) inputs.
 *
 * The fast path decomposes the einsum into c independent N x N
 * A_ch * B_ch^T products: each channel's A and B^T planes are
 * gathered into contiguous scratch (the gather also normalizes the
 * outgoing/incoming index order), multiplied with the register-tiled
 * microkernel, and scattered back to the channel-strided output.
 * One channel is one unit of work, so results are bit-identical at
 * every pool size.
 *
 * @param naive Run the reference per-(i,j,k) loop instead.
 */
Tensor triangleMultEinsum(const Tensor &a, const Tensor &b,
                          bool outgoing, bool naive,
                          ThreadPool *pool = nullptr,
                          tensor::Arena *arena = nullptr);

/**
 * Single-attention core: q/k/v are (N, heads*headDim), bias is
 * (N, N, heads); returns the context (N, heads*headDim). One head is
 * one unit of work in the fast path (logits GEMM + row softmax + ctx
 * GEMM, exactly the triangle-attention unit without the line loop).
 */
Tensor singleAttentionCore(const Tensor &q, const Tensor &k,
                           const Tensor &v, const Tensor &bias,
                           size_t heads, size_t headDim, bool naive,
                           ThreadPool *pool = nullptr,
                           tensor::Arena *arena = nullptr);

/**
 * Triangle multiplicative update.
 * @param pair (N, N, c) pair representation, updated in place.
 * @param cfg Supplies the pool, workspace arena, and forceNaive
 *        kernel selection.
 * @param outgoing True for the outgoing-edge variant (i->k, j->k);
 *        false aggregates incoming edges (k->i, k->j).
 */
void triangleMultiplicativeUpdate(Tensor &pair,
                                  const TriangleMultWeights &w,
                                  const ModelConfig &cfg,
                                  bool outgoing);

/**
 * Triangle self-attention.
 * @param starting True for starting-node mode (attend across
 *        outgoing edges of i); false for ending-node mode.
 */
void triangleAttention(Tensor &pair, const TriangleAttnWeights &w,
                       const ModelConfig &cfg, bool starting);

/** Per-element two-layer MLP with GELU, residual. */
void pairTransition(Tensor &pair, const TransitionWeights &w,
                    ThreadPool *pool = nullptr,
                    tensor::Arena *arena = nullptr);

/** Single-representation attention biased by the pair tensor. */
void singleAttentionWithPairBias(Tensor &single, const Tensor &pair,
                                 const SingleAttnWeights &w,
                                 const ModelConfig &cfg);

} // namespace afsb::model

#endif // AFSB_MODEL_LAYERS_HH
