/**
 * @file
 * Pairformer building blocks (paper Section II-B).
 *
 * The pair representation is an (N x N x c) tensor; the single
 * representation is (N x c_s). The four layers here are the ones the
 * paper's profiling shows matter:
 *
 *  - Triangle multiplicative update (outgoing/incoming):
 *      z_ij += g(z) * Linear(LN(sum_k a_ik (.) b_jk))      [O(N^3 c)]
 *  - Triangle self-attention (starting/ending node): attention over
 *    intermediates k with the third triangle edge as bias [O(N^3 d)]
 *  - Pair transition: 2-layer MLP on each pair element.
 *  - Single attention with pair bias: sequence attention whose
 *    logits are biased by the pair representation.
 */

#ifndef AFSB_MODEL_LAYERS_HH
#define AFSB_MODEL_LAYERS_HH

#include "model/config.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace afsb::model {

using tensor::Tensor;

/** Weights for one triangle multiplicative update. */
struct TriangleMultWeights
{
    Tensor projA, projB;    ///< (c, c) value projections
    Tensor gateA, gateB;    ///< (c, c) gating projections
    Tensor outProj;         ///< (c, c)
    Tensor outGate;         ///< (c, c)
    Tensor bias;            ///< (c)

    static TriangleMultWeights init(const ModelConfig &cfg, Rng &rng);
};

/** Weights for one triangle attention layer. */
struct TriangleAttnWeights
{
    Tensor q, k, v;         ///< (c, heads*headDim)
    Tensor biasProj;        ///< (c, heads)
    Tensor outProj;         ///< (heads*headDim, c)
    Tensor outBias;         ///< (c)

    static TriangleAttnWeights init(const ModelConfig &cfg, Rng &rng);
};

/** Weights for the pair-transition MLP. */
struct TransitionWeights
{
    Tensor w1, b1;          ///< (c, 4c), (4c)
    Tensor w2, b2;          ///< (4c, c), (c)

    static TransitionWeights init(size_t dim, Rng &rng);
};

/** Weights for single attention with pair bias. */
struct SingleAttnWeights
{
    Tensor q, k, v;         ///< (c_s, heads*headDim)
    Tensor pairBias;        ///< (c_z, heads)
    Tensor outProj;         ///< (heads*headDim, c_s)
    Tensor outBias;         ///< (c_s)

    static SingleAttnWeights init(const ModelConfig &cfg, Rng &rng);
};

/**
 * Triangle multiplicative update.
 * @param pair (N, N, c) pair representation, updated in place.
 * @param outgoing True for the outgoing-edge variant (i->k, j->k);
 *        false aggregates incoming edges (k->i, k->j).
 * @param pool Optional worker pool for row-parallel execution
 *        (bit-identical to serial; see ModelConfig::pool).
 */
void triangleMultiplicativeUpdate(Tensor &pair,
                                  const TriangleMultWeights &w,
                                  bool outgoing,
                                  ThreadPool *pool = nullptr);

/**
 * Triangle self-attention.
 * @param starting True for starting-node mode (attend across
 *        outgoing edges of i); false for ending-node mode.
 */
void triangleAttention(Tensor &pair, const TriangleAttnWeights &w,
                       const ModelConfig &cfg, bool starting);

/** Per-element two-layer MLP with GELU, residual. */
void pairTransition(Tensor &pair, const TransitionWeights &w,
                    ThreadPool *pool = nullptr);

/** Single-representation attention biased by the pair tensor. */
void singleAttentionWithPairBias(Tensor &single, const Tensor &pair,
                                 const SingleAttnWeights &w,
                                 const ModelConfig &cfg);

} // namespace afsb::model

#endif // AFSB_MODEL_LAYERS_HH
