#include "model/config.hh"

namespace afsb::model {

ModelConfig
paperConfig()
{
    return ModelConfig{};
}

ModelConfig
miniConfig()
{
    ModelConfig cfg;
    cfg.pairDim = 16;
    cfg.singleDim = 24;
    cfg.pairformerBlocks = 2;
    cfg.heads = 2;
    cfg.headDim = 8;
    cfg.diffusionSteps = 4;
    cfg.diffusionTokenDim = 32;
    cfg.localWindow = 16;
    cfg.diffusionBlocks = 1;
    cfg.globalBlocks = 2;
    cfg.recyclingIterations = 1;
    cfg.diffusionSamples = 1;
    cfg.msaFeatureDim = 8;
    return cfg;
}

} // namespace afsb::model
