/**
 * @file
 * Unit-granular bodies of the GEMM-shaped model kernels.
 *
 * PR 3 restructured triangle/single/token attention and the triangle
 * einsum into self-contained work units (one (line, head) pair, one
 * head, one 16-row tile).  This header factors each unit body into a
 * named function so two dispatchers can share them verbatim:
 *
 *  - the fork-join path (layers.cc / diffusion.cc) sweeps units with
 *    ThreadPool::parallelFor, and
 *  - the task-graph path (block_graph.cc) spawns one TaskGroup task
 *    per unit with explicit dependency gates.
 *
 * Sharing the compiled body is what keeps the two paths bit-identical
 * by construction: every output element is produced by the same
 * instruction sequence regardless of scheduler, worker count, or
 * execution order.  Each unit writes a disjoint, pre-assigned slice
 * of its output tensor (slot indexed by unit id, never by completion
 * order) and reads only finished inputs, so any schedule that
 * respects the declared dependencies yields the same bytes.
 */

#ifndef AFSB_MODEL_UNIT_KERNELS_HH
#define AFSB_MODEL_UNIT_KERNELS_HH

#include <cstddef>
#include <vector>

namespace afsb::model::unitk {

/** Row tile of the register-tiled triangle einsum (16 output lines
 *  per unit). */
inline constexpr size_t kMultRowTile = 16;

/** Units in the triangle einsum over n output lines. */
inline size_t
multUnits(size_t n)
{
    return (n + kMultRowTile - 1) / kMultRowTile;
}

/** Per-worker scratch vectors for the attention units (thread-local:
 *  units run on pool workers and the arena is single-threaded by
 *  contract, so unit scratch can never come from the arena). */
std::vector<float> &tlsScratchA();
std::vector<float> &tlsScratchB();

/**
 * Softmax each n-wide row of m in place with the branch-free
 * fastExpf (the fast paths' only deliberate numeric departure from
 * the reference kernels).
 */
void softmaxRowsFast(float *m, size_t rows, size_t n);

/**
 * Triangle-attention bias pre-pack, rows r in [r0, r1) of the
 * (heads, n, n) pack with r = h * n + x: pack_h(x, y) is the bias
 * added to logits[x][y].  Reads row x (starting) or column x
 * (ending) of the (n, n, heads) bias tensor.
 */
void packTriBiasRows(float *pack, const float *bias, size_t n,
                     size_t heads, bool starting, size_t r0,
                     size_t r1);

/**
 * One triangle-attention unit u = line * heads + h: K^T slab gather,
 * logits = biasPack_h + Qs_line K_line^T, fastExpf softmax, then
 * ctx_line += P V_line.  qs is pre-scaled by 1/sqrt(dh); ctx rows
 * for the line must start zeroed.  Scratch vectors are resized as
 * needed.
 */
void triAttnUnit(float *ctx, const float *qs, const float *k,
                 const float *v, const float *biasPack, size_t n,
                 size_t heads, size_t dh, bool starting, size_t u,
                 std::vector<float> &ktpScratch,
                 std::vector<float> &logitScratch);

/**
 * One register-tiled triangle-einsum unit: output lines
 * [u*kMultRowTile, min(n, ...+kMultRowTile)) of
 * out[i,j,ch] = sum_k A(i,k)[ch] * B(j,k)[ch], with A/B already in
 * outgoing layout (incoming callers pass line-transposed copies).
 */
void triMultTile(float *out, const float *ap, const float *bp,
                 size_t n, size_t c, size_t u);

/** dst(i, k, :) = src(k, i, :) for lines i in [i0, i1) of an
 *  (n, n, c) tensor. */
void transposeLinesRange(float *dst, const float *src, size_t n,
                         size_t c, size_t i0, size_t i1);

/**
 * One single-attention head unit: the triangle-attention unit
 * without the line loop, bias pack P_h(i, j) = bias[(i*n+j)*heads+h]
 * gathered inline.  Writes the head's dh-wide column slice of every
 * ctx row; ctx must start zeroed.
 */
void singleAttnHead(float *ctx, const float *qs, const float *k,
                    const float *v, const float *bias, size_t n,
                    size_t heads, size_t dh, size_t h,
                    std::vector<float> &ktpScratch,
                    std::vector<float> &logitScratch);

/** Gather K's head-h column slice into a contiguous dh x n
 *  transposed slab (token attention). */
void tokenAttnSlab(float *ktp, const float *k, size_t n,
                   size_t heads, size_t dh, size_t h);

/**
 * Token-attention context rows [r0, r1) for head h against a
 * pre-gathered K^T slab: global (@p window 0) runs the row-block
 * logit GEMM + softmax + context GEMM, local runs one windowed row
 * GEMM per token.  r0 must be even (GEMM pairing).  ctx rows must
 * start zeroed; qs is pre-scaled.
 */
void tokenAttnRows(float *ctx, const float *qs, const float *ktp,
                   const float *v, size_t n, size_t heads, size_t dh,
                   size_t h, size_t window, size_t r0, size_t r1,
                   std::vector<float> &logitScratch);

} // namespace afsb::model::unitk

#endif // AFSB_MODEL_UNIT_KERNELS_HH
