#include "model/block_graph.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "model/unit_kernels.hh"
#include "tensor/arena.hh"
#include "tensor/ops.hh"
#include "util/task.hh"
#include "util/threadpool.hh"

namespace afsb::model::graph {

namespace {

using tensor::Arena;
using tensor::Tensor;
namespace rowops = tensor::rowops;

constexpr float kEps = 1e-5f;

/**
 * Pair tensors are carved into blocks of kMultRowTile lines so the
 * triangle-einsum tiles nest exactly (one tile per block) and every
 * GEMM range starts on an even row: a block starts at line
 * 16*bl, i.e. row 16*bl*n — always even, whatever n is.
 */
constexpr size_t kLineBlock = unitk::kMultRowTile;
static_assert(kLineBlock % 2 == 0,
              "line blocks must keep GEMM row pairing aligned");

/** Token rows per diffusion row-block task (even: GEMM pairing). */
constexpr size_t kTokenRowBlock = 8;

struct LineBlocks
{
    size_t n = 0;
    size_t nb = 0;
    explicit LineBlocks(size_t lines)
        : n(lines), nb((lines + kLineBlock - 1) / kLineBlock)
    {
    }
    size_t lo(size_t bl) const { return bl * kLineBlock; }
    size_t hi(size_t bl) const
    {
        return std::min(n, lo(bl) + kLineBlock);
    }
};

/** Per-line-block chain hook: fired when a sub-layer has fully
 *  updated the pair lines of block bl. */
using BlockChain = std::function<void(size_t)>;

/**
 * One triangle multiplicative update as a graph segment.
 *
 *   A[bl] (LN + gated a/b projections + out gate, row-local)
 *     -> allA latch (the einsum reads every b line)
 *     -> [incoming only] per-block line transposes -> allT latch
 *     -> one einsum tile task per 16-line block
 *     -> O[bl] (LN + out projection + gate + residual, row-local)
 *     -> next sub-layer's A[bl].
 */
class TriMultSub
{
  public:
    TriMultSub(TaskGroup &g, Tensor &pair,
               const TriangleMultWeights &w, bool outgoing,
               Arena *arena)
        : g_(g), pair_(pair), w_(w), outgoing_(outgoing),
          n_(pair.dim(0)), c_(pair.dim(2)), lb_(n_)
    {
        const std::vector<size_t> pairShape{n_, n_, c_};
        normed_ = Tensor::uninitialized(pairShape, arena);
        sig_ = Tensor::uninitialized(pairShape, arena);
        aBuf_ = Tensor::uninitialized(pairShape, arena);
        bBuf_ = Tensor::uninitialized(pairShape, arena);
        gateOut_ = Tensor::uninitialized(pairShape, arena);
        out_ = Tensor::uninitialized(pairShape, arena);
        normOut_ = Tensor::uninitialized(pairShape, arena);
        update_ = Tensor::uninitialized(pairShape, arena);
        if (!outgoing_) {
            aT_ = Tensor::uninitialized(pairShape, arena);
            bT_ = Tensor::uninitialized(pairShape, arena);
        }

        allA_ = g_.gate(lb_.nb, [this] { onAllA(); });
        if (!outgoing_)
            allT_ = g_.gate(lb_.nb, [this] {
                spawnTiles(aT_.data(), bT_.data());
            });
        oGate_.resize(lb_.nb);
        for (size_t bl = 0; bl < lb_.nb; ++bl)
            oGate_[bl] = g_.gate(1, [this, bl] { oBody(bl); });
    }

    void setNext(BlockChain next) { next_ = std::move(next); }

    /** Spawn the block's prologue (call at build or from the
     *  previous sub-layer's O task). */
    void start(size_t bl)
    {
        g_.spawn([this, bl] { aBody(bl); });
    }

  private:
    void aBody(size_t bl)
    {
        const size_t r0 = lb_.lo(bl) * n_;
        const size_t r1 = lb_.hi(bl) * n_;
        const size_t e0 = r0 * c_, e1 = r1 * c_;
        rowops::layerNormRows(pair_.data(), normed_.data(), c_, kEps,
                              r0, r1);
        rowops::linearRows(normed_.data(), w_.gateA.data(), nullptr,
                           sig_.data(), c_, c_, r0, r1);
        rowops::sigmoidRange(sig_.data(), sig_.data(), e0, e1);
        rowops::linearRows(normed_.data(), w_.projA.data(), nullptr,
                           aBuf_.data(), c_, c_, r0, r1);
        rowops::mulRange(sig_.data(), aBuf_.data(), aBuf_.data(), e0,
                         e1);
        rowops::linearRows(normed_.data(), w_.gateB.data(), nullptr,
                           sig_.data(), c_, c_, r0, r1);
        rowops::sigmoidRange(sig_.data(), sig_.data(), e0, e1);
        rowops::linearRows(normed_.data(), w_.projB.data(), nullptr,
                           bBuf_.data(), c_, c_, r0, r1);
        rowops::mulRange(sig_.data(), bBuf_.data(), bBuf_.data(), e0,
                         e1);
        rowops::linearRows(normed_.data(), w_.outGate.data(), nullptr,
                           gateOut_.data(), c_, c_, r0, r1);
        rowops::sigmoidRange(gateOut_.data(), gateOut_.data(), e0,
                             e1);
        allA_->arrive();
    }

    void onAllA()
    {
        if (outgoing_) {
            spawnTiles(aBuf_.data(), bBuf_.data());
            return;
        }
        for (size_t bl = 0; bl < lb_.nb; ++bl)
            g_.spawn([this, bl] {
                unitk::transposeLinesRange(aT_.data(), aBuf_.data(),
                                           n_, c_, lb_.lo(bl),
                                           lb_.hi(bl));
                unitk::transposeLinesRange(bT_.data(), bBuf_.data(),
                                           n_, c_, lb_.lo(bl),
                                           lb_.hi(bl));
                allT_->arrive();
            });
    }

    void spawnTiles(const float *ap, const float *bp)
    {
        for (size_t u = 0; u < lb_.nb; ++u)
            g_.spawn([this, ap, bp, u] {
                unitk::triMultTile(out_.data(), ap, bp, n_, c_, u);
                oGate_[u]->arrive();
            });
    }

    void oBody(size_t bl)
    {
        const size_t r0 = lb_.lo(bl) * n_;
        const size_t r1 = lb_.hi(bl) * n_;
        const size_t e0 = r0 * c_, e1 = r1 * c_;
        rowops::layerNormRows(out_.data(), normOut_.data(), c_, kEps,
                              r0, r1);
        rowops::linearRows(normOut_.data(), w_.outProj.data(),
                           w_.bias.data(), update_.data(), c_, c_,
                           r0, r1);
        rowops::mulRange(update_.data(), gateOut_.data(),
                         update_.data(), e0, e1);
        rowops::addRange(pair_.data(), update_.data(), e0, e1);
        if (next_)
            next_(bl);
    }

    TaskGroup &g_;
    Tensor &pair_;
    const TriangleMultWeights &w_;
    bool outgoing_;
    size_t n_, c_;
    LineBlocks lb_;
    Tensor normed_, sig_, aBuf_, bBuf_, gateOut_, aT_, bT_, out_,
        normOut_, update_;
    TaskGroup::Gate *allA_ = nullptr;
    TaskGroup::Gate *allT_ = nullptr;
    std::vector<TaskGroup::Gate *> oGate_;
    BlockChain next_;
};

/**
 * One triangle attention as a graph segment.
 *
 *   A[bl] (LN + q/k/v/bias projections + q scaling, row-local)
 *     -> allA latch (each unit's bias pack plane spans every line)
 *     -> per-head bias pack tasks -> pack latch
 *     -> one (line, head) unit task each
 *     -> starting: units of a line arrive that block's O gate
 *        ending: units write ctx columns, so a full-unit latch
 *        releases every O[bl] at once
 *     -> O[bl] (out projection + residual) -> next sub-layer.
 */
class TriAttnSub
{
  public:
    TriAttnSub(TaskGroup &g, Tensor &pair,
               const TriangleAttnWeights &w, bool starting,
               const ModelConfig &cfg, Arena *arena)
        : g_(g), pair_(pair), w_(w), starting_(starting),
          n_(pair.dim(0)), c_(pair.dim(2)), heads_(cfg.heads),
          dh_(cfg.headDim), lb_(n_)
    {
        const size_t hd = heads_ * dh_;
        normed_ = Tensor::uninitialized({n_, n_, c_}, arena);
        q_ = Tensor::uninitialized({n_, n_, hd}, arena);
        k_ = Tensor::uninitialized({n_, n_, hd}, arena);
        v_ = Tensor::uninitialized({n_, n_, hd}, arena);
        biasT_ = Tensor::uninitialized({n_, n_, heads_}, arena);
        pack_ = Tensor::uninitialized({heads_, n_, n_}, arena);
        ctx_ = Tensor::zeros({n_, n_, hd}, arena);
        update_ = Tensor::uninitialized({n_, n_, c_}, arena);

        allA_ = g_.gate(lb_.nb, [this] { onAllA(); });
        packG_ = g_.gate(heads_, [this] { spawnUnits(); });
        if (starting_) {
            oGate_.resize(lb_.nb);
            for (size_t bl = 0; bl < lb_.nb; ++bl)
                oGate_[bl] = g_.gate(
                    (lb_.hi(bl) - lb_.lo(bl)) * heads_,
                    [this, bl] { oBody(bl); });
        } else {
            allU_ = g_.gate(n_ * heads_, [this] {
                for (size_t bl = 0; bl < lb_.nb; ++bl)
                    g_.spawn([this, bl] { oBody(bl); });
            });
        }
    }

    void setNext(BlockChain next) { next_ = std::move(next); }

    void start(size_t bl)
    {
        g_.spawn([this, bl] { aBody(bl); });
    }

  private:
    void aBody(size_t bl)
    {
        const size_t hd = heads_ * dh_;
        const size_t r0 = lb_.lo(bl) * n_;
        const size_t r1 = lb_.hi(bl) * n_;
        const float invSqrt =
            1.0f / std::sqrt(static_cast<float>(dh_));
        rowops::layerNormRows(pair_.data(), normed_.data(), c_, kEps,
                              r0, r1);
        rowops::linearRows(normed_.data(), w_.q.data(), nullptr,
                           q_.data(), c_, hd, r0, r1);
        rowops::scaleRange(q_.data(), q_.data(), invSqrt, r0 * hd,
                           r1 * hd);
        rowops::linearRows(normed_.data(), w_.k.data(), nullptr,
                           k_.data(), c_, hd, r0, r1);
        rowops::linearRows(normed_.data(), w_.v.data(), nullptr,
                           v_.data(), c_, hd, r0, r1);
        rowops::linearRows(normed_.data(), w_.biasProj.data(),
                           nullptr, biasT_.data(), c_, heads_, r0,
                           r1);
        allA_->arrive();
    }

    void onAllA()
    {
        for (size_t h = 0; h < heads_; ++h)
            g_.spawn([this, h] {
                unitk::packTriBiasRows(pack_.data(), biasT_.data(),
                                       n_, heads_, starting_, h * n_,
                                       (h + 1) * n_);
                packG_->arrive();
            });
    }

    void spawnUnits()
    {
        for (size_t u = 0; u < n_ * heads_; ++u)
            g_.spawn([this, u] {
                unitk::triAttnUnit(ctx_.data(), q_.data(), k_.data(),
                                   v_.data(), pack_.data(), n_,
                                   heads_, dh_, starting_, u,
                                   unitk::tlsScratchA(),
                                   unitk::tlsScratchB());
                if (starting_)
                    oGate_[(u / heads_) / kLineBlock]->arrive();
                else
                    allU_->arrive();
            });
    }

    void oBody(size_t bl)
    {
        const size_t hd = heads_ * dh_;
        const size_t r0 = lb_.lo(bl) * n_;
        const size_t r1 = lb_.hi(bl) * n_;
        rowops::linearRows(ctx_.data(), w_.outProj.data(),
                           w_.outBias.data(), update_.data(), hd, c_,
                           r0, r1);
        rowops::addRange(pair_.data(), update_.data(), r0 * c_,
                         r1 * c_);
        if (next_)
            next_(bl);
    }

    TaskGroup &g_;
    Tensor &pair_;
    const TriangleAttnWeights &w_;
    bool starting_;
    size_t n_, c_, heads_, dh_;
    LineBlocks lb_;
    Tensor normed_, q_, k_, v_, biasT_, pack_, ctx_, update_;
    TaskGroup::Gate *allA_ = nullptr;
    TaskGroup::Gate *packG_ = nullptr;
    TaskGroup::Gate *allU_ = nullptr;
    std::vector<TaskGroup::Gate *> oGate_;
    BlockChain next_;
};

/** Row-local transition MLP over pair line blocks: one task per
 *  block, no latch anywhere — the purest chain link. */
class PairTransSub
{
  public:
    PairTransSub(TaskGroup &g, Tensor &pair,
                 const TransitionWeights &w, Arena *arena)
        : g_(g), pair_(pair), w_(w), n_(pair.dim(0)),
          c_(pair.dim(2)), hidden_(w.w1.dim(1)), lb_(n_)
    {
        normT_ = Tensor::uninitialized({n_, n_, c_}, arena);
        hbuf_ = Tensor::uninitialized({n_, n_, hidden_}, arena);
        update_ = Tensor::uninitialized({n_, n_, c_}, arena);
    }

    void setNext(BlockChain next) { next_ = std::move(next); }

    void start(size_t bl)
    {
        g_.spawn([this, bl] { body(bl); });
    }

  private:
    void body(size_t bl)
    {
        const size_t r0 = lb_.lo(bl) * n_;
        const size_t r1 = lb_.hi(bl) * n_;
        rowops::layerNormRows(pair_.data(), normT_.data(), c_, kEps,
                              r0, r1);
        rowops::linearRows(normT_.data(), w_.w1.data(),
                           w_.b1.data(), hbuf_.data(), c_, hidden_,
                           r0, r1);
        rowops::geluRange(hbuf_.data(), hbuf_.data(), r0 * hidden_,
                          r1 * hidden_);
        rowops::linearRows(hbuf_.data(), w_.w2.data(), w_.b2.data(),
                           update_.data(), hidden_, c_, r0, r1);
        rowops::addRange(pair_.data(), update_.data(), r0 * c_,
                         r1 * c_);
        if (next_)
            next_(bl);
    }

    TaskGroup &g_;
    Tensor &pair_;
    const TransitionWeights &w_;
    size_t n_, c_, hidden_;
    LineBlocks lb_;
    Tensor normT_, hbuf_, update_;
    BlockChain next_;
};

/**
 * Single attention with pair bias plus the single transition, as the
 * tail of window 3: the pair-bias projection chains per line block
 * off the pair transition, the single-side q/k/v task runs
 * concurrently from the window start, and one latch releases the
 * per-head units once both sides are in.
 */
class SingleTailSub
{
  public:
    SingleTailSub(TaskGroup &g, Tensor &single, const Tensor &pair,
                  const SingleAttnWeights &wa,
                  const TransitionWeights &wt,
                  const ModelConfig &cfg, Arena *arena)
        : g_(g), single_(single), pair_(pair), wa_(wa), wt_(wt),
          n_(single.dim(0)), cs_(single.dim(1)), cz_(pair.dim(2)),
          heads_(cfg.heads), dh_(cfg.headDim),
          hidden_(wt.w1.dim(1)), lb_(pair.dim(0))
    {
        const size_t hd = heads_ * dh_;
        normP_ = Tensor::uninitialized({lb_.n, lb_.n, cz_}, arena);
        biasS_ =
            Tensor::uninitialized({lb_.n, lb_.n, heads_}, arena);
        normS_ = Tensor::uninitialized({n_, cs_}, arena);
        qS_ = Tensor::uninitialized({n_, hd}, arena);
        kS_ = Tensor::uninitialized({n_, hd}, arena);
        vS_ = Tensor::uninitialized({n_, hd}, arena);
        ctxS_ = Tensor::zeros({n_, hd}, arena);
        updS_ = Tensor::uninitialized({n_, cs_}, arena);
        hS_ = Tensor::uninitialized({n_, hidden_}, arena);

        gSA_ = g_.gate(lb_.nb + 1, [this] {
            for (size_t h = 0; h < heads_; ++h)
                g_.spawn([this, h] {
                    unitk::singleAttnHead(ctxS_.data(), qS_.data(),
                                          kS_.data(), vS_.data(),
                                          biasS_.data(), n_, heads_,
                                          dh_, h,
                                          unitk::tlsScratchA(),
                                          unitk::tlsScratchB());
                    gCtx_->arrive();
                });
        });
        gCtx_ = g_.gate(heads_, [this] { tailBody(); });
    }

    /** Per-pair-line-block bias chain hook (pair transition next_). */
    void biasStart(size_t bl)
    {
        g_.spawn([this, bl] {
            const size_t r0 = lb_.lo(bl) * lb_.n;
            const size_t r1 = lb_.hi(bl) * lb_.n;
            rowops::layerNormRows(pair_.data(), normP_.data(), cz_,
                                  kEps, r0, r1);
            rowops::linearRows(normP_.data(), wa_.pairBias.data(),
                               nullptr, biasS_.data(), cz_, heads_,
                               r0, r1);
            gSA_->arrive();
        });
    }

    /** Single-side projections; independent of the pair chain. */
    void startSingleSide()
    {
        g_.spawn([this] {
            const size_t hd = heads_ * dh_;
            const float invSqrt =
                1.0f / std::sqrt(static_cast<float>(dh_));
            rowops::layerNormRows(single_.data(), normS_.data(), cs_,
                                  kEps, 0, n_);
            rowops::linearRows(normS_.data(), wa_.q.data(), nullptr,
                               qS_.data(), cs_, hd, 0, n_);
            rowops::scaleRange(qS_.data(), qS_.data(), invSqrt, 0,
                               n_ * hd);
            rowops::linearRows(normS_.data(), wa_.k.data(), nullptr,
                               kS_.data(), cs_, hd, 0, n_);
            rowops::linearRows(normS_.data(), wa_.v.data(), nullptr,
                               vS_.data(), cs_, hd, 0, n_);
            gSA_->arrive();
        });
    }

  private:
    void tailBody()
    {
        const size_t hd = heads_ * dh_;
        rowops::linearRows(ctxS_.data(), wa_.outProj.data(),
                           wa_.outBias.data(), updS_.data(), hd, cs_,
                           0, n_);
        rowops::addRange(single_.data(), updS_.data(), 0, n_ * cs_);
        // Single transition, row-local, reusing the scratch.
        rowops::layerNormRows(single_.data(), normS_.data(), cs_,
                              kEps, 0, n_);
        rowops::linearRows(normS_.data(), wt_.w1.data(),
                           wt_.b1.data(), hS_.data(), cs_, hidden_,
                           0, n_);
        rowops::geluRange(hS_.data(), hS_.data(), 0, n_ * hidden_);
        rowops::linearRows(hS_.data(), wt_.w2.data(), wt_.b2.data(),
                           updS_.data(), hidden_, cs_, 0, n_);
        rowops::addRange(single_.data(), updS_.data(), 0, n_ * cs_);
    }

    TaskGroup &g_;
    Tensor &single_;
    const Tensor &pair_;
    const SingleAttnWeights &wa_;
    const TransitionWeights &wt_;
    size_t n_, cs_, cz_, heads_, dh_, hidden_;
    LineBlocks lb_;
    Tensor normP_, biasS_, normS_, qS_, kS_, vS_, ctxS_, updS_, hS_;
    TaskGroup::Gate *gSA_ = nullptr;
    TaskGroup::Gate *gCtx_ = nullptr;
};

/**
 * One diffusion attention block (tokenAttention) as a graph segment:
 *
 *   A[rb] (LN + q/k/v, row-local over kTokenRowBlock tokens)
 *     -> allA latch (every head slab gathers every k row)
 *     -> per-head K^T slab task, which fans out its own
 *        per-(head, row-block) attention-row tasks
 *     -> all-units latch
 *     -> O[rb] (out projection + residual + transition, row-local)
 *     -> the next block's A[rb].
 */
class TokenAttnSub
{
  public:
    TokenAttnSub(TaskGroup &g, Tensor &h, const AttnBlockWeights &w,
                 size_t window, const ModelConfig &cfg, Arena *arena)
        : g_(g), h_(h), w_(w), window_(window), n_(h.dim(0)),
          ct_(h.dim(1)), heads_(cfg.heads), dh_(cfg.headDim),
          hidden_(w.transition.w1.dim(1)),
          nrb_((n_ + kTokenRowBlock - 1) / kTokenRowBlock)
    {
        const size_t hd = heads_ * dh_;
        normed_ = Tensor::uninitialized({n_, ct_}, arena);
        q_ = Tensor::uninitialized({n_, hd}, arena);
        k_ = Tensor::uninitialized({n_, hd}, arena);
        v_ = Tensor::uninitialized({n_, hd}, arena);
        slabs_ = Tensor::uninitialized({heads_, dh_, n_}, arena);
        ctx_ = Tensor::zeros({n_, hd}, arena);
        upd_ = Tensor::uninitialized({n_, ct_}, arena);
        normT_ = Tensor::uninitialized({n_, ct_}, arena);
        hbuf_ = Tensor::uninitialized({n_, hidden_}, arena);

        allA_ = g_.gate(nrb_, [this] { spawnHeads(); });
        gUnits_ = g_.gate(heads_ * nrb_, [this] {
            for (size_t rb = 0; rb < nrb_; ++rb)
                g_.spawn([this, rb] { oBody(rb); });
        });
    }

    void setNext(TokenAttnSub *next) { next_ = next; }

    void start(size_t rb)
    {
        g_.spawn([this, rb] { aBody(rb); });
    }

    size_t rowBlocks() const { return nrb_; }

  private:
    size_t rlo(size_t rb) const { return rb * kTokenRowBlock; }
    size_t rhi(size_t rb) const
    {
        return std::min(n_, rlo(rb) + kTokenRowBlock);
    }

    void aBody(size_t rb)
    {
        const size_t hd = heads_ * dh_;
        const size_t r0 = rlo(rb), r1 = rhi(rb);
        const float invSqrt =
            1.0f / std::sqrt(static_cast<float>(dh_));
        rowops::layerNormRows(h_.data(), normed_.data(), ct_, kEps,
                              r0, r1);
        rowops::linearRows(normed_.data(), w_.q.data(), nullptr,
                           q_.data(), ct_, hd, r0, r1);
        rowops::scaleRange(q_.data(), q_.data(), invSqrt, r0 * hd,
                           r1 * hd);
        rowops::linearRows(normed_.data(), w_.k.data(), nullptr,
                           k_.data(), ct_, hd, r0, r1);
        rowops::linearRows(normed_.data(), w_.v.data(), nullptr,
                           v_.data(), ct_, hd, r0, r1);
        allA_->arrive();
    }

    void spawnHeads()
    {
        for (size_t h = 0; h < heads_; ++h)
            g_.spawn([this, h] {
                float *slab = slabs_.data() + h * dh_ * n_;
                unitk::tokenAttnSlab(slab, k_.data(), n_, heads_,
                                     dh_, h);
                for (size_t rb = 0; rb < nrb_; ++rb)
                    g_.spawn([this, h, slab, rb] {
                        unitk::tokenAttnRows(
                            ctx_.data(), q_.data(), slab, v_.data(),
                            n_, heads_, dh_, h, window_, rlo(rb),
                            rhi(rb), unitk::tlsScratchB());
                        gUnits_->arrive();
                    });
            });
    }

    void oBody(size_t rb)
    {
        const size_t hd = heads_ * dh_;
        const size_t r0 = rlo(rb), r1 = rhi(rb);
        rowops::linearRows(ctx_.data(), w_.outProj.data(),
                           w_.outBias.data(), upd_.data(), hd, ct_,
                           r0, r1);
        rowops::addRange(h_.data(), upd_.data(), r0 * ct_, r1 * ct_);
        rowops::layerNormRows(h_.data(), normT_.data(), ct_, kEps,
                              r0, r1);
        rowops::linearRows(normT_.data(), w_.transition.w1.data(),
                           w_.transition.b1.data(), hbuf_.data(),
                           ct_, hidden_, r0, r1);
        rowops::geluRange(hbuf_.data(), hbuf_.data(), r0 * hidden_,
                          r1 * hidden_);
        rowops::linearRows(hbuf_.data(), w_.transition.w2.data(),
                           w_.transition.b2.data(), upd_.data(),
                           hidden_, ct_, r0, r1);
        rowops::addRange(h_.data(), upd_.data(), r0 * ct_, r1 * ct_);
        if (next_)
            next_->start(rb);
    }

    TaskGroup &g_;
    Tensor &h_;
    const AttnBlockWeights &w_;
    size_t window_;
    size_t n_, ct_, heads_, dh_, hidden_, nrb_;
    Tensor normed_, q_, k_, v_, slabs_, ctx_, upd_, normT_, hbuf_;
    TaskGroup::Gate *allA_ = nullptr;
    TaskGroup::Gate *gUnits_ = nullptr;
    TokenAttnSub *next_ = nullptr;
};

/** Attention blocks scheduled per sync window (bounds the arena
 *  high-water mark: one window's tensors live at a time). */
constexpr size_t kDiffusionWindowBlocks = 4;

} // namespace

bool
taskGraphEligible(const ModelConfig &cfg, bool hooked)
{
    return cfg.taskGraph && cfg.pool != nullptr && !cfg.forceNaive &&
           !hooked && !ThreadPool::inWorker() && !TaskGroup::inTask();
}

void
runPairformerBlock(Tensor &pair, Tensor &single,
                   const PairformerBlockWeights &w,
                   const ModelConfig &cfg)
{
    TaskGroup g(cfg.pool);
    Arena *arena = cfg.arena;
    const LineBlocks lb(pair.dim(0));

    {
        Arena::Scope scope(arena);
        TriMultSub mOut(g, pair, w.triMultOut, true, arena);
        TriMultSub mIn(g, pair, w.triMultIn, false, arena);
        mOut.setNext([&mIn](size_t bl) { mIn.start(bl); });
        for (size_t bl = 0; bl < lb.nb; ++bl)
            mOut.start(bl);
        g.sync();
    }
    {
        Arena::Scope scope(arena);
        TriAttnSub aStart(g, pair, w.triAttnStart, true, cfg, arena);
        TriAttnSub aEnd(g, pair, w.triAttnEnd, false, cfg, arena);
        aStart.setNext([&aEnd](size_t bl) { aEnd.start(bl); });
        for (size_t bl = 0; bl < lb.nb; ++bl)
            aStart.start(bl);
        g.sync();
    }
    {
        Arena::Scope scope(arena);
        PairTransSub pt(g, pair, w.pairTrans, arena);
        SingleTailSub tail(g, single, pair, w.singleAttn,
                           w.singleTrans, cfg, arena);
        pt.setNext([&tail](size_t bl) { tail.biasStart(bl); });
        for (size_t bl = 0; bl < lb.nb; ++bl)
            pt.start(bl);
        tail.startSingleSide();
        g.sync();
    }
}

void
runDiffusionTokenStack(Tensor &h, const DiffusionWeights &w,
                       const ModelConfig &cfg)
{
    std::vector<std::pair<const AttnBlockWeights *, size_t>> seq;
    for (const auto &b : w.localEnc)
        seq.emplace_back(&b, cfg.localWindow);
    for (const auto &b : w.globalAttn)
        seq.emplace_back(&b, size_t{0});
    for (const auto &b : w.localDec)
        seq.emplace_back(&b, cfg.localWindow);

    TaskGroup g(cfg.pool);
    Arena *arena = cfg.arena;
    for (size_t w0 = 0; w0 < seq.size();
         w0 += kDiffusionWindowBlocks) {
        const size_t w1 =
            std::min(seq.size(), w0 + kDiffusionWindowBlocks);
        Arena::Scope scope(arena);
        std::vector<std::unique_ptr<TokenAttnSub>> blocks;
        blocks.reserve(w1 - w0);
        for (size_t i = w0; i < w1; ++i)
            blocks.push_back(std::make_unique<TokenAttnSub>(
                g, h, *seq[i].first, seq[i].second, cfg, arena));
        for (size_t i = 0; i + 1 < blocks.size(); ++i)
            blocks[i]->setNext(blocks[i + 1].get());
        for (size_t rb = 0; rb < blocks.front()->rowBlocks(); ++rb)
            blocks.front()->start(rb);
        g.sync();
    }
}

} // namespace afsb::model::graph
