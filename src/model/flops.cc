#include "model/flops.hh"

#include "util/logging.hh"

namespace afsb::model {

std::string
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::InputEmbedding: return "input_embedding";
      case LayerKind::TriangleMultOutgoing:
        return "triangle_mult_outgoing";
      case LayerKind::TriangleMultIncoming:
        return "triangle_mult_incoming";
      case LayerKind::TriangleAttnStarting:
        return "triangle_attention_starting";
      case LayerKind::TriangleAttnEnding:
        return "triangle_attention_ending";
      case LayerKind::PairTransition: return "pair_transition";
      case LayerKind::SingleAttention: return "single_attention";
      case LayerKind::SingleTransition: return "single_transition";
      case LayerKind::DiffusionConditioning:
        return "diffusion_conditioning";
      case LayerKind::LocalAttentionEncoder:
        return "local_attention_encoder";
      case LayerKind::GlobalAttention: return "global_attention";
      case LayerKind::LocalAttentionDecoder:
        return "local_attention_decoder";
      case LayerKind::CoordinateUpdate: return "coordinate_update";
      case LayerKind::ConfidenceHead: return "confidence_head";
    }
    panic("layerKindName: bad enum");
}

bool
layerKindByName(const std::string &name, LayerKind *kind)
{
    for (int k = 0; k <= 13; ++k) {
        const auto candidate = static_cast<LayerKind>(k);
        if (layerKindName(candidate) == name) {
            *kind = candidate;
            return true;
        }
    }
    return false;
}

bool
isPairformerLayer(LayerKind kind)
{
    switch (kind) {
      case LayerKind::TriangleMultOutgoing:
      case LayerKind::TriangleMultIncoming:
      case LayerKind::TriangleAttnStarting:
      case LayerKind::TriangleAttnEnding:
      case LayerKind::PairTransition:
      case LayerKind::SingleAttention:
      case LayerKind::SingleTransition:
        return true;
      default:
        return false;
    }
}

bool
isDiffusionLayer(LayerKind kind)
{
    switch (kind) {
      case LayerKind::DiffusionConditioning:
      case LayerKind::LocalAttentionEncoder:
      case LayerKind::GlobalAttention:
      case LayerKind::LocalAttentionDecoder:
      case LayerKind::CoordinateUpdate:
        return true;
      default:
        return false;
    }
}

LayerCost
layerCost(LayerKind kind, size_t tokens, const ModelConfig &cfg)
{
    const double n = static_cast<double>(tokens);
    const double cz = static_cast<double>(cfg.pairDim);
    const double cs = static_cast<double>(cfg.singleDim);
    const double ct = static_cast<double>(cfg.diffusionTokenDim);
    const double h = static_cast<double>(cfg.heads);
    const double dh = static_cast<double>(cfg.headDim);
    const double hd = h * dh;
    const double w = static_cast<double>(cfg.localWindow);
    constexpr double b = 2.0;  // bytes per element (bf16)

    LayerCost cost;
    switch (kind) {
      case LayerKind::InputEmbedding:
        cost.flops = n * n * cz + n * cs * 4;
        cost.bytes = (n * n * cz + n * cs) * b;
        cost.kernels = 6;
        break;
      case LayerKind::TriangleMultOutgoing:
      case LayerKind::TriangleMultIncoming:
        // Four gated projections + the O(N^3 c) einsum + output.
        // The einsum's chunked intermediate reads add a cubic
        // traffic term (c/8 bytes per (i,j,k) triple after
        // channel-tiling).
        cost.flops = 2 * n * n * cz * cz * 6 + 2 * n * n * n * cz;
        cost.bytes =
            (8 * n * n * cz + n * n * n * cz / 8 + 6 * cz * cz) * b;
        cost.kernels = 10;
        break;
      case LayerKind::TriangleAttnStarting:
      case LayerKind::TriangleAttnEnding:
        // QKV/bias projections + O(N^3) logits and weighted sums.
        // Unfused XLA materializes the (h, N, N, N) logits in
        // chunks — written, softmaxed, and re-read — so DRAM
        // traffic carries a cubic term that makes the layer
        // bandwidth-bound at these sizes.
        cost.flops = 2 * n * n * cz * hd * 4 +
                     2 * n * n * n * hd * 2;
        cost.bytes = (8 * n * n * hd + 6 * n * n * n * h) * b;
        cost.kernels = 12;
        break;
      case LayerKind::PairTransition:
        cost.flops = 2 * n * n * cz * 4 * cz * 2;
        cost.bytes = (6 * n * n * cz + 8 * cz * cz) * b;
        cost.kernels = 5;
        break;
      case LayerKind::SingleAttention:
        cost.flops = 2 * n * cs * hd * 4 + 2 * n * n * hd * 2 +
                     2 * n * n * cz * h;
        cost.bytes = (n * n * cz + 6 * n * hd) * b;
        cost.kernels = 8;
        break;
      case LayerKind::SingleTransition:
        cost.flops = 2 * n * cs * 4 * cs * 2;
        cost.bytes = (6 * n * cs + 8 * cs * cs) * b;
        cost.kernels = 5;
        break;
      case LayerKind::DiffusionConditioning:
        cost.flops = 2 * n * cs * ct;
        cost.bytes = (n * (cs + ct) + cs * ct) * b;
        cost.kernels = 4;
        break;
      case LayerKind::LocalAttentionEncoder:
      case LayerKind::LocalAttentionDecoder:
        // Windowed attention + its transition MLP.
        cost.flops = 2 * n * ct * hd * 4 + 2 * n * w * hd * 2 +
                     2 * n * ct * 4 * ct * 2;
        cost.bytes = (10 * n * ct) * b;
        cost.kernels = 9;
        break;
      case LayerKind::GlobalAttention: {
        // One denoising step of the token transformer: all
        // cfg.globalBlocks full-attention blocks plus their
        // transition MLPs, with materialized (N, N, h) logits.
        const double g = static_cast<double>(cfg.globalBlocks);
        cost.flops = g * (2 * n * ct * hd * 4 +
                          2 * n * n * hd * 2 +
                          2 * n * ct * 4 * ct * 2);
        cost.bytes = g * (10 * n * ct + 6 * n * n * h) * b;
        cost.kernels = 40;
        break;
      }
      case LayerKind::CoordinateUpdate:
        cost.flops = 2 * n * ct * 3 + n * 12;
        cost.bytes = (n * ct + n * 6) * b;
        cost.kernels = 3;
        break;
      case LayerKind::ConfidenceHead:
        cost.flops = 2 * n * n * cz * 64;
        cost.bytes = (n * n * cz) * b;
        cost.kernels = 6;
        break;
    }
    return cost;
}

std::vector<LayerInstance>
operatorGraph(size_t tokens, const ModelConfig &cfg)
{
    const auto recycles =
        static_cast<uint32_t>(cfg.recyclingIterations);
    const auto blocks =
        static_cast<uint32_t>(cfg.pairformerBlocks) * recycles;
    const auto steps =
        static_cast<uint32_t>(cfg.diffusionSteps) *
        static_cast<uint32_t>(cfg.diffusionSamples);
    const auto diffBlocks =
        static_cast<uint32_t>(cfg.diffusionBlocks);

    std::vector<LayerInstance> graph;
    auto push = [&](LayerKind kind, uint32_t count) {
        graph.push_back({kind, count, layerCost(kind, tokens, cfg)});
    };

    push(LayerKind::InputEmbedding, recycles);
    push(LayerKind::TriangleMultOutgoing, blocks);
    push(LayerKind::TriangleMultIncoming, blocks);
    push(LayerKind::TriangleAttnStarting, blocks);
    push(LayerKind::TriangleAttnEnding, blocks);
    push(LayerKind::PairTransition, blocks);
    push(LayerKind::SingleAttention, blocks);
    push(LayerKind::SingleTransition, blocks);
    push(LayerKind::DiffusionConditioning, steps);
    push(LayerKind::LocalAttentionEncoder, steps * diffBlocks);
    push(LayerKind::GlobalAttention, steps);
    push(LayerKind::LocalAttentionDecoder, steps * diffBlocks);
    push(LayerKind::CoordinateUpdate, steps);
    push(LayerKind::ConfidenceHead, 1);
    return graph;
}

double
totalFlops(const std::vector<LayerInstance> &graph)
{
    double total = 0.0;
    for (const auto &l : graph)
        total += l.cost.flops * l.count;
    return total;
}

uint64_t
activationBytes(size_t tokens, const ModelConfig &cfg)
{
    const double n = static_cast<double>(tokens);
    // XLA keeps many pair-shaped buffers live at once: residual
    // streams, chunked triangle-attention logits, bf16/fp32 copies,
    // and the batched diffusion samples at atom resolution. The
    // live-buffer multiplier (40 pair-equivalents at bf16) is
    // calibrated to the paper's VRAM boundary: 6QNR (1395 tokens)
    // overflows an RTX 4080's 16 GB but fits an H100's 80 GB, while
    // promo (857) fits the 4080.
    constexpr double kLiveBuffers = 40.0;
    const double pair = n * n * cfg.pairDim * 2.0 * kLiveBuffers;
    const double single =
        n * (cfg.singleDim + cfg.diffusionTokenDim) * 8.0;
    const double msa = n * cfg.msaFeatureDim * 4.0 * 8.0;
    return static_cast<uint64_t>(pair + single + msa);
}

uint64_t
weightBytes(const ModelConfig &cfg)
{
    const double cz = static_cast<double>(cfg.pairDim);
    const double cs = static_cast<double>(cfg.singleDim);
    const double ct = static_cast<double>(cfg.diffusionTokenDim);
    const double hd =
        static_cast<double>(cfg.heads * cfg.headDim);
    const double perPairformerBlock =
        6 * cz * cz +                  // triangle mult projections x2
        2 * (3 * cz * hd + hd * cz) +  // triangle attention x2
        8 * cz * cz +                  // pair transition
        3 * cs * hd + hd * cs +        // single attention
        8 * cs * cs;                   // single transition
    const double diffusion =
        cs * ct + 3 * ct * hd + hd * ct + 8 * ct * ct;
    const double total =
        cfg.pairformerBlocks * perPairformerBlock +
        (2 * cfg.diffusionBlocks + 1) * diffusion;
    return static_cast<uint64_t>(total * 2.0);  // bf16
}

} // namespace afsb::model
