#include "model/af3_model.hh"

#include <chrono>

namespace afsb::model {

namespace {

const char *kPairformerLayers[] = {
    "triangle_mult_outgoing", "triangle_mult_incoming",
    "triangle_attention_starting", "triangle_attention_ending",
    "pair_transition", "single_attention", "single_transition",
};

const char *kDiffusionLayers[] = {
    "local_attention_encoder", "global_attention",
    "local_attention_decoder", "coordinate_update",
};

double
sumLayers(const LayerProfile &profile, const char *const *names,
          size_t count)
{
    double total = 0.0;
    for (size_t i = 0; i < count; ++i) {
        auto it = profile.find(names[i]);
        if (it != profile.end())
            total += it->second;
    }
    return total;
}

} // namespace

double
InferenceResult::pairformerSeconds() const
{
    return sumLayers(profile, kPairformerLayers,
                     std::size(kPairformerLayers));
}

double
InferenceResult::diffusionSeconds() const
{
    return sumLayers(profile, kDiffusionLayers,
                     std::size(kDiffusionLayers));
}

namespace {

EmbedderWeights
makeEmbedder(const ModelConfig &cfg, uint64_t seed)
{
    Rng rng(seed);
    return EmbedderWeights::init(cfg, rng);
}

Pairformer
makePairformer(const ModelConfig &cfg, uint64_t seed)
{
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    return Pairformer(cfg, rng);
}

DiffusionModule
makeDiffusion(const ModelConfig &cfg, uint64_t seed)
{
    Rng rng(seed ^ 0x5851f42d4c957f2dull);
    return DiffusionModule(cfg, rng);
}

ConfidenceWeights
makeConfidence(const ModelConfig &cfg, uint64_t seed)
{
    Rng rng(seed ^ 0xc0fdc0fdc0fdc0fdull);
    return ConfidenceWeights::init(cfg, rng);
}

} // namespace

Af3Model::Af3Model(const ModelConfig &cfg, uint64_t seed)
    : cfg_(cfg),
      embedder_(makeEmbedder(cfg, seed)),
      pairformer_(makePairformer(cfg, seed)),
      diffusion_(makeDiffusion(cfg, seed)),
      confidence_(makeConfidence(cfg, seed))
{}

InferenceResult
Af3Model::infer(const bio::Complex &complex_input,
                const MsaFeatures &msa, uint64_t sample_seed) const
{
    InferenceResult result;
    auto hook = [&](const std::string &name, double seconds) {
        result.profile[name] += seconds;
    };

    PairState state =
        embedInput(complex_input, msa, embedder_, cfg_);
    pairformer_.forward(state, hook);

    Rng noise(sample_seed * 0x2545f4914f6cdd1dull + 0x1234);
    result.structure = diffusion_.sample(state, noise, hook);

    const auto t0 = std::chrono::steady_clock::now();
    result.confidence = computeConfidence(state, confidence_);
    hook("confidence_head",
         std::chrono::duration<double>(
             std::chrono::steady_clock::now() - t0)
             .count());
    return result;
}

} // namespace afsb::model
