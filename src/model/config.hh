/**
 * @file
 * AF3 model architecture configuration.
 *
 * Two presets:
 *  - paperConfig(): the published AF3 dimensions (48 Pairformer
 *    blocks, 128-dim pair / 384-dim single representations, 16
 *    attention heads, diffusion over 8-16 denoising steps). Used by
 *    the analytic FLOP model and the GPU simulator.
 *  - miniConfig(): a scaled-down instance the C++ tensor engine
 *    executes for real (correctness tests, CPU microbenches). Same
 *    operator graph, smaller dims.
 */

#ifndef AFSB_MODEL_CONFIG_HH
#define AFSB_MODEL_CONFIG_HH

#include <cstddef>

namespace afsb {
class ThreadPool;
}

namespace afsb::tensor {
class Arena;
}

namespace afsb::model {

/** Architecture hyperparameters. */
struct ModelConfig
{
    size_t pairDim = 128;       ///< c_z, pair-representation channels
    size_t singleDim = 384;     ///< c_s, single-representation channels
    size_t pairformerBlocks = 48;
    size_t heads = 16;          ///< attention heads (triangle/single)
    size_t headDim = 32;        ///< per-head channels

    size_t diffusionSteps = 16; ///< denoising iterations
    size_t diffusionTokenDim = 768; ///< diffusion token channels
    size_t localWindow = 32;    ///< sequence-local attention window
    size_t diffusionBlocks = 3; ///< enc/dec local-attn blocks per step

    /**
     * Global (token-transformer) attention blocks per denoising
     * step. AF3's diffusion transformer runs a deep token-level
     * stack between the atom-level encoder and decoder, which is why
     * global attention dominates Diffusion runtime in Fig 9.
     */
    size_t globalBlocks = 12;

    /** MSA feature dimension folded into the input embedding. */
    size_t msaFeatureDim = 64;

    /**
     * Trunk recycling iterations: AF3 re-runs the Pairformer trunk
     * on its own output (default 10), multiplying trunk compute.
     */
    size_t recyclingIterations = 10;

    /** Diffusion samples generated per request (AF3 default 5). */
    size_t diffusionSamples = 5;

    /**
     * Opt-in worker pool for the native tensor path. When set, the
     * heavy kernels (matmul/linear/softmax/layerNorm, the O(N^3)
     * triangle loops, and token attention) partition output rows
     * across the pool. Row ownership is static, so results are
     * bit-identical to the serial path at every pool size. nullptr
     * (default) keeps every layer serial.
     */
    ThreadPool *pool = nullptr;

    /**
     * Opt-in workspace arena for layer temporaries. When set, every
     * intra-layer tensor (normed inputs, projections, attention
     * scratch) is a bump-pointer allocation rewound at layer exit,
     * eliminating per-layer heap traffic. Results are bit-identical
     * with and without an arena. nullptr (default) keeps the
     * allocate-per-tensor behavior.
     */
    tensor::Arena *arena = nullptr;

    /**
     * Force the reference (naive-loop) kernels for triangle
     * attention, triangle multiplicative update, single attention,
     * and diffusion token attention instead of the GEMM-shaped
     * fast paths. The naive kernels are the correctness baseline:
     * the equivalence tests hold the fast paths to <= 1e-4 max
     * relative difference against them.
     */
    bool forceNaive = false;

    /**
     * Schedule the fast-path Pairformer block and diffusion token
     * transformer as TaskGroup task graphs (block_graph.cc) instead
     * of a barriered sequence of parallelFor sweeps. Independent
     * units of the next sub-layer start as soon as the lines they
     * read are finished, so workers never idle at a sub-layer
     * barrier. Unit bodies, partitions, and output slots are shared
     * with the fork-join path, so results are bit-identical at every
     * pool size and with the flag off. Ignored (classic path) when
     * pool is nullptr, forceNaive is set, or a layer-time hook needs
     * per-layer barriers for attribution.
     */
    bool taskGraph = true;
};

/** Published AF3 dimensions (FLOP accounting / GPU simulation). */
ModelConfig paperConfig();

/** Executable mini instance (tests / microbenches). */
ModelConfig miniConfig();

} // namespace afsb::model

#endif // AFSB_MODEL_CONFIG_HH
