/**
 * @file
 * Confidence head: pLDDT-style per-token confidence and the PAE
 * (predicted aligned error) summary AF3 reports alongside each
 * structure.
 *
 * The head is a small MLP over the final single representation plus
 * a pairwise projection; like the rest of the model the weights are
 * random (performance characterization, not accuracy), but the
 * computation and output plumbing match the real pipeline: per-token
 * confidences in [0, 100], a complex-level mean, and per-chain
 * aggregates.
 */

#ifndef AFSB_MODEL_CONFIDENCE_HH
#define AFSB_MODEL_CONFIDENCE_HH

#include <vector>

#include "model/pairformer.hh"

namespace afsb::model {

/** Confidence outputs for one prediction. */
struct ConfidenceResult
{
    /** Per-token pLDDT-like confidence in [0, 100]. */
    std::vector<double> plddt;

    /** Mean over tokens. */
    double meanPlddt = 0.0;

    /** Predicted-aligned-error summary (mean over pairs, Å-like). */
    double meanPae = 0.0;

    /** Fraction of tokens above the "confident" threshold (70). */
    double confidentFraction = 0.0;
};

/** Confidence-head weights. */
struct ConfidenceWeights
{
    Tensor w1, b1;       ///< (c_s, 32), (32)
    Tensor w2, b2;       ///< (32, 1), (1)
    Tensor paeProj;      ///< (c_z, 1)

    static ConfidenceWeights init(const ModelConfig &cfg, Rng &rng);
};

/**
 * Evaluate the confidence head over the trunk output @p state.
 */
ConfidenceResult computeConfidence(const PairState &state,
                                   const ConfidenceWeights &weights);

} // namespace afsb::model

#endif // AFSB_MODEL_CONFIDENCE_HH
