/**
 * @file
 * The Pairformer stack (AF3's replacement for the Evoformer).
 *
 * Each block applies, in order: triangle multiplicative update
 * (outgoing, incoming), triangle self-attention (starting, ending
 * node), pair transition, and single attention with pair bias plus a
 * single transition — operating on only the pair and single
 * representations (no MSA track, per the paper's Section II-B).
 */

#ifndef AFSB_MODEL_PAIRFORMER_HH
#define AFSB_MODEL_PAIRFORMER_HH

#include <functional>
#include <string>
#include <vector>

#include "model/layers.hh"

namespace afsb::model {

/** The model state flowing through the trunk. */
struct PairState
{
    Tensor pair;    ///< (N, N, c_z)
    Tensor single;  ///< (N, c_s)

    size_t tokens() const { return single.dim(0); }
};

/** Weights for one Pairformer block. */
struct PairformerBlockWeights
{
    TriangleMultWeights triMultOut;
    TriangleMultWeights triMultIn;
    TriangleAttnWeights triAttnStart;
    TriangleAttnWeights triAttnEnd;
    TransitionWeights pairTrans;
    SingleAttnWeights singleAttn;
    TransitionWeights singleTrans;

    static PairformerBlockWeights init(const ModelConfig &cfg,
                                       Rng &rng);

    /** Total parameter bytes across every member struct. */
    uint64_t bytes() const;
};

/**
 * Callback invoked after each layer with (layer name, seconds of
 * wall time); used by the profiler to build Fig 9-style breakdowns
 * of the real mini-model.
 */
using LayerTimeHook =
    std::function<void(const std::string &, double)>;

/** The full Pairformer stack. */
class Pairformer
{
  public:
    /** Initialize @p cfg.pairformerBlocks blocks of random weights. */
    Pairformer(const ModelConfig &cfg, Rng &rng);

    /** Run the stack over @p state in place. */
    void forward(PairState &state,
                 const LayerTimeHook &hook = nullptr) const;

    size_t blocks() const { return blocks_.size(); }

    /** Total weight bytes (memory accounting). */
    uint64_t weightBytes() const;

  private:
    ModelConfig cfg_;
    std::vector<PairformerBlockWeights> blocks_;
};

} // namespace afsb::model

#endif // AFSB_MODEL_PAIRFORMER_HH
