/**
 * @file
 * The AF3 diffusion module (replaces AF2's structure module).
 *
 * Structure prediction as iterative denoising: starting from
 * Gaussian-noise coordinates, each of the 8-16 steps conditions
 * token features on the trunk outputs and applies sequence-local
 * attention (encoder), global attention across all tokens, and
 * sequence-local attention (decoder) before regressing a coordinate
 * update — the three layers the paper's Fig 9 shows dominating
 * Diffusion runtime, with global attention the largest single
 * component.
 */

#ifndef AFSB_MODEL_DIFFUSION_HH
#define AFSB_MODEL_DIFFUSION_HH

#include <vector>

#include "model/pairformer.hh"

namespace afsb::model {

/** Weights for one local/global attention block. */
struct AttnBlockWeights
{
    Tensor q, k, v;      ///< (c_t, heads*headDim)
    Tensor outProj;      ///< (heads*headDim, c_t)
    Tensor outBias;      ///< (c_t)
    TransitionWeights transition;

    static AttnBlockWeights init(size_t dim, const ModelConfig &cfg,
                                 Rng &rng);
};

/** Weights for the whole diffusion module. */
struct DiffusionWeights
{
    Tensor condProj;     ///< (c_s, c_t) trunk-single conditioning
    Tensor condBias;     ///< (c_t)
    Tensor coordEmbed;   ///< (3, c_t)
    std::vector<AttnBlockWeights> localEnc;
    std::vector<AttnBlockWeights> globalAttn;
    std::vector<AttnBlockWeights> localDec;
    Tensor coordOut;     ///< (c_t, 3)
    Tensor coordOutBias; ///< (3)

    static DiffusionWeights init(const ModelConfig &cfg, Rng &rng);
};

/**
 * Attention over tokens, the diffusion transformer's building block:
 * layer-normed q/k/v projections, softmax attention, output
 * projection with residual, then a transition MLP. @p window 0 means
 * global attention; otherwise each token attends within its local
 * window only (AF3's sequence-local atom attention).
 *
 * Honors cfg.pool / cfg.arena / cfg.forceNaive like the Pairformer
 * layers: the fast path runs per-head logit and context GEMMs
 * (windowed rows for local attention) and is held to <= 1e-4 max
 * relative difference against the reference loop.
 */
void tokenAttention(Tensor &h, const AttnBlockWeights &w,
                    const ModelConfig &cfg, size_t window);

/** Predicted structure: one 3-D coordinate per token. */
struct Structure
{
    Tensor coords;  ///< (N, 3)
};

/** Noise schedule (EDM-style geometric decay). */
std::vector<double> noiseSchedule(size_t steps,
                                  double sigma_max = 160.0,
                                  double sigma_min = 0.05);

/** The iterative denoiser. */
class DiffusionModule
{
  public:
    DiffusionModule(const ModelConfig &cfg, Rng &rng);

    /**
     * Sample a structure by iterative denoising conditioned on the
     * trunk output @p state.
     * @param rng Noise source (seeded per AF3 modelSeeds entry).
     * @param hook Optional per-layer timing hook.
     */
    Structure sample(const PairState &state, Rng &rng,
                     const LayerTimeHook &hook = nullptr) const;

    size_t steps() const { return cfg_.diffusionSteps; }

  private:
    /** One denoising application at noise level @p sigma. */
    void denoiseStep(Tensor &coords, const Tensor &cond,
                     double sigma, const LayerTimeHook &hook) const;

    ModelConfig cfg_;
    DiffusionWeights weights_;
};

} // namespace afsb::model

#endif // AFSB_MODEL_DIFFUSION_HH
