#include "model/pairformer.hh"

#include <chrono>

#include "model/block_graph.hh"

namespace afsb::model {

namespace {

/** Wall-clock wrapper feeding the layer hook. */
class LayerTimer
{
  public:
    LayerTimer(const LayerTimeHook &hook, const char *name)
        : hook_(hook), name_(name),
          start_(std::chrono::steady_clock::now())
    {}

    ~LayerTimer()
    {
        if (hook_) {
            const auto end = std::chrono::steady_clock::now();
            hook_(name_,
                  std::chrono::duration<double>(end - start_)
                      .count());
        }
    }

  private:
    const LayerTimeHook &hook_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace

PairformerBlockWeights
PairformerBlockWeights::init(const ModelConfig &cfg, Rng &rng)
{
    PairformerBlockWeights w;
    w.triMultOut = TriangleMultWeights::init(cfg, rng);
    w.triMultIn = TriangleMultWeights::init(cfg, rng);
    w.triAttnStart = TriangleAttnWeights::init(cfg, rng);
    w.triAttnEnd = TriangleAttnWeights::init(cfg, rng);
    w.pairTrans = TransitionWeights::init(cfg.pairDim, rng);
    w.singleAttn = SingleAttnWeights::init(cfg, rng);
    w.singleTrans = TransitionWeights::init(cfg.singleDim, rng);
    return w;
}

Pairformer::Pairformer(const ModelConfig &cfg, Rng &rng) : cfg_(cfg)
{
    blocks_.reserve(cfg.pairformerBlocks);
    for (size_t b = 0; b < cfg.pairformerBlocks; ++b)
        blocks_.push_back(PairformerBlockWeights::init(cfg, rng));
}

void
Pairformer::forward(PairState &state, const LayerTimeHook &hook) const
{
    // Task-graph scheduler: one dependency graph per block instead
    // of seven barriered layers. Bit-identical to the classic path
    // (shared unit bodies, even-aligned partitions); the classic
    // path remains for per-layer timing attribution, forceNaive,
    // and the no-pool case.
    if (graph::taskGraphEligible(cfg_, hook != nullptr)) {
        for (const auto &w : blocks_)
            graph::runPairformerBlock(state.pair, state.single, w,
                                      cfg_);
        return;
    }
    for (const auto &w : blocks_) {
        {
            LayerTimer t(hook, "triangle_mult_outgoing");
            triangleMultiplicativeUpdate(state.pair, w.triMultOut,
                                         cfg_, true);
        }
        {
            LayerTimer t(hook, "triangle_mult_incoming");
            triangleMultiplicativeUpdate(state.pair, w.triMultIn,
                                         cfg_, false);
        }
        {
            LayerTimer t(hook, "triangle_attention_starting");
            triangleAttention(state.pair, w.triAttnStart, cfg_,
                              true);
        }
        {
            LayerTimer t(hook, "triangle_attention_ending");
            triangleAttention(state.pair, w.triAttnEnd, cfg_, false);
        }
        {
            LayerTimer t(hook, "pair_transition");
            pairTransition(state.pair, w.pairTrans, cfg_.pool,
                           cfg_.arena);
        }
        {
            LayerTimer t(hook, "single_attention");
            singleAttentionWithPairBias(state.single, state.pair,
                                        w.singleAttn, cfg_);
        }
        {
            LayerTimer t(hook, "single_transition");
            pairTransition(state.single, w.singleTrans, cfg_.pool,
                           cfg_.arena);
        }
    }
}

uint64_t
PairformerBlockWeights::bytes() const
{
    return triMultOut.bytes() + triMultIn.bytes() +
           triAttnStart.bytes() + triAttnEnd.bytes() +
           pairTrans.bytes() + singleAttn.bytes() +
           singleTrans.bytes();
}

uint64_t
Pairformer::weightBytes() const
{
    // Sum per-struct bytes() rather than hand-multiplied member
    // counts: the old arithmetic silently under-counted whenever a
    // weight struct gained a member (it already assumed projA's
    // shape for all six TriangleMultWeights matrices and skipped
    // none-of-the-above members entirely).
    uint64_t total = 0;
    for (const auto &w : blocks_)
        total += w.bytes();
    return total;
}

} // namespace afsb::model
