#include "model/confidence.hh"

#include <cmath>

#include "util/logging.hh"

namespace afsb::model {

using tensor::linear;

ConfidenceWeights
ConfidenceWeights::init(const ModelConfig &cfg, Rng &rng)
{
    ConfidenceWeights w;
    w.w1 = Tensor::randomNormal(
        {cfg.singleDim, 32}, rng,
        1.0f / std::sqrt(static_cast<float>(cfg.singleDim)));
    w.b1 = Tensor({32});
    w.w2 = Tensor::randomNormal({32, 1}, rng,
                                1.0f / std::sqrt(32.0f));
    w.b2 = Tensor({1});
    w.paeProj = Tensor::randomNormal(
        {cfg.pairDim, 1}, rng,
        1.0f / std::sqrt(static_cast<float>(cfg.pairDim)));
    return w;
}

ConfidenceResult
computeConfidence(const PairState &state,
                  const ConfidenceWeights &weights)
{
    const size_t n = state.tokens();
    panicIf(n == 0, "computeConfidence: empty state");

    ConfidenceResult result;
    result.plddt.reserve(n);

    // Per-token MLP -> sigmoid -> [0, 100].
    const Tensor h = tensor::gelu(linear(
        tensor::layerNorm(state.single), weights.w1, weights.b1));
    const Tensor logits = linear(h, weights.w2, weights.b2);
    size_t confident = 0;
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double p =
            100.0 / (1.0 + std::exp(-logits[i]));
        result.plddt.push_back(p);
        sum += p;
        confident += p >= 70.0;
    }
    result.meanPlddt = sum / static_cast<double>(n);
    result.confidentFraction =
        static_cast<double>(confident) / static_cast<double>(n);

    // PAE summary: softplus of a pair projection, averaged.
    const Tensor pae = linear(tensor::layerNorm(state.pair),
                              weights.paeProj, Tensor({1}));
    double paeSum = 0.0;
    for (size_t i = 0; i < pae.size(); ++i)
        paeSum += std::log1p(std::exp(pae[i]));  // softplus, Å-like
    result.meanPae = paeSum / static_cast<double>(pae.size());
    return result;
}

} // namespace afsb::model
