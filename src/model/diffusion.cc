#include "model/diffusion.hh"

#include <chrono>
#include <cmath>

#include "model/block_graph.hh"
#include "model/unit_kernels.hh"
#include "util/grain.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace afsb::model {

using tensor::linear;

namespace {

Tensor
initWeight(size_t in, size_t out, Rng &rng)
{
    return Tensor::randomNormal(
        {in, out}, rng,
        1.0f / std::sqrt(static_cast<float>(in)));
}

class LayerTimer
{
  public:
    LayerTimer(const LayerTimeHook &hook, const char *name)
        : hook_(hook), name_(name),
          start_(std::chrono::steady_clock::now())
    {}

    ~LayerTimer()
    {
        if (hook_) {
            const auto end = std::chrono::steady_clock::now();
            hook_(name_,
                  std::chrono::duration<double>(end - start_)
                      .count());
        }
    }

  private:
    const LayerTimeHook &hook_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * GEMM-shaped token attention. One unit = one head: K is gathered
 * into a contiguous dh x n transposed slab once per head, then
 * global attention (@p window 0) runs the full n x n logit GEMM +
 * row softmax + context GEMM, while local attention runs one
 * windowed row GEMM per token against the slab's [lo, hi) columns.
 * Unit bodies live in unit_kernels.cc so the task-graph path
 * (block_graph.cc) shares the compiled code exactly.
 */
void
tokenAttentionFast(Tensor &ctx, const Tensor &q, const Tensor &k,
                   const Tensor &v, size_t n, size_t heads,
                   size_t dh, size_t window, float invSqrt,
                   ThreadPool *pool, tensor::Arena *arena)
{
    const Tensor qs = tensor::scale(q, invSqrt, arena);
    const size_t span = window > 0 ? window : n;
    const size_t flops = 4 * n * span * dh;
    auto unit = [&](size_t h0, size_t h1) {
        std::vector<float> &ktp = unitk::tlsScratchA();
        ktp.resize(dh * n);
        for (size_t h = h0; h < h1; ++h) {
            unitk::tokenAttnSlab(ktp.data(), k.data(), n, heads,
                                 dh, h);
            unitk::tokenAttnRows(ctx.data(), qs.data(), ktp.data(),
                                 v.data(), n, heads, dh, h, window,
                                 0, n, unitk::tlsScratchB());
        }
    };
    if (!pool) {
        unit(0, heads);
        return;
    }
    pool->parallelFor(heads, grain::forFlops(flops), unit);
}

} // namespace

void
tokenAttention(Tensor &h, const AttnBlockWeights &w,
               const ModelConfig &cfg, size_t window)
{
    const size_t n = h.dim(0);
    const size_t heads = cfg.heads;
    const size_t dh = cfg.headDim;
    const size_t hd = heads * dh;
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(dh));
    ThreadPool *pool = cfg.pool;
    tensor::Arena *arena = cfg.arena;
    tensor::Arena::Scope scope(arena);

    const Tensor normed = tensor::layerNorm(h, 1e-5f, pool, arena);
    const Tensor q = linear(normed, w.q, pool, arena);
    const Tensor k = linear(normed, w.k, pool, arena);
    const Tensor v = linear(normed, w.v, pool, arena);

    Tensor ctx = Tensor::zeros({n, hd}, arena);
    if (cfg.forceNaive) {
        // Reference loop (seed implementation, unchanged):
        // token-parallel, each (i, head) context row independent.
        auto rows = [&](size_t i0, size_t i1) {
            std::vector<float> logits;
            for (size_t i = i0; i < i1; ++i) {
                size_t lo = 0, hi = n;
                if (window > 0) {
                    lo = i > window / 2 ? i - window / 2 : 0;
                    hi = std::min(n, lo + window);
                }
                for (size_t head = 0; head < heads; ++head) {
                    const size_t ho = head * dh;
                    logits.assign(hi - lo, 0.0f);
                    const float *qv = q.data() + i * hd + ho;
                    float mx = -1e30f;
                    for (size_t j = lo; j < hi; ++j) {
                        const float *kv = k.data() + j * hd + ho;
                        float dot = 0.0f;
                        for (size_t d = 0; d < dh; ++d)
                            dot += qv[d] * kv[d];
                        logits[j - lo] = dot * invSqrt;
                        mx = std::max(mx, logits[j - lo]);
                    }
                    float sum = 0.0f;
                    for (auto &l : logits) {
                        l = std::exp(l - mx);
                        sum += l;
                    }
                    const float inv = 1.0f / sum;
                    float *AFSB_RESTRICT o =
                        ctx.data() + i * hd + ho;
                    for (size_t j = lo; j < hi; ++j) {
                        const float p = logits[j - lo] * inv;
                        const float *AFSB_RESTRICT vv =
                            v.data() + j * hd + ho;
                        AFSB_VECTORIZE_LOOP
                        for (size_t d = 0; d < dh; ++d)
                            o[d] += p * vv[d];
                    }
                }
            }
        };
        if (pool)
            pool->parallelFor(n, 1, rows);
        else
            rows(0, n);
    } else {
        tokenAttentionFast(ctx, q, k, v, n, heads, dh, window,
                           invSqrt, pool, arena);
    }
    tensor::addInPlace(
        h, linear(ctx, w.outProj, w.outBias, pool, arena));
    pairTransition(h, w.transition, pool, arena);
}

AttnBlockWeights
AttnBlockWeights::init(size_t dim, const ModelConfig &cfg, Rng &rng)
{
    const size_t hd = cfg.heads * cfg.headDim;
    AttnBlockWeights w;
    w.q = initWeight(dim, hd, rng);
    w.k = initWeight(dim, hd, rng);
    w.v = initWeight(dim, hd, rng);
    w.outProj = initWeight(hd, dim, rng);
    w.outBias = Tensor({dim});
    w.transition = TransitionWeights::init(dim, rng);
    return w;
}

DiffusionWeights
DiffusionWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t ct = cfg.diffusionTokenDim;
    DiffusionWeights w;
    w.condProj = initWeight(cfg.singleDim, ct, rng);
    w.condBias = Tensor({ct});
    w.coordEmbed = initWeight(3, ct, rng);
    for (size_t b = 0; b < cfg.diffusionBlocks; ++b)
        w.localEnc.push_back(AttnBlockWeights::init(ct, cfg, rng));
    for (size_t b = 0; b < cfg.globalBlocks; ++b)
        w.globalAttn.push_back(AttnBlockWeights::init(ct, cfg, rng));
    for (size_t b = 0; b < cfg.diffusionBlocks; ++b)
        w.localDec.push_back(AttnBlockWeights::init(ct, cfg, rng));
    w.coordOut = initWeight(ct, 3, rng);
    w.coordOutBias = Tensor({3});
    return w;
}

std::vector<double>
noiseSchedule(size_t steps, double sigma_max, double sigma_min)
{
    panicIf(steps == 0, "noiseSchedule: zero steps");
    std::vector<double> out(steps);
    const double ratio =
        steps > 1 ? std::pow(sigma_min / sigma_max,
                             1.0 / static_cast<double>(steps - 1))
                  : 1.0;
    double sigma = sigma_max;
    for (size_t i = 0; i < steps; ++i) {
        out[i] = sigma;
        sigma *= ratio;
    }
    return out;
}

DiffusionModule::DiffusionModule(const ModelConfig &cfg, Rng &rng)
    : cfg_(cfg), weights_(DiffusionWeights::init(cfg, rng))
{}

void
DiffusionModule::denoiseStep(Tensor &coords, const Tensor &cond,
                             double sigma,
                             const LayerTimeHook &hook) const
{
    const size_t n = coords.dim(0);
    tensor::Arena *arena = cfg_.arena;
    tensor::Arena::Scope scope(arena);

    // Token features = conditioning + embedded noisy coordinates,
    // scaled into the unit regime for the current noise level.
    Tensor h = cond;
    const float cScale =
        1.0f / std::sqrt(1.0f + static_cast<float>(sigma * sigma));
    {
        const Tensor scaled = tensor::scale(coords, cScale, arena);
        tensor::addInPlace(
            h, linear(scaled, weights_.coordEmbed, cfg_.pool,
                      arena));
    }

    // Task-graph scheduler for the token-transformer stack:
    // bit-identical to the loop below (shared unit bodies), kept
    // behind the same eligibility gate as the Pairformer graph.
    if (graph::taskGraphEligible(cfg_, hook != nullptr)) {
        graph::runDiffusionTokenStack(h, weights_, cfg_);
    } else {
        for (const auto &w : weights_.localEnc) {
            LayerTimer t(hook, "local_attention_encoder");
            tokenAttention(h, w, cfg_, cfg_.localWindow);
        }
        for (const auto &w : weights_.globalAttn) {
            LayerTimer t(hook, "global_attention");
            tokenAttention(h, w, cfg_, 0);
        }
        for (const auto &w : weights_.localDec) {
            LayerTimer t(hook, "local_attention_decoder");
            tokenAttention(h, w, cfg_, cfg_.localWindow);
        }
    }

    // Denoised estimate; coordinates step toward it.
    LayerTimer t(hook, "coordinate_update");
    const Tensor denoised = tensor::add(
        tensor::scale(coords, 0.5f, arena),
        linear(tensor::layerNorm(h, 1e-5f, cfg_.pool, arena),
               weights_.coordOut, weights_.coordOutBias, cfg_.pool,
               arena),
        arena);
    const float blend = static_cast<float>(
        1.0 / (1.0 + sigma));  // stronger pull at low noise
    for (size_t i = 0; i < n; ++i)
        for (size_t d = 0; d < 3; ++d)
            coords.at(i, d) =
                (1.0f - blend) * coords.at(i, d) +
                blend * denoised.at(i, d);
}

Structure
DiffusionModule::sample(const PairState &state, Rng &rng,
                        const LayerTimeHook &hook) const
{
    const size_t n = state.tokens();
    const auto schedule = noiseSchedule(cfg_.diffusionSteps);

    // Conditioning from the trunk single representation. Allocated
    // under sample's own arena scope: every denoiseStep opens a
    // nested scope above this mark, so cond survives all steps and
    // the per-step scratch is rewound between them.
    tensor::Arena::Scope scope(cfg_.arena);
    const Tensor cond =
        linear(state.single, weights_.condProj, weights_.condBias,
               cfg_.pool, cfg_.arena);

    Structure out;
    out.coords = Tensor::randomNormal(
        {n, 3}, rng, static_cast<float>(schedule.front()));
    for (double sigma : schedule)
        denoiseStep(out.coords, cond, sigma, hook);
    return out;
}

} // namespace afsb::model
