#include "model/diffusion.hh"

#include <chrono>
#include <cmath>

#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace afsb::model {

using tensor::gemmAcc;
using tensor::linear;

namespace {

Tensor
initWeight(size_t in, size_t out, Rng &rng)
{
    return Tensor::randomNormal(
        {in, out}, rng,
        1.0f / std::sqrt(static_cast<float>(in)));
}

class LayerTimer
{
  public:
    LayerTimer(const LayerTimeHook &hook, const char *name)
        : hook_(hook), name_(name),
          start_(std::chrono::steady_clock::now())
    {}

    ~LayerTimer()
    {
        if (hook_) {
            const auto end = std::chrono::steady_clock::now();
            hook_(name_,
                  std::chrono::duration<double>(end - start_)
                      .count());
        }
    }

  private:
    const LayerTimeHook &hook_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

/** Per-worker scratch for the GEMM-shaped attention path. */
thread_local std::vector<float> tlsKt;
thread_local std::vector<float> tlsLogits;

/** Softmax each n-wide row in place with the branch-free fastExpf
 *  (the fast path's only numeric departure from the reference). */
void
softmaxRowsFast(float *AFSB_RESTRICT m, size_t rows, size_t n)
{
    for (size_t r = 0; r < rows; ++r) {
        float *AFSB_RESTRICT row = m + r * n;
        float mx = row[0];
        for (size_t i = 1; i < n; ++i)
            mx = std::max(mx, row[i]);
        // No reduction in the exp pass (so it vectorizes without
        // -ffast-math); four partial sums break the serial float
        // add chain the compiler may not reassociate.
        AFSB_VECTORIZE_LOOP
        for (size_t i = 0; i < n; ++i)
            row[i] = fastExpf(row[i] - mx);
        float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
        size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            s0 += row[i];
            s1 += row[i + 1];
            s2 += row[i + 2];
            s3 += row[i + 3];
        }
        for (; i < n; ++i)
            s0 += row[i];
        const float inv = 1.0f / ((s0 + s1) + (s2 + s3));
        AFSB_VECTORIZE_LOOP
        for (size_t i2 = 0; i2 < n; ++i2)
            row[i2] *= inv;
    }
}

/**
 * GEMM-shaped token attention. One unit = one head: K is gathered
 * into a contiguous dh x n transposed slab once per head, then
 * global attention (@p window 0) runs the full n x n logit GEMM +
 * row softmax + context GEMM, while local attention runs one
 * windowed row GEMM per token against the slab's [lo, hi) columns.
 */
void
tokenAttentionFast(Tensor &ctx, const Tensor &q, const Tensor &k,
                   const Tensor &v, size_t n, size_t heads,
                   size_t dh, size_t window, float invSqrt,
                   ThreadPool *pool, tensor::Arena *arena)
{
    const size_t hd = heads * dh;
    const Tensor qs = tensor::scale(q, invSqrt, arena);
    const size_t span = window > 0 ? window : n;
    const size_t flops = 4 * n * span * dh;
    auto unit = [&](size_t h0, size_t h1) {
        std::vector<float> &ktp = tlsKt;
        std::vector<float> &logits = tlsLogits;
        ktp.resize(dh * n);
        logits.resize(window > 0 ? span : n * n);
        for (size_t h = h0; h < h1; ++h) {
            const size_t ho = h * dh;
            for (size_t j = 0; j < n; ++j) {
                const float *AFSB_RESTRICT kv =
                    k.data() + j * hd + ho;
                for (size_t d = 0; d < dh; ++d)
                    ktp[d * n + j] = kv[d];
            }
            if (window == 0) {
                std::fill(logits.begin(), logits.end(), 0.0f);
                gemmAcc(qs.data() + ho, hd, ktp.data(), n,
                        logits.data(), n, n, dh, n);
                softmaxRowsFast(logits.data(), n, n);
                gemmAcc(logits.data(), n, v.data() + ho, hd,
                        ctx.data() + ho, hd, n, n, dh);
                continue;
            }
            for (size_t i = 0; i < n; ++i) {
                const size_t lo =
                    i > window / 2 ? i - window / 2 : 0;
                const size_t hi = std::min(n, lo + window);
                const size_t len = hi - lo;
                std::fill(logits.begin(), logits.begin() + len,
                          0.0f);
                gemmAcc(qs.data() + i * hd + ho, hd,
                        ktp.data() + lo, n, logits.data(), len, 1,
                        dh, len);
                softmaxRowsFast(logits.data(), 1, len);
                gemmAcc(logits.data(), len,
                        v.data() + lo * hd + ho, hd,
                        ctx.data() + i * hd + ho, hd, 1, len, dh);
            }
        }
    };
    if (!pool) {
        unit(0, heads);
        return;
    }
    const size_t grain = std::max<size_t>(
        1, (1 << 18) / std::max<size_t>(1, flops));
    pool->parallelFor(heads, grain, unit);
}

} // namespace

void
tokenAttention(Tensor &h, const AttnBlockWeights &w,
               const ModelConfig &cfg, size_t window)
{
    const size_t n = h.dim(0);
    const size_t heads = cfg.heads;
    const size_t dh = cfg.headDim;
    const size_t hd = heads * dh;
    const float invSqrt = 1.0f / std::sqrt(static_cast<float>(dh));
    ThreadPool *pool = cfg.pool;
    tensor::Arena *arena = cfg.arena;
    tensor::Arena::Scope scope(arena);

    const Tensor normed = tensor::layerNorm(h, 1e-5f, pool, arena);
    const Tensor q = linear(normed, w.q, pool, arena);
    const Tensor k = linear(normed, w.k, pool, arena);
    const Tensor v = linear(normed, w.v, pool, arena);

    Tensor ctx = Tensor::zeros({n, hd}, arena);
    if (cfg.forceNaive) {
        // Reference loop (seed implementation, unchanged):
        // token-parallel, each (i, head) context row independent.
        auto rows = [&](size_t i0, size_t i1) {
            std::vector<float> logits;
            for (size_t i = i0; i < i1; ++i) {
                size_t lo = 0, hi = n;
                if (window > 0) {
                    lo = i > window / 2 ? i - window / 2 : 0;
                    hi = std::min(n, lo + window);
                }
                for (size_t head = 0; head < heads; ++head) {
                    const size_t ho = head * dh;
                    logits.assign(hi - lo, 0.0f);
                    const float *qv = q.data() + i * hd + ho;
                    float mx = -1e30f;
                    for (size_t j = lo; j < hi; ++j) {
                        const float *kv = k.data() + j * hd + ho;
                        float dot = 0.0f;
                        for (size_t d = 0; d < dh; ++d)
                            dot += qv[d] * kv[d];
                        logits[j - lo] = dot * invSqrt;
                        mx = std::max(mx, logits[j - lo]);
                    }
                    float sum = 0.0f;
                    for (auto &l : logits) {
                        l = std::exp(l - mx);
                        sum += l;
                    }
                    const float inv = 1.0f / sum;
                    float *AFSB_RESTRICT o =
                        ctx.data() + i * hd + ho;
                    for (size_t j = lo; j < hi; ++j) {
                        const float p = logits[j - lo] * inv;
                        const float *AFSB_RESTRICT vv =
                            v.data() + j * hd + ho;
                        AFSB_VECTORIZE_LOOP
                        for (size_t d = 0; d < dh; ++d)
                            o[d] += p * vv[d];
                    }
                }
            }
        };
        if (pool)
            pool->parallelFor(n, 1, rows);
        else
            rows(0, n);
    } else {
        tokenAttentionFast(ctx, q, k, v, n, heads, dh, window,
                           invSqrt, pool, arena);
    }
    tensor::addInPlace(
        h, linear(ctx, w.outProj, w.outBias, pool, arena));
    pairTransition(h, w.transition, pool, arena);
}

AttnBlockWeights
AttnBlockWeights::init(size_t dim, const ModelConfig &cfg, Rng &rng)
{
    const size_t hd = cfg.heads * cfg.headDim;
    AttnBlockWeights w;
    w.q = initWeight(dim, hd, rng);
    w.k = initWeight(dim, hd, rng);
    w.v = initWeight(dim, hd, rng);
    w.outProj = initWeight(hd, dim, rng);
    w.outBias = Tensor({dim});
    w.transition = TransitionWeights::init(dim, rng);
    return w;
}

DiffusionWeights
DiffusionWeights::init(const ModelConfig &cfg, Rng &rng)
{
    const size_t ct = cfg.diffusionTokenDim;
    DiffusionWeights w;
    w.condProj = initWeight(cfg.singleDim, ct, rng);
    w.condBias = Tensor({ct});
    w.coordEmbed = initWeight(3, ct, rng);
    for (size_t b = 0; b < cfg.diffusionBlocks; ++b)
        w.localEnc.push_back(AttnBlockWeights::init(ct, cfg, rng));
    for (size_t b = 0; b < cfg.globalBlocks; ++b)
        w.globalAttn.push_back(AttnBlockWeights::init(ct, cfg, rng));
    for (size_t b = 0; b < cfg.diffusionBlocks; ++b)
        w.localDec.push_back(AttnBlockWeights::init(ct, cfg, rng));
    w.coordOut = initWeight(ct, 3, rng);
    w.coordOutBias = Tensor({3});
    return w;
}

std::vector<double>
noiseSchedule(size_t steps, double sigma_max, double sigma_min)
{
    panicIf(steps == 0, "noiseSchedule: zero steps");
    std::vector<double> out(steps);
    const double ratio =
        steps > 1 ? std::pow(sigma_min / sigma_max,
                             1.0 / static_cast<double>(steps - 1))
                  : 1.0;
    double sigma = sigma_max;
    for (size_t i = 0; i < steps; ++i) {
        out[i] = sigma;
        sigma *= ratio;
    }
    return out;
}

DiffusionModule::DiffusionModule(const ModelConfig &cfg, Rng &rng)
    : cfg_(cfg), weights_(DiffusionWeights::init(cfg, rng))
{}

void
DiffusionModule::denoiseStep(Tensor &coords, const Tensor &cond,
                             double sigma,
                             const LayerTimeHook &hook) const
{
    const size_t n = coords.dim(0);
    tensor::Arena *arena = cfg_.arena;
    tensor::Arena::Scope scope(arena);

    // Token features = conditioning + embedded noisy coordinates,
    // scaled into the unit regime for the current noise level.
    Tensor h = cond;
    const float cScale =
        1.0f / std::sqrt(1.0f + static_cast<float>(sigma * sigma));
    {
        const Tensor scaled = tensor::scale(coords, cScale, arena);
        tensor::addInPlace(
            h, linear(scaled, weights_.coordEmbed, cfg_.pool,
                      arena));
    }

    for (const auto &w : weights_.localEnc) {
        LayerTimer t(hook, "local_attention_encoder");
        tokenAttention(h, w, cfg_, cfg_.localWindow);
    }
    for (const auto &w : weights_.globalAttn) {
        LayerTimer t(hook, "global_attention");
        tokenAttention(h, w, cfg_, 0);
    }
    for (const auto &w : weights_.localDec) {
        LayerTimer t(hook, "local_attention_decoder");
        tokenAttention(h, w, cfg_, cfg_.localWindow);
    }

    // Denoised estimate; coordinates step toward it.
    LayerTimer t(hook, "coordinate_update");
    const Tensor denoised = tensor::add(
        tensor::scale(coords, 0.5f, arena),
        linear(tensor::layerNorm(h, 1e-5f, cfg_.pool, arena),
               weights_.coordOut, weights_.coordOutBias, cfg_.pool,
               arena),
        arena);
    const float blend = static_cast<float>(
        1.0 / (1.0 + sigma));  // stronger pull at low noise
    for (size_t i = 0; i < n; ++i)
        for (size_t d = 0; d < 3; ++d)
            coords.at(i, d) =
                (1.0f - blend) * coords.at(i, d) +
                blend * denoised.at(i, d);
}

Structure
DiffusionModule::sample(const PairState &state, Rng &rng,
                        const LayerTimeHook &hook) const
{
    const size_t n = state.tokens();
    const auto schedule = noiseSchedule(cfg_.diffusionSteps);

    // Conditioning from the trunk single representation. Allocated
    // under sample's own arena scope: every denoiseStep opens a
    // nested scope above this mark, so cond survives all steps and
    // the per-step scratch is rewound between them.
    tensor::Arena::Scope scope(cfg_.arena);
    const Tensor cond =
        linear(state.single, weights_.condProj, weights_.condBias,
               cfg_.pool, cfg_.arena);

    Structure out;
    out.coords = Tensor::randomNormal(
        {n, 3}, rng, static_cast<float>(schedule.front()));
    for (double sigma : schedule)
        denoiseStep(out.coords, cond, sigma, hook);
    return out;
}

} // namespace afsb::model
