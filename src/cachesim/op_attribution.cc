#include "cachesim/op_attribution.hh"

#include <algorithm>

namespace afsb::cachesim {

GraphAttribution
attributeOpGraph(const opgraph::OpGraph &graph,
                 const sys::PlatformSpec &platform)
{
    GraphAttribution out;
    const auto &cpu = platform.cpu;
    out.peakFlops = static_cast<double>(cpu.cores) *
                    cpu.allCoreClockGhz * 1e9 *
                    cpu.vectorFlopsPerCycle;
    out.memBandwidth = cpu.memBandwidth;

    out.ops.reserve(graph.ops.size());
    for (const auto &op : graph.ops) {
        OpAttribution a;
        a.id = op.id;
        a.name = op.name();
        const double reps = static_cast<double>(op.count);
        a.flops = op.flops * reps;
        a.trafficBytes = op.trafficBytes() * reps;
        a.computeSeconds = a.flops / out.peakFlops;
        a.memorySeconds = a.trafficBytes / out.memBandwidth;
        a.memoryBound = a.memorySeconds >= a.computeSeconds;
        a.boundSeconds =
            std::max(a.computeSeconds, a.memorySeconds);
        out.totalSeconds += a.boundSeconds;
        if (a.memoryBound)
            out.memoryBoundSeconds += a.boundSeconds;
        out.ops.push_back(std::move(a));
    }

    if (out.totalSeconds > 0.0) {
        for (auto &a : out.ops)
            a.share = a.boundSeconds / out.totalSeconds;
    }
    return out;
}

} // namespace afsb::cachesim
