/**
 * @file
 * Set-associative cache and TLB models (trace-driven).
 *
 * Classic LRU set-associative structures operated on virtual
 * addresses. They are deliberately simple — the goal is reproducing
 * the paper's counter *shapes* (Table III), not timing-accurate
 * microarchitecture — but geometry, associativity, and replacement
 * are real, and a next-line prefetcher captures the streaming-
 * friendliness that lets the promo workload scale on Intel.
 */

#ifndef AFSB_CACHESIM_CACHE_HH
#define AFSB_CACHESIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sys/platform.hh"

namespace afsb::cachesim {

/** Hit/miss counters for one structure. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t prefetchHits = 0;  ///< hits on prefetched lines

    double
    missRate() const
    {
        return accesses
                   ? static_cast<double>(misses) /
                         static_cast<double>(accesses)
                   : 0.0;
    }

    void
    merge(const CacheStats &o)
    {
        accesses += o.accesses;
        misses += o.misses;
        prefetchHits += o.prefetchHits;
    }
};

/** LRU set-associative cache. */
class Cache
{
  public:
    /**
     * @param geometry Size/associativity/line size.
     * @param prefetch Enable next-line prefetch on miss streams.
     * @param chain_prefetch When a prefetched line is hit, prefetch
     *        the next line too — a running stream prefetcher that
     *        keeps sequential scans entirely resident (the behaviour
     *        behind AMD's ~1% single-thread LLC miss rate on the
     *        streaming MSA workload).
     */
    explicit Cache(const sys::CacheGeometry &geometry,
                   bool prefetch = false,
                   bool chain_prefetch = false);

    /**
     * Access a byte address. @return true on hit.
     * Accesses spanning a line boundary count as one access to the
     * first line (producers emit per-line references).
     */
    bool access(uint64_t addr, bool write);

    /** Insert a line without counting an access (fill/prefetch). */
    void fill(uint64_t addr, bool prefetched);

    /** Invalidate everything. */
    void reset();

    const CacheStats &stats() const { return stats_; }
    uint64_t sets() const { return sets_; }
    uint32_t ways() const { return ways_; }

  private:
    struct Line
    {
        uint64_t tag = ~0ull;
        uint64_t lastUse = 0;
        bool valid = false;
        bool prefetched = false;
    };

    uint64_t lineOf(uint64_t addr) const { return addr / lineSize_; }

    uint32_t lineSize_;
    uint64_t sets_;
    uint32_t ways_;
    bool prefetch_;
    bool chainPrefetch_;
    /** One hardware stream tracker (real prefetchers keep several
     *  so interleaved streams do not clobber each other). */
    struct StreamTracker
    {
        uint64_t lastLine = ~0ull;
        int64_t stride = 0;
        uint64_t lastUse = 0;
    };

    /** Find/advance a tracker for @p line; prefetch when armed. */
    void trainPrefetcher(uint64_t line);

    static constexpr size_t kStreamTrackers = 4;

    uint64_t tick_ = 0;
    StreamTracker trackers_[kStreamTrackers];
    std::vector<Line> lines_;  ///< sets_ x ways_
    CacheStats stats_;
};

/**
 * LRU set-associative TLB (8-way, like real L2 dTLBs; keeps lookups
 * O(ways) even for thousands of entries). Page size is
 * configurable: effective reach differs drastically between THP-
 * backed (2 MiB) and fragmented (4 KiB) mappings.
 */
class Tlb
{
  public:
    explicit Tlb(uint32_t entries, uint64_t page_bytes = 4096);

    /** Translate an address. @return true on TLB hit. */
    bool access(uint64_t addr);

    void reset();

    const CacheStats &stats() const { return tlb_.stats(); }

  private:
    Cache tlb_;
};

} // namespace afsb::cachesim

#endif // AFSB_CACHESIM_CACHE_HH
