/**
 * @file
 * Analytic timing model over simulated counters.
 *
 * Converts the per-function counters produced by HierarchySim into
 * wall-clock time on a platform: cycles = instructions / base-IPC
 * plus miss-latency stalls discounted by memory-level parallelism,
 * with a bandwidth-queueing term that inflates memory latency as
 * concurrent threads saturate the DRAM channels (the saturation /
 * degradation mechanism behind Figs 4-5), clock taper with active
 * cores, and a serial Amdahl fraction for the non-parallel pipeline
 * stages.
 *
 * The model iterates to a fixed point because memory latency depends
 * on bandwidth utilization, which depends on execution time.
 */

#ifndef AFSB_CACHESIM_TIMING_HH
#define AFSB_CACHESIM_TIMING_HH

#include "cachesim/hierarchy.hh"
#include "sys/platform.hh"

namespace afsb::cachesim {

/** Inputs to one timing evaluation. */
struct TimingInputs
{
    /** Aggregate counters across all worker threads. */
    FuncCounters counters;

    /**
     * Work executed by the single reader/master thread (HMMER's
     * input parse and buffer pipeline: addbuf / seebuf /
     * copy_to_iter). It does not parallelize: the workers and the
     * reader run as a pipeline, so wall time is the longer of the
     * two — the mechanism that saturates MSA thread scaling at
     * 4-6 threads (paper Figs 4-5) while per-thread IPC stays high.
     */
    FuncCounters readerCounters;

    /** Worker threads used. */
    uint32_t threads = 1;

    /**
     * Work-extrapolation factor: counters were measured on a
     * scaled-down database; multiply to reach paper scale.
     */
    double workScale = 1.0;

    /** Simulated storage latency (overlaps with compute). */
    double ioSeconds = 0.0;

    /** Serial (non-parallelizable) compute, e.g. merge/setup. */
    double serialSeconds = 0.0;

    /** Memory latency multiplier (CXL spill; 1.0 = all DRAM). */
    double memLatencyFactor = 1.0;

    /** Per-extra-thread synchronization overhead fraction. */
    double syncOverheadPerThread = 0.006;
};

/** Timing-model outputs. */
struct TimingResult
{
    double seconds = 0.0;        ///< end-to-end wall time
    double computeSeconds = 0.0; ///< worker+reader pipeline time
    double workerSeconds = 0.0;  ///< parallel worker component
    double readerSeconds = 0.0;  ///< single reader thread component
    double cyclesPerThread = 0.0;
    double effectiveIpc = 0.0;   ///< instructions / total cycles
    double clockGhz = 0.0;
    double memUtilization = 0.0; ///< DRAM bandwidth demand fraction
    double stallFraction = 0.0;  ///< stall cycles / total cycles
};

/** Evaluate the model for @p platform. */
TimingResult computeTiming(const sys::PlatformSpec &platform,
                           const TimingInputs &inputs);

} // namespace afsb::cachesim

#endif // AFSB_CACHESIM_TIMING_HH
