#include "cachesim/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace afsb::cachesim {

namespace {

uint64_t
floorPow2(uint64_t v)
{
    return v ? std::bit_floor(v) : 1;
}

} // namespace

Cache::Cache(const sys::CacheGeometry &geometry, bool prefetch,
             bool chain_prefetch)
    : lineSize_(geometry.lineSize), prefetch_(prefetch),
      chainPrefetch_(chain_prefetch)
{
    panicIf(geometry.size == 0, "Cache: zero size");
    ways_ = std::max<uint32_t>(1, geometry.associativity);
    const uint64_t totalLines =
        std::max<uint64_t>(ways_, geometry.size / lineSize_);
    sets_ = floorPow2(std::max<uint64_t>(1, totalLines / ways_));
    lines_.assign(sets_ * ways_, {});
}

bool
Cache::access(uint64_t addr, bool write)
{
    (void)write;  // write-allocate, write-back: same fill behaviour
    ++stats_.accesses;
    ++tick_;

    const uint64_t line = lineOf(addr);
    const uint64_t set = line & (sets_ - 1);
    Line *base = &lines_[set * ways_];

    for (uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lastUse = tick_;
            if (base[w].prefetched) {
                ++stats_.prefetchHits;
                base[w].prefetched = false;
                // Keep the stream moving across prefetch hits; a
                // chaining prefetcher keeps running ahead.
                if (chainPrefetch_)
                    trainPrefetcher(line);
            }
            return true;
        }
    }

    ++stats_.misses;
    fill(addr, false);
    if (prefetch_)
        trainPrefetcher(line);
    return false;
}

void
Cache::trainPrefetcher(uint64_t line)
{
    // Multi-stream stride prefetcher: each tracker follows one
    // stream; a reference matching a tracker's predicted next
    // element (or near its cursor) advances it and prefetches one
    // element ahead. Strides up to 16 lines are recognized, so
    // sampled traces still look like streams.
    constexpr int64_t kMaxStride = 16;
    StreamTracker *victim = &trackers_[0];
    for (auto &t : trackers_) {
        if (t.lastLine == ~0ull) {
            victim = &t;
            continue;
        }
        const int64_t stride = static_cast<int64_t>(line) -
                               static_cast<int64_t>(t.lastLine);
        if (stride != 0 && stride <= kMaxStride &&
            stride >= -kMaxStride) {
            // Monotone ascending stream (sampled traces have
            // slightly irregular strides): fetch the sequential
            // region ahead, like hardware readahead does.
            if (stride > 0 && t.stride > 0) {
                const int64_t ahead = 2 * stride;
                for (int64_t k = 1; k <= ahead; ++k)
                    fill((line + static_cast<uint64_t>(k)) *
                             lineSize_,
                         true);
            } else if (stride == t.stride) {
                // Exact descending stream: one element ahead.
                fill((line + static_cast<uint64_t>(stride)) *
                         lineSize_,
                     true);
            }
            t.stride = stride;
            t.lastLine = line;
            t.lastUse = tick_;
            return;
        }
        if (t.lastUse < victim->lastUse)
            victim = &t;
    }
    *victim = {line, 0, tick_};
}

void
Cache::fill(uint64_t addr, bool prefetched)
{
    const uint64_t line = lineOf(addr);
    const uint64_t set = line & (sets_ - 1);
    Line *base = &lines_[set * ways_];

    // Already resident?
    for (uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line)
            return;
    }
    // Evict LRU.
    uint32_t victim = 0;
    for (uint32_t w = 1; w < ways_; ++w)
        if (!base[w].valid ||
            base[w].lastUse < base[victim].lastUse)
            victim = w;
    base[victim] = {line, tick_, true, prefetched};
}

void
Cache::reset()
{
    std::fill(lines_.begin(), lines_.end(), Line{});
    stats_ = {};
    tick_ = 0;
    for (auto &t : trackers_)
        t = StreamTracker{};
}

namespace {

sys::CacheGeometry
tlbGeometry(uint32_t entries, uint64_t page_bytes)
{
    panicIf(entries == 0, "Tlb: zero entries");
    panicIf(page_bytes == 0 || page_bytes > (1ull << 31),
            "Tlb: bad page size");
    sys::CacheGeometry g;
    g.lineSize = static_cast<uint32_t>(page_bytes);
    g.associativity = std::min<uint32_t>(8, entries);
    g.size = static_cast<uint64_t>(entries) * page_bytes;
    return g;
}

} // namespace

Tlb::Tlb(uint32_t entries, uint64_t page_bytes)
    : tlb_(tlbGeometry(entries, page_bytes))
{}

bool
Tlb::access(uint64_t addr)
{
    return tlb_.access(addr, false);
}

void
Tlb::reset()
{
    tlb_.reset();
}

} // namespace afsb::cachesim
