/**
 * @file
 * Per-thread cache-hierarchy simulator (the MemTraceSink consumer).
 *
 * One instance models one hardware thread: private L1D and L2, a
 * slice of the shared LLC, and a private dTLB. Multi-threaded runs
 * give each worker its own instance with the LLC slice sized
 * sharedLLC / activeThreads — the effective-capacity model of LLC
 * contention that reproduces the paper's Table III trends (AMD's
 * big LLC saturating as threads grow; Intel's small LLC already
 * saturated at one thread).
 *
 * Counters are kept per FuncId, enabling the Table IV function-level
 * breakdowns.
 */

#ifndef AFSB_CACHESIM_HIERARCHY_HH
#define AFSB_CACHESIM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cachesim/cache.hh"
#include "util/memtrace.hh"

namespace afsb::cachesim {

/** Counter block kept per profiled function (and in aggregate). */
struct FuncCounters
{
    uint64_t instructions = 0;
    uint64_t accesses = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Misses = 0;
    uint64_t llcMisses = 0;
    uint64_t tlbMisses = 0;
    uint64_t branches = 0;
    uint64_t branchMisses = 0;

    void merge(const FuncCounters &o);

    double
    l1MissRate() const
    {
        return accesses ? static_cast<double>(l1Misses) / accesses
                        : 0.0;
    }

    /** LLC local miss rate: misses / LLC lookups. */
    double
    llcMissRate() const
    {
        return l2Misses ? static_cast<double>(llcMisses) / l2Misses
                        : 0.0;
    }

    double
    tlbMissRate() const
    {
        return accesses ? static_cast<double>(tlbMisses) / accesses
                        : 0.0;
    }

    double
    branchMissRate() const
    {
        return branches
                   ? static_cast<double>(branchMisses) / branches
                   : 0.0;
    }
};

/** Configuration derived from a platform + run shape. */
struct HierarchyConfig
{
    sys::CpuSpec cpu;

    /** Worker threads concurrently active (LLC slice divisor). */
    uint32_t activeThreads = 1;

    /**
     * Trace sampling stride agreed with the producer: miss counters
     * are scaled by this weight when reporting.
     */
    uint32_t sampleWeight = 1;

    /** Enable the next-line prefetcher on L2 and LLC. */
    bool prefetch = true;
};

/** One hardware thread's view of the memory hierarchy. */
class HierarchySim : public MemTraceSink
{
  public:
    explicit HierarchySim(const HierarchyConfig &cfg);

    // MemTraceSink interface.
    void access(const MemAccess &a) override;
    void instructions(FuncId func, uint64_t count) override;
    void branches(FuncId func, uint64_t predictable,
                  uint64_t data_dependent) override;

    /** Aggregate counters (sample-weight scaled). */
    FuncCounters totals() const;

    /** Per-function counters (sample-weight scaled). */
    std::vector<FuncCounters> perFunction() const;

    const HierarchyConfig &config() const { return cfg_; }

    /** Merge another thread's simulator into a combined view. */
    static FuncCounters mergedTotals(
        const std::vector<std::unique_ptr<HierarchySim>> &sims);

    /**
     * Pre-fill the LLC slice with the lines of [base, base+bytes)
     * without counting statistics. Models a working set that has
     * reached steady state before measurement (the sparse-rescue
     * arena exists long before any counter window opens).
     */
    void prefillLlc(uint64_t base, uint64_t bytes);

  private:
    FuncCounters &slot(FuncId func);

    HierarchyConfig cfg_;
    Cache l1_;
    Cache l2_;
    Cache llcSlice_;
    Tlb tlb_;

    /// Raw (unscaled) counters; sample-weight scaling applies at
    /// report time.
    std::vector<FuncCounters> perFunc_;
};

} // namespace afsb::cachesim

#endif // AFSB_CACHESIM_HIERARCHY_HH
