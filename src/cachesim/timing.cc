#include "cachesim/timing.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace afsb::cachesim {

namespace {

/** Stall cycles for one thread's share of @p c at memory latency
 *  @p mem_lat. */
double
stallCycles(const FuncCounters &c, const sys::CpuSpec &cpu,
            double scale, double divisor, double mem_lat)
{
    const double l2Hits =
        static_cast<double>(c.l1Misses > c.l2Misses
                                ? c.l1Misses - c.l2Misses
                                : 0) *
        scale / divisor;
    const double llcHits =
        static_cast<double>(c.l2Misses > c.llcMisses
                                ? c.l2Misses - c.llcMisses
                                : 0) *
        scale / divisor;
    const double llcMiss =
        static_cast<double>(c.llcMisses) * scale / divisor;
    const double tlbMiss =
        static_cast<double>(c.tlbMisses) * scale / divisor;
    const double brMiss =
        static_cast<double>(c.branchMisses) * scale / divisor;

    return (l2Hits * cpu.l2.latencyCycles +
            llcHits * cpu.llc.latencyCycles) /
               cpu.mlpCacheHits +
           llcMiss * mem_lat / cpu.mlp +
           tlbMiss * cpu.dtlbMissPenaltyCycles / cpu.mlp +
           brMiss * cpu.mispredictPenaltyCycles;
}

} // namespace

TimingResult
computeTiming(const sys::PlatformSpec &platform,
              const TimingInputs &inputs)
{
    const sys::CpuSpec &cpu = platform.cpu;
    const uint32_t threads = std::max<uint32_t>(1, inputs.threads);
    const double scale = inputs.workScale;
    const FuncCounters &c = inputs.counters;
    const FuncCounters &r = inputs.readerCounters;

    TimingResult out;
    // The reader occupies one extra hardware thread when workers
    // run in parallel with it.
    const uint32_t activeCores =
        threads + (r.instructions > 0 && threads > 1 ? 1 : 0);
    out.clockGhz = platform.effectiveClockGhz(activeCores);
    const double hz = out.clockGhz * 1e9;

    const double workerInstrT =
        static_cast<double>(c.instructions) * scale / threads;
    const double readerInstr =
        static_cast<double>(r.instructions) * scale;
    const double workerBase = workerInstrT / cpu.baseIpc;
    const double readerBase = readerInstr / cpu.baseIpc;

    const double totalMissBytes =
        (static_cast<double>(c.llcMisses) +
         static_cast<double>(r.llcMisses)) *
        scale * cpu.llc.lineSize * cpu.trafficAmplification;

    // Fixed point: memory latency inflates with bandwidth demand,
    // which depends on the resulting wall time.
    double wall = (workerBase + readerBase) / hz;  // initial guess
    double util = 0.0;
    double workerCycles = workerBase;
    double readerCycles = readerBase;
    for (int iter = 0; iter < 60; ++iter) {
        const double demand =
            wall > 0.0 ? totalMissBytes / wall : 0.0;
        util = std::min(0.95, demand / cpu.memBandwidth);
        const double memLat = cpu.memLatencyCycles *
                              inputs.memLatencyFactor /
                              (1.0 - util);

        workerCycles =
            workerBase + stallCycles(c, cpu, scale,
                                     static_cast<double>(threads),
                                     memLat);
        readerCycles =
            readerBase + stallCycles(r, cpu, scale, 1.0, memLat);

        const double workerTime = workerCycles / hz;
        const double readerTime = readerCycles / hz;
        // One thread interleaves both roles; with more threads the
        // reader pipelines against the workers.
        const double pipeTime =
            threads == 1 ? workerTime + readerTime
                         : std::max(workerTime, readerTime);

        const double newWall = 0.5 * (wall + pipeTime);
        if (std::abs(newWall - wall) < 1e-9 * (1.0 + wall)) {
            wall = newWall;
            break;
        }
        wall = newWall;
    }

    const double syncFactor =
        1.0 + inputs.syncOverheadPerThread * (threads - 1);
    out.workerSeconds = workerCycles / hz * syncFactor;
    out.readerSeconds = readerCycles / hz;
    out.computeSeconds =
        threads == 1 ? out.workerSeconds + out.readerSeconds
                     : std::max(out.workerSeconds,
                                out.readerSeconds);
    out.cyclesPerThread = workerCycles;
    out.effectiveIpc =
        workerCycles > 0.0 ? workerInstrT / workerCycles : 0.0;
    out.memUtilization = util;
    out.stallFraction =
        workerCycles > 0.0 ? (workerCycles - workerBase) /
                                 workerCycles
                           : 0.0;

    // Storage I/O overlaps with compute (prefetching scan); the
    // phase takes whichever pipe is longer, plus serial work.
    out.seconds = std::max(out.computeSeconds,
                           inputs.ioSeconds * scale) +
                  inputs.serialSeconds;
    return out;
}

} // namespace afsb::cachesim
