#include "cachesim/hierarchy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::cachesim {

void
FuncCounters::merge(const FuncCounters &o)
{
    instructions += o.instructions;
    accesses += o.accesses;
    l1Misses += o.l1Misses;
    l2Misses += o.l2Misses;
    llcMisses += o.llcMisses;
    tlbMisses += o.tlbMisses;
    branches += o.branches;
    branchMisses += o.branchMisses;
}

namespace {

sys::CacheGeometry
llcSliceGeometry(const sys::CpuSpec &cpu, uint32_t active_threads)
{
    sys::CacheGeometry g = cpu.llc;
    const uint32_t t = std::max<uint32_t>(1, active_threads);
    const auto effective = static_cast<uint64_t>(
        static_cast<double>(g.size) * cpu.llcEffectiveFactor);
    g.size = std::max<uint64_t>(g.lineSize * g.associativity,
                                effective / t);
    return g;
}

} // namespace

HierarchySim::HierarchySim(const HierarchyConfig &cfg)
    : cfg_(cfg),
      l1_(cfg.cpu.l1d, false),
      l2_(cfg.cpu.l2, cfg.prefetch),
      llcSlice_(llcSliceGeometry(cfg.cpu, cfg.activeThreads),
                cfg.prefetch,
                cfg.prefetch && cfg.cpu.llcChainPrefetch),
      tlb_(cfg.cpu.dtlbEntries, cfg.cpu.tlbPageBytes)
{}

FuncCounters &
HierarchySim::slot(FuncId func)
{
    if (func >= perFunc_.size())
        perFunc_.resize(func + size_t{1});
    return perFunc_[func];
}

void
HierarchySim::access(const MemAccess &a)
{
    FuncCounters &c = slot(a.func);
    ++c.accesses;
    if (!tlb_.access(a.addr))
        ++c.tlbMisses;
    if (l1_.access(a.addr, a.write))
        return;
    ++c.l1Misses;
    if (l2_.access(a.addr, a.write))
        return;
    ++c.l2Misses;
    if (llcSlice_.access(a.addr, a.write))
        return;
    ++c.llcMisses;
}

void
HierarchySim::instructions(FuncId func, uint64_t count)
{
    slot(func).instructions += count;
}

void
HierarchySim::branches(FuncId func, uint64_t predictable,
                       uint64_t data_dependent)
{
    FuncCounters &c = slot(func);
    c.branches += predictable + data_dependent;
    // Predictable branches mispredict at a token 0.1%;
    // data-dependent ones at the platform's calibrated rate.
    c.branchMisses +=
        static_cast<uint64_t>(0.001 * predictable) +
        static_cast<uint64_t>(cfg_.cpu.dataBranchMissRate *
                              static_cast<double>(data_dependent));
}

FuncCounters
HierarchySim::totals() const
{
    FuncCounters out;
    for (const auto &f : perFunction())
        out.merge(f);
    return out;
}

std::vector<FuncCounters>
HierarchySim::perFunction() const
{
    std::vector<FuncCounters> out = perFunc_;
    const uint64_t w = cfg_.sampleWeight;
    if (w > 1) {
        for (auto &c : out) {
            // Memory-side counters were sampled 1-in-w; scale them
            // back. Instruction and branch counts arrive unsampled.
            c.accesses *= w;
            c.l1Misses *= w;
            c.l2Misses *= w;
            c.llcMisses *= w;
            c.tlbMisses *= w;
        }
    }
    return out;
}

void
HierarchySim::prefillLlc(uint64_t base, uint64_t bytes)
{
    for (uint64_t off = 0; off < bytes; off += 64)
        llcSlice_.fill(base + off, false);
}

FuncCounters
HierarchySim::mergedTotals(
    const std::vector<std::unique_ptr<HierarchySim>> &sims)
{
    FuncCounters out;
    for (const auto &sim : sims)
        out.merge(sim->totals());
    return out;
}

} // namespace afsb::cachesim
