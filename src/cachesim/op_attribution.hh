/**
 * @file
 * Roofline cost attribution of an operator graph on a platform's
 * CPU memory system.
 *
 * The GPU simulator answers "how long does this graph take on the
 * accelerator"; this pass answers the complementary question the
 * paper's Section IV asks of the host: which operators would pin the
 * memory hierarchy if the graph ran on the CPU, and by how much.
 * Every op is classified compute- or memory-bound against the chip's
 * vector FLOP ceiling and DRAM bandwidth, giving the arithmetic-
 * intensity view behind Fig 9's layer ranking without re-deriving
 * costs: the numbers come verbatim from the shared opgraph IR.
 */

#ifndef AFSB_CACHESIM_OP_ATTRIBUTION_HH
#define AFSB_CACHESIM_OP_ATTRIBUTION_HH

#include <string>
#include <vector>

#include "opgraph/ir.hh"
#include "sys/platform.hh"

namespace afsb::cachesim {

/** Roofline attribution of one op (all executions included). */
struct OpAttribution
{
    uint32_t id = 0;
    std::string name;           ///< layer kind display name
    double flops = 0.0;         ///< total FLOPs (count included)
    double trafficBytes = 0.0;  ///< total DRAM bytes
    double computeSeconds = 0.0;  ///< FLOPs / vector peak
    double memorySeconds = 0.0;   ///< bytes / DRAM bandwidth
    bool memoryBound = false;   ///< memorySeconds >= computeSeconds
    double boundSeconds = 0.0;  ///< max(compute, memory)
    double share = 0.0;         ///< boundSeconds / graph total
};

/** Whole-graph attribution summary. */
struct GraphAttribution
{
    /** Peak vector FLOP/s the attribution used (all cores at the
     *  sustained all-core clock). */
    double peakFlops = 0.0;
    double memBandwidth = 0.0;  ///< bytes/s used for memory time
    double totalSeconds = 0.0;  ///< sum of per-op bound times
    double memoryBoundSeconds = 0.0;  ///< time in memory-bound ops
    std::vector<OpAttribution> ops;   ///< graph order
};

/**
 * Attribute @p graph against @p platform's CPU roofline. Op order
 * and per-op totals mirror the IR exactly; only the time columns
 * depend on the platform.
 */
GraphAttribution attributeOpGraph(const opgraph::OpGraph &graph,
                                  const sys::PlatformSpec &platform);

} // namespace afsb::cachesim

#endif // AFSB_CACHESIM_OP_ATTRIBUTION_HH
