#include "prof/perf_report.hh"

#include <algorithm>

#include "util/memtrace.hh"

namespace afsb::prof {

std::vector<FunctionShare>
buildFunctionReport(
    const std::vector<cachesim::FuncCounters> &per_function,
    const sys::CpuSpec &cpu)
{
    // Per-function cycle estimate: instructions at base IPC plus
    // this function's stall contributions.
    std::vector<double> cycles(per_function.size(), 0.0);
    double totalCycles = 0.0;
    double totalCacheMisses = 0.0;
    double totalLlcMisses = 0.0;

    for (size_t f = 0; f < per_function.size(); ++f) {
        const auto &c = per_function[f];
        const double l2Hits = static_cast<double>(
            c.l1Misses > c.l2Misses ? c.l1Misses - c.l2Misses : 0);
        const double llcHits = static_cast<double>(
            c.l2Misses > c.llcMisses ? c.l2Misses - c.llcMisses
                                     : 0);
        const double stalls =
            (l2Hits * cpu.l2.latencyCycles +
             llcHits * cpu.llc.latencyCycles +
             static_cast<double>(c.llcMisses) *
                 cpu.memLatencyCycles) /
                cpu.mlp +
            static_cast<double>(c.tlbMisses) *
                cpu.dtlbMissPenaltyCycles +
            static_cast<double>(c.branchMisses) *
                cpu.mispredictPenaltyCycles;
        cycles[f] =
            static_cast<double>(c.instructions) / cpu.baseIpc +
            stalls;
        totalCycles += cycles[f];
        totalCacheMisses += static_cast<double>(c.l1Misses);
        totalLlcMisses += static_cast<double>(c.llcMisses);
    }

    std::vector<FunctionShare> out;
    auto &registry = FuncRegistry::global();
    for (size_t f = 0; f < per_function.size(); ++f) {
        const auto &c = per_function[f];
        if (c.instructions == 0 && c.accesses == 0)
            continue;
        FunctionShare row;
        row.function = f < registry.size()
                           ? registry.name(static_cast<FuncId>(f))
                           : "unknown";
        row.cyclesPct =
            totalCycles > 0.0 ? 100.0 * cycles[f] / totalCycles
                              : 0.0;
        row.cacheMissPct =
            totalCacheMisses > 0.0
                ? 100.0 * static_cast<double>(c.l1Misses) /
                      totalCacheMisses
                : 0.0;
        row.llcMissPct =
            totalLlcMisses > 0.0
                ? 100.0 * static_cast<double>(c.llcMisses) /
                      totalLlcMisses
                : 0.0;
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const FunctionShare &a, const FunctionShare &b) {
                  return a.cyclesPct > b.cyclesPct;
              });
    return out;
}

const FunctionShare *
findFunction(const std::vector<FunctionShare> &report,
             const std::string &name)
{
    for (const auto &row : report)
        if (row.function == name)
            return &row;
    return nullptr;
}

} // namespace afsb::prof
