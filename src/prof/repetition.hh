/**
 * @file
 * Run-repetition harness with coefficient-of-variation reporting.
 *
 * The paper reports five runs per configuration and notes the
 * maximum CV stayed within 5% for MSA and 1% for inference
 * (Fig 3 footnote). This harness repeats a measurement function,
 * aggregates RunningStats, and flags configurations whose CV
 * exceeds a threshold.
 */

#ifndef AFSB_PROF_REPETITION_HH
#define AFSB_PROF_REPETITION_HH

#include <functional>
#include <vector>

#include "util/stats.hh"

namespace afsb::prof {

/** Aggregate of one repeated measurement. */
struct RepetitionResult
{
    RunningStats stats;
    std::vector<double> samples;  ///< per-run values, in run order
    double cvLimit = 0.05;

    double mean() const { return stats.mean(); }
    double cv() const { return stats.cv(); }
    bool stable() const { return stats.cv() <= cvLimit; }

    /** Median across runs. */
    double median() const { return percentile(samples, 50.0); }

    /** p50/p95/p99 across runs (meaningful for larger repeat
     *  counts; degrades to min/max interpolation for few runs). */
    Percentiles percentiles() const
    {
        return percentilesOf(samples);
    }
};

/**
 * Run @p measure @p runs times (passing the run index) and collect
 * the returned values.
 */
RepetitionResult repeatMeasurement(
    size_t runs, const std::function<double(size_t)> &measure,
    double cv_limit = 0.05);

} // namespace afsb::prof

#endif // AFSB_PROF_REPETITION_HH
