#include "prof/repetition.hh"

namespace afsb::prof {

RepetitionResult
repeatMeasurement(size_t runs,
                  const std::function<double(size_t)> &measure,
                  double cv_limit)
{
    RepetitionResult out;
    out.cvLimit = cv_limit;
    for (size_t r = 0; r < runs; ++r)
        out.stats.add(measure(r));
    return out;
}

} // namespace afsb::prof
