#include "prof/repetition.hh"

namespace afsb::prof {

RepetitionResult
repeatMeasurement(size_t runs,
                  const std::function<double(size_t)> &measure,
                  double cv_limit)
{
    RepetitionResult out;
    out.cvLimit = cv_limit;
    out.samples.reserve(runs);
    for (size_t r = 0; r < runs; ++r) {
        const double x = measure(r);
        out.stats.add(x);
        out.samples.push_back(x);
    }
    return out;
}

} // namespace afsb::prof
