/**
 * @file
 * Phase profiler over the simulated clock.
 *
 * AFSysBench reports execution time as a composition of named
 * phases (MSA, inference, and their sub-phases). The profiler keeps
 * an ordered record of phases with durations, supporting nesting
 * one level deep (phase / sub-phase), and renders the stacked
 * breakdowns used by Figs 3 and 7.
 */

#ifndef AFSB_PROF_PHASE_PROFILER_HH
#define AFSB_PROF_PHASE_PROFILER_HH

#include <string>
#include <vector>

namespace afsb::prof {

/** One recorded phase. */
struct Phase
{
    std::string name;
    std::string parent;  ///< empty for top-level phases
    double seconds = 0.0;
};

/** Ordered phase recorder. */
class PhaseProfiler
{
  public:
    /** Record (or extend) a top-level phase. */
    void record(const std::string &name, double seconds);

    /** Record (or extend) a sub-phase of @p parent. */
    void recordSub(const std::string &parent,
                   const std::string &name, double seconds);

    const std::vector<Phase> &phases() const { return phases_; }

    /** Duration of a phase (0 when absent). */
    double seconds(const std::string &name) const;

    /** Sum of all top-level phases. */
    double totalSeconds() const;

    /** Share of @p name in the top-level total (0..1). */
    double share(const std::string &name) const;

    /** Render "phase  seconds  share%" lines. */
    std::string render() const;

  private:
    std::vector<Phase> phases_;
};

} // namespace afsb::prof

#endif // AFSB_PROF_PHASE_PROFILER_HH
