/**
 * @file
 * perf-record-style function-level report (paper Table IV).
 *
 * Converts the per-function counters from the cache simulator into
 * the two Table IV views: percent of CPU cycles per symbol and
 * percent of cache misses per symbol. Per-function cycles are
 * estimated as instruction cycles at the platform base IPC plus the
 * function's own miss-latency stalls.
 */

#ifndef AFSB_PROF_PERF_REPORT_HH
#define AFSB_PROF_PERF_REPORT_HH

#include <string>
#include <vector>

#include "cachesim/hierarchy.hh"
#include "sys/platform.hh"

namespace afsb::prof {

/** One function's share rows. */
struct FunctionShare
{
    std::string function;
    double cyclesPct = 0.0;      ///< share of CPU cycles
    double cacheMissPct = 0.0;   ///< share of cache misses (L1-level)
    double llcMissPct = 0.0;     ///< share of LLC misses
};

/**
 * Build the per-function share table, sorted by descending cycle
 * share. Functions with zero activity are omitted.
 * @param per_function Counters indexed by FuncId (from
 *        FuncRegistry::global()).
 */
std::vector<FunctionShare> buildFunctionReport(
    const std::vector<cachesim::FuncCounters> &per_function,
    const sys::CpuSpec &cpu);

/** Find a row by function name (nullptr when absent). */
const FunctionShare *findFunction(
    const std::vector<FunctionShare> &report,
    const std::string &name);

} // namespace afsb::prof

#endif // AFSB_PROF_PERF_REPORT_HH
