#include "prof/phase_profiler.hh"

#include "util/str.hh"
#include "util/units.hh"

namespace afsb::prof {

void
PhaseProfiler::record(const std::string &name, double seconds)
{
    for (auto &p : phases_) {
        if (p.name == name && p.parent.empty()) {
            p.seconds += seconds;
            return;
        }
    }
    phases_.push_back({name, "", seconds});
}

void
PhaseProfiler::recordSub(const std::string &parent,
                         const std::string &name, double seconds)
{
    for (auto &p : phases_) {
        if (p.name == name && p.parent == parent) {
            p.seconds += seconds;
            return;
        }
    }
    phases_.push_back({name, parent, seconds});
}

double
PhaseProfiler::seconds(const std::string &name) const
{
    for (const auto &p : phases_)
        if (p.name == name)
            return p.seconds;
    return 0.0;
}

double
PhaseProfiler::totalSeconds() const
{
    double total = 0.0;
    for (const auto &p : phases_)
        if (p.parent.empty())
            total += p.seconds;
    return total;
}

double
PhaseProfiler::share(const std::string &name) const
{
    const double total = totalSeconds();
    return total > 0.0 ? seconds(name) / total : 0.0;
}

std::string
PhaseProfiler::render() const
{
    std::string out;
    const double total = totalSeconds();
    for (const auto &p : phases_) {
        const char *indent = p.parent.empty() ? "" : "  ";
        const double sharePct =
            total > 0.0 ? 100.0 * p.seconds / total : 0.0;
        out += strformat("%s%-32s %12s  %5.1f%%\n", indent,
                         p.name.c_str(),
                         formatSeconds(p.seconds).c_str(),
                         sharePct);
    }
    return out;
}

} // namespace afsb::prof
