#include "opgraph/ir.hh"

#include <charconv>
#include <limits>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::opgraph {

namespace {

/** Shortest string that parses back to exactly @p v. */
std::string
renderDouble(double v)
{
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof buf, v);
    panicIf(res.ec != std::errc(), "renderDouble: to_chars failed");
    return std::string(buf, res.ptr);
}

/** Strict full-string double parse; fatal() with @p where context. */
double
parseDoubleField(const std::string &s, const std::string &where)
{
    double v = 0.0;
    const auto res =
        std::from_chars(s.data(), s.data() + s.size(), v);
    if (res.ec != std::errc() || res.ptr != s.data() + s.size())
        fatal("opgraph parse: bad number '" + s + "' in " + where);
    return v;
}

/** Strict full-string unsigned parse; fatal() with context. */
uint64_t
parseUintField(const std::string &s, const std::string &where)
{
    uint64_t v = 0;
    const auto res =
        std::from_chars(s.data(), s.data() + s.size(), v);
    if (res.ec != std::errc() || res.ptr != s.data() + s.size())
        fatal("opgraph parse: bad integer '" + s + "' in " + where);
    return v;
}

/** `key=value` field with the expected key; fatal() otherwise. */
std::string
expectKv(const std::string &token, const std::string &key,
         const std::string &where)
{
    const size_t eq = token.find('=');
    if (eq == std::string::npos ||
        token.compare(0, eq, key) != 0)
        fatal("opgraph parse: expected '" + key + "=...' in " +
              where + ", got '" + token + "'");
    return token.substr(eq + 1);
}

/** Comma-separated unsigned list; "-" renders an empty list. */
std::vector<uint64_t>
parseUintList(const std::string &s, const std::string &where)
{
    std::vector<uint64_t> out;
    if (s == "-")
        return out;
    for (const auto &part : split(s, ','))
        out.push_back(parseUintField(part, where));
    return out;
}

std::string
renderUintList(const std::vector<uint64_t> &v)
{
    if (v.empty())
        return "-";
    std::vector<std::string> parts;
    parts.reserve(v.size());
    for (uint64_t x : v)
        parts.push_back(
            strformat("%llu", static_cast<unsigned long long>(x)));
    return join(parts, ",");
}

} // namespace

double
OpGraph::totalFlops() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.flops * op.count;
    return total;
}

double
OpGraph::totalTrafficBytes() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.trafficBytes() * op.count;
    return total;
}

double
OpGraph::totalKernels() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += static_cast<double>(op.kernels) * op.count;
    return total;
}

void
validate(const OpGraph &graph)
{
    if (graph.label.empty())
        fatal("opgraph: empty label");
    for (size_t i = 0; i < graph.ops.size(); ++i) {
        const Op &op = graph.ops[i];
        const std::string where =
            strformat("op %zu (%s)", i, op.name().c_str());
        if (op.id != i)
            fatal("opgraph: " + where +
                  " id out of schedule order");
        if (op.count == 0)
            fatal("opgraph: " + where + " has zero count");
        if (op.kernels == 0)
            fatal("opgraph: " + where + " has zero kernels");
        if (!(op.flops >= 0.0) || !(op.bytesRead >= 0.0) ||
            !(op.bytesWritten >= 0.0))
            fatal("opgraph: " + where + " has negative cost");
        if (op.shape.empty())
            fatal("opgraph: " + where + " has no shape");
        for (uint32_t dep : op.deps)
            if (dep >= op.id)
                fatal("opgraph: " + where +
                      strformat(" dep %u breaks schedule order "
                                "(must be < %u)",
                                dep, op.id));
    }
}

std::string
render(const OpGraph &graph)
{
    validate(graph);
    std::string out;
    out += strformat("afsb-opgraph v%u\n", OpGraph::kVersion);
    out += "label " + graph.label + "\n";
    out += strformat("tokens %llu\n",
                     static_cast<unsigned long long>(graph.tokens));
    out += strformat("ops %zu\n", graph.ops.size());
    for (const Op &op : graph.ops) {
        std::vector<uint64_t> deps64(op.deps.begin(),
                                     op.deps.end());
        out += strformat("op %u %s count=%u kernels=%u", op.id,
                         op.name().c_str(), op.count, op.kernels);
        out += " flops=" + renderDouble(op.flops);
        out += " read=" + renderDouble(op.bytesRead);
        out += " write=" + renderDouble(op.bytesWritten);
        out += " shape=" + renderUintList(op.shape);
        out += " deps=" + renderUintList(deps64);
        out += "\n";
    }
    return out;
}

OpGraph
parse(const std::string &text)
{
    // Split into lines, requiring the trailing newline the renderer
    // always emits; anything after the declared op count is trailing
    // garbage and a hard error.
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < text.size()) {
        const size_t end = text.find('\n', start);
        if (end == std::string::npos)
            fatal("opgraph parse: missing trailing newline");
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }

    const std::string header =
        strformat("afsb-opgraph v%u", OpGraph::kVersion);
    if (lines.empty() || lines[0] != header)
        fatal("opgraph parse: missing '" + header + "' header");
    if (lines.size() < 4)
        fatal("opgraph parse: truncated preamble");
    if (lines[1].rfind("label ", 0) != 0)
        fatal("opgraph parse: expected 'label <name>', got '" +
              lines[1] + "'");
    if (lines[2].rfind("tokens ", 0) != 0)
        fatal("opgraph parse: expected 'tokens <n>', got '" +
              lines[2] + "'");
    if (lines[3].rfind("ops ", 0) != 0)
        fatal("opgraph parse: expected 'ops <n>', got '" +
              lines[3] + "'");

    OpGraph g;
    g.label = lines[1].substr(6);
    g.tokens = parseUintField(lines[2].substr(7), "tokens line");
    const uint64_t opCount =
        parseUintField(lines[3].substr(4), "ops line");
    if (lines.size() != 4 + opCount)
        fatal(strformat("opgraph parse: declared %llu ops but file "
                        "has %zu op lines",
                        static_cast<unsigned long long>(opCount),
                        lines.size() - 4));

    for (size_t ln = 4; ln < lines.size(); ++ln) {
        const std::string where = strformat("line %zu", ln + 1);
        const auto tokens = [&] {
            std::vector<std::string> t;
            for (const auto &part : split(lines[ln], ' '))
                if (!part.empty())
                    t.push_back(part);
            return t;
        }();
        if (tokens.size() != 10 || tokens[0] != "op")
            fatal("opgraph parse: malformed op line at " + where +
                  ": '" + lines[ln] + "'");

        Op op;
        op.id = static_cast<uint32_t>(
            parseUintField(tokens[1], where));
        if (!model::layerKindByName(tokens[2], &op.kind))
            fatal("opgraph parse: unknown op kind '" + tokens[2] +
                  "' at " + where);
        op.count = static_cast<uint32_t>(parseUintField(
            expectKv(tokens[3], "count", where), where));
        op.kernels = static_cast<uint32_t>(parseUintField(
            expectKv(tokens[4], "kernels", where), where));
        op.flops = parseDoubleField(
            expectKv(tokens[5], "flops", where), where);
        op.bytesRead = parseDoubleField(
            expectKv(tokens[6], "read", where), where);
        op.bytesWritten = parseDoubleField(
            expectKv(tokens[7], "write", where), where);
        op.shape = parseUintList(
            expectKv(tokens[8], "shape", where), where);
        for (uint64_t dep : parseUintList(
                 expectKv(tokens[9], "deps", where), where))
            op.deps.push_back(static_cast<uint32_t>(dep));
        g.ops.push_back(std::move(op));
    }
    validate(g);
    return g;
}

JsonValue
toJson(const OpGraph &graph)
{
    validate(graph);
    JsonValue doc = JsonValue::makeObject();
    doc["format"] = "afsb-opgraph";
    doc["version"] = static_cast<int>(OpGraph::kVersion);
    doc["label"] = graph.label;
    doc["tokens"] = graph.tokens;
    JsonValue ops = JsonValue::makeArray();
    for (const Op &op : graph.ops) {
        JsonValue o = JsonValue::makeObject();
        o["id"] = static_cast<uint64_t>(op.id);
        o["kind"] = op.name();
        o["count"] = static_cast<uint64_t>(op.count);
        o["kernels"] = static_cast<uint64_t>(op.kernels);
        o["flops"] = op.flops;
        o["bytes_read"] = op.bytesRead;
        o["bytes_written"] = op.bytesWritten;
        JsonValue shape = JsonValue::makeArray();
        for (uint64_t d : op.shape)
            shape.push(JsonValue(d));
        o["shape"] = std::move(shape);
        JsonValue deps = JsonValue::makeArray();
        for (uint32_t d : op.deps)
            deps.push(JsonValue(static_cast<uint64_t>(d)));
        o["deps"] = std::move(deps);
        ops.push(std::move(o));
    }
    doc["ops"] = std::move(ops);
    return doc;
}

OpGraph
fromJson(const JsonValue &doc)
{
    if (doc.at("format").asString() != "afsb-opgraph")
        fatal("opgraph json: bad 'format' field");
    if (doc.at("version").asInt() !=
        static_cast<int64_t>(OpGraph::kVersion))
        fatal("opgraph json: unsupported version");
    OpGraph g;
    g.label = doc.at("label").asString();
    g.tokens = static_cast<uint64_t>(doc.at("tokens").asInt());
    const auto &ops = doc.at("ops").asArray();
    for (size_t i = 0; i < ops.size(); ++i) {
        const JsonValue &o = ops[i];
        Op op;
        op.id = static_cast<uint32_t>(o.at("id").asInt());
        const std::string kind = o.at("kind").asString();
        if (!model::layerKindByName(kind, &op.kind))
            fatal("opgraph json: unknown op kind '" + kind + "'");
        op.count = static_cast<uint32_t>(o.at("count").asInt());
        op.kernels =
            static_cast<uint32_t>(o.at("kernels").asInt());
        op.flops = o.at("flops").asNumber();
        op.bytesRead = o.at("bytes_read").asNumber();
        op.bytesWritten = o.at("bytes_written").asNumber();
        for (const auto &d : o.at("shape").asArray())
            op.shape.push_back(
                static_cast<uint64_t>(d.asInt()));
        for (const auto &d : o.at("deps").asArray())
            op.deps.push_back(
                static_cast<uint32_t>(d.asInt()));
        g.ops.push_back(std::move(op));
    }
    validate(g);
    return g;
}

} // namespace afsb::opgraph
