/**
 * @file
 * Portable operator-graph IR for the AF3 inference workload.
 *
 * One serializable graph — ops with logical shapes, FLOPs, DRAM
 * bytes read/written, kernel counts, and dependency edges — drives
 * every cost model in the repo: the gpusim roofline executor, the
 * XLA host-phase model, and cachesim cost attribution. New
 * platforms then become pure data (sys/platform_config.hh): the
 * same graph is lowered onto whichever machine description is
 * loaded, in the spirit of StableHLO-style cross-architecture
 * performance modeling.
 *
 * Two renders, both with round-tripping parsers:
 *  - a canonical byte-stable text form (one `op` line per node,
 *    shortest-round-trip doubles, fixed field order, trailing
 *    newline) following the SLO-report / comm-trace conventions —
 *    render(parse(render(g))) == render(g) byte-exactly; and
 *  - a JSON form for external tooling, via util/json.
 *
 * The op list is a valid execution schedule (every dependency
 * precedes its dependent), so cost models may simply replay ops in
 * order; the edges carry the producer/consumer structure for
 * analyses that want the DAG rather than the schedule.
 */

#ifndef AFSB_OPGRAPH_IR_HH
#define AFSB_OPGRAPH_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/flops.hh"
#include "util/json.hh"

namespace afsb::opgraph {

/** One node of the operator graph. */
struct Op
{
    /** Node id == index in OpGraph::ops (dense, schedule order). */
    uint32_t id = 0;

    /** Layer taxonomy entry (serialized by its canonical name). */
    model::LayerKind kind = model::LayerKind::InputEmbedding;

    /** Total executions of this op in one inference. */
    uint32_t count = 1;

    /** GPU kernels one execution lowers to. */
    uint32_t kernels = 1;

    /** Arithmetic volume of one execution. */
    double flops = 0.0;

    /**
     * DRAM traffic of one execution, split by direction. The
     * analytic layer model (model/flops.hh) tracks only total
     * traffic, so the builder splits it into two exact halves —
     * halving a double is exact in binary floating point, which
     * keeps bytesRead + bytesWritten bit-equal to the legacy total
     * and therefore the roofline replay bit-identical. Calibrating
     * a true per-direction split is future work; consumers that
     * only care about the roofline should use trafficBytes().
     */
    double bytesRead = 0.0;
    double bytesWritten = 0.0;

    /** Logical output shape (row-major dims). */
    std::vector<uint64_t> shape;

    /** Ids of producer ops this op consumes (strictly < id). */
    std::vector<uint32_t> deps;

    /** Total DRAM traffic of one execution (drives the roofline). */
    double trafficBytes() const { return bytesRead + bytesWritten; }

    /** Canonical name of the op's layer kind. */
    std::string name() const { return model::layerKindName(kind); }

    bool operator==(const Op &other) const = default;
};

/** A serializable operator graph. */
struct OpGraph
{
    /** Format version rendered into every dump. */
    static constexpr uint32_t kVersion = 1;

    /** Graph label ("inference", "pairformer", "diffusion"). */
    std::string label;

    /** Token count the shapes/costs were instantiated at. */
    uint64_t tokens = 0;

    /** Ops in schedule order (op i's deps are all < i). */
    std::vector<Op> ops;

    /** Total FLOPs over the graph (count-weighted, schedule order). */
    double totalFlops() const;

    /** Total DRAM traffic over the graph (count-weighted). */
    double totalTrafficBytes() const;

    /** Total GPU kernels launched over the graph (count-weighted). */
    double totalKernels() const;

    bool operator==(const OpGraph &other) const = default;
};

/**
 * Validate graph invariants: dense schedule-ordered ids, acyclic
 * deps (every dep < op id), non-negative costs, known shapes.
 * @throws FatalError naming the offending op on violation.
 */
void validate(const OpGraph &graph);

/**
 * Render the canonical byte-stable text form. Doubles are printed
 * in their shortest round-trip form, so the dump is identical on
 * every conforming platform and parse(render(g)) == g exactly.
 */
std::string render(const OpGraph &graph);

/**
 * Parse the canonical text form.
 * @throws FatalError with line context on malformed input,
 *         including trailing garbage after the last op line.
 */
OpGraph parse(const std::string &text);

/** Render as a JSON document (pretty-printed by the caller). */
JsonValue toJson(const OpGraph &graph);

/**
 * Parse the JSON form (as produced by toJson).
 * @throws FatalError on schema violations.
 */
OpGraph fromJson(const JsonValue &doc);

} // namespace afsb::opgraph

#endif // AFSB_OPGRAPH_IR_HH
