/**
 * @file
 * Builders instantiating the AF3 operator graph as opgraph IR.
 *
 * The per-op costs come verbatim from the analytic layer model
 * (model::operatorGraph / model::layerCost) so a roofline replay of
 * the IR is bit-identical to the legacy inline op-list path — the
 * contract tests/opgraph/test_roofline_identity.cc byte-compares.
 * The builders add what the flat list lacked: logical output
 * shapes and producer/consumer dependency edges.
 */

#ifndef AFSB_OPGRAPH_BUILD_HH
#define AFSB_OPGRAPH_BUILD_HH

#include "model/config.hh"
#include "opgraph/ir.hh"

namespace afsb::opgraph {

/**
 * The full inference graph at @p tokens tokens: input embedding,
 * the recycled Pairformer trunk, the diffusion token stack, and
 * the confidence head, with cross-module dependency edges
 * (diffusion conditioning consumes the trunk's pair and single
 * outputs; the confidence head consumes the pair representation
 * and the final coordinates).
 */
OpGraph buildInferenceGraph(size_t tokens,
                            const model::ModelConfig &cfg);

/** The Pairformer-module subgraph (trunk layers only). */
OpGraph buildPairformerGraph(size_t tokens,
                             const model::ModelConfig &cfg);

/** The Diffusion-module subgraph (denoising stack only). */
OpGraph buildDiffusionGraph(size_t tokens,
                            const model::ModelConfig &cfg);

} // namespace afsb::opgraph

#endif // AFSB_OPGRAPH_BUILD_HH
