#include "opgraph/build.hh"

#include "util/logging.hh"

namespace afsb::opgraph {

namespace {

/** Logical output shape of one execution of @p kind. */
std::vector<uint64_t>
outputShape(model::LayerKind kind, size_t tokens,
            const model::ModelConfig &cfg)
{
    const auto n = static_cast<uint64_t>(tokens);
    const auto cz = static_cast<uint64_t>(cfg.pairDim);
    const auto cs = static_cast<uint64_t>(cfg.singleDim);
    const auto ct = static_cast<uint64_t>(cfg.diffusionTokenDim);
    using K = model::LayerKind;
    switch (kind) {
      case K::InputEmbedding:
      case K::TriangleMultOutgoing:
      case K::TriangleMultIncoming:
      case K::TriangleAttnStarting:
      case K::TriangleAttnEnding:
      case K::PairTransition:
        return {n, n, cz};
      case K::SingleAttention:
      case K::SingleTransition:
        return {n, cs};
      case K::DiffusionConditioning:
      case K::LocalAttentionEncoder:
      case K::GlobalAttention:
      case K::LocalAttentionDecoder:
        return {n, ct};
      case K::CoordinateUpdate:
        return {n, 3};
      case K::ConfidenceHead:
        return {n, n, 64};
    }
    panic("outputShape: bad enum");
}

/**
 * Convert the analytic layer list into IR ops with @p deps edges
 * looked up by layer kind. Costs are copied bit-for-bit; the DRAM
 * traffic total is split into two exact halves (see Op doc).
 */
OpGraph
fromLayerList(const std::vector<model::LayerInstance> &layers,
              const std::string &label, size_t tokens,
              const model::ModelConfig &cfg,
              const std::vector<std::vector<model::LayerKind>>
                  &depKinds)
{
    OpGraph g;
    g.label = label;
    g.tokens = tokens;
    panicIf(depKinds.size() != layers.size(),
            "fromLayerList: deps/layers size mismatch");

    // Kind -> op id of the (single) op instantiated for it.
    std::vector<int> idOfKind(16, -1);
    for (size_t i = 0; i < layers.size(); ++i) {
        const auto &layer = layers[i];
        Op op;
        op.id = static_cast<uint32_t>(i);
        op.kind = layer.kind;
        op.count = layer.count;
        op.kernels = layer.cost.kernels;
        op.flops = layer.cost.flops;
        op.bytesWritten = layer.cost.bytes * 0.5;
        op.bytesRead = layer.cost.bytes - op.bytesWritten;
        op.shape = outputShape(layer.kind, tokens, cfg);
        for (model::LayerKind dep : depKinds[i]) {
            const int id = idOfKind[static_cast<size_t>(dep)];
            panicIf(id < 0, "fromLayerList: dep on a kind that "
                            "has not been scheduled yet");
            op.deps.push_back(static_cast<uint32_t>(id));
        }
        idOfKind[static_cast<size_t>(layer.kind)] =
            static_cast<int>(i);
        g.ops.push_back(std::move(op));
    }
    validate(g);
    return g;
}

using K = model::LayerKind;

/**
 * Producer edges for the full inference schedule, by consumer
 * kind. The trunk is a chain (each sub-layer reads its
 * predecessor's residual stream); the diffusion stack forks off
 * the trunk's pair and single outputs; the confidence head joins
 * the pair representation with the final coordinates.
 */
std::vector<model::LayerKind>
inferenceDeps(model::LayerKind kind)
{
    switch (kind) {
      case K::InputEmbedding:
        return {};
      case K::TriangleMultOutgoing:
        return {K::InputEmbedding};
      case K::TriangleMultIncoming:
        return {K::TriangleMultOutgoing};
      case K::TriangleAttnStarting:
        return {K::TriangleMultIncoming};
      case K::TriangleAttnEnding:
        return {K::TriangleAttnStarting};
      case K::PairTransition:
        return {K::TriangleAttnEnding};
      case K::SingleAttention:
        return {K::PairTransition};
      case K::SingleTransition:
        return {K::SingleAttention};
      case K::DiffusionConditioning:
        return {K::PairTransition, K::SingleTransition};
      case K::LocalAttentionEncoder:
        return {K::DiffusionConditioning};
      case K::GlobalAttention:
        return {K::LocalAttentionEncoder};
      case K::LocalAttentionDecoder:
        return {K::GlobalAttention};
      case K::CoordinateUpdate:
        return {K::LocalAttentionDecoder};
      case K::ConfidenceHead:
        return {K::PairTransition, K::SingleTransition,
                K::CoordinateUpdate};
    }
    panic("inferenceDeps: bad enum");
}

} // namespace

OpGraph
buildInferenceGraph(size_t tokens, const model::ModelConfig &cfg)
{
    const auto layers = model::operatorGraph(tokens, cfg);
    std::vector<std::vector<model::LayerKind>> deps;
    deps.reserve(layers.size());
    for (const auto &layer : layers)
        deps.push_back(inferenceDeps(layer.kind));
    return fromLayerList(layers, "inference", tokens, cfg, deps);
}

OpGraph
buildPairformerGraph(size_t tokens, const model::ModelConfig &cfg)
{
    std::vector<model::LayerInstance> layers;
    for (const auto &layer : model::operatorGraph(tokens, cfg))
        if (model::isPairformerLayer(layer.kind))
            layers.push_back(layer);
    // Within the trunk the sub-layers form a chain; the first has
    // no producer inside the subgraph.
    std::vector<std::vector<model::LayerKind>> deps;
    for (size_t i = 0; i < layers.size(); ++i)
        deps.push_back(i == 0 ? std::vector<model::LayerKind>{}
                              : std::vector<model::LayerKind>{
                                    layers[i - 1].kind});
    return fromLayerList(layers, "pairformer", tokens, cfg, deps);
}

OpGraph
buildDiffusionGraph(size_t tokens, const model::ModelConfig &cfg)
{
    std::vector<model::LayerInstance> layers;
    for (const auto &layer : model::operatorGraph(tokens, cfg))
        if (model::isDiffusionLayer(layer.kind))
            layers.push_back(layer);
    std::vector<std::vector<model::LayerKind>> deps;
    for (size_t i = 0; i < layers.size(); ++i)
        deps.push_back(i == 0 ? std::vector<model::LayerKind>{}
                              : std::vector<model::LayerKind>{
                                    layers[i - 1].kind});
    return fromLayerList(layers, "diffusion", tokens, cfg, deps);
}

} // namespace afsb::opgraph
