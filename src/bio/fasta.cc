#include "bio/fasta.hh"

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::bio {

std::vector<Sequence>
parseFasta(const std::string &text, MoleculeType type)
{
    std::vector<Sequence> out;
    std::string id;
    std::string residues;
    bool have = false;

    auto flush = [&] {
        if (have) {
            out.emplace_back(id, type, residues);
            residues.clear();
        }
    };

    for (const auto &raw : split(text, '\n')) {
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            // Identifier is the first whitespace-delimited token.
            const std::string header = trim(line.substr(1));
            const size_t sp = header.find(' ');
            id = sp == std::string::npos ? header : header.substr(0, sp);
            if (id.empty())
                fatal("FASTA: empty sequence header");
            have = true;
        } else {
            if (!have)
                fatal("FASTA: residue data before first header");
            residues += line;
        }
    }
    flush();
    return out;
}

std::string
writeFasta(const std::vector<Sequence> &seqs, size_t width)
{
    panicIf(width == 0, "writeFasta: width must be nonzero");
    std::string out;
    for (const auto &seq : seqs) {
        out += '>';
        out += seq.id();
        out += '\n';
        const std::string text = seq.toString();
        for (size_t i = 0; i < text.size(); i += width) {
            out += text.substr(i, width);
            out += '\n';
        }
    }
    return out;
}

} // namespace afsb::bio
