/**
 * @file
 * The AFSysBench input-sample suite (paper Table II).
 *
 * Five representative biomolecular systems, synthesized to match the
 * published chain composition, total residue counts, and workload
 * character:
 *
 *   2PV7  — protein, 2 identical chains, 484 res (symmetric multimer)
 *   7RCE  — protein (1) + DNA (2), 306 res (mixed-type baseline)
 *   1YY9  — protein, 3 asymmetric chains, 881 res
 *   promo — protein (3) + DNA (2), 857 res, chain A carries a poly-Q
 *           repeat (MSA stress via low-complexity sequence)
 *   6QNR  — protein (9) + RNA (1), 1395 res (high chain count, mixed)
 *
 * Plus the Fig 2 memory-study inputs: RNA chains of 621/935/1135/1335
 * nucleotides derived from a 7K00-like ribosomal RNA, and 1000/2000
 * residue protein probes.
 */

#ifndef AFSB_BIO_SAMPLES_HH
#define AFSB_BIO_SAMPLES_HH

#include <string>
#include <vector>

#include "bio/sequence.hh"

namespace afsb::bio {

/** Metadata mirroring a Table II row. */
struct SampleInfo
{
    std::string name;
    std::string structure;   ///< e.g. "Protein (3) + DNA (2)"
    std::string complexity;  ///< Low / Low-Mid / Mid / Mid-High / High
    std::string target;      ///< benchmark target / workload character
};

/** A sample: its Table II metadata and the synthesized complex. */
struct Sample
{
    SampleInfo info;
    Complex complex;
};

/** Names of the five benchmark samples, in Table II order. */
const std::vector<std::string> &sampleNames();

/**
 * Build one sample by name ("2PV7", "7RCE", "1YY9", "promo", "6QNR").
 * Deterministic: the same name always yields the same sequences.
 * fatal() on unknown names.
 */
Sample makeSample(const std::string &name);

/** Build all five samples in Table II order. */
std::vector<Sample> makeAllSamples();

/**
 * 7K00-like ribosomal RNA prefix of @p length nucleotides, used by
 * the Fig 2 RNA-memory sweep (lengths 621, 935, 1135, 1335).
 */
Sequence makeRibosomalRna(size_t length);

/** Protein probe of @p length residues for the CPU-memory study. */
Complex makeProteinProbe(size_t length);

} // namespace afsb::bio

#endif // AFSB_BIO_SAMPLES_HH
