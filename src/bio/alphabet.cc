#include "bio/alphabet.hh"

#include <array>
#include <cctype>

#include "util/logging.hh"

namespace afsb::bio {

namespace {

const std::string kProteinSymbols = "ACDEFGHIKLMNPQRSTVWY";
const std::string kDnaSymbols = "ACGT";
const std::string kRnaSymbols = "ACGU";

// Amino-acid background frequencies (Robinson & Robinson 1991),
// indexed in kProteinSymbols order and normalized to sum exactly to
// one; used by the log-odds scoring null model.
const std::array<double, 20> kProteinBackground = [] {
    std::array<double, 20> f = {
        0.0787, 0.0151, 0.0535, 0.0668, 0.0397, 0.0695, 0.0229, 0.0590,
        0.0595, 0.0962, 0.0238, 0.0443, 0.0484, 0.0396, 0.0540, 0.0715,
        0.0568, 0.0673, 0.0114, 0.0305,
    };
    double sum = 0.0;
    for (double v : f)
        sum += v;
    for (double &v : f)
        v /= sum;
    return f;
}();

} // namespace

std::string
moleculeTypeName(MoleculeType type)
{
    switch (type) {
      case MoleculeType::Protein: return "protein";
      case MoleculeType::Dna: return "dna";
      case MoleculeType::Rna: return "rna";
    }
    panic("moleculeTypeName: bad enum");
}

MoleculeType
moleculeTypeFromName(const std::string &name)
{
    if (name == "protein")
        return MoleculeType::Protein;
    if (name == "dna")
        return MoleculeType::Dna;
    if (name == "rna")
        return MoleculeType::Rna;
    fatal("unknown molecule type '" + name + "'");
}

size_t
alphabetSize(MoleculeType type)
{
    return type == MoleculeType::Protein ? 20u : 4u;
}

const std::string &
alphabetSymbols(MoleculeType type)
{
    switch (type) {
      case MoleculeType::Protein: return kProteinSymbols;
      case MoleculeType::Dna: return kDnaSymbols;
      case MoleculeType::Rna: return kRnaSymbols;
    }
    panic("alphabetSymbols: bad enum");
}

int
encodeResidue(MoleculeType type, char c)
{
    const char u =
        static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    const std::string &symbols = alphabetSymbols(type);
    const size_t pos = symbols.find(u);
    if (pos == std::string::npos) {
        // Accept T in RNA and U in DNA as the equivalent base; real
        // inputs mix conventions.
        if (type == MoleculeType::Rna && u == 'T')
            return encodeResidue(type, 'U');
        if (type == MoleculeType::Dna && u == 'U')
            return encodeResidue(type, 'T');
        return -1;
    }
    return static_cast<int>(pos);
}

char
decodeResidue(MoleculeType type, uint8_t code)
{
    const std::string &symbols = alphabetSymbols(type);
    panicIf(code >= symbols.size(), "decodeResidue: code out of range");
    return symbols[code];
}

double
backgroundFrequency(MoleculeType type, uint8_t code)
{
    panicIf(code >= alphabetSize(type),
            "backgroundFrequency: code out of range");
    if (type == MoleculeType::Protein)
        return kProteinBackground[code];
    return 0.25;
}

} // namespace afsb::bio
