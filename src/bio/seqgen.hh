/**
 * @file
 * Deterministic synthetic sequence generation.
 *
 * The paper's inputs are real PDB entries and its databases are the
 * public UniRef/Rfam collections; neither is available here, so every
 * sequence in AFSysBench-C++ is synthesized deterministically with
 * realistic composition. Homologs are planted by mutating source
 * chains so that database searches find biologically-plausible hit
 * distributions, and poly-Q stretches reproduce the promo sample's
 * low-complexity stress behaviour.
 */

#ifndef AFSB_BIO_SEQGEN_HH
#define AFSB_BIO_SEQGEN_HH

#include <string>

#include "bio/sequence.hh"
#include "util/rng.hh"

namespace afsb::bio {

/** Parameters for homolog planting (point mutations + indels). */
struct MutationParams
{
    /** Per-residue substitution probability. */
    double substitutionRate = 0.15;

    /** Per-residue insertion probability. */
    double insertionRate = 0.02;

    /** Per-residue deletion probability. */
    double deletionRate = 0.02;
};

/** Seeded generator for chains, homologs, and decoys. */
class SequenceGenerator
{
  public:
    explicit SequenceGenerator(uint64_t seed) : rng_(seed) {}

    /**
     * Random chain with background residue composition.
     */
    Sequence random(const std::string &id, MoleculeType type,
                    size_t length);

    /**
     * Random protein chain containing a homopolymer repeat (e.g. a
     * poly-Q stretch) of @p run_length at a random interior offset.
     * @param residue Repeated residue character ('Q' for poly-Q).
     */
    Sequence withHomopolymer(const std::string &id, size_t length,
                             size_t run_length, char residue = 'Q');

    /**
     * Mutated copy of @p source (a planted homolog).
     */
    Sequence mutate(const Sequence &source, const std::string &id,
                    const MutationParams &params = {});

    /**
     * Random fragment of @p source embedded in random flanks — a
     * partial homolog producing the "ambiguous or partial
     * alignments" the paper attributes to low-complexity queries.
     * @param fragment_len Length of the copied region.
     * @param total_len Total emitted length (>= fragment_len).
     */
    Sequence embedFragment(const Sequence &source, const std::string &id,
                           size_t fragment_len, size_t total_len);

    /** Access the underlying RNG (for composition with callers). */
    Rng &rng() { return rng_; }

  private:
    uint8_t randomResidue(MoleculeType type);

    Rng rng_;
};

} // namespace afsb::bio

#endif // AFSB_BIO_SEQGEN_HH
