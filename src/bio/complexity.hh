/**
 * @file
 * Sequence-complexity analysis.
 *
 * The paper's promo sample contains poly-glutamine (poly-Q) repeats
 * that produce "excessive partial matches during database searches"
 * (Observation 2). This module quantifies low-complexity content so
 * the MSA engine and the memory estimator can predict that behaviour:
 * windowed Shannon entropy (a SEG-like criterion) plus homopolymer
 * run statistics.
 */

#ifndef AFSB_BIO_COMPLEXITY_HH
#define AFSB_BIO_COMPLEXITY_HH

#include <cstddef>

#include "bio/sequence.hh"

namespace afsb::bio {

/** Summary of a chain's compositional complexity. */
struct ComplexityProfile
{
    /** Mean windowed Shannon entropy in bits per residue. */
    double meanEntropy = 0.0;

    /** Fraction of windows under the low-complexity threshold. */
    double lowComplexityFraction = 0.0;

    /** Length of the longest single-residue run. */
    size_t longestRun = 0;

    /** Residue code of that run. */
    uint8_t runResidue = 0;

    /** True when lowComplexityFraction exceeds 10%. */
    bool isLowComplexity() const { return lowComplexityFraction > 0.10; }
};

/** SEG-like default analysis window (12 residues). */
constexpr size_t kComplexityWindow = 12;

/** Entropy threshold (bits) below which a window is low-complexity. */
constexpr double kLowComplexityEntropy = 2.2;

/** Shannon entropy (bits/residue) of window [begin, begin+len). */
double windowEntropy(const Sequence &seq, size_t begin, size_t len);

/** Full-profile analysis of @p seq with the given window. */
ComplexityProfile analyzeComplexity(const Sequence &seq,
                                    size_t window = kComplexityWindow);

/**
 * Aggregate low-complexity fraction across a complex's MSA chains,
 * residue-weighted. Drives the hit-inflation model in the MSA engine.
 */
double complexLowComplexityFraction(const Complex &complex_input);

} // namespace afsb::bio

#endif // AFSB_BIO_COMPLEXITY_HH
