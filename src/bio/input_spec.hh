/**
 * @file
 * The AF3 structured-JSON input format.
 *
 * AlphaFold3 "adopts input in a structured JSON format that defines
 * the biomolecular sequences to be modeled, specifying chain
 * composition and molecular types" (paper Section III-B). This module
 * converts between that schema and the Complex model:
 *
 *   {
 *     "name": "2PV7",
 *     "modelSeeds": [1],
 *     "sequences": [
 *       {"protein": {"id": "A", "sequence": "MKV..."}},
 *       {"dna": {"id": "C", "sequence": "ACGT..."}},
 *       {"rna": {"id": "R", "sequence": "ACGU..."}}
 *     ]
 *   }
 *
 * An entry's "id" may also be an array of ids, which replicates the
 * chain (AF3 uses this for homo-multimers such as 2PV7's two
 * identical chains).
 */

#ifndef AFSB_BIO_INPUT_SPEC_HH
#define AFSB_BIO_INPUT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.hh"
#include "util/json.hh"

namespace afsb::bio {

/** Parsed AF3 input: the complex plus run parameters. */
struct InputSpec
{
    Complex complex;
    std::vector<uint64_t> modelSeeds;

    /** First seed, defaulting to 1 when none given. */
    uint64_t primarySeed() const
    {
        return modelSeeds.empty() ? 1 : modelSeeds.front();
    }
};

/** Parse an AF3 JSON document; fatal() on schema violations. */
InputSpec parseInputJson(const std::string &json_text);

/** Parse an already-decoded JSON value. */
InputSpec parseInputSpec(const JsonValue &root);

/** Serialize a complex back to the AF3 JSON schema. */
JsonValue toInputJson(const Complex &complex_input,
                      const std::vector<uint64_t> &seeds = {1});

} // namespace afsb::bio

#endif // AFSB_BIO_INPUT_SPEC_HH
