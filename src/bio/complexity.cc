#include "bio/complexity.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.hh"

namespace afsb::bio {

double
windowEntropy(const Sequence &seq, size_t begin, size_t len)
{
    panicIf(begin + len > seq.length(), "windowEntropy: bad window");
    if (len == 0)
        return 0.0;
    std::array<size_t, 20> counts{};
    for (size_t i = begin; i < begin + len; ++i)
        ++counts[seq[i]];
    double h = 0.0;
    for (size_t c : counts) {
        if (c == 0)
            continue;
        const double p =
            static_cast<double>(c) / static_cast<double>(len);
        h -= p * std::log2(p);
    }
    return h;
}

ComplexityProfile
analyzeComplexity(const Sequence &seq, size_t window)
{
    ComplexityProfile prof;
    const size_t n = seq.length();
    if (n == 0)
        return prof;

    // Longest homopolymer run.
    size_t run = 1;
    for (size_t i = 1; i <= n; ++i) {
        if (i < n && seq[i] == seq[i - 1]) {
            ++run;
        } else {
            if (run > prof.longestRun) {
                prof.longestRun = run;
                prof.runResidue = seq[i - 1];
            }
            run = 1;
        }
    }

    // Windowed entropy, stride 1.
    if (n < window) {
        prof.meanEntropy = windowEntropy(seq, 0, n);
        prof.lowComplexityFraction =
            prof.meanEntropy < kLowComplexityEntropy ? 1.0 : 0.0;
        return prof;
    }
    const size_t windows = n - window + 1;
    double entropySum = 0.0;
    size_t lowCount = 0;
    for (size_t i = 0; i < windows; ++i) {
        const double h = windowEntropy(seq, i, window);
        entropySum += h;
        lowCount += h < kLowComplexityEntropy;
    }
    prof.meanEntropy = entropySum / static_cast<double>(windows);
    prof.lowComplexityFraction =
        static_cast<double>(lowCount) / static_cast<double>(windows);
    return prof;
}

double
complexLowComplexityFraction(const Complex &complex_input)
{
    size_t total = 0;
    double weighted = 0.0;
    for (const Sequence *chain : complex_input.msaChains()) {
        if (chain->type() != MoleculeType::Protein)
            continue;
        const auto prof = analyzeComplexity(*chain);
        weighted += prof.lowComplexityFraction *
                    static_cast<double>(chain->length());
        total += chain->length();
    }
    return total ? weighted / static_cast<double>(total) : 0.0;
}

} // namespace afsb::bio
