/**
 * @file
 * FASTA parsing and writing.
 *
 * The synthetic sequence databases are materialized in FASTA so the
 * MSA engine's buffered-reader path (the addbuf/seebuf analogs the
 * paper profiles in Table IV) parses realistic text.
 */

#ifndef AFSB_BIO_FASTA_HH
#define AFSB_BIO_FASTA_HH

#include <string>
#include <vector>

#include "bio/sequence.hh"

namespace afsb::bio {

/**
 * Parse FASTA text into sequences of modality @p type.
 * Lines are wrapped arbitrarily; blank lines are ignored. Residues
 * that do not encode are fatal().
 */
std::vector<Sequence> parseFasta(const std::string &text,
                                 MoleculeType type);

/** Render sequences as FASTA with @p width residues per line. */
std::string writeFasta(const std::vector<Sequence> &seqs,
                       size_t width = 60);

} // namespace afsb::bio

#endif // AFSB_BIO_FASTA_HH
