/**
 * @file
 * Molecular alphabets for the three AF3 input modalities.
 *
 * AF3 accepts proteins, DNA, RNA (plus ligands/ions, which take no
 * part in the MSA stage and are modeled as extra tokens downstream).
 * Residues are stored encoded (0..K-1) so the alignment kernels index
 * scoring matrices directly.
 */

#ifndef AFSB_BIO_ALPHABET_HH
#define AFSB_BIO_ALPHABET_HH

#include <cstdint>
#include <string>

namespace afsb::bio {

/** Input modality of a chain. */
enum class MoleculeType { Protein, Dna, Rna };

/** Human-readable name ("protein", "dna", "rna"). */
std::string moleculeTypeName(MoleculeType type);

/** Parse a modality name; fatal() on unknown names. */
MoleculeType moleculeTypeFromName(const std::string &name);

/** Number of symbols in the alphabet for @p type (20 or 4). */
size_t alphabetSize(MoleculeType type);

/** Canonical symbol order, e.g. "ACDEFGHIKLMNPQRSTVWY" for protein. */
const std::string &alphabetSymbols(MoleculeType type);

/**
 * Encode one residue character (case-insensitive).
 * @return index in [0, alphabetSize), or -1 for invalid characters.
 */
int encodeResidue(MoleculeType type, char c);

/** Decode an index back to its canonical upper-case character. */
char decodeResidue(MoleculeType type, uint8_t code);

/**
 * Background (null-model) frequency of residue @p code, from
 * Robinson & Robinson-style composition for protein and uniform for
 * nucleotides.
 */
double backgroundFrequency(MoleculeType type, uint8_t code);

} // namespace afsb::bio

#endif // AFSB_BIO_ALPHABET_HH
