/**
 * @file
 * Encoded biological sequences and multi-chain complexes.
 */

#ifndef AFSB_BIO_SEQUENCE_HH
#define AFSB_BIO_SEQUENCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bio/alphabet.hh"

namespace afsb::bio {

/** One chain: an identifier, a modality, and encoded residues. */
class Sequence
{
  public:
    Sequence() = default;

    /**
     * Construct from residue text; invalid characters are fatal().
     * @param id Chain identifier ("A", "B", ...).
     * @param type Modality.
     * @param residues Residue string, case-insensitive.
     */
    Sequence(std::string id, MoleculeType type,
             const std::string &residues);

    /** Construct directly from encoded residues. */
    Sequence(std::string id, MoleculeType type,
             std::vector<uint8_t> codes);

    const std::string &id() const { return id_; }
    MoleculeType type() const { return type_; }
    size_t length() const { return codes_.size(); }
    bool empty() const { return codes_.empty(); }

    /** Encoded residue at @p i. */
    uint8_t operator[](size_t i) const { return codes_[i]; }

    /** Full encoded residue vector. */
    const std::vector<uint8_t> &codes() const { return codes_; }

    /** Decode back to canonical text. */
    std::string toString() const;

    /** Extract [begin, end) as a new sequence. */
    Sequence subsequence(size_t begin, size_t end,
                         const std::string &new_id = "") const;

    bool operator==(const Sequence &other) const = default;

  private:
    std::string id_;
    MoleculeType type_ = MoleculeType::Protein;
    std::vector<uint8_t> codes_;
};

/** A biomolecular assembly: named set of chains (the AF3 input). */
class Complex
{
  public:
    Complex() = default;
    explicit Complex(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append a chain. */
    void addChain(Sequence chain);

    const std::vector<Sequence> &chains() const { return chains_; }
    size_t chainCount() const { return chains_.size(); }

    /** Number of chains of a given modality. */
    size_t chainCount(MoleculeType type) const;

    /** Total residues across all chains (paper Table II "Seq. Length"). */
    size_t totalResidues() const;

    /** Total residues across chains of one modality. */
    size_t totalResidues(MoleculeType type) const;

    /** Longest chain of a given modality (0 when absent). */
    size_t longestChain(MoleculeType type) const;

    /** True when any chain has the given modality. */
    bool hasType(MoleculeType type) const;

    /**
     * Chains that undergo MSA search. DNA chains are excluded: the
     * paper notes promo's DNA chains "are excluded from the MSA phase"
     * (Section IV-B); protein chains search protein databases and RNA
     * chains search nucleotide databases.
     */
    std::vector<const Sequence *> msaChains() const;

  private:
    std::string name_;
    std::vector<Sequence> chains_;
};

} // namespace afsb::bio

#endif // AFSB_BIO_SEQUENCE_HH
