#include "bio/seqgen.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::bio {

uint8_t
SequenceGenerator::randomResidue(MoleculeType type)
{
    const size_t k = alphabetSize(type);
    if (type != MoleculeType::Protein)
        return static_cast<uint8_t>(rng_.nextBounded(k));
    // Sample from the background amino-acid distribution so decoy
    // database statistics match real proteomes.
    static thread_local std::vector<double> weights;
    if (weights.size() != k) {
        weights.resize(k);
        for (size_t i = 0; i < k; ++i)
            weights[i] = backgroundFrequency(MoleculeType::Protein,
                                             static_cast<uint8_t>(i));
    }
    return static_cast<uint8_t>(rng_.nextWeighted(weights));
}

Sequence
SequenceGenerator::random(const std::string &id, MoleculeType type,
                          size_t length)
{
    std::vector<uint8_t> codes;
    codes.reserve(length);
    for (size_t i = 0; i < length; ++i)
        codes.push_back(randomResidue(type));
    return Sequence(id, type, std::move(codes));
}

Sequence
SequenceGenerator::withHomopolymer(const std::string &id, size_t length,
                                   size_t run_length, char residue)
{
    panicIf(run_length > length,
            "withHomopolymer: run longer than chain");
    Sequence base = random(id, MoleculeType::Protein, length);
    const int code = encodeResidue(MoleculeType::Protein, residue);
    panicIf(code < 0, "withHomopolymer: invalid residue");
    std::vector<uint8_t> codes = base.codes();
    const size_t maxStart = length - run_length;
    // Keep the run away from the termini when possible.
    const size_t lo = std::min<size_t>(maxStart, length / 8);
    const size_t hi = std::max(lo, maxStart - std::min(maxStart,
                                                       length / 8));
    const size_t start =
        lo + (hi > lo ? rng_.nextBounded(hi - lo + 1) : 0);
    for (size_t i = 0; i < run_length; ++i)
        codes[start + i] = static_cast<uint8_t>(code);
    return Sequence(id, MoleculeType::Protein, std::move(codes));
}

Sequence
SequenceGenerator::mutate(const Sequence &source, const std::string &id,
                          const MutationParams &params)
{
    std::vector<uint8_t> codes;
    codes.reserve(source.length() + 8);
    for (size_t i = 0; i < source.length(); ++i) {
        if (rng_.nextBool(params.deletionRate))
            continue;
        if (rng_.nextBool(params.insertionRate))
            codes.push_back(randomResidue(source.type()));
        if (rng_.nextBool(params.substitutionRate))
            codes.push_back(randomResidue(source.type()));
        else
            codes.push_back(source[i]);
    }
    if (codes.empty())
        codes.push_back(randomResidue(source.type()));
    return Sequence(id, source.type(), std::move(codes));
}

Sequence
SequenceGenerator::embedFragment(const Sequence &source,
                                 const std::string &id,
                                 size_t fragment_len, size_t total_len)
{
    fragment_len = std::min(fragment_len, source.length());
    panicIf(fragment_len == 0, "embedFragment: empty fragment");
    panicIf(total_len < fragment_len,
            "embedFragment: total shorter than fragment");
    const size_t srcStart =
        rng_.nextBounded(source.length() - fragment_len + 1);
    const size_t flank = total_len - fragment_len;
    const size_t leftFlank = flank ? rng_.nextBounded(flank + 1) : 0;

    std::vector<uint8_t> codes;
    codes.reserve(total_len);
    for (size_t i = 0; i < leftFlank; ++i)
        codes.push_back(randomResidue(source.type()));
    for (size_t i = 0; i < fragment_len; ++i)
        codes.push_back(source[srcStart + i]);
    while (codes.size() < total_len)
        codes.push_back(randomResidue(source.type()));
    return Sequence(id, source.type(), std::move(codes));
}

} // namespace afsb::bio
