#include "bio/sequence.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::bio {

Sequence::Sequence(std::string id, MoleculeType type,
                   const std::string &residues)
    : id_(std::move(id)), type_(type)
{
    codes_.reserve(residues.size());
    for (char c : residues) {
        const int code = encodeResidue(type, c);
        if (code < 0)
            fatal(strformat("invalid %s residue '%c' in chain '%s'",
                            moleculeTypeName(type).c_str(), c,
                            id_.c_str()));
        codes_.push_back(static_cast<uint8_t>(code));
    }
}

Sequence::Sequence(std::string id, MoleculeType type,
                   std::vector<uint8_t> codes)
    : id_(std::move(id)), type_(type), codes_(std::move(codes))
{
    for (uint8_t c : codes_)
        panicIf(c >= alphabetSize(type_),
                "Sequence: encoded residue out of range");
}

std::string
Sequence::toString() const
{
    std::string out;
    out.reserve(codes_.size());
    for (uint8_t c : codes_)
        out += decodeResidue(type_, c);
    return out;
}

Sequence
Sequence::subsequence(size_t begin, size_t end,
                      const std::string &new_id) const
{
    panicIf(begin > end || end > codes_.size(),
            "Sequence::subsequence: bad range");
    std::vector<uint8_t> codes(codes_.begin() +
                                   static_cast<ptrdiff_t>(begin),
                               codes_.begin() +
                                   static_cast<ptrdiff_t>(end));
    return Sequence(new_id.empty() ? id_ : new_id, type_,
                    std::move(codes));
}

void
Complex::addChain(Sequence chain)
{
    chains_.push_back(std::move(chain));
}

size_t
Complex::chainCount(MoleculeType type) const
{
    size_t n = 0;
    for (const auto &c : chains_)
        n += c.type() == type;
    return n;
}

size_t
Complex::totalResidues() const
{
    size_t n = 0;
    for (const auto &c : chains_)
        n += c.length();
    return n;
}

size_t
Complex::totalResidues(MoleculeType type) const
{
    size_t n = 0;
    for (const auto &c : chains_)
        if (c.type() == type)
            n += c.length();
    return n;
}

size_t
Complex::longestChain(MoleculeType type) const
{
    size_t n = 0;
    for (const auto &c : chains_)
        if (c.type() == type)
            n = std::max(n, c.length());
    return n;
}

bool
Complex::hasType(MoleculeType type) const
{
    return chainCount(type) > 0;
}

std::vector<const Sequence *>
Complex::msaChains() const
{
    std::vector<const Sequence *> out;
    for (const auto &c : chains_)
        if (c.type() != MoleculeType::Dna)
            out.push_back(&c);
    return out;
}

} // namespace afsb::bio
