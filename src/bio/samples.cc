#include "bio/samples.hh"

#include "bio/seqgen.hh"
#include "util/logging.hh"

namespace afsb::bio {

namespace {

// Fixed seeds: one namespace per sample so edits to one sample never
// perturb another.
constexpr uint64_t kSeed2pv7 = 0x2b07'0001;
constexpr uint64_t kSeed7rce = 0x7ce0'0002;
constexpr uint64_t kSeed1yy9 = 0x1bb9'0003;
constexpr uint64_t kSeedPromo = 0x9a00'0004;
constexpr uint64_t kSeed6qnr = 0x6a0e'0005;
constexpr uint64_t kSeedRna = 0x7000'0006;
constexpr uint64_t kSeedProbe = 0xb0be'0007;

Sample
make2pv7()
{
    // Homodimer: two identical 242-residue chains (484 total).
    SequenceGenerator gen(kSeed2pv7);
    Sample s;
    s.info = {"2PV7", "Protein (2 chains)", "Low",
              "Symmetric multi-chain processing"};
    s.complex.setName("2PV7");
    Sequence a = gen.random("A", MoleculeType::Protein, 242);
    Sequence b = a.subsequence(0, a.length(), "B");
    s.complex.addChain(std::move(a));
    s.complex.addChain(std::move(b));
    return s;
}

Sample
make7rce()
{
    // Protein 206 + double-stranded DNA 2x50 (306 total).
    SequenceGenerator gen(kSeed7rce);
    Sample s;
    s.info = {"7RCE", "Protein (1) + DNA (2)", "Low-Mid",
              "Baseline for mixed-type input"};
    s.complex.setName("7RCE");
    s.complex.addChain(gen.random("A", MoleculeType::Protein, 206));
    s.complex.addChain(gen.random("C", MoleculeType::Dna, 50));
    s.complex.addChain(gen.random("D", MoleculeType::Dna, 50));
    return s;
}

Sample
make1yy9()
{
    // Asymmetric 3-chain antibody-antigen-like complex:
    // 215 + 215 + 451 = 881. Diverse high-complexity domains.
    SequenceGenerator gen(kSeed1yy9);
    Sample s;
    s.info = {"1YY9", "Protein (3 chains)", "Mid",
              "Asymmetric multi-chain complex"};
    s.complex.setName("1YY9");
    s.complex.addChain(gen.random("A", MoleculeType::Protein, 215));
    s.complex.addChain(gen.random("B", MoleculeType::Protein, 215));
    s.complex.addChain(gen.random("C", MoleculeType::Protein, 451));
    return s;
}

Sample
makePromo()
{
    // Promoter-binding assembly: 3 proteins (chain A carries a 64-res
    // poly-Q repeat) + 2 DNA strands. 250 + 270 + 265 + 36 + 36 = 857.
    SequenceGenerator gen(kSeedPromo);
    Sample s;
    s.info = {"Promo", "Protein (3) + DNA (2)", "Mid-High",
              "MSA pipeline stress with low-complexity sequence"};
    s.complex.setName("promo");
    s.complex.addChain(gen.withHomopolymer("A", 250, 64, 'Q'));
    s.complex.addChain(gen.random("B", MoleculeType::Protein, 270));
    s.complex.addChain(gen.random("C", MoleculeType::Protein, 265));
    s.complex.addChain(gen.random("D", MoleculeType::Dna, 36));
    s.complex.addChain(gen.random("E", MoleculeType::Dna, 36));
    return s;
}

Sample
make6qnr()
{
    // High chain-count ribonucleoprotein subset: nine protein chains
    // (1143 residues total) plus one 252-nt RNA. 1395 total.
    SequenceGenerator gen(kSeed6qnr);
    Sample s;
    s.info = {"6QNR", "Protein (9) + RNA (1)", "High",
              "High chain-count assembly with mixed input types"};
    s.complex.setName("6QNR");
    const size_t lengths[9] = {98, 112, 120, 127, 131, 135, 138, 140,
                               142};
    for (size_t i = 0; i < 9; ++i) {
        const std::string id(1, static_cast<char>('A' + i));
        s.complex.addChain(
            gen.random(id, MoleculeType::Protein, lengths[i]));
    }
    s.complex.addChain(gen.random("R", MoleculeType::Rna, 252));
    return s;
}

} // namespace

const std::vector<std::string> &
sampleNames()
{
    static const std::vector<std::string> names = {
        "2PV7", "7RCE", "1YY9", "promo", "6QNR",
    };
    return names;
}

Sample
makeSample(const std::string &name)
{
    if (name == "2PV7")
        return make2pv7();
    if (name == "7RCE")
        return make7rce();
    if (name == "1YY9")
        return make1yy9();
    if (name == "promo" || name == "Promo")
        return makePromo();
    if (name == "6QNR")
        return make6qnr();
    fatal("unknown sample '" + name + "'");
}

std::vector<Sample>
makeAllSamples()
{
    std::vector<Sample> out;
    for (const auto &name : sampleNames())
        out.push_back(makeSample(name));
    return out;
}

Sequence
makeRibosomalRna(size_t length)
{
    // One long deterministic "7K00-like" rRNA; sweep inputs are
    // prefixes so longer inputs strictly extend shorter ones, exactly
    // as truncating a real rRNA would.
    static const Sequence full = [] {
        SequenceGenerator gen(kSeedRna);
        return gen.random("7K00_rRNA", MoleculeType::Rna, 2048);
    }();
    if (length > full.length())
        fatal("makeRibosomalRna: length beyond synthesized rRNA");
    return full.subsequence(0, length, "7K00_rRNA");
}

Complex
makeProteinProbe(size_t length)
{
    SequenceGenerator gen(kSeedProbe + length);
    Complex c("protein_probe");
    c.addChain(gen.random("A", MoleculeType::Protein, length));
    return c;
}

} // namespace afsb::bio
