#include "bio/input_spec.hh"

#include "util/logging.hh"

namespace afsb::bio {

namespace {

void
addEntry(Complex &complex_out, const std::string &type_name,
         const JsonValue &body)
{
    const MoleculeType type = moleculeTypeFromName(type_name);
    const std::string &residues = body.at("sequence").asString();
    const JsonValue &idField = body.at("id");
    std::vector<std::string> ids;
    if (idField.isString()) {
        ids.push_back(idField.asString());
    } else if (idField.isArray()) {
        for (const auto &e : idField.asArray())
            ids.push_back(e.asString());
    } else {
        fatal("AF3 input: 'id' must be a string or array of strings");
    }
    if (ids.empty())
        fatal("AF3 input: empty id list");
    for (const auto &id : ids)
        complex_out.addChain(Sequence(id, type, residues));
}

} // namespace

InputSpec
parseInputSpec(const JsonValue &root)
{
    InputSpec spec;
    spec.complex.setName(root.at("name").asString());

    const JsonValue &seqs = root.at("sequences");
    if (!seqs.isArray() || seqs.size() == 0)
        fatal("AF3 input: 'sequences' must be a non-empty array");
    for (const auto &entry : seqs.asArray()) {
        const auto &obj = entry.asObject();
        if (obj.size() != 1)
            fatal("AF3 input: each sequences[] entry wraps exactly one "
                  "molecule object");
        const auto &[typeName, body] = *obj.begin();
        addEntry(spec.complex, typeName, body);
    }

    if (root.has("modelSeeds")) {
        for (const auto &s : root.at("modelSeeds").asArray())
            spec.modelSeeds.push_back(
                static_cast<uint64_t>(s.asInt()));
    }
    return spec;
}

InputSpec
parseInputJson(const std::string &json_text)
{
    return parseInputSpec(parseJson(json_text));
}

JsonValue
toInputJson(const Complex &complex_input,
            const std::vector<uint64_t> &seeds)
{
    auto root = JsonValue::makeObject();
    root["name"] = JsonValue(complex_input.name());

    auto seedArr = JsonValue::makeArray();
    for (uint64_t s : seeds)
        seedArr.push(JsonValue(s));
    root["modelSeeds"] = seedArr;

    auto seqArr = JsonValue::makeArray();
    for (const auto &chain : complex_input.chains()) {
        auto body = JsonValue::makeObject();
        body["id"] = JsonValue(chain.id());
        body["sequence"] = JsonValue(chain.toString());
        auto wrapper = JsonValue::makeObject();
        wrapper[moleculeTypeName(chain.type())] = body;
        seqArr.push(wrapper);
    }
    root["sequences"] = seqArr;
    return root;
}

} // namespace afsb::bio
