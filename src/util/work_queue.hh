/**
 * @file
 * Bounded MPMC work queue for staged producer/consumer pipelines.
 *
 * The staged MSA scan (see msa/search.cc) decouples database
 * streaming, MSV prefiltering, and banded survivor rescoring into
 * stages connected by these queues. Capacity bounds give
 * backpressure (the I/O stage cannot run unboundedly ahead of
 * compute; prefilter workers cannot flood the survivor stage), and
 * the wait/depth counters are the raw material for the per-stage
 * occupancy attribution in `ScanStageStats`.
 *
 * Blocking `push`/`pop` plus non-blocking `tryPush`/`tryPop` let
 * producers that are also consumers avoid self-deadlock under
 * backpressure: when a bounded push would block, the caller drains
 * one item itself instead (see the survivor stage).
 */

#ifndef AFSB_UTIL_WORK_QUEUE_HH
#define AFSB_UTIL_WORK_QUEUE_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace afsb {

/** Counters accumulated over a queue's lifetime. */
struct WorkQueueStats
{
    uint64_t pushed = 0;     ///< items accepted
    uint64_t popped = 0;     ///< items handed out
    uint64_t peakDepth = 0;  ///< max items resident at once
    uint64_t pushWaits = 0;  ///< blocking pushes that found the queue full
    uint64_t popWaits = 0;   ///< blocking pops that found the queue empty
};

/**
 * Bounded multi-producer multi-consumer FIFO.
 *
 * close() wakes every waiter; after close, pushes are rejected and
 * pops drain the remaining items before reporting exhaustion.
 */
template <typename T>
class BoundedWorkQueue
{
  public:
    /** @param capacity Maximum resident items; 0 is promoted to 1. */
    explicit BoundedWorkQueue(size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {}

    size_t capacity() const { return capacity_; }

    /**
     * Block until space is available, then enqueue.
     * @return false when the queue was closed (item dropped).
     */
    bool
    push(T item)
    {
        std::unique_lock lock(mutex_);
        if (items_.size() >= capacity_ && !closed_) {
            ++stats_.pushWaits;
            spaceCv_.wait(lock, [this] {
                return closed_ || items_.size() < capacity_;
            });
        }
        if (closed_)
            return false;
        enqueueLocked(std::move(item));
        lock.unlock();
        itemCv_.notify_one();
        return true;
    }

    /** Enqueue without blocking. @return false when full or closed. */
    bool
    tryPush(T item)
    {
        {
            std::unique_lock lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            enqueueLocked(std::move(item));
        }
        itemCv_.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and
     * drained. @return false only on closed-and-empty.
     */
    bool
    pop(T &out)
    {
        std::unique_lock lock(mutex_);
        if (items_.empty() && !closed_) {
            ++stats_.popWaits;
            itemCv_.wait(lock,
                         [this] { return closed_ || !items_.empty(); });
        }
        if (items_.empty())
            return false;
        dequeueLocked(out);
        lock.unlock();
        spaceCv_.notify_one();
        return true;
    }

    /** Dequeue without blocking. @return false when empty. */
    bool
    tryPop(T &out)
    {
        {
            std::unique_lock lock(mutex_);
            if (items_.empty())
                return false;
            dequeueLocked(out);
        }
        spaceCv_.notify_one();
        return true;
    }

    /**
     * Reject further pushes and wake all waiters. Remaining items
     * stay poppable; idempotent.
     */
    void
    close()
    {
        {
            std::unique_lock lock(mutex_);
            closed_ = true;
        }
        itemCv_.notify_all();
        spaceCv_.notify_all();
    }

    bool
    closed() const
    {
        std::unique_lock lock(mutex_);
        return closed_;
    }

    size_t
    size() const
    {
        std::unique_lock lock(mutex_);
        return items_.size();
    }

    /** Snapshot of the lifetime counters. */
    WorkQueueStats
    stats() const
    {
        std::unique_lock lock(mutex_);
        return stats_;
    }

  private:
    void
    enqueueLocked(T &&item)
    {
        items_.push_back(std::move(item));
        ++stats_.pushed;
        stats_.peakDepth =
            std::max<uint64_t>(stats_.peakDepth, items_.size());
    }

    void
    dequeueLocked(T &out)
    {
        out = std::move(items_.front());
        items_.pop_front();
        ++stats_.popped;
    }

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable itemCv_;   ///< signals "item available"
    std::condition_variable spaceCv_;  ///< signals "space available"
    std::deque<T> items_;
    bool closed_ = false;
    WorkQueueStats stats_;
};

} // namespace afsb

#endif // AFSB_UTIL_WORK_QUEUE_HH
