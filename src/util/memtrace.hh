/**
 * @file
 * Memory-trace interface connecting workloads to the cache simulator.
 *
 * The paper derives its Table III/IV microarchitectural numbers from
 * perf counters on real CPUs. Here the instrumented workload kernels
 * (MSA dynamic programming, buffered I/O copies, tensor allocation)
 * emit their memory references and instruction counts through this
 * interface, and afsb::cachesim implements it to drive the per-
 * platform cache/TLB/branch models. A null sink keeps uninstrumented
 * runs at full speed.
 *
 * The interface lives in util so that producer modules (io, msa,
 * model) do not depend on the simulator.
 */

#ifndef AFSB_UTIL_MEMTRACE_HH
#define AFSB_UTIL_MEMTRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace afsb {

/** Small integer handle naming a profiled function. */
using FuncId = uint16_t;

/** One memory reference. */
struct MemAccess
{
    uint64_t addr = 0;   ///< Virtual byte address.
    uint32_t size = 1;   ///< Access width in bytes.
    bool write = false;  ///< Store vs load.
    FuncId func = 0;     ///< Attributed function.
};

/** Consumer of the instrumented execution stream. */
class MemTraceSink
{
  public:
    virtual ~MemTraceSink() = default;

    /**
     * One memory reference, used for cache/TLB modeling only.
     * Producers may sample references (one in N cells); consumers
     * weight the resulting miss counts by the agreed stride.
     */
    virtual void access(const MemAccess &a) = 0;

    /**
     * @p count total instructions attributed to @p func (inclusive
     * of memory instructions; reported unsampled).
     */
    virtual void instructions(FuncId func, uint64_t count) = 0;

    /**
     * Batched conditional-branch accounting.
     * @param predictable Branches following patterns real hardware
     *        predicts well (loop back-edges, monotone guards).
     * @param data_dependent Branches whose direction depends on the
     *        data being processed (alignment max-comparisons), which
     *        mispredict at a workload-specific rate.
     */
    virtual void branches(FuncId func, uint64_t predictable,
                          uint64_t data_dependent) = 0;
};

/**
 * Registry mapping function names to FuncIds.
 *
 * The ids index per-function counter arrays in the simulator; names
 * mirror the symbols the paper reports (calc_band_9, copy_to_iter,
 * addbuf, seebuf, ...).
 */
class FuncRegistry
{
  public:
    /** Intern @p name, returning a stable id. */
    FuncId intern(const std::string &name);

    /** Name for @p id; fatal() for unknown ids. */
    const std::string &name(FuncId id) const;

    /** Number of interned functions. */
    size_t size() const { return names_.size(); }

    /** Process-wide registry used by the built-in workloads. */
    static FuncRegistry &global();

  private:
    std::vector<std::string> names_;
};

/**
 * Well-known FuncIds for the hot symbols in the paper's Table IV/V.
 * Interned on first use via FuncRegistry::global().
 */
namespace wellknown {

FuncId calcBand9();
FuncId calcBand10();
FuncId addbuf();
FuncId seebuf();
FuncId copyToIter();
FuncId msvFilter();
FuncId fillInsert();   ///< std::vector::_M_fill_insert analog
FuncId byteSizeOf();   ///< xla::ShapeUtil::ByteSizeOf analog
FuncId other();

} // namespace wellknown

} // namespace afsb

#endif // AFSB_UTIL_MEMTRACE_HH
