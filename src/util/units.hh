/**
 * @file
 * Byte/time unit constants and human-readable formatting.
 */

#ifndef AFSB_UTIL_UNITS_HH
#define AFSB_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace afsb {

constexpr uint64_t KiB = 1024ull;
constexpr uint64_t MiB = 1024ull * KiB;
constexpr uint64_t GiB = 1024ull * MiB;
constexpr uint64_t TiB = 1024ull * GiB;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

/** Format a byte count as e.g. "1.5 GiB". */
std::string formatBytes(uint64_t bytes);

/** Format a byte count given as double (model outputs). */
std::string formatBytes(double bytes);

/** Format a duration in seconds as e.g. "2.3 s" / "15 ms" / "3m42s". */
std::string formatSeconds(double seconds);

/** Format a rate as e.g. "3.1 GB/s". */
std::string formatRate(double bytes_per_sec);

} // namespace afsb

#endif // AFSB_UTIL_UNITS_HH
