/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user error (bad input or
 * configuration — exits cleanly via an exception the caller may catch),
 * panic() is for internal invariant violations (aborts).
 */

#ifndef AFSB_UTIL_LOGGING_HH
#define AFSB_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace afsb {

/** Exception thrown by fatal() for unrecoverable user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global verbosity (default: Info). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Informative message the user should see but not worry about. */
void inform(const std::string &msg);

/** Debug-level message, hidden unless LogLevel::Debug is set. */
void debugLog(const std::string &msg);

/**
 * Something may not behave as expected but execution can continue.
 */
void warn(const std::string &msg);

/**
 * Unrecoverable user-level error (bad input, impossible config).
 * Throws FatalError.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Internal invariant violation — a bug in this library. Aborts.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Check an internal invariant; panic with @p msg when it fails.
 */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

} // namespace afsb

#endif // AFSB_UTIL_LOGGING_HH
