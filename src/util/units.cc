#include "util/units.hh"

#include "util/str.hh"

namespace afsb {

std::string
formatBytes(double bytes)
{
    if (bytes < 0)
        return "-" + formatBytes(-bytes);
    if (bytes >= static_cast<double>(TiB))
        return strformat("%.2f TiB", bytes / static_cast<double>(TiB));
    if (bytes >= static_cast<double>(GiB))
        return strformat("%.2f GiB", bytes / static_cast<double>(GiB));
    if (bytes >= static_cast<double>(MiB))
        return strformat("%.2f MiB", bytes / static_cast<double>(MiB));
    if (bytes >= static_cast<double>(KiB))
        return strformat("%.2f KiB", bytes / static_cast<double>(KiB));
    return strformat("%.0f B", bytes);
}

std::string
formatBytes(uint64_t bytes)
{
    return formatBytes(static_cast<double>(bytes));
}

std::string
formatSeconds(double seconds)
{
    if (seconds < 0)
        return "-" + formatSeconds(-seconds);
    if (seconds < 1e-6)
        return strformat("%.1f ns", seconds * 1e9);
    if (seconds < 1e-3)
        return strformat("%.2f us", seconds * 1e6);
    if (seconds < 1.0)
        return strformat("%.2f ms", seconds * 1e3);
    if (seconds < 120.0)
        return strformat("%.2f s", seconds);
    const int mins = static_cast<int>(seconds / 60.0);
    const double rem = seconds - mins * 60.0;
    return strformat("%dm%02.0fs", mins, rem);
}

std::string
formatRate(double bytes_per_sec)
{
    if (bytes_per_sec >= kGiga)
        return strformat("%.2f GB/s", bytes_per_sec / kGiga);
    if (bytes_per_sec >= kMega)
        return strformat("%.2f MB/s", bytes_per_sec / kMega);
    if (bytes_per_sec >= kKilo)
        return strformat("%.2f KB/s", bytes_per_sec / kKilo);
    return strformat("%.0f B/s", bytes_per_sec);
}

} // namespace afsb
