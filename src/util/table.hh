/**
 * @file
 * ASCII table rendering for the paper-style reports.
 *
 * Every bench binary reproduces one table or figure from the paper;
 * TextTable renders the rows with aligned columns so output is
 * directly comparable with the published tables.
 */

#ifndef AFSB_UTIL_TABLE_HH
#define AFSB_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace afsb {

/** Column-aligned ASCII table builder. */
class TextTable
{
  public:
    /** Construct with optional title printed above the table. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (may be ragged; short rows are padded). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Number of data rows added so far (separators excluded). */
    size_t rowCount() const;

    /** Render to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace afsb

#endif // AFSB_UTIL_TABLE_HH
