/**
 * @file
 * Monotone cubic interpolation (Fritsch-Carlson PCHIP).
 *
 * Used to calibrate empirical curves against measured control points
 * — notably the nhmmer peak-memory-vs-RNA-length curve from the
 * paper's Fig 2 — without overshoot between points.
 */

#ifndef AFSB_UTIL_INTERP_HH
#define AFSB_UTIL_INTERP_HH

#include <vector>

namespace afsb {

/** Shape-preserving piecewise-cubic interpolator. */
class MonotoneCubic
{
  public:
    /**
     * Construct from control points.
     * @param xs Strictly increasing abscissae (>= 2 points).
     * @param ys Ordinates.
     */
    MonotoneCubic(std::vector<double> xs, std::vector<double> ys);

    /**
     * Evaluate at @p x. Outside the control range the curve
     * extrapolates linearly with the boundary slope.
     */
    double operator()(double x) const;

    double minX() const { return xs_.front(); }
    double maxX() const { return xs_.back(); }

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
    std::vector<double> slopes_;  ///< Hermite tangents per point
};

} // namespace afsb

#endif // AFSB_UTIL_INTERP_HH
