/**
 * @file
 * Minimal JSON value model, parser, and writer.
 *
 * AlphaFold3 consumes its inputs in a structured JSON format; this
 * module provides the parsing substrate for the AFSysBench input
 * schema (see bio/input_spec.hh) without external dependencies.
 *
 * Supported: objects, arrays, strings (with standard escapes),
 * numbers, booleans, null. UTF-8 passes through untouched except for
 * \uXXXX escapes, which are decoded to UTF-8.
 */

#ifndef AFSB_UTIL_JSON_HH
#define AFSB_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace afsb {

/** Discriminated union over the JSON data model. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    /// std::map keeps key order deterministic for stable output.
    using Object = std::map<std::string, JsonValue>;

    JsonValue() : type_(Type::Null) {}
    JsonValue(std::nullptr_t) : type_(Type::Null) {}
    JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    JsonValue(double d) : type_(Type::Number), num_(d) {}
    JsonValue(int i) : type_(Type::Number), num_(i) {}
    JsonValue(int64_t i)
        : type_(Type::Number), num_(static_cast<double>(i)) {}
    JsonValue(uint64_t u)
        : type_(Type::Number), num_(static_cast<double>(u)) {}
    JsonValue(const char *s) : type_(Type::String), str_(s) {}
    JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}
    JsonValue(Array a) : type_(Type::Array), arr_(std::move(a)) {}
    JsonValue(Object o) : type_(Type::Object), obj_(std::move(o)) {}

    /** Construct an empty object. */
    static JsonValue makeObject() { return JsonValue(Object{}); }
    /** Construct an empty array. */
    static JsonValue makeArray() { return JsonValue(Array{}); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; fatal() on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;
    Array &asArray();
    Object &asObject();

    /** Object field lookup; fatal() when missing or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** True when this is an object containing @p key. */
    bool has(const std::string &key) const;

    /**
     * Object field lookup with default.
     * @return the field, or @p fallback when absent.
     */
    const JsonValue &get(const std::string &key,
                         const JsonValue &fallback) const;

    /** Mutable object field (creates the key; object type required). */
    JsonValue &operator[](const std::string &key);

    /** Array element; fatal() on out-of-range or non-array. */
    const JsonValue &at(size_t idx) const;

    /** Array / object / string element count (0 for scalars). */
    size_t size() const;

    /** Append to an array (array type required). */
    void push(JsonValue v);

    /** Serialize compactly. */
    std::string dump() const;

    /** Serialize with 2-space indentation. */
    std::string dumpPretty() const;

    bool operator==(const JsonValue &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/**
 * Parse a JSON document.
 * @throws FatalError with line/column context on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace afsb

#endif // AFSB_UTIL_JSON_HH
