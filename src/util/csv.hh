/**
 * @file
 * CSV emission for machine-readable experiment outputs.
 */

#ifndef AFSB_UTIL_CSV_HH
#define AFSB_UTIL_CSV_HH

#include <string>
#include <vector>

namespace afsb {

/** Row-oriented CSV builder with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row. */
    void addRow(std::vector<std::string> row);

    /** Render the document. */
    std::string render() const;

    /** Write to a file; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

    /** Number of data rows. */
    size_t rowCount() const { return rows_.size(); }

  private:
    static std::string quote(const std::string &field);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace afsb

#endif // AFSB_UTIL_CSV_HH
