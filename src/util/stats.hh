/**
 * @file
 * Streaming statistics used by the run-repetition harness.
 *
 * The paper reports a coefficient of variation (CV) over five runs per
 * configuration (Fig 3 footnote); RunningStats provides mean/stddev/CV
 * via Welford's online algorithm.
 */

#ifndef AFSB_UTIL_STATS_HH
#define AFSB_UTIL_STATS_HH

#include <cstdint>
#include <span>
#include <vector>

namespace afsb {

/** Numerically stable online mean/variance accumulator. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    uint64_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator; 0 when n < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Coefficient of variation = stddev / mean (0 when mean == 0). */
    double cv() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e308;
    double max_ = -1e308;
};

/** Mean of a vector (0 when empty). */
double meanOf(const std::vector<double> &xs);

/** Geometric mean (fatal on non-positive inputs; 0 when empty). */
double geomean(const std::vector<double> &xs);

/** Median (0 when empty; average of middle two for even n). */
double medianOf(std::vector<double> xs);

/**
 * Linear-interpolated percentile of @p xs, @p p in [0, 100]
 * (the NIST/NumPy "linear" definition: rank = p/100 * (n-1)).
 * 0 when empty; fatal() on p outside [0, 100].
 */
double percentile(std::span<const double> xs, double p);

/** The tail-latency percentile triple reported by SLO summaries. */
struct Percentiles
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** p50/p95/p99 of @p xs with one sort (all 0 when empty). */
Percentiles percentilesOf(std::span<const double> xs);

/**
 * Speedup series relative to the first element.
 * speedup[i] = xs[0] / xs[i].
 */
std::vector<double> speedupSeries(const std::vector<double> &xs);

/**
 * Parallel efficiency: speedup(t) / t for thread counts @p threads.
 */
std::vector<double> efficiencySeries(const std::vector<double> &times,
                                     const std::vector<int> &threads);

} // namespace afsb

#endif // AFSB_UTIL_STATS_HH
