/**
 * @file
 * Fixed-bucket histogram used by the profilers (latency and size
 * distributions in the I/O and GPU timelines).
 */

#ifndef AFSB_UTIL_HISTOGRAM_HH
#define AFSB_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace afsb {

/** Linear-bucket histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the tracked range.
     * @param hi Upper bound (exclusive); must exceed @p lo.
     * @param buckets Number of equal-width buckets (>= 1).
     */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one sample. */
    void add(double x);

    /** Total samples recorded (including out-of-range). */
    uint64_t count() const { return count_; }

    /** Samples below the range. */
    uint64_t underflow() const { return underflow_; }

    /** Samples at or above the upper bound. */
    uint64_t overflow() const { return overflow_; }

    /** Count in bucket @p i. */
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }

    /** Number of buckets. */
    size_t buckets() const { return counts_.size(); }

    /** Inclusive lower edge of bucket @p i. */
    double bucketLo(size_t i) const;

    /** Sample mean. */
    double mean() const;

    /** Approximate quantile from bucket midpoints, q in [0,1]. */
    double quantile(double q) const;

    /** Render a compact ASCII sparkline summary. */
    std::string summary() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

} // namespace afsb

#endif // AFSB_UTIL_HISTOGRAM_HH
