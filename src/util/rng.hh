/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in AFSysBench (sequence generation, database
 * synthesis, weight initialization, noise schedules) flows through Rng
 * so that every experiment is reproducible bit-for-bit from its seed.
 * The engine is xoshiro256** (public domain, Blackman & Vigna).
 */

#ifndef AFSB_UTIL_RNG_HH
#define AFSB_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace afsb {

/** Seeded xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x5eedafb3u);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) — bound must be nonzero. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Standard normal variate (Box-Muller). */
    double nextGaussian();

    /** Bernoulli trial with probability @p p of true. */
    bool nextBool(double p = 0.5);

    /**
     * Sample an index according to non-negative weights.
     * @param weights Relative weights; must not all be zero.
     */
    size_t nextWeighted(const std::vector<double> &weights);

    /** Fork an independent stream (decorrelated child seed). */
    Rng fork();

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace afsb

#endif // AFSB_UTIL_RNG_HH
