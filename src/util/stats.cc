#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace afsb {

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::cv() const
{
    if (mean_ == 0.0 || n_ == 0)
        return 0.0;
    return stddev() / std::abs(mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
meanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geomean: non-positive input");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
medianOf(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

namespace {

/** Percentile of an already-sorted sample. */
double
sortedPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace

double
percentile(std::span<const double> xs, double p)
{
    if (p < 0.0 || p > 100.0)
        fatal("percentile: p outside [0, 100]");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    return sortedPercentile(sorted, p);
}

Percentiles
percentilesOf(std::span<const double> xs)
{
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    Percentiles out;
    out.p50 = sortedPercentile(sorted, 50.0);
    out.p95 = sortedPercentile(sorted, 95.0);
    out.p99 = sortedPercentile(sorted, 99.0);
    return out;
}

std::vector<double>
speedupSeries(const std::vector<double> &xs)
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (double x : xs) {
        if (x <= 0.0)
            fatal("speedupSeries: non-positive time");
        out.push_back(xs.front() / x);
    }
    return out;
}

std::vector<double>
efficiencySeries(const std::vector<double> &times,
                 const std::vector<int> &threads)
{
    if (times.size() != threads.size())
        fatal("efficiencySeries: size mismatch");
    auto speedups = speedupSeries(times);
    std::vector<double> out;
    out.reserve(speedups.size());
    for (size_t i = 0; i < speedups.size(); ++i)
        out.push_back(speedups[i] / threads[i]);
    return out;
}

} // namespace afsb
