#include "util/str.hh"

#include <cctype>
#include <cstdio>

namespace afsb {

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
repeat(const std::string &s, size_t n)
{
    std::string out;
    out.reserve(s.size() * n);
    for (size_t i = 0; i < n; ++i)
        out += s;
    return out;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace afsb
