/**
 * @file
 * Shared grain-size policy for parallel dispatch.
 *
 * Every parallel loop in the tree used to carry its own copy of the
 * "how many iterations per task" heuristic (`rowGrain` in
 * tensor/ops.cc, an inline `scanGrain` in msa/search.cc, ad-hoc
 * `max(1, budget/flops)` expressions in the model layers).  They are
 * consolidated here so the policy is stated once and — critically —
 * so it is easy to audit that no grain depends on the worker count of
 * the pool that happens to execute it.  Worker-independent grains are
 * what make the pool-determinism contract (bit-identical results at
 * any pool size) hold: the block partition, and therefore the
 * floating-point reduction shape, is a function of the problem alone.
 *
 * The one exception is `scanGrain`, whose contract *is* per-worker
 * (MSA scan chunking tracks the configured scan width, and scan
 * results are made order-independent by a canonical sort instead).
 */

#ifndef AFSB_UTIL_GRAIN_HH
#define AFSB_UTIL_GRAIN_HH

#include <cstddef>

namespace afsb::grain {

/**
 * Flop budget per spawned task.  ~256k flops is large enough that a
 * std::function dispatch (~100ns) is noise, small enough that a
 * Pairformer row block still splits into several tasks per worker.
 */
inline constexpr size_t kFlopsPerTask = size_t(1) << 18;

/**
 * Iterations per task for a loop whose body costs `flopsPerUnit`
 * flops per iteration.  Worker-count independent by design.
 */
inline size_t
forFlops(size_t flopsPerUnit)
{
    if (flopsPerUnit == 0)
        return kFlopsPerTask;
    const size_t g = kFlopsPerTask / flopsPerUnit;
    return g == 0 ? 1 : g;
}

/**
 * Same as forFlops but rounded up to a multiple of `align` so block
 * boundaries never split an aligned group (e.g. the 2-row GEMM
 * pairing in tensor::gemmAcc).  `align` must be nonzero.
 */
inline size_t
forFlopsAligned(size_t flopsPerUnit, size_t align)
{
    const size_t g = forFlops(flopsPerUnit);
    return (g + align - 1) / align * align;
}

/**
 * Targets per MSA scan block: ~8 blocks per scan worker so skewed
 * per-target cost load-balances.  Deliberately per-worker (see file
 * comment); scan outputs are canonically sorted, not order-sensitive.
 */
inline size_t
forScan(size_t n, size_t workers)
{
    if (workers == 0)
        workers = 1;
    const size_t g = n / (workers * 8);
    return g == 0 ? 1 : g;
}

} // namespace afsb::grain

#endif // AFSB_UTIL_GRAIN_HH
