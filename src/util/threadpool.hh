/**
 * @file
 * Fixed-size worker pool used by the MSA search engine and the tensor
 * library.
 *
 * The MSA stage of AFSysBench sweeps thread counts 1-8 (paper Fig 4);
 * the pool supports per-run sizing and a parallel-for primitive with
 * static block partitioning, matching how HMMER distributes database
 * chunks across workers.
 */

#ifndef AFSB_UTIL_THREADPOOL_HH
#define AFSB_UTIL_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace afsb {

/** Simple fixed-size thread pool with a shared task queue. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 is promoted to 1.
     */
    explicit ThreadPool(size_t num_threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count. */
    size_t size() const { return workers_.size(); }

    /**
     * True when the calling thread is owned by any ThreadPool.
     * Staged scans use this to avoid nested dispatch: a bounded
     * producer/consumer pipeline started from inside a worker would
     * deadlock on its own backpressure.
     */
    static bool inWorker();

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has completed. */
    void wait();

    /**
     * Run fn(i) for i in [0, n) across the pool and wait.
     * Iterations are divided into contiguous blocks, one per worker.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Chunked parallel-for: run fn(begin, end) over contiguous
     * blocks of ~grain iterations and wait. One std::function
     * dispatch per block (not per index), and more blocks than
     * workers, so skewed per-item cost load-balances dynamically
     * while each index is still processed by exactly one task.
     *
     * Dispatches through a work-stealing TaskGroup (the calling
     * thread helps), so skewed blocks load-balance; set
     * setChunkedStealing(false) to keep the legacy shared-queue
     * static dispatch.  Either way the block partition — and thus
     * the result — is identical.
     *
     * @param grain Iterations per block; 0 picks ~4 blocks per
     *        worker. Runs inline (serially) when the range fits one
     *        block, the pool has a single worker, or the caller is
     *        itself a pool worker or a TaskGroup task — nested
     *        dispatch would deadlock on wait().
     */
    void parallelFor(size_t n, size_t grain,
                     const std::function<void(size_t, size_t)> &fn);

    /**
     * Select the chunked parallelFor engine: true (default) routes
     * blocks through a work-stealing TaskGroup; false keeps the
     * legacy shared-queue batch enqueue.  The traced-scan paths use
     * parallelBlocks' static per-worker split regardless — that
     * contract is unaffected by this knob.
     */
    void setChunkedStealing(bool on) { chunkedStealing_ = on; }

    /**
     * Run fn(worker_id, begin, end) over a static block partition of
     * [0, n) and wait. Exposes the worker id so callers can keep
     * per-thread state (e.g. per-thread cache simulators).
     */
    void parallelBlocks(
        size_t n,
        const std::function<void(size_t, size_t, size_t)> &fn);

  private:
    void workerLoop();

    bool chunkedStealing_ = true;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskCv_;
    std::condition_variable idleCv_;
    size_t active_ = 0;
    bool stop_ = false;
};

} // namespace afsb

#endif // AFSB_UTIL_THREADPOOL_HH
