#include "util/threadpool.hh"

#include "util/task.hh"

#include <algorithm>

namespace afsb {

namespace {

/// True on threads owned by any ThreadPool; parallel dispatch from
/// such a thread must run inline (wait() counts the caller itself as
/// active, so re-entrant dispatch would never drain).
thread_local bool tls_pool_worker = false;

} // namespace

bool
ThreadPool::inWorker()
{
    return tls_pool_worker;
}

ThreadPool::ThreadPool(size_t num_threads)
{
    const size_t n = std::max<size_t>(1, num_threads);
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mutex_);
        stop_ = true;
    }
    taskCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock lock(mutex_);
        tasks_.push(std::move(task));
    }
    taskCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mutex_);
    idleCv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    parallelBlocks(n, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
    });
}

void
ThreadPool::parallelFor(size_t n, size_t grain,
                        const std::function<void(size_t, size_t)> &fn)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = std::max<size_t>(1, n / (4 * workers_.size()));
    const size_t blocks = (n + grain - 1) / grain;
    // The TaskGroup::inTask() leg is the nested-dispatch guard for
    // task-graph code: a task that calls parallelFor (directly or via
    // a tensor op) must run it inline — dispatching to the pool and
    // blocking in wait() from inside a task could deadlock, since the
    // pool workers may all be parked in participant loops of the
    // caller's own group.
    if (blocks <= 1 || workers_.size() <= 1 || tls_pool_worker
        || TaskGroup::inTask()) {
        fn(0, n);
        return;
    }
    if (chunkedStealing_) {
        // Same block partition, work-stealing execution: blocks start
        // spread round-robin across per-runner deques and migrate to
        // idle runners, and the calling thread helps instead of
        // blocking in wait().
        TaskGroup group(this, blocks);
        for (size_t b = 0; b < blocks; ++b) {
            const size_t begin = b * grain;
            const size_t end = std::min(n, begin + grain);
            group.spawn([begin, end, &fn] { fn(begin, end); });
        }
        group.sync();
        return;
    }
    // Legacy engine: enqueue the whole batch under one lock and wake
    // every worker at once — per-block submit() would take the lock
    // and signal `blocks` times, which shows up at fine grains (many
    // blocks of ~100us work).
    {
        std::unique_lock lock(mutex_);
        for (size_t b = 0; b < blocks; ++b) {
            const size_t begin = b * grain;
            const size_t end = std::min(n, begin + grain);
            tasks_.push([begin, end, &fn] { fn(begin, end); });
        }
    }
    taskCv_.notify_all();
    wait();
}

void
ThreadPool::parallelBlocks(
    size_t n, const std::function<void(size_t, size_t, size_t)> &fn)
{
    if (n == 0)
        return;
    if (tls_pool_worker || TaskGroup::inTask()) {
        fn(0, 0, n);
        return;
    }
    const size_t nw = std::min(workers_.size(), n);
    const size_t chunk = (n + nw - 1) / nw;
    for (size_t w = 0; w < nw; ++w) {
        const size_t begin = w * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin >= end)
            break;
        submit([=, &fn] { fn(w, begin, end); });
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    tls_pool_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            taskCv_.wait(lock,
                         [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
            ++active_;
        }
        task();
        {
            std::unique_lock lock(mutex_);
            --active_;
            if (tasks_.empty() && active_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace afsb
