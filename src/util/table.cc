#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/str.hh"

namespace afsb {

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

size_t
TextTable::rowCount() const
{
    size_t n = 0;
    for (const auto &r : rows_)
        if (!r.empty())
            ++n;
    return n;
}

std::string
TextTable::render() const
{
    // Compute column widths across header and all rows.
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> widths(ncols, 0);
    auto account = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 3;
    if (total > 0)
        total -= 1;

    std::string out;
    if (!title_.empty()) {
        out += title_;
        out += '\n';
        out += std::string(std::max(total, title_.size()), '=');
        out += '\n';
    }

    auto renderRow = [&](const std::vector<std::string> &r) {
        std::string line;
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &cell = i < r.size() ? r[i] : std::string();
            line += padRight(cell, widths[i]);
            if (i + 1 < ncols)
                line += " | ";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        out += line;
        out += '\n';
    };

    if (!header_.empty()) {
        renderRow(header_);
        out += std::string(total, '-');
        out += '\n';
    }
    for (const auto &r : rows_) {
        if (r.empty()) {
            out += std::string(total, '-');
            out += '\n';
        } else {
            renderRow(r);
        }
    }
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace afsb
