#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace afsb {

void
CsvWriter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
CsvWriter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
CsvWriter::quote(const std::string &field)
{
    bool needs = false;
    for (char c : field) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs = true;
            break;
        }
    }
    if (!needs)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::render() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ',';
            out += quote(row[i]);
        }
        out += '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return out;
}

void
CsvWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("CsvWriter: cannot open '" + path + "' for writing");
    const std::string doc = render();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace afsb
