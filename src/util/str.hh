/**
 * @file
 * Small string utilities used across AFSysBench.
 */

#ifndef AFSB_UTIL_STR_HH
#define AFSB_UTIL_STR_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace afsb {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on @p delim; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** True when @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True when @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Repeat a string @p n times. */
std::string repeat(const std::string &s, size_t n);

/** Left-pad with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, size_t width);

/** Right-pad with spaces to at least @p width characters. */
std::string padRight(const std::string &s, size_t width);

} // namespace afsb

#endif // AFSB_UTIL_STR_HH
