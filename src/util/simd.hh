/**
 * @file
 * Portability shims for the vectorized native kernels.
 *
 * The fast (untraced) DP filters and the blocked tensor kernels are
 * written as plain fixed-stride loops over contiguous arrays — no
 * intrinsics — and rely on the compiler's autovectorizer. These
 * macros give the vectorizer what it needs: no-alias guarantees on
 * the hot pointers and an explicit no-loop-carried-dependence hint
 * on the striped loops.
 */

#ifndef AFSB_UTIL_SIMD_HH
#define AFSB_UTIL_SIMD_HH

#include <bit>
#include <cstdint>

#if defined(__GNUC__) || defined(__clang__)
#define AFSB_RESTRICT __restrict__
#else
#define AFSB_RESTRICT
#endif

/** Marks the following loop free of loop-carried dependences. */
#if defined(__clang__)
#define AFSB_VECTORIZE_LOOP \
    _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define AFSB_VECTORIZE_LOOP _Pragma("GCC ivdep")
#else
#define AFSB_VECTORIZE_LOOP
#endif

namespace afsb {

/** Maps a float's bits to an integer whose two's-complement order
 *  matches the float order (flips the magnitude bits of negatives).
 *  Self-inverse; lets comparisons against float constants run as
 *  integer compares. */
constexpr int32_t
floatOrderKey(float f)
{
    const int32_t i = std::bit_cast<int32_t>(f);
    return i ^ ((i >> 31) & 0x7fffffff);
}

/**
 * Branch-free polynomial expf for the optimized softmax paths.
 *
 * Cephes-style range reduction: split x into n*ln2 + r with
 * |r| <= ln2/2 (nearest-n split), evaluate a degree-5 minimax
 * polynomial for e^r, and scale by 2^n through the float exponent
 * bits. Written without float compares or std::floor: GCC treats
 * those as potentially trapping and refuses to if-convert them
 * unless -fno-trapping-math is on, which would keep a softmax row
 * sweep scalar. The clamp instead runs on order-preserving integer
 * keys and the nearest-integer split uses the 1.5*2^23 magic-number
 * trick (exact under round-to-nearest, |x*log2e| < 2^22). ~8e-8 max
 * relative error over the clamped domain, far inside the 1e-4
 * equivalence budget the optimized kernels are held to.
 */
inline float
fastExpf(float x)
{
    // Below/above these, expf saturates to 0 / +inf in float anyway.
    constexpr int32_t kLoKey = floatOrderKey(-87.0f);
    constexpr int32_t kHiKey = floatOrderKey(88.0f);
    int32_t key = floatOrderKey(x);
    key = key < kLoKey ? kLoKey : key;
    key = key > kHiKey ? kHiKey : key;
    x = std::bit_cast<float>(key ^ ((key >> 31) & 0x7fffffff));

    constexpr float kLog2e = 1.44269504088896341f;
    constexpr float kLn2Hi = 0.693359375f;
    constexpr float kLn2Lo = -2.12194440e-4f;
    constexpr float kMagic = 12582912.0f;  // 1.5 * 2^23

    const float fn = (x * kLog2e + kMagic) - kMagic;
    const int32_t n = static_cast<int32_t>(fn);
    // Two-step Cody-Waite reduction keeps r accurate near |x| ~ 87.
    const float r = (x - fn * kLn2Hi) - fn * kLn2Lo;

    // Degree-5 minimax polynomial for e^r on [-ln2/2, ln2/2].
    float p = 1.9875691500e-4f;
    p = p * r + 1.3981999507e-3f;
    p = p * r + 8.3334519073e-3f;
    p = p * r + 4.1665795894e-2f;
    p = p * r + 1.6666665459e-1f;
    p = p * r + 5.0000001201e-1f;
    p = p * r * r + r + 1.0f;

    // Scale by 2^n through the exponent field (n is in [-126, 127]
    // after the clamp, so no denormal/overflow handling needed).
    return p * std::bit_cast<float>((n + 127) << 23);
}

} // namespace afsb

#endif // AFSB_UTIL_SIMD_HH
