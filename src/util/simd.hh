/**
 * @file
 * Portability shims for the vectorized native kernels.
 *
 * The fast (untraced) DP filters and the blocked tensor kernels are
 * written as plain fixed-stride loops over contiguous arrays — no
 * intrinsics — and rely on the compiler's autovectorizer. These
 * macros give the vectorizer what it needs: no-alias guarantees on
 * the hot pointers and an explicit no-loop-carried-dependence hint
 * on the striped loops.
 */

#ifndef AFSB_UTIL_SIMD_HH
#define AFSB_UTIL_SIMD_HH

#if defined(__GNUC__) || defined(__clang__)
#define AFSB_RESTRICT __restrict__
#else
#define AFSB_RESTRICT
#endif

/** Marks the following loop free of loop-carried dependences. */
#if defined(__clang__)
#define AFSB_VECTORIZE_LOOP \
    _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define AFSB_VECTORIZE_LOOP _Pragma("GCC ivdep")
#else
#define AFSB_VECTORIZE_LOOP
#endif

#endif // AFSB_UTIL_SIMD_HH
