#include "util/histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    panicIf(hi <= lo, "Histogram: hi must exceed lo");
    panicIf(buckets == 0, "Histogram: need at least one bucket");
    width_ = (hi - lo) / static_cast<double>(buckets);
}

void
Histogram::add(double x)
{
    ++count_;
    sum_ += x;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

double
Histogram::bucketLo(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<uint64_t>(
        q * static_cast<double>(count_));
    uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target)
            return bucketLo(i) + width_ / 2.0;
    }
    return hi_;
}

std::string
Histogram::summary() const
{
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+", "*",
                                   "#", "%", "@"};
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);
    std::string bar;
    for (uint64_t c : counts_) {
        const auto level = static_cast<size_t>(
            std::llround(9.0 * static_cast<double>(c) /
                         static_cast<double>(peak)));
        bar += glyphs[level];
    }
    return strformat("n=%llu mean=%.3g p50=%.3g p99=%.3g [%s]",
                     static_cast<unsigned long long>(count_), mean(),
                     quantile(0.5), quantile(0.99), bar.c_str());
}

} // namespace afsb
