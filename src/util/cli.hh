/**
 * @file
 * Minimal command-line option parser for the AFSysBench tools.
 *
 * Supports `command --flag value --switch` conventions:
 * positionals, string/int/double options with defaults, boolean
 * switches, and comma-separated integer lists (thread grids).
 */

#ifndef AFSB_UTIL_CLI_HH
#define AFSB_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace afsb {

/** Parsed command line. */
class CliArgs
{
  public:
    /**
     * Parse argv. Tokens starting with "--" become options; an
     * option followed by a non-option token consumes it as value,
     * otherwise it is a boolean switch. Everything else is a
     * positional.
     */
    CliArgs(int argc, const char *const *argv);

    /** Positional arguments in order (argv[0] excluded). */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** First positional, or @p fallback. */
    std::string command(const std::string &fallback = "") const;

    bool has(const std::string &name) const;

    /** Option value with default. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    int64_t getInt(const std::string &name, int64_t fallback) const;

    double getDouble(const std::string &name, double fallback) const;

    /** True when --name appears (with or without a value). */
    bool getSwitch(const std::string &name) const;

    /**
     * Comma-separated integer list, e.g. --threads 1,2,4.
     * @return fallback when the option is absent; fatal() on
     *         malformed entries.
     */
    std::vector<uint32_t> getIntList(
        const std::string &name,
        std::vector<uint32_t> fallback) const;

  private:
    std::vector<std::string> positionals_;
    std::map<std::string, std::string> options_;
};

} // namespace afsb

#endif // AFSB_UTIL_CLI_HH
