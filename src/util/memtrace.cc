#include "util/memtrace.hh"

#include "util/logging.hh"

namespace afsb {

FuncId
FuncRegistry::intern(const std::string &name)
{
    for (size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<FuncId>(i);
    names_.push_back(name);
    return static_cast<FuncId>(names_.size() - 1);
}

const std::string &
FuncRegistry::name(FuncId id) const
{
    panicIf(id >= names_.size(), "FuncRegistry: unknown id");
    return names_[id];
}

FuncRegistry &
FuncRegistry::global()
{
    static FuncRegistry reg;
    return reg;
}

namespace wellknown {

namespace {
FuncId
cached(const char *name)
{
    return FuncRegistry::global().intern(name);
}
} // namespace

FuncId calcBand9() { static FuncId id = cached("calc_band_9"); return id; }
FuncId calcBand10() { static FuncId id = cached("calc_band_10"); return id; }
FuncId addbuf() { static FuncId id = cached("addbuf"); return id; }
FuncId seebuf() { static FuncId id = cached("seebuf"); return id; }

FuncId
copyToIter()
{
    static FuncId id = cached("copy_to_iter");
    return id;
}

FuncId
msvFilter()
{
    static FuncId id = cached("msv_filter");
    return id;
}

FuncId
fillInsert()
{
    static FuncId id = cached("std::vector::_M_fill_insert");
    return id;
}

FuncId
byteSizeOf()
{
    static FuncId id = cached("xla::ShapeUtil::ByteSizeOf");
    return id;
}

FuncId other() { static FuncId id = cached("other"); return id; }

} // namespace wellknown

} // namespace afsb
