/**
 * @file
 * Work-stealing task-group runtime layered on ThreadPool.
 *
 * `TaskGroup` gives the Cilk/TBB `spawn`/`sync` idiom without adding
 * a second thread pool to the process: a group borrows the existing
 * `ThreadPool` workers by submitting *participant* loops to it, and
 * the spawning (owner) thread helps too, so a group on a P-worker
 * pool runs on up to P+1 threads.  Each runner owns a Chase-Lev-style
 * deque: the owner pushes and pops at the bottom (LIFO, for cache
 * locality along dependency chains), thieves steal from the top
 * (FIFO, so the oldest — typically largest — subtrees migrate).  The
 * deques are mutex-guarded rather than lock-free: tasks in this tree
 * are tens of microseconds and up, so the lock is noise, and the
 * implementation stays portable and ThreadSanitizer-clean.
 *
 * Determinism contract (see DESIGN.md §5.7): the runtime schedules
 * *which thread* runs a task, never *what* the task computes.  Every
 * call site keeps its partition (block boundaries, unit ids, output
 * slots) a pure function of the problem shape, so results are
 * bit-identical at any worker count even though execution order is
 * not.
 *
 * Nesting: spawning from inside a task of the same group pushes onto
 * the running thread's own deque.  Spawning on a group created where
 * dispatch would deadlock (inside a pool worker's plain task, or
 * inside another group's task) runs the task inline — never blocks.
 */

#ifndef AFSB_UTIL_TASK_HH
#define AFSB_UTIL_TASK_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/threadpool.hh"

namespace afsb {

class TaskGroup
{
  public:
    /**
     * @param pool Pool whose workers participate.  May be null: the
     *        group then runs every spawn inline on the calling
     *        thread (serial, same results).
     * @param maxParticipants Cap on pool workers borrowed (clamped
     *        to pool->size()).  SIZE_MAX borrows every worker.
     */
    explicit TaskGroup(ThreadPool *pool,
                       size_t maxParticipants = size_t(-1));

    /** Syncs outstanding tasks before destruction. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /**
     * Schedule fn to run.  Callable from the owner thread or from
     * inside a task of this group; tasks may spawn further tasks.
     * In inline mode (null pool / nested context) runs fn before
     * returning.
     */
    void spawn(std::function<void()> fn);

    /**
     * Run one pending task on the calling thread if any is
     * available.  Returns false when every deque was empty.  Exposed
     * so long-running tasks can help drain the group (help-first
     * backpressure, e.g. the staged-scan producer throttling on its
     * prefetch window).
     */
    bool runOne();

    /**
     * Launch participant loops, help run tasks until none remain,
     * then wait for the participants to retire.  Must be called from
     * the owner thread.  Spawned tasks only start executing once the
     * owner reaches sync(); building the whole graph first is cheap
     * (closure pushes) and makes the drained-group check exact.
     * After sync() the group is reusable for another graph.
     */
    void sync();

    /** True while the calling thread is running any TaskGroup task. */
    static bool inTask();

    /**
     * Runner slots in this group: participants + the owner, >= 1.
     * Stable across the group's lifetime; use for per-slot state
     * (stat counters, partial sums merged in slot order).
     */
    size_t slots() const { return deques_.size(); }

    /**
     * Slot of the calling thread: 0 on the owner, 1..P on
     * participants.  Valid on the owner and inside tasks.
     */
    size_t currentSlot() const;

    /**
     * Dependency latch: holds a continuation until `count` arrive()
     * calls, then spawns it on this group.  Created before the graph
     * runs (on the owner thread); arrive() is thread-safe.
     */
    class Gate
    {
      public:
        void arrive(size_t k = 1);

      private:
        friend class TaskGroup;
        Gate(TaskGroup *g, size_t count, std::function<void()> fn)
            : group_(g), remaining_(count), fn_(std::move(fn))
        {
        }
        TaskGroup *group_;
        std::atomic<size_t> remaining_;
        std::function<void()> fn_;
    };

    /**
     * Create a gate owned by this group (freed at sync()).  `count`
     * must be > 0 and match the arrivals the graph will deliver.
     */
    Gate *gate(size_t count, std::function<void()> fn);

  private:
    struct Slot
    {
        std::mutex m;
        std::deque<std::function<void()>> q;
        // Separate hot slots across cache lines.
        char pad[64];
    };

    void participantLoop(size_t slot);
    bool popOrSteal(size_t slot, std::function<void()> &out);
    void runTask(std::function<void()> fn, size_t slot);
    void launchParticipants();

    ThreadPool *pool_;
    size_t participants_ = 0;
    std::vector<std::unique_ptr<Slot>> deques_;
    std::vector<std::unique_ptr<Gate>> gates_;
    std::mutex gateMutex_;
    /// Tasks spawned and not yet finished (decremented after the
    /// body returns, so a running task that still spawns can never
    /// observe a drained group).
    std::atomic<size_t> pending_{0};
    /// Participant loops submitted to the pool and not yet retired.
    std::atomic<size_t> live_{0};
    /// Round-robin cursor for owner-side spawns before helpers pick
    /// a home deque.
    std::atomic<size_t> rr_{0};
    bool launched_ = false;
    bool inlineMode_ = false;
};

} // namespace afsb

#endif // AFSB_UTIL_TASK_HH
