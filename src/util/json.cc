#include "util/json.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb {

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        fatal("JSON: expected bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (type_ != Type::Number)
        fatal("JSON: expected number");
    return num_;
}

int64_t
JsonValue::asInt() const
{
    return static_cast<int64_t>(std::llround(asNumber()));
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        fatal("JSON: expected string");
    return str_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (type_ != Type::Array)
        fatal("JSON: expected array");
    return arr_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (type_ != Type::Object)
        fatal("JSON: expected object");
    return obj_;
}

JsonValue::Array &
JsonValue::asArray()
{
    if (type_ != Type::Array)
        fatal("JSON: expected array");
    return arr_;
}

JsonValue::Object &
JsonValue::asObject()
{
    if (type_ != Type::Object)
        fatal("JSON: expected object");
    return obj_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const auto &obj = asObject();
    auto it = obj.find(key);
    if (it == obj.end())
        fatal("JSON: missing key '" + key + "'");
    return it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return type_ == Type::Object && obj_.count(key) > 0;
}

const JsonValue &
JsonValue::get(const std::string &key, const JsonValue &fallback) const
{
    if (has(key))
        return obj_.at(key);
    return fallback;
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    if (type_ != Type::Object)
        fatal("JSON: operator[] on non-object");
    return obj_[key];
}

const JsonValue &
JsonValue::at(size_t idx) const
{
    const auto &arr = asArray();
    if (idx >= arr.size())
        fatal(strformat("JSON: array index %zu out of range (size %zu)",
                        idx, arr.size()));
    return arr[idx];
}

size_t
JsonValue::size() const
{
    switch (type_) {
      case Type::Array: return arr_.size();
      case Type::Object: return obj_.size();
      case Type::String: return str_.size();
      default: return 0;
    }
}

void
JsonValue::push(JsonValue v)
{
    if (type_ != Type::Array)
        fatal("JSON: push on non-array");
    arr_.push_back(std::move(v));
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == other.bool_;
      case Type::Number: return num_ == other.num_;
      case Type::String: return str_ == other.str_;
      case Type::Array: return arr_ == other.arr_;
      case Type::Object: return obj_ == other.obj_;
    }
    return false;
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
}

void
formatNumber(std::string &out, double num)
{
    if (num == std::llround(num) &&
        std::abs(num) < 9.0e15) {
        out += strformat("%lld", std::llround(num));
    } else {
        out += strformat("%.17g", num);
    }
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)),
                                 ' ')
                   : std::string();
    const std::string padEnd =
        indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ')
                   : std::string();
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        formatNumber(out, num_);
        break;
      case Type::String:
        escapeString(out, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += padEnd;
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        {
            size_t i = 0;
            for (const auto &[key, val] : obj_) {
                out += pad;
                escapeString(out, key);
                out += colon;
                val.dumpTo(out, indent, depth + 1);
                if (++i < obj_.size())
                    out += ',';
                out += nl;
            }
        }
        out += padEnd;
        out += '}';
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, 0, 0);
    return out;
}

std::string
JsonValue::dumpPretty() const
{
    std::string out;
    dumpTo(out, 2, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser with position tracking. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        skipWs();
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal(strformat("JSON parse error at line %zu col %zu: %s",
                        line, col, msg.c_str()));
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    take()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (take() != c)
            fail(strformat("expected '%c'", c));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = 0;
        while (lit[n])
            ++n;
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return JsonValue(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue(nullptr);
            fail("invalid literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue::Object obj;
        skipWs();
        if (peek() == '}') {
            take();
            return JsonValue(std::move(obj));
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            obj[key] = parseValue();
            skipWs();
            char c = take();
            if (c == '}')
                break;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
        return JsonValue(std::move(obj));
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue::Array arr;
        skipWs();
        if (peek() == ']') {
            take();
            return JsonValue(std::move(arr));
        }
        for (;;) {
            arr.push_back(parseValue());
            skipWs();
            char c = take();
            if (c == ']')
                break;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
        return JsonValue(std::move(arr));
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = take();
            if (c == '"')
                break;
            if (c == '\\') {
                char e = take();
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = take();
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("invalid \\u escape");
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  default:
                    fail("invalid escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                out += c;
            }
        }
        return out;
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos_;
        if (peek() == '-')
            take();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string numStr = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(numStr.c_str(), &end);
        if (end != numStr.c_str() + numStr.size())
            fail("malformed number '" + numStr + "'");
        return JsonValue(v);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace afsb
