#include "util/task.hh"

#include <algorithm>
#include <chrono>
#include <thread>

namespace afsb {

namespace {

/**
 * Idle backoff for the help/participant loops: spin briefly (a task
 * usually appears within microseconds on a busy graph), then yield,
 * then sleep. The sleep tier matters when the machine is
 * oversubscribed — threads that merely yield still burn scheduler
 * slices the working thread needs, which shows up directly as wall
 * time on small hosts.
 */
inline void
idleBackoff(int &spins)
{
    ++spins;
    if (spins <= 64)
        return;
    if (spins <= 512) {
        std::this_thread::yield();
        return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

/// Group + slot of the task the calling thread is currently running
/// (or helping from, for the owner inside sync()).
struct TaskContext
{
    TaskGroup *group = nullptr;
    size_t slot = 0;
};

thread_local TaskContext tls_task_ctx;

} // namespace

bool
TaskGroup::inTask()
{
    return tls_task_ctx.group != nullptr;
}

TaskGroup::TaskGroup(ThreadPool *pool, size_t maxParticipants)
    : pool_(pool)
{
    // Inline mode when dispatch could deadlock: no pool, a
    // single-worker pool (the submit()ed participant could be the
    // thread already blocked in sync -- not possible here, but a
    // 1-worker pool buys no parallelism either), a caller that is
    // itself a pool worker (its participant submission would wait on
    // itself through the shared queue), or a caller already inside a
    // task of another group.
    if (!pool_ || ThreadPool::inWorker() || TaskGroup::inTask()) {
        inlineMode_ = true;
        deques_.resize(1);
        deques_[0] = std::make_unique<Slot>();
        return;
    }
    participants_ = std::min(maxParticipants, pool_->size());
    participants_ = std::max<size_t>(participants_, 1);
    deques_.resize(participants_ + 1);
    for (auto &d : deques_)
        d = std::make_unique<Slot>();
}

TaskGroup::~TaskGroup()
{
    sync();
}

size_t
TaskGroup::currentSlot() const
{
    if (tls_task_ctx.group == this)
        return tls_task_ctx.slot;
    return 0; // owner thread outside any task
}

void
TaskGroup::launchParticipants()
{
    if (launched_ || inlineMode_)
        return;
    launched_ = true;
    live_.store(participants_, std::memory_order_relaxed);
    for (size_t p = 1; p <= participants_; ++p)
        pool_->submit([this, p] { participantLoop(p); });
}

void
TaskGroup::spawn(std::function<void()> fn)
{
    if (inlineMode_) {
        // Run immediately on the caller.  Recursion depth is bounded
        // by graph depth, not task count: a task spawned inline runs
        // to completion (including its own inline spawns) before the
        // spawner continues.
        runTask(std::move(fn), 0);
        return;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    size_t home;
    if (tls_task_ctx.group == this) {
        home = tls_task_ctx.slot; // push onto own deque (LIFO hot end)
    } else {
        // Owner-side spawn: round-robin across deques so the initial
        // graph roots are spread before any stealing happens.
        home = rr_.fetch_add(1, std::memory_order_relaxed)
               % deques_.size();
    }
    {
        std::lock_guard lock(deques_[home]->m);
        deques_[home]->q.push_back(std::move(fn));
    }
}

bool
TaskGroup::popOrSteal(size_t slot, std::function<void()> &out)
{
    // Own deque: bottom (most recently pushed).
    {
        Slot &d = *deques_[slot];
        std::lock_guard lock(d.m);
        if (!d.q.empty()) {
            out = std::move(d.q.back());
            d.q.pop_back();
            return true;
        }
    }
    // Steal: top (oldest) of the others, scanning from the next
    // slot so thieves spread instead of convoying on deque 0.
    const size_t n = deques_.size();
    for (size_t k = 1; k < n; ++k) {
        Slot &d = *deques_[(slot + k) % n];
        std::lock_guard lock(d.m);
        if (!d.q.empty()) {
            out = std::move(d.q.front());
            d.q.pop_front();
            return true;
        }
    }
    return false;
}

void
TaskGroup::runTask(std::function<void()> fn, size_t slot)
{
    const TaskContext saved = tls_task_ctx;
    tls_task_ctx = TaskContext{this, slot};
    fn();
    tls_task_ctx = saved;
    if (!inlineMode_)
        pending_.fetch_sub(1, std::memory_order_release);
}

bool
TaskGroup::runOne()
{
    if (inlineMode_)
        return false;
    const size_t slot =
        (tls_task_ctx.group == this) ? tls_task_ctx.slot : 0;
    std::function<void()> fn;
    if (!popOrSteal(slot, fn))
        return false;
    runTask(std::move(fn), slot);
    return true;
}

void
TaskGroup::participantLoop(size_t slot)
{
    int idleSpins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
        std::function<void()> fn;
        if (popOrSteal(slot, fn)) {
            runTask(std::move(fn), slot);
            idleSpins = 0;
        } else {
            idleBackoff(idleSpins);
        }
    }
    live_.fetch_sub(1, std::memory_order_release);
}

void
TaskGroup::sync()
{
    if (!inlineMode_) {
        // Participants are launched here, not at spawn(): once the
        // owner reaches sync() the only transient pending_ == 0 the
        // loops can observe is the real end of the graph (a task
        // that spawns or fires a gate does so before its own pending
        // decrement, so an incomplete graph always has pending_ >= 1
        // from the moment the first root is queued).
        if (pending_.load(std::memory_order_acquire) != 0)
            launchParticipants();
        // Help until the graph drains.  The owner never blocks on the
        // pool: even if every pool worker is busy elsewhere, this
        // loop alone retires the graph.
        int idleSpins = 0;
        while (pending_.load(std::memory_order_acquire) != 0) {
            std::function<void()> fn;
            if (popOrSteal(0, fn)) {
                runTask(std::move(fn), 0);
                idleSpins = 0;
            } else {
                idleBackoff(idleSpins);
            }
        }
        // Wait for participant loops to retire before the deques can
        // be reused or destroyed.
        idleSpins = 0;
        while (live_.load(std::memory_order_acquire) != 0)
            idleBackoff(idleSpins);
        launched_ = false;
    }
    std::lock_guard lock(gateMutex_);
    gates_.clear();
}

TaskGroup::Gate *
TaskGroup::gate(size_t count, std::function<void()> fn)
{
    auto g = std::unique_ptr<Gate>(
        new Gate(this, count, std::move(fn)));
    Gate *raw = g.get();
    std::lock_guard lock(gateMutex_);
    gates_.push_back(std::move(g));
    return raw;
}

void
TaskGroup::Gate::arrive(size_t k)
{
    if (remaining_.fetch_sub(k, std::memory_order_acq_rel) == k)
        group_->spawn(std::move(fn_));
}

} // namespace afsb
