#include "util/interp.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace afsb {

MonotoneCubic::MonotoneCubic(std::vector<double> xs,
                             std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys))
{
    const size_t n = xs_.size();
    if (n < 2 || ys_.size() != n)
        fatal("MonotoneCubic: need >= 2 matching control points");
    for (size_t i = 1; i < n; ++i)
        if (xs_[i] <= xs_[i - 1])
            fatal("MonotoneCubic: xs must be strictly increasing");

    // Secant slopes.
    std::vector<double> d(n - 1);
    for (size_t i = 0; i + 1 < n; ++i)
        d[i] = (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);

    slopes_.resize(n);
    slopes_[0] = d[0];
    slopes_[n - 1] = d[n - 2];
    for (size_t i = 1; i + 1 < n; ++i) {
        if (d[i - 1] * d[i] <= 0.0)
            slopes_[i] = 0.0;
        else
            slopes_[i] = 0.5 * (d[i - 1] + d[i]);
    }

    // Fritsch-Carlson limiter preserves monotonicity.
    for (size_t i = 0; i + 1 < n; ++i) {
        if (d[i] == 0.0) {
            slopes_[i] = 0.0;
            slopes_[i + 1] = 0.0;
            continue;
        }
        const double a = slopes_[i] / d[i];
        const double b = slopes_[i + 1] / d[i];
        const double s = a * a + b * b;
        if (s > 9.0) {
            const double tau = 3.0 / std::sqrt(s);
            slopes_[i] = tau * a * d[i];
            slopes_[i + 1] = tau * b * d[i];
        }
    }
}

double
MonotoneCubic::operator()(double x) const
{
    const size_t n = xs_.size();
    if (x <= xs_.front())
        return ys_.front() + slopes_.front() * (x - xs_.front());
    if (x >= xs_.back())
        return ys_.back() + slopes_.back() * (x - xs_.back());

    // Binary search for the containing interval.
    const auto it =
        std::upper_bound(xs_.begin(), xs_.end(), x) - 1;
    const size_t i = static_cast<size_t>(it - xs_.begin());
    const size_t j = std::min(i, n - 2);

    const double h = xs_[j + 1] - xs_[j];
    const double t = (x - xs_[j]) / h;
    const double t2 = t * t;
    const double t3 = t2 * t;

    const double h00 = 2 * t3 - 3 * t2 + 1;
    const double h10 = t3 - 2 * t2 + t;
    const double h01 = -2 * t3 + 3 * t2;
    const double h11 = t3 - t2;

    return h00 * ys_[j] + h10 * h * slopes_[j] + h01 * ys_[j + 1] +
           h11 * h * slopes_[j + 1];
}

} // namespace afsb
