#include "util/cli.hh"

#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb {

CliArgs::CliArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        if (startsWith(tok, "--")) {
            const std::string name = tok.substr(2);
            if (i + 1 < argc &&
                !startsWith(argv[i + 1], "--")) {
                options_[name] = argv[++i];
            } else {
                options_[name] = "";
            }
        } else {
            positionals_.push_back(tok);
        }
    }
}

std::string
CliArgs::command(const std::string &fallback) const
{
    return positionals_.empty() ? fallback : positionals_.front();
}

bool
CliArgs::has(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::string
CliArgs::get(const std::string &name,
             const std::string &fallback) const
{
    auto it = options_.find(name);
    return it == options_.end() || it->second.empty() ? fallback
                                                      : it->second;
}

int64_t
CliArgs::getInt(const std::string &name, int64_t fallback) const
{
    auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --" + name + " expects an integer, got '" +
              it->second + "'");
    return v;
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --" + name + " expects a number, got '" +
              it->second + "'");
    return v;
}

bool
CliArgs::getSwitch(const std::string &name) const
{
    return has(name);
}

std::vector<uint32_t>
CliArgs::getIntList(const std::string &name,
                    std::vector<uint32_t> fallback) const
{
    auto it = options_.find(name);
    if (it == options_.end() || it->second.empty())
        return fallback;
    std::vector<uint32_t> out;
    for (const auto &part : split(it->second, ',')) {
        const std::string trimmed = trim(part);
        if (trimmed.empty())
            continue;
        char *end = nullptr;
        const long v = std::strtol(trimmed.c_str(), &end, 10);
        if (end == trimmed.c_str() || *end != '\0' || v <= 0)
            fatal("option --" + name +
                  " expects positive integers, got '" + trimmed +
                  "'");
        out.push_back(static_cast<uint32_t>(v));
    }
    if (out.empty())
        fatal("option --" + name + " has no values");
    return out;
}

} // namespace afsb
