#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace afsb {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextBounded: bound must be nonzero");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    panicIf(lo > hi, "Rng::nextRange: lo > hi");
    return lo + static_cast<int64_t>(
        nextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat()
{
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

double
Rng::nextGaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    panicIf(total <= 0.0, "Rng::nextWeighted: weights sum to zero");
    double r = nextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

} // namespace afsb
