/**
 * @file
 * Shared benchmark workspace: synthetic reference databases.
 *
 * One workspace builds the scaled-down protein and RNA databases all
 * pipeline runs share. Each database records the paper-scale size it
 * stands in for (UniRef-like ~60 GiB protein collection, the 89 GiB
 * RNA collection), which drives both the work-extrapolation factor
 * in the timing model and the page-cache capacity story.
 */

#ifndef AFSB_CORE_WORKSPACE_HH
#define AFSB_CORE_WORKSPACE_HH

#include <memory>

#include "bio/samples.hh"
#include "msa/database.hh"
#include "msa/dbgen.hh"

namespace afsb::core {

/** Workspace construction knobs. */
struct WorkspaceConfig
{
    uint64_t seed = 0xaf5b;

    /** Decoys in the scaled protein database. */
    size_t proteinDecoys = 900;

    /** Decoys in the scaled nucleotide database. */
    size_t rnaDecoys = 250;

    /** Paper-scale size the protein database stands in for. */
    uint64_t proteinPaperBytes = msa::paperdb::kProteinDbBytes;

    /** Paper-scale size the RNA database stands in for. */
    uint64_t rnaPaperBytes = msa::paperdb::kRnaDbBytes;
};

/** The built workspace. */
class Workspace
{
  public:
    /**
     * Build databases with homologs planted for every MSA chain of
     * every Table II sample (so each benchmark sample finds real
     * hits).
     */
    explicit Workspace(const WorkspaceConfig &cfg = {});

    const io::Vfs &vfs() const { return vfs_; }
    io::Vfs &vfs() { return vfs_; }

    const msa::SequenceDatabase &proteinDb() const
    {
        return proteinDb_;
    }
    const msa::SequenceDatabase &rnaDb() const { return rnaDb_; }

    const WorkspaceConfig &config() const { return cfg_; }

    /** Process-wide shared instance (built once, reused). */
    static const Workspace &shared();

  private:
    WorkspaceConfig cfg_;
    io::Vfs vfs_;
    msa::SequenceDatabase proteinDb_;
    msa::SequenceDatabase rnaDb_;
};

} // namespace afsb::core

#endif // AFSB_CORE_WORKSPACE_HH
