#include "core/adaptive_threads.hh"

#include "util/logging.hh"

namespace afsb::core {

ThreadAdvice
recommendThreads(const bio::Complex &complex_input,
                 const sys::PlatformSpec &platform,
                 const Workspace &workspace,
                 std::vector<uint32_t> candidates)
{
    if (candidates.empty())
        fatal("recommendThreads: no candidates");

    ThreadAdvice advice;
    advice.predictedSeconds = -1.0;
    for (uint32_t threads : candidates) {
        MsaPhaseOptions options;
        options.threads = threads;
        // Coarser tracing: the advisor only needs relative times.
        options.traceStride = 8;
        const auto result = runMsaPhase(complex_input, platform,
                                        workspace, options);
        const double seconds =
            result.oom ? 1e30 : result.seconds;
        advice.candidates.push_back({threads, seconds});
        if (advice.predictedSeconds < 0.0 ||
            seconds < advice.predictedSeconds) {
            advice.predictedSeconds = seconds;
            advice.recommendedThreads = threads;
        }
        if (threads == 8)
            advice.defaultSeconds = seconds;
    }
    if (advice.defaultSeconds == 0.0) {
        MsaPhaseOptions options;
        options.threads = 8;
        options.traceStride = 8;
        const auto result = runMsaPhase(complex_input, platform,
                                        workspace, options);
        advice.defaultSeconds = result.oom ? 1e30 : result.seconds;
    }
    return advice;
}

} // namespace afsb::core
