/**
 * @file
 * Static pre-execution memory estimator (paper Section VI).
 *
 * "Integrating a static memory estimator that analyzes input
 * characteristics — particularly RNA length — prior to execution
 * would be beneficial. This pre-check would help AF3 avoid unsafe
 * configurations by issuing early warnings." This module is that
 * estimator: given an input complex and a platform, it predicts the
 * peak host memory of the MSA phase (Fig 2 models) and the GPU
 * memory of the inference phase, classifies both against capacity,
 * and renders an actionable report.
 */

#ifndef AFSB_CORE_MEMORY_ESTIMATOR_HH
#define AFSB_CORE_MEMORY_ESTIMATOR_HH

#include <string>
#include <vector>

#include "bio/sequence.hh"
#include "model/config.hh"
#include "sys/memory_model.hh"

namespace afsb::core {

/** Verdict for one resource. */
enum class MemVerdict
{
    Safe,        ///< fits comfortably
    NeedsCxl,    ///< requires the CXL expander
    NeedsUnifiedMemory,  ///< GPU must spill to host memory
    WillOom,     ///< projected to exceed capacity
};

/** One resource line of the estimate. */
struct MemEstimateLine
{
    std::string resource;   ///< "host (MSA)", "gpu (inference)"
    uint64_t requiredBytes = 0;
    uint64_t capacityBytes = 0;
    MemVerdict verdict = MemVerdict::Safe;
    std::string detail;     ///< dominant contributor
};

/** Full estimate. */
struct MemoryEstimate
{
    std::vector<MemEstimateLine> lines;

    /** True when every resource is Safe or has a fallback. */
    bool runnable() const;

    /** True when any resource is projected to OOM. */
    bool willOom() const;

    /** Human-readable report. */
    std::string render() const;
};

/** Verdict display name. */
std::string memVerdictName(MemVerdict verdict);

/**
 * Estimate peak memory for running @p complex_input on
 * @p platform with @p msa_threads MSA threads.
 */
MemoryEstimate estimateMemory(
    const bio::Complex &complex_input,
    const sys::PlatformSpec &platform, uint32_t msa_threads = 8,
    const model::ModelConfig &cfg = model::paperConfig());

} // namespace afsb::core

#endif // AFSB_CORE_MEMORY_ESTIMATOR_HH
