#include "core/pipeline.hh"

namespace afsb::core {

PipelineResult
runPipeline(const bio::Complex &complex_input,
            const sys::PlatformSpec &platform,
            const Workspace &workspace,
            const PipelineOptions &options)
{
    PipelineResult result;

    MsaPhaseOptions msaOptions = options.msa;
    msaOptions.threads = options.msaThreads;
    result.msa = runMsaPhase(complex_input, platform, workspace,
                             msaOptions);
    if (result.msa.oom) {
        result.oom = true;
        return result;
    }
    result.phases.record("msa", result.msa.seconds);

    gpusim::InferenceSimOptions inferOptions;
    inferOptions.threads = options.inferenceThreads;
    inferOptions.unifiedMemory = options.unifiedMemory;
    gpusim::XlaCache localCache;
    gpusim::XlaCache &cache = options.persistentXlaCache
                                  ? *options.persistentXlaCache
                                  : localCache;
    result.inference = gpusim::simulateInference(
        platform, complex_input.totalResidues(), cache,
        inferOptions);
    if (result.inference.oom) {
        result.oom = true;
        return result;
    }

    result.phases.record("inference",
                         result.inference.totalSeconds());
    result.phases.recordSub("inference", "gpu_init",
                            result.inference.initSeconds);
    result.phases.recordSub("inference", "xla_compile",
                            result.inference.compileSeconds);
    result.phases.recordSub("inference", "gpu_compute",
                            result.inference.gpuComputeSeconds);
    result.phases.recordSub("inference", "finalize",
                            result.inference.finalizeSeconds);
    return result;
}

} // namespace afsb::core
