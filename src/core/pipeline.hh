/**
 * @file
 * The end-to-end AFSysBench pipeline: MSA phase + inference phase.
 *
 * This is the paper's measurement harness in library form — what
 * the shell-script AFSysBench suite drives for Figs 3-8. One run
 * executes both phases for one sample on one platform at one thread
 * count and returns their full breakdowns.
 */

#ifndef AFSB_CORE_PIPELINE_HH
#define AFSB_CORE_PIPELINE_HH

#include "core/msa_phase.hh"
#include "gpusim/inference_sim.hh"
#include "prof/phase_profiler.hh"

namespace afsb::core {

/** Pipeline run options. */
struct PipelineOptions
{
    /** CPU threads for the MSA phase (AF3 default 8). */
    uint32_t msaThreads = 8;

    /** Host threads for the inference phase. */
    uint32_t inferenceThreads = 1;

    MsaPhaseOptions msa;

    /** Allow unified-memory spill for over-VRAM inference. */
    bool unifiedMemory = true;

    /**
     * Reuse a warm XLA compilation cache across requests — the
     * Section VI "persistent model state" optimization. When null a
     * fresh cache is used per run (default Docker behaviour).
     */
    gpusim::XlaCache *persistentXlaCache = nullptr;
};

/** Combined result of one pipeline run. */
struct PipelineResult
{
    bool oom = false;

    MsaPhaseResult msa;
    gpusim::InferenceSimResult inference;

    prof::PhaseProfiler phases;

    double
    totalSeconds() const
    {
        return msa.seconds + inference.totalSeconds();
    }

    /** Fraction of the end-to-end time spent in the MSA phase. */
    double
    msaShare() const
    {
        const double t = totalSeconds();
        return t > 0.0 ? msa.seconds / t : 0.0;
    }
};

/** Run the pipeline for @p complex_input on @p platform. */
PipelineResult runPipeline(const bio::Complex &complex_input,
                           const sys::PlatformSpec &platform,
                           const Workspace &workspace,
                           const PipelineOptions &options = {});

} // namespace afsb::core

#endif // AFSB_CORE_PIPELINE_HH
