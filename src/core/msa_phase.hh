/**
 * @file
 * The MSA phase of the AF3 pipeline on a simulated platform.
 *
 * Runs the real search engines (jackhmmer analog per protein chain,
 * nhmmer analog per RNA chain) over the scaled databases with
 * per-thread cache-hierarchy tracing, then extrapolates to paper
 * scale through the analytic timing model:
 *
 *   paper-seconds = timing(counters x dbScaleFactor, platform, T)
 *
 * plus a storage model for the paper-scale database residency story
 * (Server's 512 GiB holds everything; Desktop's 64 GiB streams from
 * NVMe) and the Fig 2 peak-memory model with OOM semantics.
 */

#ifndef AFSB_CORE_MSA_PHASE_HH
#define AFSB_CORE_MSA_PHASE_HH

#include <memory>

#include "cachesim/timing.hh"
#include "core/workspace.hh"
#include "msa/jackhmmer.hh"
#include "msa/nhmmer.hh"
#include "sys/memory_model.hh"

namespace afsb::core {

/** MSA-phase run options. */
struct MsaPhaseOptions
{
    /** Worker threads (AF3 defaults to 8). */
    uint32_t threads = 8;

    /** jackhmmer iterations per protein chain. */
    size_t jackhmmerIterations = 2;

    /** Memory-trace sampling stride (1 = exact, slower). */
    uint32_t traceStride = 4;

    /**
     * Preload databases into the page cache before scanning — the
     * Section VI "Preloading Databases" optimization.
     */
    bool preloadDatabases = false;

    /**
     * Allow the staged overlapped scan (async chunk prefetch +
     * dynamic survivor scheduling) on untraced scans. The phase's
     * traced simulation runs always use the static partition (the
     * per-worker trace streams are the simulator contract), so this
     * only matters when tracing is off — but the knob is threaded
     * through so callers sweeping wall-clock configurations (e.g.
     * bench_fig4) can toggle it in one place.
     */
    bool overlapScan = true;

    /** Abort with OOM when the modeled peak exceeds memory. */
    bool enforceMemoryLimit = true;
};

/** Result of one MSA phase. */
struct MsaPhaseResult
{
    bool oom = false;          ///< modeled peak exceeded memory
    sys::MemFit memFit = sys::MemFit::FitsDram;

    double seconds = 0.0;      ///< modeled paper-scale wall time
    double ioSeconds = 0.0;    ///< paper-scale storage time
    double computeSeconds = 0.0;

    uint64_t peakMemoryBytes = 0;

    /** Aggregated per-function counters (paper-scale unscaled). */
    std::vector<cachesim::FuncCounters> perFunction;
    cachesim::FuncCounters totals;

    /**
     * Pipeline composition counters from the real scans. When the
     * overlapped native path ran, `scanStats.stages` carries the
     * per-stage attribution (I/O / prefilter / survivor busy
     * seconds, queue peaks and waits, prefetch ReaderStats) that
     * tells a thread sweep where scaling saturates.
     */
    msa::SearchStats scanStats;

    /** Timing-model detail. */
    cachesim::TimingResult timing;

    /** Per-chain MSA depths (embedder input). */
    std::vector<size_t> msaDepthPerChain;

    /** Storage picture at paper scale. */
    double diskBytesRead = 0.0;
    double storageUtilizationPct = 0.0;
};

/**
 * Run the MSA phase of @p complex_input on @p platform.
 */
MsaPhaseResult runMsaPhase(const bio::Complex &complex_input,
                           const sys::PlatformSpec &platform,
                           const Workspace &workspace,
                           const MsaPhaseOptions &options = {});

} // namespace afsb::core

#endif // AFSB_CORE_MSA_PHASE_HH
