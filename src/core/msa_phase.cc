#include "core/msa_phase.hh"

#include <algorithm>

#include "msa/memory_model.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace afsb::core {

namespace {

/** Scale every memory-side counter by the DB extrapolation factor. */
std::vector<cachesim::FuncCounters>
scaleCounters(const std::vector<cachesim::FuncCounters> &in,
              double factor)
{
    std::vector<cachesim::FuncCounters> out = in;
    for (auto &c : out) {
        auto scaleU64 = [&](uint64_t v) {
            return static_cast<uint64_t>(
                static_cast<double>(v) * factor);
        };
        c.instructions = scaleU64(c.instructions);
        c.accesses = scaleU64(c.accesses);
        c.l1Misses = scaleU64(c.l1Misses);
        c.l2Misses = scaleU64(c.l2Misses);
        c.llcMisses = scaleU64(c.llcMisses);
        c.tlbMisses = scaleU64(c.tlbMisses);
        c.branches = scaleU64(c.branches);
        c.branchMisses = scaleU64(c.branchMisses);
    }
    return out;
}

void
mergeInto(std::vector<cachesim::FuncCounters> &into,
          const std::vector<cachesim::FuncCounters> &from)
{
    if (from.size() > into.size())
        into.resize(from.size());
    for (size_t i = 0; i < from.size(); ++i)
        into[i].merge(from[i]);
}

/**
 * Paper-scale storage time for scanning a database @p passes times
 * with @p cache_bytes of page cache available.
 */
double
modelIoSeconds(const sys::PlatformSpec &platform, uint64_t db_bytes,
               double passes, uint64_t cache_bytes, bool preloaded,
               double *disk_bytes_out)
{
    const double db = static_cast<double>(db_bytes);
    // Cyclic sequential re-scans are LRU's worst case: a collection
    // even slightly larger than the page cache gets zero reuse
    // (each pass evicts exactly what the next pass needs), which is
    // why the Desktop's 64 GiB streams every pass while the
    // Server's 512 GiB streams only the cold first pass.
    const bool fits = static_cast<double>(cache_bytes) >= db;
    double diskBytes =
        db + std::max(0.0, passes - 1.0) * (fits ? 0.0 : db);
    double ioSeconds = diskBytes / platform.storage.seqReadBandwidth;
    if (preloaded && fits) {
        // Section VI preloading: the single cold read happens in a
        // preprocessing stage, outside the measured MSA window.
        ioSeconds = 0.0;
    }
    if (disk_bytes_out)
        *disk_bytes_out += diskBytes;
    return ioSeconds;
}

} // namespace

MsaPhaseResult
runMsaPhase(const bio::Complex &complex_input,
            const sys::PlatformSpec &platform,
            const Workspace &workspace, const MsaPhaseOptions &options)
{
    MsaPhaseResult result;
    const uint32_t threads = std::max<uint32_t>(1, options.threads);

    // --- Memory pre-flight (the paper's OOM semantics) ------------------
    result.peakMemoryBytes =
        msa::msaPhasePeakMemoryBytes(complex_input, threads);
    sys::MemoryModel memory(platform.memory);
    result.memFit = memory.classify(result.peakMemoryBytes);
    if (result.memFit == sys::MemFit::Oom) {
        result.oom = true;
        if (options.enforceMemoryLimit)
            return result;
    }
    double memLatencyFactor = 1.0;
    if (result.memFit == sys::MemFit::NeedsCxl) {
        memory.allocate(result.peakMemoryBytes);
        memLatencyFactor = memory.latencyFactor();
    }

    // --- Per-thread simulators and pool ---------------------------------
    ThreadPool pool(threads);
    auto makeSims = [&] {
        std::vector<std::unique_ptr<cachesim::HierarchySim>> sims;
        std::vector<MemTraceSink *> sinks;
        for (uint32_t t = 0; t < threads; ++t) {
            cachesim::HierarchyConfig hcfg;
            hcfg.cpu = platform.cpu;
            hcfg.activeThreads = threads;
            hcfg.sampleWeight = options.traceStride;
            sims.push_back(
                std::make_unique<cachesim::HierarchySim>(hcfg));
            // The sparse-rescue arena is long-lived: measure it in
            // steady state, not during warm-up.
            const msa::KernelConfig kernelDefaults;
            sims.back()->prefillLlc(kernelDefaults.arenaBase,
                                    kernelDefaults.arenaBytes);
            sinks.push_back(sims.back().get());
        }
        return std::pair(std::move(sims), std::move(sinks));
    };

    // Page cache sized by what DRAM leaves after the tool footprint.
    io::StorageDevice device(platform.storage);
    const uint64_t cacheBytes =
        platform.memory.dramBytes >
                result.peakMemoryBytes + 4 * GiB
            ? platform.memory.dramBytes - result.peakMemoryBytes -
                  4 * GiB
            : 1 * GiB;
    io::PageCache pageCache(cacheBytes, &device);

    double proteinPasses = 0.0;
    double rnaPasses = 0.0;

    auto [proteinSims, proteinSinks] = makeSims();
    auto [rnaSims, rnaSinks] = makeSims();

    msa::JackhmmerConfig jcfg;
    jcfg.iterations = options.jackhmmerIterations;
    jcfg.search.threads = threads;
    jcfg.search.overlap = options.overlapScan;
    jcfg.search.kernel.traceStride = options.traceStride;
    jcfg.build.kernel.traceStride = options.traceStride;
    msa::NhmmerConfig ncfg;
    ncfg.search.threads = threads;
    ncfg.search.overlap = options.overlapScan;
    ncfg.search.kernel.traceStride = options.traceStride;
    ncfg.build.kernel.traceStride = options.traceStride;

    // One entry per chain, in chain order. Identical protein chains
    // reuse the first chain's MSA (AF3 deduplicates homo-multimer
    // searches, e.g. 2PV7's two identical chains).
    std::vector<std::pair<std::string, size_t>> proteinDepthCache;
    result.msaDepthPerChain.reserve(complex_input.chainCount());
    for (const auto &chain : complex_input.chains()) {
        switch (chain.type()) {
          case bio::MoleculeType::Dna:
            // Excluded from the MSA phase (paper Section IV-B).
            result.msaDepthPerChain.push_back(0);
            break;
          case bio::MoleculeType::Protein: {
            const std::string text = chain.toString();
            size_t depth = 0;
            bool cached = false;
            for (const auto &[seen, d] : proteinDepthCache) {
                if (seen == text) {
                    depth = d;
                    cached = true;
                    break;
                }
            }
            if (!cached) {
                const auto jr = msa::runJackhmmer(
                    chain, workspace.proteinDb(), pageCache, &pool,
                    jcfg, 0.0, proteinSinks);
                depth = jr.msa.depth();
                result.scanStats.merge(jr.stats);
                proteinPasses += static_cast<double>(jr.rounds);
                proteinDepthCache.emplace_back(text, depth);
            }
            result.msaDepthPerChain.push_back(depth);
            break;
          }
          case bio::MoleculeType::Rna: {
            const auto nr =
                msa::runNhmmer(chain, workspace.rnaDb(), pageCache,
                               &pool, ncfg, 0.0, rnaSinks);
            result.msaDepthPerChain.push_back(nr.msa.depth());
            result.scanStats.merge(nr.stats);
            rnaPasses += 1.0;
            break;
          }
        }
    }

    // --- Paper-scale extrapolation ---------------------------------------
    const double proteinScale =
        workspace.proteinDb().info().scaleFactor();
    const double rnaScale = workspace.rnaDb().info().scaleFactor();

    auto proteinCounters = scaleCounters(
        [&] {
            std::vector<cachesim::FuncCounters> merged;
            for (const auto &sim : proteinSims)
                mergeInto(merged, sim->perFunction());
            return merged;
        }(),
        proteinScale);
    auto rnaCounters = scaleCounters(
        [&] {
            std::vector<cachesim::FuncCounters> merged;
            for (const auto &sim : rnaSims)
                mergeInto(merged, sim->perFunction());
            return merged;
        }(),
        rnaScale);

    mergeInto(result.perFunction, proteinCounters);
    mergeInto(result.perFunction, rnaCounters);
    for (const auto &c : result.perFunction)
        result.totals.merge(c);

    // Storage model at paper scale.
    double ioSeconds = 0.0;
    if (proteinPasses > 0.0)
        ioSeconds += modelIoSeconds(
            platform, workspace.config().proteinPaperBytes,
            proteinPasses, cacheBytes, options.preloadDatabases,
            &result.diskBytesRead);
    if (rnaPasses > 0.0)
        ioSeconds += modelIoSeconds(
            platform, workspace.config().rnaPaperBytes, rnaPasses,
            cacheBytes, options.preloadDatabases,
            &result.diskBytesRead);
    result.ioSeconds = ioSeconds;

    // Serial tool startup: profile construction, database open, and
    // result assembly per chain-round (not parallelized by HMMER).
    const double serialSeconds =
        1.2 * (proteinPasses + rnaPasses) *
        (5.6 / platform.cpu.maxClockGhz);

    // Timing: protein and RNA tools run one after the other. The
    // reader functions (addbuf / seebuf / copy_to_iter) execute on
    // HMMER's single master thread and pipeline against the
    // alignment workers.
    auto readerFunc = [](size_t f) {
        return f == wellknown::addbuf() ||
               f == wellknown::seebuf() ||
               f == wellknown::copyToIter();
    };
    auto timingFor = [&](const std::vector<cachesim::FuncCounters>
                             &funcs,
                         double io) {
        cachesim::TimingInputs in;
        for (size_t f = 0; f < funcs.size(); ++f) {
            if (readerFunc(f))
                in.readerCounters.merge(funcs[f]);
            else
                in.counters.merge(funcs[f]);
        }
        in.threads = threads;
        in.ioSeconds = io;
        in.serialSeconds = 0.0;
        in.memLatencyFactor = memLatencyFactor;
        return computeTiming(platform, in);
    };
    const auto proteinTiming = timingFor(
        proteinCounters,
        proteinPasses > 0.0 ? ioSeconds * proteinPasses /
                                  (proteinPasses + rnaPasses)
                            : 0.0);
    const auto rnaTiming = timingFor(
        rnaCounters, rnaPasses > 0.0
                         ? ioSeconds * rnaPasses /
                               (proteinPasses + rnaPasses)
                         : 0.0);

    result.computeSeconds =
        proteinTiming.computeSeconds + rnaTiming.computeSeconds;
    result.seconds =
        proteinTiming.seconds + rnaTiming.seconds + serialSeconds;
    result.timing = proteinTiming.seconds >= rnaTiming.seconds
                        ? proteinTiming
                        : rnaTiming;

    // iostat-style utilization over the phase.
    const double diskTime = result.diskBytesRead /
                            platform.storage.seqReadBandwidth;
    result.storageUtilizationPct =
        result.seconds > 0.0
            ? std::min(100.0, 100.0 * diskTime / result.seconds)
            : 0.0;
    return result;
}

} // namespace afsb::core
