#include "core/memory_estimator.hh"

#include "model/flops.hh"
#include "msa/memory_model.hh"
#include "util/str.hh"
#include "util/units.hh"

namespace afsb::core {

std::string
memVerdictName(MemVerdict verdict)
{
    switch (verdict) {
      case MemVerdict::Safe: return "safe";
      case MemVerdict::NeedsCxl: return "needs-cxl";
      case MemVerdict::NeedsUnifiedMemory:
        return "needs-unified-memory";
      case MemVerdict::WillOom: return "WILL-OOM";
    }
    return "?";
}

bool
MemoryEstimate::runnable() const
{
    for (const auto &line : lines)
        if (line.verdict == MemVerdict::WillOom)
            return false;
    return true;
}

bool
MemoryEstimate::willOom() const
{
    return !runnable();
}

std::string
MemoryEstimate::render() const
{
    std::string out;
    for (const auto &line : lines) {
        out += strformat(
            "%-16s %12s required / %12s available  [%s]  %s\n",
            line.resource.c_str(),
            formatBytes(line.requiredBytes).c_str(),
            formatBytes(line.capacityBytes).c_str(),
            memVerdictName(line.verdict).c_str(),
            line.detail.c_str());
    }
    return out;
}

MemoryEstimate
estimateMemory(const bio::Complex &complex_input,
               const sys::PlatformSpec &platform,
               uint32_t msa_threads, const model::ModelConfig &cfg)
{
    MemoryEstimate estimate;

    // --- Host memory during the MSA phase --------------------------------
    {
        MemEstimateLine line;
        line.resource = "host (MSA)";
        line.requiredBytes =
            msa::msaPhasePeakMemoryBytes(complex_input, msa_threads);
        line.capacityBytes = platform.totalMemoryBytes();

        const size_t rnaLen =
            complex_input.longestChain(bio::MoleculeType::Rna);
        line.detail =
            rnaLen
                ? strformat("dominated by nhmmer on the %zu-nt RNA "
                            "chain",
                            rnaLen)
                : "jackhmmer protein search";

        sys::MemoryModel model(platform.memory);
        switch (model.classify(line.requiredBytes)) {
          case sys::MemFit::FitsDram:
            line.verdict = MemVerdict::Safe;
            break;
          case sys::MemFit::NeedsCxl:
            line.verdict = MemVerdict::NeedsCxl;
            break;
          case sys::MemFit::Oom:
            line.verdict = MemVerdict::WillOom;
            break;
        }
        estimate.lines.push_back(std::move(line));
    }

    // --- GPU memory during inference --------------------------------------
    {
        MemEstimateLine line;
        line.resource = "gpu (inference)";
        const size_t tokens = complex_input.totalResidues();
        line.requiredBytes = model::activationBytes(tokens, cfg) +
                             model::weightBytes(cfg);
        line.capacityBytes = platform.gpu.vramBytes;
        line.detail = strformat("%zu tokens", tokens);
        if (line.requiredBytes <= line.capacityBytes) {
            line.verdict = MemVerdict::Safe;
        } else if (line.requiredBytes <=
                   line.capacityBytes +
                       platform.memory.dramBytes / 2) {
            // AF3's unified-memory option offloads the excess to
            // host DRAM (the paper's 6QNR-on-4080 configuration).
            line.verdict = MemVerdict::NeedsUnifiedMemory;
        } else {
            line.verdict = MemVerdict::WillOom;
        }
        estimate.lines.push_back(std::move(line));
    }
    return estimate;
}

} // namespace afsb::core
