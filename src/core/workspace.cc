#include "core/workspace.hh"

#include "util/units.hh"

namespace afsb::core {

Workspace::Workspace(const WorkspaceConfig &cfg) : cfg_(cfg)
{
    // Collect the MSA chains of every benchmark sample so homologs
    // are planted for each of them.
    const auto samples = bio::makeAllSamples();
    std::vector<bio::Sequence> proteinQueries;
    std::vector<bio::Sequence> rnaQueries;
    for (const auto &sample : samples) {
        for (const bio::Sequence *chain :
             sample.complex.msaChains()) {
            if (chain->type() == bio::MoleculeType::Protein)
                proteinQueries.push_back(*chain);
            else
                rnaQueries.push_back(*chain);
        }
    }

    auto ptrsOf = [](const std::vector<bio::Sequence> &seqs) {
        std::vector<const bio::Sequence *> out;
        out.reserve(seqs.size());
        for (const auto &s : seqs)
            out.push_back(&s);
        return out;
    };

    {
        msa::DbGenConfig dbCfg;
        dbCfg.seed = cfg.seed;
        dbCfg.decoyCount = cfg.proteinDecoys;
        dbCfg.homologsPerQuery = 10;
        dbCfg.fragmentsPerQuery = 8;
        generateDatabase(vfs_, "uniref_scaled.fasta",
                         ptrsOf(proteinQueries),
                         bio::MoleculeType::Protein, dbCfg);
    }
    {
        msa::DbGenConfig dbCfg;
        dbCfg.seed = cfg.seed ^ 0x4444;
        dbCfg.decoyCount = cfg.rnaDecoys;
        dbCfg.decoyMinLen = 120;
        dbCfg.decoyMaxLen = 800;
        dbCfg.homologsPerQuery = 8;
        dbCfg.fragmentsPerQuery = 5;
        generateDatabase(vfs_, "rfam_scaled.fasta",
                         ptrsOf(rnaQueries), bio::MoleculeType::Rna,
                         dbCfg);
    }

    // Parse through a throwaway cache (load-time I/O is modeled
    // per-run instead).
    io::StorageDevice dev;
    io::PageCache cache(4 * GiB, &dev);
    proteinDb_ = msa::SequenceDatabase::load(
        vfs_, cache, "uniref_scaled.fasta",
        bio::MoleculeType::Protein, 0.0);
    proteinDb_.setPaperScaleBytes(cfg.proteinPaperBytes);
    rnaDb_ = msa::SequenceDatabase::load(vfs_, cache,
                                         "rfam_scaled.fasta",
                                         bio::MoleculeType::Rna, 0.0);
    rnaDb_.setPaperScaleBytes(cfg.rnaPaperBytes);
}

const Workspace &
Workspace::shared()
{
    static const Workspace instance;
    return instance;
}

} // namespace afsb::core
