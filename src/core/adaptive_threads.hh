/**
 * @file
 * Adaptive thread-allocation policy (paper Observation 3 /
 * Section VI).
 *
 * "Static threading policies are suboptimal. We recommend adaptive
 * thread allocation based on input complexity and hardware
 * configuration." — AF3's fixed default of 8 threads wastes the
 * small samples (which degrade beyond 4) and is not always best for
 * the large ones. This advisor evaluates the calibrated timing
 * model across candidate thread counts for the given input and
 * platform and picks the fastest.
 */

#ifndef AFSB_CORE_ADAPTIVE_THREADS_HH
#define AFSB_CORE_ADAPTIVE_THREADS_HH

#include <vector>

#include "core/msa_phase.hh"

namespace afsb::core {

/** One evaluated candidate. */
struct ThreadCandidate
{
    uint32_t threads = 1;
    double predictedSeconds = 0.0;
};

/** Advisor output. */
struct ThreadAdvice
{
    uint32_t recommendedThreads = 1;
    double predictedSeconds = 0.0;

    /** AF3's fixed default (8 threads) prediction, for comparison. */
    double defaultSeconds = 0.0;

    /** Improvement of the recommendation over the default. */
    double
    speedupOverDefault() const
    {
        return predictedSeconds > 0.0
                   ? defaultSeconds / predictedSeconds
                   : 0.0;
    }

    std::vector<ThreadCandidate> candidates;
};

/**
 * Recommend an MSA thread count for @p complex_input on
 * @p platform by evaluating the pipeline's MSA phase at each count
 * in @p candidates (default 1, 2, 4, 6, 8).
 */
ThreadAdvice recommendThreads(
    const bio::Complex &complex_input,
    const sys::PlatformSpec &platform, const Workspace &workspace,
    std::vector<uint32_t> candidates = {1, 2, 4, 6, 8});

} // namespace afsb::core

#endif // AFSB_CORE_ADAPTIVE_THREADS_HH
