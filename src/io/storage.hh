/**
 * @file
 * NVMe storage-device model with iostat-style metrics.
 *
 * The paper's storage analysis (Section V-B2c) uses iostat: the
 * Server's 512 GiB of DRAM keeps the databases in page cache (SSD
 * utilization rarely above 20%), while the 64 GiB Desktop streams
 * from NVMe at 100% utilization with 0.1-0.2 ms read latency. This
 * model reproduces those counters: reads accumulate busy time against
 * a sequential-throughput envelope on a simulated clock, and the
 * collector reports utilization, r_await, and read throughput.
 */

#ifndef AFSB_IO_STORAGE_HH
#define AFSB_IO_STORAGE_HH

#include <cstdint>
#include <string>

namespace afsb::io {

/** Static characteristics of a storage device. */
struct StorageSpec
{
    std::string name = "pcie4-nvme";

    /** Sustained sequential read bandwidth (bytes/s). */
    double seqReadBandwidth = 6.8e9;

    /** Per-request base latency (seconds). */
    double baseLatency = 80e-6;

    /** Maximum queue depth before requests serialize further. */
    uint32_t queueDepth = 32;
};

/**
 * Per-read fault decisions for a StorageDevice. The device asks on
 * every read; the default hook never faults. Implementations must
 * be deterministic (seeded) so simulated timelines stay bit-stable.
 */
class StorageFaultHook
{
  public:
    virtual ~StorageFaultHook() = default;

    /** True when the next read fails (media error / timeout). */
    virtual bool readFails() { return false; }

    /** Service-time multiplier for the next read (>= 1.0 for a
     *  latency spike; 1.0 for a healthy device). */
    virtual double latencyFactor() { return 1.0; }
};

/** iostat-like counters over an observation window. */
struct StorageStats
{
    uint64_t readRequests = 0;
    uint64_t bytesRead = 0;
    uint64_t readErrors = 0;    ///< injected read failures
    double busyTime = 0.0;      ///< seconds the device was active
    double windowTime = 0.0;    ///< observation window length
    double totalLatency = 0.0;  ///< sum of per-request latencies

    /** Device utilization in percent (iostat %util), capped at 100. */
    double utilizationPct() const;

    /** Mean read latency in seconds (iostat r_await). */
    double rAwait() const;

    /** Achieved read throughput over the window (bytes/s). */
    double readThroughput() const;
};

/**
 * Simulated NVMe device. The caller owns the clock: each read passes
 * the current simulated time and receives the request latency.
 */
class StorageDevice
{
  public:
    explicit StorageDevice(StorageSpec spec = {});

    const StorageSpec &spec() const { return spec_; }

    /** Outcome of one checked read. */
    struct ReadOutcome
    {
        double latency = 0.0; ///< completion latency in seconds
        bool failed = false;  ///< the read errored (fault hook)
    };

    /**
     * Issue a sequential read of @p bytes at simulated time @p now.
     * @return Request completion latency in seconds. Injected
     *         failures are counted in stats but not reported here;
     *         callers that recover use readChecked().
     */
    double read(uint64_t bytes, double now);

    /**
     * Like read(), but reports injected failures. A failed read
     * still occupies the device for its service time (the drive
     * retries internally before surfacing the error).
     */
    ReadOutcome readChecked(uint64_t bytes, double now);

    /** Install a fault hook (not owned; nullptr restores healthy
     *  behaviour). */
    void setFaultHook(StorageFaultHook *hook) { fault_ = hook; }

    /**
     * Close the observation window at time @p now and return the
     * collected stats. Counters reset; the next window begins at
     * @p now.
     */
    StorageStats collect(double now);

    /** Stats so far without resetting (window ends at @p now). */
    StorageStats peek(double now) const;

  private:
    StorageSpec spec_;
    StorageStats stats_;
    StorageFaultHook *fault_ = nullptr;
    double windowStart_ = 0.0;
    double deviceFreeAt_ = 0.0;  ///< when the device drains its queue
};

} // namespace afsb::io

#endif // AFSB_IO_STORAGE_HH
