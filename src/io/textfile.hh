/**
 * @file
 * Real-filesystem text helpers for report/trace artifacts.
 *
 * Everything simulated goes through io::Vfs; these helpers are for
 * the handful of artifacts that leave the simulation — canonical
 * SLO reports, fault logs, communication traces, bench JSON — and
 * land on the host filesystem for CI to diff and upload.
 */

#ifndef AFSB_IO_TEXTFILE_HH
#define AFSB_IO_TEXTFILE_HH

#include <string>

namespace afsb::io {

/** Write @p text to @p path, replacing it; fatal() on I/O error. */
void writeTextFile(const std::string &path,
                   const std::string &text);

/** Read all of @p path; fatal() when it cannot be opened. */
std::string readTextFile(const std::string &path);

} // namespace afsb::io

#endif // AFSB_IO_TEXTFILE_HH
