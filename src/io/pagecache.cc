#include "io/pagecache.hh"

#include "util/logging.hh"

namespace afsb::io {

PageCache::PageCache(uint64_t capacity_bytes, StorageDevice *device)
    : capacity_(capacity_bytes), device_(device)
{
    panicIf(device == nullptr, "PageCache: null device");
}

void
PageCache::setCapacity(uint64_t capacity_bytes)
{
    capacity_ = capacity_bytes;
    while (resident_ > capacity_ && !lru_.empty()) {
        map_.erase(lru_.back());
        lru_.pop_back();
        resident_ -= kExtentSize;
    }
}

bool
PageCache::touch(const ExtentKey &key)
{
    auto it = map_.find(key);
    if (it == map_.end())
        return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
PageCache::insert(const ExtentKey &key)
{
    if (map_.count(key))
        return;
    while (resident_ + kExtentSize > capacity_ && !lru_.empty()) {
        map_.erase(lru_.back());
        lru_.pop_back();
        resident_ -= kExtentSize;
    }
    if (resident_ + kExtentSize > capacity_)
        return;  // cache smaller than one extent: stay empty
    lru_.push_front(key);
    map_[key] = lru_.begin();
    resident_ += kExtentSize;
}

CachedReadResult
PageCache::read(FileId id, uint64_t offset, uint64_t len, double now)
{
    CachedReadResult result;
    if (len == 0)
        return result;

    const uint64_t first = offset / kExtentSize;
    const uint64_t last = (offset + len - 1) / kExtentSize;

    // Coalesce consecutive missing extents into single device reads,
    // as readahead would.
    uint64_t pendingMiss = 0;
    auto flushMiss = [&] {
        if (pendingMiss == 0)
            return;
        const auto io = device_->readChecked(
            pendingMiss * kExtentSize, now + result.latency);
        result.latency += io.latency;
        result.failed = result.failed || io.failed;
        result.bytesFromDisk += pendingMiss * kExtentSize;
        pendingMiss = 0;
    };

    for (uint64_t e = first; e <= last; ++e) {
        const ExtentKey key{id, e};
        if (touch(key)) {
            flushMiss();
            result.bytesFromCache += kExtentSize;
        } else {
            insert(key);
            ++pendingMiss;
        }
    }
    flushMiss();

    hitBytes_ += result.bytesFromCache;
    missBytes_ += result.bytesFromDisk;

    // DRAM hits are effectively free at this model's resolution; the
    // CPU-side copy cost is modeled separately by copyToIter.
    return result;
}

double
PageCache::warm(FileId id, uint64_t file_size, double now)
{
    double latency = 0.0;
    const uint64_t extents =
        (file_size + kExtentSize - 1) / kExtentSize;
    // Stream in large sequential chunks (64 extents = 16 MiB).
    const uint64_t chunk = 64;
    for (uint64_t e = 0; e < extents; e += chunk) {
        const uint64_t n = std::min(chunk, extents - e);
        uint64_t missing = 0;
        for (uint64_t i = 0; i < n; ++i) {
            const ExtentKey key{id, e + i};
            if (!touch(key)) {
                insert(key);
                ++missing;
            }
        }
        if (missing) {
            latency += device_->read(missing * kExtentSize,
                                     now + latency);
            missBytes_ += missing * kExtentSize;
        }
    }
    return latency;
}

void
PageCache::dropAll()
{
    lru_.clear();
    map_.clear();
    resident_ = 0;
}

double
PageCache::hitRatio() const
{
    const uint64_t total = hitBytes_ + missBytes_;
    if (total == 0)
        return 0.0;
    return static_cast<double>(hitBytes_) /
           static_cast<double>(total);
}

} // namespace afsb::io
