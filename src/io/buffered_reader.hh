/**
 * @file
 * Buffered database reader — the addbuf/seebuf/copy_to_iter path.
 *
 * HMMER's esl_buffer layer refills an internal window (addbuf),
 * peeks ahead for tokenization (seebuf), and the kernel moves bytes
 * from the page cache into user space (copy_to_iter). The paper's
 * function-level profile (Table IV) attributes ~23% of MSA cycles to
 * the buffering pair and finds copy_to_iter dominating cache misses
 * at one thread. This reader reproduces that structure: real byte
 * movement through a real buffer, with each phase attributed to its
 * well-known FuncId on the optional trace sink, and simulated I/O
 * latency from the page-cache / storage models.
 */

#ifndef AFSB_IO_BUFFERED_READER_HH
#define AFSB_IO_BUFFERED_READER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/pagecache.hh"
#include "io/vfs.hh"
#include "util/memtrace.hh"

namespace afsb::io {

/** Counters for one reader's lifetime. */
struct ReaderStats
{
    uint64_t refills = 0;        ///< addbuf invocations
    uint64_t bytesCopied = 0;    ///< through copy_to_iter
    uint64_t bytesFromDisk = 0;  ///< page-cache misses during refills
    uint64_t linesRead = 0;
    uint64_t seeks = 0;          ///< non-sequential repositions
    uint64_t readErrors = 0;     ///< failed refills (injected faults)
    double ioLatency = 0.0;      ///< simulated seconds waiting on I/O

    /** Accumulate another reader's counters. */
    void
    merge(const ReaderStats &other)
    {
        refills += other.refills;
        bytesCopied += other.bytesCopied;
        bytesFromDisk += other.bytesFromDisk;
        linesRead += other.linesRead;
        seeks += other.seeks;
        readErrors += other.readErrors;
        ioLatency += other.ioLatency;
    }
};

/** Sequential line/byte reader over a VFS file. */
class BufferedReader
{
  public:
    /** Internal window size (256 KiB, HMMER-like). */
    static constexpr size_t kBufferSize = 256 * 1024;

    /**
     * @param vfs File store (not owned).
     * @param cache Page cache in front of storage (not owned).
     * @param id File to read.
     * @param sink Optional memory-trace sink for instrumented runs.
     */
    BufferedReader(const Vfs *vfs, PageCache *cache, FileId id,
                   MemTraceSink *sink = nullptr);

    /** True at end of file with an empty buffer. */
    bool eof() const;

    /**
     * True once a refill hit a storage read error (injected via the
     * device's StorageFaultHook). The reader then behaves as if at
     * EOF — readLine()/copyToIter() stop making progress — so the
     * caller can distinguish a clean EOF from a failed stream and
     * retry or surface the error instead of silently truncating.
     */
    bool failed() const { return failed_; }

    /**
     * Read the next line (newline stripped) at simulated time @p now.
     * @return false at end of file.
     */
    bool readLine(std::string &out, double now);

    /**
     * Copy up to @p len raw bytes into @p dst (the copy_to_iter
     * analog). @return bytes copied.
     */
    size_t copyToIter(char *dst, size_t len, double now);

    /** Peek at upcoming bytes without consuming (seebuf analog). */
    std::string_view seebuf(size_t len, double now);

    /**
     * Reposition the consumption cursor to absolute file @p offset.
     * A no-op when the offset is already buffered; otherwise the
     * window is dropped and the next read refills from @p offset.
     * Lets one reader stream priority-reordered chunk sequences
     * (the staged-scan prefetcher) without reopening the file.
     */
    void seek(uint64_t offset);

    /** Next unconsumed absolute file offset. */
    uint64_t
    tell() const
    {
        return fileOff_ - (bufLen_ - bufPos_);
    }

    const ReaderStats &stats() const { return stats_; }

  private:
    /** Refill the window from the page cache (addbuf analog). */
    void addbuf(double now);

    /** Emit an instrumented touch at virtual address @p vaddr. */
    void traceTouch(FuncId func, uint64_t vaddr, size_t len,
                    bool write);

    const Vfs *vfs_;
    PageCache *cache_;
    FileId id_;
    MemTraceSink *sink_;

    std::vector<char> buffer_;
    bool failed_ = false;  ///< a refill hit a device read error
    size_t bufPos_ = 0;    ///< consumption cursor within buffer_
    size_t bufLen_ = 0;    ///< valid bytes in buffer_
    uint64_t fileOff_ = 0; ///< next file offset to fetch
    uint64_t fileSize_;

    /**
     * Deterministic virtual base of buffer_ in the trace address
     * space, salted by file id so concurrent readers stay distinct.
     * Tracing the window's real heap address would leak allocator
     * and ASLR state into the cache simulator and make miss counts
     * vary run to run.
     */
    uint64_t bufVirtBase_;
    uint64_t dstVirt_ = 0; ///< cursor for copy-destination stream
    ReaderStats stats_;
};

} // namespace afsb::io

#endif // AFSB_IO_BUFFERED_READER_HH
