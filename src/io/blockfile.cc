#include "io/blockfile.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace afsb::io {

namespace {

/** Greedy-matcher tuning: LZ4-like byte-oriented format. */
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 65535;
constexpr size_t kHashBits = 13;

uint32_t
read32(const char *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

size_t
hash32(uint32_t v)
{
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** Append @p v in the 255-saturating extension-byte encoding. */
void
putExtended(std::string &out, size_t v)
{
    while (v >= 255) {
        out.push_back(static_cast<char>(0xff));
        v -= 255;
    }
    out.push_back(static_cast<char>(v));
}

size_t
takeExtended(std::string_view comp, size_t &ip)
{
    size_t v = 0;
    while (true) {
        if (ip >= comp.size())
            fatal("blockfile: truncated extension");
        const uint8_t b = static_cast<uint8_t>(comp[ip++]);
        v += b;
        if (b != 0xff)
            return v;
    }
}

/** Emit one token: literals [anchor, lit_end), then an optional
 *  (distance, length) back-reference. */
void
emitToken(std::string &out, std::string_view raw, size_t anchor,
          size_t lit_end, size_t dist, size_t match_len)
{
    const size_t litLen = lit_end - anchor;
    const size_t mlToken =
        match_len ? match_len - kMinMatch : 0;
    out.push_back(static_cast<char>(
        (std::min<size_t>(litLen, 15) << 4) |
        std::min<size_t>(mlToken, 15)));
    if (litLen >= 15)
        putExtended(out, litLen - 15);
    out.append(raw.data() + anchor, litLen);
    if (!match_len)
        return;
    out.push_back(static_cast<char>(dist & 0xff));
    out.push_back(static_cast<char>((dist >> 8) & 0xff));
    if (mlToken >= 15)
        putExtended(out, mlToken - 15);
}

} // namespace

std::string
compressBlock(std::string_view raw)
{
    std::string out;
    const size_t n = raw.size();
    if (n == 0)
        return out;
    out.reserve(n / 2 + 16);

    // Last seen position of each 4-byte prefix hash; single-probe
    // greedy matching (no chains) keeps the encoder simple and the
    // decode side — the hot path in a streaming scan — trivial.
    std::vector<uint32_t> table(size_t{1} << kHashBits, UINT32_MAX);

    size_t pos = 0;
    size_t anchor = 0;
    while (pos + kMinMatch <= n) {
        const uint32_t word = read32(raw.data() + pos);
        const size_t h = hash32(word);
        const uint32_t cand = table[h];
        table[h] = static_cast<uint32_t>(pos);
        if (cand == UINT32_MAX || pos - cand > kMaxDistance ||
            read32(raw.data() + cand) != word) {
            ++pos;
            continue;
        }
        size_t len = kMinMatch;
        while (pos + len < n && raw[cand + len] == raw[pos + len])
            ++len;
        emitToken(out, raw, anchor, pos, pos - cand, len);
        pos += len;
        anchor = pos;
    }
    if (anchor < n)
        emitToken(out, raw, anchor, n, 0, 0);
    return out;
}

std::string
decompressBlock(std::string_view comp, size_t raw_len)
{
    std::string out;
    out.reserve(raw_len);
    size_t ip = 0;
    while (out.size() < raw_len) {
        if (ip >= comp.size())
            fatal("blockfile: truncated block");
        const uint8_t control = static_cast<uint8_t>(comp[ip++]);
        size_t litLen = control >> 4;
        if (litLen == 15)
            litLen += takeExtended(comp, ip);
        if (ip + litLen > comp.size() ||
            out.size() + litLen > raw_len)
            fatal("blockfile: literal overrun");
        out.append(comp.data() + ip, litLen);
        ip += litLen;
        if (out.size() == raw_len)
            break;

        if (ip + 2 > comp.size())
            fatal("blockfile: truncated match");
        const size_t dist =
            static_cast<uint8_t>(comp[ip]) |
            (static_cast<size_t>(static_cast<uint8_t>(comp[ip + 1]))
             << 8);
        ip += 2;
        size_t matchLen = control & 0x0f;
        if (matchLen == 15)
            matchLen += takeExtended(comp, ip);
        matchLen += kMinMatch;
        if (dist == 0 || dist > out.size() ||
            out.size() + matchLen > raw_len)
            fatal("blockfile: match overrun");
        // Byte-by-byte so overlapping references (dist < len, the
        // run-length case) replay correctly.
        size_t src = out.size() - dist;
        for (size_t i = 0; i < matchLen; ++i)
            out.push_back(out[src + i]);
    }
    if (ip != comp.size())
        fatal("blockfile: trailing garbage");
    return out;
}

namespace {

void
putU32(std::string &out, uint32_t v)
{
    for (int s = 0; s < 32; s += 8)
        out.push_back(static_cast<char>((v >> s) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int s = 0; s < 64; s += 8)
        out.push_back(static_cast<char>((v >> s) & 0xff));
}

uint32_t
getU32(const char *p)
{
    uint32_t v = 0;
    for (int s = 0; s < 32; s += 8)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(*p++)) << s;
    return v;
}

uint64_t
getU64(const char *p)
{
    uint64_t v = 0;
    for (int s = 0; s < 64; s += 8)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(*p++)) << s;
    return v;
}

} // namespace

std::string
packBlockFile(std::string_view raw, size_t block_size,
              BlockFileStats *stats)
{
    panicIf(block_size == 0, "packBlockFile: zero block size");
    const uint64_t n = raw.size();
    const uint64_t blocks =
        block_size ? (n + block_size - 1) / block_size : 0;

    std::string out;
    putU32(out, kBlockFileMagic);
    putU32(out, kBlockFileVersion);
    putU64(out, n);
    putU64(out, block_size);
    putU64(out, blocks);

    std::vector<std::string> comp;
    comp.reserve(blocks);
    for (uint64_t b = 0; b < blocks; ++b) {
        const uint64_t off = b * block_size;
        const uint64_t len = std::min<uint64_t>(block_size, n - off);
        comp.push_back(compressBlock(raw.substr(off, len)));
        putU64(out, comp.back().size());
    }
    for (const auto &c : comp)
        out += c;

    if (stats) {
        stats->rawBytes = n;
        stats->compressedBytes = out.size();
    }
    return out;
}

FileId
writeBlockFile(Vfs &vfs, const std::string &name,
               std::string_view raw, size_t block_size,
               BlockFileStats *stats)
{
    return vfs.createFile(name,
                          packBlockFile(raw, block_size, stats));
}

BlockFileReader::BlockFileReader(const Vfs *vfs, PageCache *cache,
                                 FileId id, uint64_t decode_budget,
                                 double now)
    : reader_(vfs, cache, id), decodeBudget_(decode_budget)
{
    char header[32];
    if (reader_.copyToIter(header, sizeof(header), now) !=
        sizeof(header))
        fatal("blockfile: short header");
    if (getU32(header) != kBlockFileMagic)
        fatal("blockfile: bad magic (not an AFBC container)");
    if (getU32(header + 4) != kBlockFileVersion)
        fatal("blockfile: unsupported version");
    rawSize_ = getU64(header + 8);
    blockSize_ = static_cast<size_t>(getU64(header + 16));
    const uint64_t blocks = getU64(header + 24);
    if (blockSize_ == 0 && rawSize_ != 0)
        fatal("blockfile: zero block size");
    if (blockSize_ &&
        blocks != (rawSize_ + blockSize_ - 1) / blockSize_)
        fatal("blockfile: index/size mismatch");

    blockComp_.resize(blocks);
    blockOffset_.resize(blocks);
    uint64_t off = sizeof(header) + 8 * blocks;
    for (uint64_t b = 0; b < blocks; ++b) {
        char entry[8];
        if (reader_.copyToIter(entry, sizeof(entry), now) !=
            sizeof(entry))
            fatal("blockfile: truncated index");
        blockComp_[b] = getU64(entry);
        blockOffset_[b] = off;
        off += blockComp_[b];
    }
    noteResidency();
}

void
BlockFileReader::noteResidency()
{
    stats_.peakResidentBytes =
        std::max(stats_.peakResidentBytes,
                 decodedBytes_ + BufferedReader::kBufferSize);
}

const std::string &
BlockFileReader::block(size_t index, double now)
{
    panicIf(index >= blockComp_.size(), "blockfile: bad block index");
    const auto it = decoded_.find(index);
    if (it != decoded_.end()) {
        ++stats_.blockHits;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return it->second.bytes;
    }

    std::string comp(static_cast<size_t>(blockComp_[index]), '\0');
    reader_.seek(blockOffset_[index]);
    if (reader_.copyToIter(comp.data(), comp.size(), now) !=
        comp.size())
        fatal("blockfile: short block read");
    const size_t rawLen = static_cast<size_t>(std::min<uint64_t>(
        blockSize_, rawSize_ - uint64_t{index} * blockSize_));
    std::string bytes = decompressBlock(comp, rawLen);
    ++stats_.blocksDecoded;

    decodedBytes_ += bytes.size();
    lru_.push_front(index);
    auto [ins, fresh] = decoded_.emplace(
        index, CachedBlock{std::move(bytes), lru_.begin()});
    panicIf(!fresh, "blockfile: duplicate decode");
    noteResidency();

    // Evict past the budget, but never the block just decoded.
    while (decodedBytes_ > decodeBudget_ && decoded_.size() > 1) {
        const size_t victim = lru_.back();
        lru_.pop_back();
        const auto vit = decoded_.find(victim);
        decodedBytes_ -= vit->second.bytes.size();
        decoded_.erase(vit);
    }
    return ins->second.bytes;
}

size_t
BlockFileReader::readAt(uint64_t offset, char *dst, size_t len,
                        double now)
{
    if (offset >= rawSize_)
        return 0;
    len = static_cast<size_t>(
        std::min<uint64_t>(len, rawSize_ - offset));
    size_t copied = 0;
    while (copied < len) {
        const uint64_t at = offset + copied;
        const size_t b = static_cast<size_t>(at / blockSize_);
        const size_t within = static_cast<size_t>(at % blockSize_);
        const std::string &bytes = block(b, now);
        const size_t take =
            std::min(len - copied, bytes.size() - within);
        std::memcpy(dst + copied, bytes.data() + within, take);
        copied += take;
    }
    stats_.rawBytesRead += copied;
    return copied;
}

bool
BlockFileReader::readLine(std::string &out, double now)
{
    if (cursor_ >= rawSize_)
        return false;
    out.clear();
    while (cursor_ < rawSize_) {
        const size_t b = static_cast<size_t>(cursor_ / blockSize_);
        const size_t within =
            static_cast<size_t>(cursor_ % blockSize_);
        const std::string &bytes = block(b, now);
        const size_t end = bytes.size();
        const char *data = bytes.data();
        size_t i = within;
        while (i < end && data[i] != '\n')
            ++i;
        out.append(data + within, i - within);
        stats_.rawBytesRead += i - within;
        cursor_ += i - within;
        if (i < end) {
            ++cursor_;  // consume the newline
            ++stats_.rawBytesRead;
            return true;
        }
    }
    return true;  // final unterminated line
}

} // namespace afsb::io
