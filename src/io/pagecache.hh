/**
 * @file
 * OS page-cache model over the virtual file store.
 *
 * Determines whether database reads hit DRAM or go to the storage
 * device — the mechanism behind the paper's Server-vs-Desktop I/O
 * contrast: with 512 GiB the databases stay resident ("minimal disk
 * activity"), with 64 GiB they cannot ("primary NVMe SSD reached
 * 100% utilization").
 *
 * Cached state is tracked in fixed-size extents with LRU
 * replacement. Capacity is the DRAM available for page cache (total
 * memory minus the anonymous footprint of the running process).
 */

#ifndef AFSB_IO_PAGECACHE_HH
#define AFSB_IO_PAGECACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "io/storage.hh"
#include "io/vfs.hh"

namespace afsb::io {

/** Outcome of a cached read. */
struct CachedReadResult
{
    uint64_t bytesFromCache = 0;
    uint64_t bytesFromDisk = 0;
    double latency = 0.0;  ///< total simulated latency in seconds
    bool failed = false;   ///< a device read errored (fault hook)
};

/** LRU page cache in front of a StorageDevice. */
class PageCache
{
  public:
    /** Cache-extent granularity (bytes). */
    static constexpr uint64_t kExtentSize = 256 * 1024;

    /**
     * @param capacity_bytes DRAM available for caching.
     * @param device Backing storage (not owned).
     */
    PageCache(uint64_t capacity_bytes, StorageDevice *device);

    /** Adjust capacity (evicts immediately if shrinking). */
    void setCapacity(uint64_t capacity_bytes);

    uint64_t capacity() const { return capacity_; }

    /** Bytes currently cached. */
    uint64_t residentBytes() const { return resident_; }

    /**
     * Read [offset, offset+len) of file @p id at simulated time
     * @p now, faulting missing extents in from the device.
     */
    CachedReadResult read(FileId id, uint64_t offset, uint64_t len,
                          double now);

    /**
     * Preload an entire file (the Section VI "Preloading Databases"
     * optimization). Sequential reads; returns total latency.
     */
    double warm(FileId id, uint64_t file_size, double now);

    /** Drop all cached extents (e.g. after a memory-pressure event). */
    void dropAll();

    /** Cache hit ratio by bytes since construction. */
    double hitRatio() const;

  private:
    struct ExtentKey
    {
        FileId file;
        uint64_t index;
        bool operator==(const ExtentKey &) const = default;
    };

    struct ExtentKeyHash
    {
        size_t operator()(const ExtentKey &k) const
        {
            return std::hash<uint64_t>()(
                (static_cast<uint64_t>(k.file) << 40) ^ k.index);
        }
    };

    /** True when the extent is resident; updates LRU order. */
    bool touch(const ExtentKey &key);

    /** Insert an extent, evicting LRU extents as needed. */
    void insert(const ExtentKey &key);

    uint64_t capacity_;
    StorageDevice *device_;
    uint64_t resident_ = 0;
    uint64_t hitBytes_ = 0;
    uint64_t missBytes_ = 0;

    std::list<ExtentKey> lru_;  ///< front = most recent
    std::unordered_map<ExtentKey, std::list<ExtentKey>::iterator,
                       ExtentKeyHash>
        map_;
};

} // namespace afsb::io

#endif // AFSB_IO_PAGECACHE_HH
