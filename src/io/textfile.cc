#include "io/textfile.hh"

#include <cstdio>

#include "util/logging.hh"

namespace afsb::io {

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '" + path + "' for writing");
    const size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok)
        fatal("short write to '" + path + "'");
}

std::string
readTextFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '" + path + "' for reading");
    std::string out;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, got);
    // fread returning 0 means EOF *or* error; a truncated read
    // silently handed to a parser shows up as a confusing format
    // error far from the cause, so check here.
    const bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        fatal("read error on '" + path + "'");
    return out;
}

} // namespace afsb::io
