#include "io/textfile.hh"

#include <cstdio>

#include "util/logging.hh"

namespace afsb::io {

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '" + path + "' for writing");
    const size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok)
        fatal("short write to '" + path + "'");
}

std::string
readTextFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '" + path + "' for reading");
    std::string out;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, got);
    std::fclose(f);
    return out;
}

} // namespace afsb::io
