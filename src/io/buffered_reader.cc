#include "io/buffered_reader.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace afsb::io {

namespace {

/** One 1 MiB virtual window per file id for the refill buffer. */
constexpr uint64_t kWindowBase = 0x7f30'0000'0000ull;

/** Copy destinations (fresh caller-side storage) stream through a
 *  1 GiB virtual window per file id. */
constexpr uint64_t kDstBase = 0x7f80'0000'0000ull;

} // namespace

BufferedReader::BufferedReader(const Vfs *vfs, PageCache *cache,
                               FileId id, MemTraceSink *sink)
    : vfs_(vfs), cache_(cache), id_(id), sink_(sink),
      buffer_(kBufferSize),
      bufVirtBase_(kWindowBase +
                   static_cast<uint64_t>(id) * (1ull << 20))
{
    panicIf(!vfs || !cache, "BufferedReader: null vfs/cache");
    fileSize_ = vfs_->size(id_);
}

bool
BufferedReader::eof() const
{
    return bufPos_ >= bufLen_ && fileOff_ >= fileSize_;
}

void
BufferedReader::traceTouch(FuncId func, uint64_t vaddr, size_t len,
                           bool write)
{
    if (!sink_ || len == 0)
        return;
    // Emit one reference per 64-byte cache line touched, matching
    // the granularity at which the hardware would see the copy.
    for (uint64_t off = 0; off < len; off += 64)
        sink_->access({vaddr + off, 64, write, func});
}

void
BufferedReader::addbuf(double now)
{
    // Slide any unconsumed tail to the front (lookahead retention).
    const size_t tail = bufLen_ - bufPos_;
    if (tail > 0 && bufPos_ > 0)
        std::memmove(buffer_.data(), buffer_.data() + bufPos_, tail);
    bufPos_ = 0;
    bufLen_ = tail;

    const size_t want = buffer_.size() - bufLen_;
    if (want == 0 || fileOff_ >= fileSize_ || failed_)
        return;
    const auto take = static_cast<size_t>(
        std::min<uint64_t>(want, fileSize_ - fileOff_));

    // Simulated I/O: page cache decides DRAM vs device.
    const auto io = cache_->read(id_, fileOff_, take, now);
    stats_.ioLatency += io.latency;
    stats_.bytesFromDisk += io.bytesFromDisk;
    if (io.failed) {
        // The device surfaced a read error after its retries: the
        // window gets no new bytes and the stream is poisoned.
        failed_ = true;
        ++stats_.readErrors;
        return;
    }

    // Real byte movement (phantom files deliver zeros).
    const size_t got = vfs_->read(id_, fileOff_,
                                  buffer_.data() + bufLen_, take);
    if (got < take)
        std::memset(buffer_.data() + bufLen_ + got, 0, take - got);

    traceTouch(wellknown::copyToIter(), bufVirtBase_ + bufLen_,
               take, true);
    if (sink_)
        sink_->instructions(wellknown::addbuf(),
                            static_cast<uint64_t>(take) / 8);

    bufLen_ += take;
    fileOff_ += take;
    ++stats_.refills;
}

bool
BufferedReader::readLine(std::string &out, double now)
{
    out.clear();
    for (;;) {
        if (bufPos_ >= bufLen_) {
            addbuf(now);
            if (bufPos_ >= bufLen_) {
                // True EOF: report the final unterminated line.
                if (!out.empty()) {
                    ++stats_.linesRead;
                    return true;
                }
                return false;
            }
        }
        const char *start = buffer_.data() + bufPos_;
        const char *nl = static_cast<const char *>(
            std::memchr(start, '\n', bufLen_ - bufPos_));
        const size_t n =
            nl ? static_cast<size_t>(nl - start) : bufLen_ - bufPos_;

        traceTouch(wellknown::seebuf(), bufVirtBase_ + bufPos_, n,
                   false);
        if (sink_)
            sink_->instructions(wellknown::seebuf(),
                                static_cast<uint64_t>(n) / 16 + 1);

        out.append(start, n);
        bufPos_ += n + (nl ? 1 : 0);
        if (nl) {
            ++stats_.linesRead;
            return true;
        }
        // Line spans the window boundary: refill and continue.
    }
}

size_t
BufferedReader::copyToIter(char *dst, size_t len, double now)
{
    size_t copied = 0;
    while (copied < len) {
        if (bufPos_ >= bufLen_) {
            addbuf(now);
            if (bufPos_ >= bufLen_)
                break;
        }
        const size_t n = std::min(len - copied, bufLen_ - bufPos_);
        std::memcpy(dst + copied, buffer_.data() + bufPos_, n);
        // Destinations are fresh caller-side storage; model them as
        // an advancing stream (compulsory misses, touched once).
        traceTouch(wellknown::copyToIter(),
                   kDstBase +
                       static_cast<uint64_t>(id_) * (1ull << 30) +
                       dstVirt_,
                   n, true);
        dstVirt_ += n;
        bufPos_ += n;
        copied += n;
    }
    stats_.bytesCopied += copied;
    return copied;
}

void
BufferedReader::seek(uint64_t offset)
{
    const uint64_t winStart = fileOff_ - bufLen_;
    if (offset >= winStart && offset <= fileOff_) {
        // Reposition inside (or to the end of) the buffered window:
        // just move the cursor.
        bufPos_ = static_cast<size_t>(offset - winStart);
        return;
    }
    ++stats_.seeks;
    bufPos_ = 0;
    bufLen_ = 0;
    fileOff_ = std::min<uint64_t>(offset, fileSize_);
}

std::string_view
BufferedReader::seebuf(size_t len, double now)
{
    if (bufLen_ - bufPos_ < len)
        addbuf(now);
    const size_t n = std::min(len, bufLen_ - bufPos_);
    traceTouch(wellknown::seebuf(), bufVirtBase_ + bufPos_, n,
               false);
    return {buffer_.data() + bufPos_, n};
}

} // namespace afsb::io
