#include "io/vfs.hh"

#include <cstring>

#include "util/logging.hh"

namespace afsb::io {

FileId
Vfs::createFile(const std::string &name, std::string content)
{
    File f;
    f.name = name;
    f.size = content.size();
    f.content = std::move(content);
    f.phantom = false;

    auto it = byName_.find(name);
    if (it != byName_.end()) {
        files_[it->second] = std::move(f);
        return it->second;
    }
    files_.push_back(std::move(f));
    const auto id = static_cast<FileId>(files_.size() - 1);
    byName_[name] = id;
    return id;
}

FileId
Vfs::createPhantom(const std::string &name, uint64_t size)
{
    File f;
    f.name = name;
    f.size = size;
    f.phantom = true;

    auto it = byName_.find(name);
    if (it != byName_.end()) {
        files_[it->second] = std::move(f);
        return it->second;
    }
    files_.push_back(std::move(f));
    const auto id = static_cast<FileId>(files_.size() - 1);
    byName_[name] = id;
    return id;
}

std::optional<FileId>
Vfs::open(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        return std::nullopt;
    return it->second;
}

bool
Vfs::exists(const std::string &name) const
{
    return byName_.count(name) > 0;
}

const Vfs::File &
Vfs::file(FileId id) const
{
    panicIf(id >= files_.size(), "Vfs: bad file id");
    return files_[id];
}

uint64_t
Vfs::size(FileId id) const
{
    return file(id).size;
}

const std::string &
Vfs::name(FileId id) const
{
    return file(id).name;
}

bool
Vfs::isPhantom(FileId id) const
{
    return file(id).phantom;
}

size_t
Vfs::read(FileId id, uint64_t offset, char *dst, size_t len) const
{
    const File &f = file(id);
    if (f.phantom || offset >= f.size)
        return 0;
    const size_t avail = static_cast<size_t>(f.size - offset);
    const size_t n = std::min(len, avail);
    std::memcpy(dst, f.content.data() + offset, n);
    return n;
}

uint64_t
Vfs::totalBytes() const
{
    uint64_t total = 0;
    for (const auto &f : files_)
        total += f.size;
    return total;
}

} // namespace afsb::io
