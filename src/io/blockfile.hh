/**
 * @file
 * Block-compressed file container ("AFBC") for paper-scale
 * databases.
 *
 * The real UniRef/Rfam collections ship block-compressed; AF3's MSA
 * stage decompresses them on the fly rather than materializing tens
 * of GiB of FASTA in RAM. This container reproduces that shape: the
 * raw stream is cut into fixed-size blocks, each independently
 * compressed with a small self-contained LZ codec, behind an offset
 * index so any logical byte range is reachable by decoding only the
 * blocks that cover it.
 *
 * BlockFileReader streams the compressed bytes through the existing
 * BufferedReader / page-cache plumbing (so compressed reads are
 * billed like every other I/O in the simulator) and keeps decoded
 * blocks in a bounded LRU — peak residency is the decode budget plus
 * one reader window, independent of the collection's footprint.
 */

#ifndef AFSB_IO_BLOCKFILE_HH
#define AFSB_IO_BLOCKFILE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/buffered_reader.hh"
#include "io/pagecache.hh"
#include "io/vfs.hh"

namespace afsb::io {

/** Container magic ("AFBC") + format version. */
constexpr uint32_t kBlockFileMagic = 0x43424641u; // "AFBC" LE
constexpr uint32_t kBlockFileVersion = 1;

/** Default uncompressed bytes per block (64 KiB). */
constexpr size_t kBlockFileBlockSize = 64 * 1024;

/**
 * LZ-compress @p raw (greedy byte-oriented matcher, 64 KiB window).
 * Incompressible input degrades to ~ (1 + n/255) overhead bytes,
 * never fails. decompressBlock inverts it exactly.
 */
std::string compressBlock(std::string_view raw);

/**
 * Invert compressBlock. @p raw_len is the expected decoded size
 * (from the container index); fatal() on a corrupt stream.
 */
std::string decompressBlock(std::string_view comp, size_t raw_len);

/** Compression accounting for one container. */
struct BlockFileStats
{
    uint64_t rawBytes = 0;
    uint64_t compressedBytes = 0;  ///< container total, index included

    double
    ratio() const
    {
        return compressedBytes
                   ? static_cast<double>(rawBytes) /
                         static_cast<double>(compressedBytes)
                   : 1.0;
    }
};

/**
 * Serialize @p raw into AFBC container bytes: header, per-block
 * compressed-length index, then the compressed blocks.
 */
std::string packBlockFile(std::string_view raw,
                          size_t block_size = kBlockFileBlockSize,
                          BlockFileStats *stats = nullptr);

/**
 * Compress @p raw and materialize it in @p vfs under @p name.
 * @return The created file's id.
 */
FileId writeBlockFile(Vfs &vfs, const std::string &name,
                      std::string_view raw,
                      size_t block_size = kBlockFileBlockSize,
                      BlockFileStats *stats = nullptr);

/**
 * Random/sequential access over the *logical* (uncompressed) stream
 * of an AFBC file, decoding blocks on demand.
 */
class BlockFileReader
{
  public:
    /** Decode-cache accounting. */
    struct Stats
    {
        uint64_t blocksDecoded = 0;   ///< decode-cache misses
        uint64_t blockHits = 0;       ///< served from the LRU
        uint64_t rawBytesRead = 0;    ///< logical bytes delivered
        uint64_t peakResidentBytes = 0; ///< decode LRU + reader window
    };

    /**
     * Parse the header and index of @p id (fatal on a malformed
     * container) at simulated time @p now.
     * @param decode_budget Max bytes of decoded blocks kept resident
     *        (at least one block is always retained).
     */
    BlockFileReader(const Vfs *vfs, PageCache *cache, FileId id,
                    uint64_t decode_budget, double now = 0.0);

    /** Logical (uncompressed) stream size. */
    uint64_t rawSize() const { return rawSize_; }

    size_t blockCount() const { return blockComp_.size(); }
    size_t blockSize() const { return blockSize_; }

    /**
     * Copy [offset, offset+len) of the logical stream into @p dst at
     * simulated time @p now. @return bytes copied (short at EOF).
     */
    size_t readAt(uint64_t offset, char *dst, size_t len, double now);

    /**
     * Read the next logical line (newline stripped) from the
     * sequential cursor. @return false at end of stream.
     */
    bool readLine(std::string &out, double now);

    /** Reposition the sequential line cursor. */
    void seekLogical(uint64_t offset) { cursor_ = offset; }

    /** Next unconsumed logical offset of the line cursor. */
    uint64_t tellLogical() const { return cursor_; }

    const Stats &stats() const { return stats_; }

    /** Compressed-side reader counters (refills, disk bytes, I/O). */
    const ReaderStats &readerStats() const { return reader_.stats(); }

  private:
    /** Decoded bytes of block @p index, via the LRU. */
    const std::string &block(size_t index, double now);

    void noteResidency();

    BufferedReader reader_;
    uint64_t rawSize_ = 0;
    size_t blockSize_ = 0;
    std::vector<uint64_t> blockComp_;   ///< compressed length per block
    std::vector<uint64_t> blockOffset_; ///< file offset per block

    uint64_t decodeBudget_;
    uint64_t decodedBytes_ = 0;
    std::list<size_t> lru_;  ///< front = most recent block index
    struct CachedBlock
    {
        std::string bytes;
        std::list<size_t>::iterator lruIt;
    };
    std::unordered_map<size_t, CachedBlock> decoded_;

    uint64_t cursor_ = 0;  ///< sequential line-reader position
    Stats stats_;
};

} // namespace afsb::io

#endif // AFSB_IO_BLOCKFILE_HH
