/**
 * @file
 * Virtual file store backing the synthetic sequence databases.
 *
 * Two kinds of file coexist:
 *  - materialized files carry real bytes (scaled-down FASTA
 *    databases actually parsed by the MSA engine), and
 *  - phantom files carry only a size (the paper-scale databases,
 *    e.g. the 89 GiB RNA collection, which exist purely for the
 *    page-cache / storage capacity model).
 */

#ifndef AFSB_IO_VFS_HH
#define AFSB_IO_VFS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace afsb::io {

/** Opaque handle to a file in the store. */
using FileId = uint32_t;

/** In-memory file system for simulated storage. */
class Vfs
{
  public:
    /** Create a materialized file; replaces an existing name. */
    FileId createFile(const std::string &name, std::string content);

    /**
     * Create a phantom file of @p size bytes with no contents.
     * Reads of phantom files yield zero bytes but full timing.
     */
    FileId createPhantom(const std::string &name, uint64_t size);

    /**
     * Look up a file id; empty when absent. A missing file is a
     * recoverable condition (callers decide whether it is fatal),
     * so injected open failures propagate instead of aborting the
     * whole simulation.
     */
    std::optional<FileId> open(const std::string &name) const;

    /** True when @p name exists. */
    bool exists(const std::string &name) const;

    /** File size in bytes. */
    uint64_t size(FileId id) const;

    /** File name. */
    const std::string &name(FileId id) const;

    /** True for phantom (size-only) files. */
    bool isPhantom(FileId id) const;

    /**
     * Copy up to @p len bytes at @p offset into @p dst.
     * @return bytes copied (0 for phantom files; dst untouched).
     */
    size_t read(FileId id, uint64_t offset, char *dst,
                size_t len) const;

    /** Total bytes across all files (phantom sizes included). */
    uint64_t totalBytes() const;

    /** Number of files. */
    size_t fileCount() const { return files_.size(); }

  private:
    struct File
    {
        std::string name;
        std::string content;
        uint64_t size = 0;
        bool phantom = false;
    };

    const File &file(FileId id) const;

    std::vector<File> files_;
    std::map<std::string, FileId> byName_;
};

} // namespace afsb::io

#endif // AFSB_IO_VFS_HH
