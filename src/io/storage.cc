#include "io/storage.hh"

#include <algorithm>

namespace afsb::io {

double
StorageStats::utilizationPct() const
{
    if (windowTime <= 0.0)
        return 0.0;
    return std::min(100.0, 100.0 * busyTime / windowTime);
}

double
StorageStats::rAwait() const
{
    if (readRequests == 0)
        return 0.0;
    return totalLatency / static_cast<double>(readRequests);
}

double
StorageStats::readThroughput() const
{
    if (windowTime <= 0.0)
        return 0.0;
    return static_cast<double>(bytesRead) / windowTime;
}

StorageDevice::StorageDevice(StorageSpec spec)
    : spec_(std::move(spec))
{}

double
StorageDevice::read(uint64_t bytes, double now)
{
    return readChecked(bytes, now).latency;
}

StorageDevice::ReadOutcome
StorageDevice::readChecked(uint64_t bytes, double now)
{
    const double factor = fault_ ? fault_->latencyFactor() : 1.0;
    const double service = factor * static_cast<double>(bytes) /
                           spec_.seqReadBandwidth;

    // The device may still be draining earlier requests; queueing
    // delay is the gap between now and when it frees up, bounded by
    // the queue depth (beyond that the submitter would block, which
    // the caller models as wall time anyway).
    const double queueWait = std::max(0.0, deviceFreeAt_ - now);
    const double start = now + queueWait;
    deviceFreeAt_ = start + service;

    const double latency = spec_.baseLatency + queueWait + service;

    ReadOutcome out;
    out.latency = latency;
    out.failed = fault_ && fault_->readFails();

    ++stats_.readRequests;
    stats_.bytesRead += bytes;
    stats_.busyTime += service;
    stats_.totalLatency += latency;
    if (out.failed)
        ++stats_.readErrors;
    return out;
}

StorageStats
StorageDevice::collect(double now)
{
    StorageStats out = peek(now);
    stats_ = StorageStats{};
    windowStart_ = now;
    return out;
}

StorageStats
StorageDevice::peek(double now) const
{
    StorageStats out = stats_;
    out.windowTime = std::max(0.0, now - windowStart_);
    return out;
}

} // namespace afsb::io
