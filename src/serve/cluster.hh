/**
 * @file
 * Discrete-event simulation of an end-to-end AF3 serving cluster.
 *
 * The ParaFold split: the CPU-bound MSA phase and the GPU-bound
 * inference phase run on independent worker pools connected by a
 * queue, so neither resource idles while the other is the
 * bottleneck. N MSA workers each run the repo's real MSA engine
 * (memoized per distinct sample — the phase is deterministic);
 * M GPU workers are long-lived processes with persistent per-worker
 * XLA caches (Section VI persistent model state), paying GPU init
 * once and XLA compilation once per shape bucket. In front sits
 * cluster-wide admission control (bounded in-system population,
 * shed beyond) and the content-addressed MSA result cache
 * (serve::MsaResultCache), which lets repeated queries skip the MSA
 * stage entirely.
 *
 * The simulation advances a virtual clock over arrival/completion
 * events; with a fixed workload seed the outcome is bit-identical
 * across runs.
 */

#ifndef AFSB_SERVE_CLUSTER_HH
#define AFSB_SERVE_CLUSTER_HH

#include <map>
#include <vector>

#include "core/msa_phase.hh"
#include "serve/msa_cache.hh"
#include "serve/scheduler.hh"
#include "serve/workload.hh"

namespace afsb::serve {

/** Serving-cluster configuration. */
struct ClusterConfig
{
    /** CPU workers running the MSA phase. */
    uint32_t msaWorkers = 4;

    /** GPU workers running inference (persistent processes). */
    uint32_t gpuWorkers = 2;

    /** Max requests in the system (queued + in service); arrivals
     *  beyond are shed. */
    size_t admissionCapacity = 64;

    /** Dispatch ordering for both stage queues. */
    SchedPolicy policy = SchedPolicy::Fifo;

    /** MSA result cache budget; 0 disables the cache. */
    uint64_t msaCacheBudgetBytes = 512ull << 20;

    /** CPU threads each MSA worker uses (AF3 default 8). */
    uint32_t msaThreadsPerWorker = 8;

    /** Host threads per GPU worker process. */
    uint32_t inferenceThreads = 1;

    /** Allow unified-memory spill for over-VRAM inference. */
    bool unifiedMemory = true;

    /**
     * MSA engine options per worker (threads overridden by
     * msaThreadsPerWorker). Default stride 16 keeps the one-off
     * per-sample characterization runs fast.
     */
    core::MsaPhaseOptions msaOptions = makeDefaultMsaOptions();

    static core::MsaPhaseOptions
    makeDefaultMsaOptions()
    {
        core::MsaPhaseOptions o;
        o.traceStride = 16;
        return o;
    }
};

/** Aggregate outcome of one cluster simulation. */
struct ClusterResult
{
    /** Per-request traces, in arrival order (shed included). */
    std::vector<RequestRecord> records;

    double makespanSeconds = 0.0; ///< last event on the clock

    uint64_t offered = 0;   ///< arrivals
    uint64_t completed = 0; ///< served through both stages
    uint64_t shed = 0;      ///< rejected by admission control

    MsaResultCache::Stats cacheStats;
    uint64_t cacheBytesInUse = 0;
    uint64_t cacheEntries = 0;

    double msaBusySeconds = 0.0; ///< summed MSA service time
    double gpuBusySeconds = 0.0; ///< summed inference service time

    uint32_t msaWorkers = 0; ///< echoed from the config
    uint32_t gpuWorkers = 0;

    size_t msaQueueMaxDepth = 0;
    size_t gpuQueueMaxDepth = 0;
    size_t maxInSystem = 0;

    /** Deterministic per-sample MSA service time (the memoized
     *  characterization runs). */
    std::map<std::string, double> msaSecondsBySample;

    /** Busy fraction of the MSA pool over the makespan. */
    double
    msaUtilization() const
    {
        const double cap = makespanSeconds * msaWorkers;
        return cap > 0.0 ? msaBusySeconds / cap : 0.0;
    }

    /** Busy fraction of the GPU pool over the makespan. */
    double
    gpuUtilization() const
    {
        const double cap = makespanSeconds * gpuWorkers;
        return cap > 0.0 ? gpuBusySeconds / cap : 0.0;
    }

    double
    throughputPerHour() const
    {
        return makespanSeconds > 0.0
                   ? 3600.0 * static_cast<double>(completed) /
                         makespanSeconds
                   : 0.0;
    }

    /** End-to-end latencies of completed requests, arrival order. */
    std::vector<double> completedLatencies() const;
};

/**
 * Simulate serving @p requests (sorted or not; they are ordered by
 * arrival internally) on @p platform with @p config. The
 * @p workspace provides the reference databases for the per-sample
 * MSA characterization runs.
 */
ClusterResult simulateCluster(const sys::PlatformSpec &platform,
                              const core::Workspace &workspace,
                              const std::vector<Request> &requests,
                              const ClusterConfig &config = {});

} // namespace afsb::serve

#endif // AFSB_SERVE_CLUSTER_HH
