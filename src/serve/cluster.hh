/**
 * @file
 * Discrete-event simulation of an end-to-end AF3 serving cluster.
 *
 * The ParaFold split: the CPU-bound MSA phase and the GPU-bound
 * inference phase run on independent worker pools connected by a
 * queue, so neither resource idles while the other is the
 * bottleneck. N MSA workers each run the repo's real MSA engine
 * (memoized per distinct sample — the phase is deterministic);
 * M GPU workers are long-lived processes with persistent per-worker
 * XLA caches (Section VI persistent model state), paying GPU init
 * once and XLA compilation once per shape bucket. In front sits
 * cluster-wide admission control (bounded in-system population,
 * shed beyond) and the content-addressed MSA result cache
 * (serve::MsaResultCache), which lets repeated queries skip the MSA
 * stage entirely.
 *
 * The simulation advances a virtual clock over arrival/completion
 * events; with a fixed workload seed the outcome is bit-identical
 * across runs.
 *
 * Fault tolerance: a fault::Plan threads seeded chaos through both
 * stages — worker crashes (GPU workers lose their persistent XLA
 * cache and re-warm after respawn), storage read errors and latency
 * spikes during MSA service, MSA-cache corruption, and per-stage
 * deadlines. Recovery is per-request retry with exponential backoff
 * under a cluster-wide retry budget, worker respawn with a modeled
 * cold-start cost, and graceful degradation: when retries are
 * exhausted a request sheds its MSA stage and runs a
 * reduced-recycling inference pass, finishing as Outcome::Degraded
 * rather than being dropped. With an empty plan the event sequence
 * is bit-identical to a build without the fault machinery.
 */

#ifndef AFSB_SERVE_CLUSTER_HH
#define AFSB_SERVE_CLUSTER_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/msa_phase.hh"
#include "fault/fault.hh"
#include "gpusim/xla.hh"
#include "net/interconnect.hh"
#include "serve/msa_cache.hh"
#include "serve/scheduler.hh"
#include "serve/workload.hh"

namespace afsb::serve {

struct ClusterConfig;

/**
 * Deterministic per-sample MSA characterization, shared across
 * simulations. The MSA phase depends only on (sample, platform,
 * engine options), so each distinct sample is run once through the
 * real engine and memoized. Passing one oracle to many
 * simulateCluster calls (e.g. a 200-seed chaos sweep over the same
 * mix) pays the engine runs once; the caller must not reuse an
 * oracle across different platforms or MSA options.
 */
class MsaServiceOracle
{
  public:
    struct Service
    {
        double seconds = 0.0;
        uint64_t resultBytes = 0;

        /**
         * Modeled cost of a delta re-search (msa::deltaSearch) for
         * a near-duplicate of this sample: the full MSA seconds
         * scaled by the fraction of pipeline cells a
         * survivors-only rescan touches (MSV over survivors
         * instead of the whole collection; the banded kernels ran
         * only on survivors to begin with), derived from the
         * engine's own scan counters.
         */
        double deltaSeconds = 0.0;
    };

    const Service &characterize(const sys::PlatformSpec &platform,
                                const core::Workspace &workspace,
                                const ClusterConfig &config,
                                const std::string &sample);

  private:
    std::map<std::string, Service> memo_;
};

/**
 * How the cluster recovers from injected faults. All knobs are
 * inert on a fault-free run (deadlines default off; nothing retries
 * when nothing fails).
 */
struct RecoveryPolicy
{
    /** Service dispatches allowed per stage, first try included. */
    uint32_t maxAttemptsPerStage = 3;

    /** Cluster-wide cap on retry dispatches across all requests;
     *  once spent, further failures degrade (or fail) directly. */
    uint64_t retryBudget = 1ull << 20;

    /** First retry waits this long; each further retry doubles it
     *  (times backoffMultiplier). */
    double backoffBaseSeconds = 20.0;
    double backoffMultiplier = 2.0;

    /** Per-attempt stage deadlines measured from stage enqueue;
     *  0 disables. An overrun aborts the attempt (kind
     *  request_timeout) and requeues under the retry policy. */
    double msaDeadlineSeconds = 0.0;
    double gpuDeadlineSeconds = 0.0;

    /** Supervisor delay before any crashed worker begins booting. */
    double respawnSpawnSeconds = 2.0;

    /** Boot cost of a respawned MSA worker process. */
    double msaRespawnSeconds = 15.0;

    /** Boot cost of a respawned GPU worker; negative derives it
     *  from gpusim::initPhaseSeconds (driver/context setup + VRAM
     *  mapping on the target platform). The respawned worker comes
     *  back with its context up but its XLA cache cold. */
    double gpuRespawnSeconds = -1.0;

    /** On retry exhaustion, shed to the no-MSA / reduced-recycling
     *  fallback (Outcome::Degraded) instead of failing hard. */
    bool degradeOnExhaustion = true;

    /** Fraction of the normal GPU-compute time a degraded
     *  (reduced-recycling) inference pass spends. */
    double degradedRecyclingFactor = 0.25;
};

/** Serving-cluster configuration. */
struct ClusterConfig
{
    /** CPU workers running the MSA phase — per node. */
    uint32_t msaWorkers = 4;

    /** GPU workers running inference (persistent processes) —
     *  per node. */
    uint32_t gpuWorkers = 2;

    /**
     * Serving topology. The default single node reproduces the
     * paper's single-host setup exactly: no interconnect traffic is
     * generated and the event sequence is bit-identical to the
     * pre-topology simulator. With nodes > 1 a request router
     * (endpoint topology.routerId()) fans arrivals out round-robin
     * over live nodes, the MSA cache shards by content hash, and
     * every cross-node byte pays the modeled link cost.
     */
    net::TopologyConfig topology;

    /** Wire size of a routed request (query + metadata). */
    uint64_t routeRequestBytes = 16ull << 10;

    /** Wire size of a finished structure response. */
    uint64_t routeResponseBytes = 4ull << 20;

    /** Wire size of a cache probe / negative reply. */
    uint64_t cacheControlBytes = 256;

    /** Max requests in the system (queued + in service); arrivals
     *  beyond are shed. */
    size_t admissionCapacity = 64;

    /** Dispatch ordering for both stage queues. */
    SchedPolicy policy = SchedPolicy::Fifo;

    /** MSA result cache budget; 0 disables the cache. */
    uint64_t msaCacheBudgetBytes = 512ull << 20;

    /**
     * Similarity cache tier: minimum estimated Jaccard between a
     * query's sketch and a cached entry's for an approximate hit
     * (which turns the MSA stage into a delta re-search). 0, the
     * default, disables the tier entirely — the event sequence is
     * bit-identical to the exact-only simulator. Must be in (0, 1]
     * when set.
     */
    double simCacheThreshold = 0.0;

    /**
     * Delta-search acceptance rule, modeled: the Jaccard estimate
     * stands in for the survivor-retention fraction the real
     * msa::deltaSearch checks. An approximate hit whose similarity
     * falls below this still pays the delta re-search, then falls
     * back to the full scan (RequestRecord::deltaFallback).
     */
    double simCacheMinRetention = 0.5;

    /** Wire size of a cached survivor set shipped from a remote
     *  shard on an accepted approximate hit (target indices, not
     *  the full alignment). */
    uint64_t simCacheSurvivorBytes = 256ull << 10;

    /** CPU threads each MSA worker uses (AF3 default 8). */
    uint32_t msaThreadsPerWorker = 8;

    /** Host threads per GPU worker process. */
    uint32_t inferenceThreads = 1;

    /** Allow unified-memory spill for over-VRAM inference. */
    bool unifiedMemory = true;

    /**
     * Continuous batching: max requests one GPU dispatch coalesces.
     * 1 (the default) disables the batch former and reproduces the
     * solo-dispatch event sequence bit-identically. Larger values
     * group queued requests by XLA token bucket, pad each member to
     * the bucket's execution length, and share one compiled
     * executable + one finalize across the batch.
     */
    uint32_t batchMax = 1;

    /** Max seconds the queue head waits for co-batchees before a
     *  partial batch dispatches; 0 dispatches whatever is queued
     *  the moment a worker frees up. */
    double batchWaitSeconds = 0.0;

    /** Data-parallel GPUs per node. Each GPU worker drives an equal
     *  share (at least one device); batches fan out across the
     *  share round-robin. The default matches the pre-batching
     *  model of one device per worker. */
    uint32_t gpusPerNode = 1;

    /** XLA shape-bucket width in tokens for the per-worker compile
     *  caches (and batch compatibility grouping). */
    uint32_t bucketTokens = gpusim::XlaCache::kBucketTokens;

    /**
     * MSA engine options per worker (threads overridden by
     * msaThreadsPerWorker). Default stride 16 keeps the one-off
     * per-sample characterization runs fast.
     */
    core::MsaPhaseOptions msaOptions = makeDefaultMsaOptions();

    /** Seeded chaos schedule; default-empty injects nothing. */
    fault::Plan faultPlan;

    /** Retry / respawn / degradation policy. */
    RecoveryPolicy recovery;

    /** Optional shared per-sample MSA characterization (multi-run
     *  sweeps reuse one oracle); null uses a run-local one. */
    MsaServiceOracle *msaOracle = nullptr;

    static core::MsaPhaseOptions
    makeDefaultMsaOptions()
    {
        core::MsaPhaseOptions o;
        o.traceStride = 16;
        return o;
    }
};

/** Aggregate outcome of one cluster simulation. */
struct ClusterResult
{
    /** Per-request traces, in arrival order (shed included). */
    std::vector<RequestRecord> records;

    double makespanSeconds = 0.0; ///< last event on the clock

    uint64_t offered = 0;   ///< arrivals
    uint64_t completed = 0; ///< served through both stages
    uint64_t degraded = 0;  ///< served via the fallback path
    uint64_t failed = 0;    ///< gave up (retries out, degrade off)
    uint64_t shed = 0;      ///< rejected by admission control

    MsaResultCache::Stats cacheStats;
    uint64_t cacheBytesInUse = 0;
    uint64_t cacheEntries = 0;

    double msaBusySeconds = 0.0; ///< summed MSA service time
    double gpuBusySeconds = 0.0; ///< summed inference service time

    uint32_t msaWorkers = 0; ///< whole-cluster (per-node × nodes)
    uint32_t gpuWorkers = 0;

    size_t msaQueueMaxDepth = 0;
    size_t gpuQueueMaxDepth = 0;
    size_t maxInSystem = 0;

    /** True when the configured fault plan could inject anything;
     *  gates the fault section of reports so fault-free output is
     *  byte-identical to a build without the machinery. */
    bool faultsEnabled = false;

    uint64_t faultsInjected = 0; ///< fault-log length
    std::array<uint64_t, fault::kFaultKinds> faultsByKind{};

    uint64_t retries = 0;  ///< retry dispatches scheduled
    uint64_t timeouts = 0; ///< per-stage deadline expiries
    uint64_t msaRespawns = 0;
    uint64_t gpuRespawns = 0;
    uint64_t permanentWorkerLosses = 0;

    /** Worker-seconds burned by attempts a fault aborted. */
    double lostServiceSeconds = 0.0;

    /** Canonical fault log (fault::Injector::renderLog) —
     *  byte-identical across runs with identical seeds. */
    std::string faultLog;

    /** True when the run used the batch former (batchMax > 1);
     *  gates the batching section of reports, so solo-dispatch
     *  output stays byte-identical to the pre-batching simulator. */
    bool batchingEnabled = false;

    uint32_t gpusPerNode = 1; ///< data-parallel devices per node

    uint64_t batchesFormed = 0;   ///< GPU dispatches via the former
    uint64_t batchedRequests = 0; ///< members across all batches
    uint64_t maxBatchOccupancy = 0;

    /** Dispatches whose size the VRAM capacity gate cut below the
     *  configured batchMax (the oversized remainder stays queued). */
    uint64_t vramBatchSplits = 0;

    uint64_t batchCompiles = 0; ///< batches that paid any compile
    double batchCompileSeconds = 0.0;

    /** Members riding batches that paid a compile — the numerator
     *  of the compile amortization factor. */
    uint64_t compileSharedRequests = 0;

    /** Executed FLOPs split into real-token work vs pad tokens. */
    double batchUsefulFlops = 0.0;
    double batchPaddedFlops = 0.0;

    /** Mean members per formed batch. */
    double
    meanBatchOccupancy() const
    {
        return batchesFormed > 0
                   ? static_cast<double>(batchedRequests) /
                         static_cast<double>(batchesFormed)
                   : 0.0;
    }

    /** Share of executed FLOPs burned on padding. */
    double
    paddingWasteFraction() const
    {
        const double total = batchUsefulFlops + batchPaddedFlops;
        return total > 0.0 ? batchPaddedFlops / total : 0.0;
    }

    /** Requests served per compile paid: how far one shared
     *  executable stretched. */
    double
    compileAmortizationFactor() const
    {
        return batchCompiles > 0
                   ? static_cast<double>(compileSharedRequests) /
                         static_cast<double>(batchCompiles)
                   : 0.0;
    }

    /** True when the run used the similarity cache tier
     *  (simCacheThreshold > 0); gates the approximate-hit section
     *  of reports, so exact-only output stays byte-identical to the
     *  pre-similarity simulator. */
    bool simCacheEnabled = false;

    double simCacheThreshold = 0.0; ///< configured Jaccard threshold

    uint64_t approxHits = 0;      ///< requests served via a delta
    uint64_t deltaFallbacks = 0;  ///< deltas rejected -> full scan

    /** Net MSA service seconds the similarity tier avoided: the
     *  full-minus-delta gap on every accepted delta, minus the
     *  wasted delta time on every fallback. */
    double deltaSecondsSaved = 0.0;

    /** Multi-node only: similarity probes answered by (and accepted
     *  survivor sets shipped from) a remote cache shard. */
    uint64_t remoteApproxProbes = 0;
    uint64_t remoteApproxHits = 0;

    /** True when the run used a multi-node topology; gates the
     *  cross-node section of reports, so single-node output stays
     *  byte-identical to the pre-topology simulator. */
    bool multiNode = false;

    uint32_t nodes = 1; ///< serving nodes in the topology

    /** Whole-fabric interconnect counters (all zero single-node). */
    net::CommStats comm;

    /** Per-link counters, (src, dst) ascending; links that never
     *  carried a message are omitted. */
    std::vector<net::LinkStats> links;

    uint64_t nodeKills = 0;    ///< scripted node failures executed
    uint64_t nodeRebuilds = 0; ///< killed nodes that rejoined
    uint64_t rerouted = 0;     ///< requests re-sent to another node

    uint64_t remoteCacheLookups = 0; ///< probes to a remote shard
    uint64_t remoteCacheHits = 0;    ///< ... that shipped a result

    /** Per-node serving counters (size nodes). */
    struct NodeStats
    {
        uint64_t routed = 0; ///< requests the router sent here
        double msaBusySeconds = 0.0;
        double gpuBusySeconds = 0.0;
        uint32_t msaWorkers = 0; ///< configured per-node pool sizes
        uint32_t gpuWorkers = 0;
    };
    std::vector<NodeStats> nodeStats;

    /** Canonical communication trace (net::CommTrace::render);
     *  empty single-node. */
    std::string commTrace;

    /** Deterministic per-sample MSA service time (the memoized
     *  characterization runs). */
    std::map<std::string, double> msaSecondsBySample;

    /** Busy fraction of the MSA pool over the makespan. */
    double
    msaUtilization() const
    {
        const double cap = makespanSeconds * msaWorkers;
        return cap > 0.0 ? msaBusySeconds / cap : 0.0;
    }

    /** Busy fraction of the GPU pool over the makespan. */
    double
    gpuUtilization() const
    {
        const double cap = makespanSeconds * gpuWorkers;
        return cap > 0.0 ? gpuBusySeconds / cap : 0.0;
    }

    /** All responses per hour: full-quality and degraded alike. */
    double
    throughputPerHour() const
    {
        return makespanSeconds > 0.0
                   ? 3600.0 *
                         static_cast<double>(completed + degraded) /
                         makespanSeconds
                   : 0.0;
    }

    /** Full-quality responses per hour — what throughput degrades
     *  to once fallback answers stop counting. */
    double
    goodputPerHour() const
    {
        return makespanSeconds > 0.0
                   ? 3600.0 * static_cast<double>(completed) /
                         makespanSeconds
                   : 0.0;
    }

    /** End-to-end latencies of completed requests, arrival order. */
    std::vector<double> completedLatencies() const;

    /** Latencies of every served response (completed + degraded). */
    std::vector<double> servedLatencies() const;
};

/**
 * Simulate serving @p requests (sorted or not; they are ordered by
 * arrival internally) on @p platform with @p config. The
 * @p workspace provides the reference databases for the per-sample
 * MSA characterization runs.
 */
ClusterResult simulateCluster(const sys::PlatformSpec &platform,
                              const core::Workspace &workspace,
                              const std::vector<Request> &requests,
                              const ClusterConfig &config = {});

} // namespace afsb::serve

#endif // AFSB_SERVE_CLUSTER_HH
