#include "serve/msa_cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::serve {

uint64_t
MsaResultCache::checksumOf(uint64_t key, uint64_t bytes)
{
    // splitmix64 finalizer over the entry identity: cheap, and any
    // single-bit corruption of the stored value is detected.
    uint64_t x = key ^ (bytes * 0x9e3779b97f4a7c15ull);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

MsaResultCache::Lookup
MsaResultCache::lookup(uint64_t key)
{
    ++stats_.lookups;
    const auto it = index_.find(key);
    if (it == index_.end())
        return Lookup::Miss;
    if (it->second->checksum != checksumOf(key, it->second->bytes)) {
        ++stats_.corrupted;
        bytesInUse_ -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
        // The survivor set behind this entry is gone with it; a
        // dangling sketch would hand deltaSearch a key whose exact
        // entry no longer exists.
        dropSketch(key);
        return Lookup::Corrupt;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return Lookup::Hit;
}

void
MsaResultCache::insert(uint64_t key, uint64_t bytes)
{
    if (bytes > budgetBytes_) {
        ++stats_.rejected;
        return;
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh: the same content re-derived (e.g. two concurrent
        // misses on one key); keep one copy, update its footprint.
        bytesInUse_ -= it->second->bytes;
        it->second->bytes = bytes;
        it->second->checksum = checksumOf(key, bytes);
        bytesInUse_ += bytes;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front({key, bytes, checksumOf(key, bytes)});
        index_[key] = lru_.begin();
        bytesInUse_ += bytes;
        ++stats_.insertions;
    }
    while (bytesInUse_ > budgetBytes_)
        evictOne();
}

void
MsaResultCache::insert(uint64_t key, uint64_t bytes,
                       const msa::QuerySketch &sketch)
{
    if (sketch.empty()) {
        insert(key, bytes);
        return;
    }
    if (bytes > budgetBytes_) {
        ++stats_.rejected;
        return;
    }
    // Register the sketch before the base insert: if the insert
    // evicts this very key (budget exactly consumed by newer
    // entries), evictOne's dropSketch must see it to stay coherent.
    if (!sketches_.contains(key)) {
        for (const uint64_t band : sketch.bandHashes(lsh_))
            bands_[band].push_back(key);
        sketches_.emplace(key, sketch);
    }
    insert(key, bytes);
}

MsaResultCache::ApproxResult
MsaResultCache::approxLookup(const msa::QuerySketch &probe,
                             double threshold)
{
    ++stats_.approxLookups;
    ApproxResult res;
    if (probe.empty())
        return res;

    for (const uint64_t band : probe.bandHashes(lsh_)) {
        const auto it = bands_.find(band);
        if (it == bands_.end())
            continue;
        for (const uint64_t key : it->second) {
            const auto sk = sketches_.find(key);
            if (sk == sketches_.end())
                continue;
            const double j = msa::jaccardEstimate(probe, sk->second);
            // Deterministic best: higher Jaccard, ties to the
            // smaller key (band tables iterate in push order, but a
            // key can collide in several bands).
            if (!res.candidate || j > res.jaccard ||
                (j == res.jaccard && key < res.key)) {
                res.key = key;
                res.jaccard = j;
            }
            res.candidate = true;
        }
    }
    if (!res.candidate)
        return res;
    if (res.jaccard >= threshold) {
        res.accepted = true;
        ++stats_.approxHits;
        // The delta re-search is about to reuse this entry's
        // survivor set: treat it as touched.
        const auto it = index_.find(res.key);
        if (it != index_.end())
            lru_.splice(lru_.begin(), lru_, it->second);
    }
    return res;
}

bool
MsaResultCache::corrupt(uint64_t key)
{
    const auto it = index_.find(key);
    if (it == index_.end())
        return false;
    it->second->checksum ^= 1ull << 17;
    return true;
}

void
MsaResultCache::evictOne()
{
    panicIf(lru_.empty(), "MsaResultCache: eviction on empty cache");
    const Entry &victim = lru_.back();
    bytesInUse_ -= victim.bytes;
    index_.erase(victim.key);
    dropSketch(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
}

void
MsaResultCache::dropSketch(uint64_t key)
{
    const auto it = sketches_.find(key);
    if (it == sketches_.end())
        return;
    for (const uint64_t band : it->second.bandHashes(lsh_)) {
        const auto bi = bands_.find(band);
        if (bi == bands_.end())
            continue;
        auto &keys = bi->second;
        keys.erase(std::remove(keys.begin(), keys.end(), key),
                   keys.end());
        if (keys.empty())
            bands_.erase(bi);
    }
    sketches_.erase(it);
}

} // namespace afsb::serve
