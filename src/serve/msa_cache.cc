#include "serve/msa_cache.hh"

#include "util/logging.hh"

namespace afsb::serve {

bool
MsaResultCache::lookup(uint64_t key)
{
    ++stats_.lookups;
    const auto it = index_.find(key);
    if (it == index_.end())
        return false;
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
MsaResultCache::insert(uint64_t key, uint64_t bytes)
{
    if (bytes > budgetBytes_) {
        ++stats_.rejected;
        return;
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh: the same content re-derived (e.g. two concurrent
        // misses on one key); keep one copy, update its footprint.
        bytesInUse_ -= it->second->bytes;
        it->second->bytes = bytes;
        bytesInUse_ += bytes;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front({key, bytes});
        index_[key] = lru_.begin();
        bytesInUse_ += bytes;
        ++stats_.insertions;
    }
    while (bytesInUse_ > budgetBytes_)
        evictOne();
}

void
MsaResultCache::evictOne()
{
    panicIf(lru_.empty(), "MsaResultCache: eviction on empty cache");
    const Entry &victim = lru_.back();
    bytesInUse_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
}

} // namespace afsb::serve
