#include "serve/msa_cache.hh"

#include "util/logging.hh"

namespace afsb::serve {

uint64_t
MsaResultCache::checksumOf(uint64_t key, uint64_t bytes)
{
    // splitmix64 finalizer over the entry identity: cheap, and any
    // single-bit corruption of the stored value is detected.
    uint64_t x = key ^ (bytes * 0x9e3779b97f4a7c15ull);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

MsaResultCache::Lookup
MsaResultCache::lookup(uint64_t key)
{
    ++stats_.lookups;
    const auto it = index_.find(key);
    if (it == index_.end())
        return Lookup::Miss;
    if (it->second->checksum != checksumOf(key, it->second->bytes)) {
        ++stats_.corrupted;
        bytesInUse_ -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
        return Lookup::Corrupt;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return Lookup::Hit;
}

void
MsaResultCache::insert(uint64_t key, uint64_t bytes)
{
    if (bytes > budgetBytes_) {
        ++stats_.rejected;
        return;
    }
    const auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh: the same content re-derived (e.g. two concurrent
        // misses on one key); keep one copy, update its footprint.
        bytesInUse_ -= it->second->bytes;
        it->second->bytes = bytes;
        it->second->checksum = checksumOf(key, bytes);
        bytesInUse_ += bytes;
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front({key, bytes, checksumOf(key, bytes)});
        index_[key] = lru_.begin();
        bytesInUse_ += bytes;
        ++stats_.insertions;
    }
    while (bytesInUse_ > budgetBytes_)
        evictOne();
}

bool
MsaResultCache::corrupt(uint64_t key)
{
    const auto it = index_.find(key);
    if (it == index_.end())
        return false;
    it->second->checksum ^= 1ull << 17;
    return true;
}

void
MsaResultCache::evictOne()
{
    panicIf(lru_.empty(), "MsaResultCache: eviction on empty cache");
    const Entry &victim = lru_.back();
    bytesInUse_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
}

} // namespace afsb::serve
