/**
 * @file
 * Tail-latency SLO reporting for cluster simulations.
 *
 * Summarizes one ClusterResult the way an on-call dashboard would:
 * latency percentiles (p50/p95/p99) over completed requests, the
 * time-in-queue vs time-in-service split, MSA cache effectiveness,
 * per-pool utilization, and the shed count. Renders as an ASCII
 * table and exports per-request rows as CSV.
 */

#ifndef AFSB_SERVE_REPORT_HH
#define AFSB_SERVE_REPORT_HH

#include <array>
#include <string>

#include "serve/cluster.hh"
#include "util/csv.hh"
#include "util/stats.hh"

namespace afsb::serve {

/** One simulated run reduced to its SLO dashboard numbers. */
struct SloReport
{
    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
    uint64_t shed = 0;

    /** End-to-end latency over completed requests. */
    Percentiles latency;
    double meanLatency = 0.0;
    double maxLatency = 0.0;

    /** Where completed requests spent their time, on average. */
    double meanMsaQueueSeconds = 0.0;
    double meanGpuQueueSeconds = 0.0;
    double meanServiceSeconds = 0.0;

    double cacheHitRate = 0.0;
    uint64_t cacheEvictions = 0;
    uint64_t cacheEntries = 0;
    uint64_t cacheBytesInUse = 0;

    double msaUtilization = 0.0;
    double gpuUtilization = 0.0;

    double throughputPerHour = 0.0;
    double makespanSeconds = 0.0;

    /** True when the run used the similarity cache tier
     *  (sim-cache-threshold > 0). Gates the approximate-hit section
     *  everywhere, so exact-only report text is byte-identical to
     *  the pre-similarity simulator. */
    bool simCacheEnabled = false;

    /** Similarity-tier dashboard (approximate hits + delta
     *  re-search; sim-cache runs only). */
    struct SimSection
    {
        /** Configured Jaccard acceptance threshold. */
        double threshold = 0.0;

        /** LSH probes issued on exact-cache misses (cache level —
         *  a multi-node broadcast counts once per shard). */
        uint64_t approxLookups = 0;

        /** Requests whose MSA stage ran as an accepted delta
         *  re-search over a cached survivor set. */
        uint64_t approxHits = 0;

        /** Requests whose delta was rejected by its acceptance
         *  check: they paid the delta *and* the full scan. */
        uint64_t deltaFallbacks = 0;

        /** Accepted probes / probes, at the cache level. */
        double approxHitRate = 0.0;

        /** Net MSA service seconds avoided (full-minus-delta gap
         *  on accepted deltas, minus wasted fallback deltas). */
        double deltaSecondsSaved = 0.0;

        /** Multi-node only: similarity probes answered by / hits
         *  served from a remote cache shard. */
        uint64_t remoteApproxProbes = 0;
        uint64_t remoteApproxHits = 0;
    } sim;

    /** True when the run used continuous batching (batch-max > 1).
     *  Gates the batching section everywhere, so solo-dispatch
     *  report text is byte-identical to the pre-batching
     *  simulator. */
    bool batchingEnabled = false;

    /** Continuous-batching dashboard (batched runs only). */
    struct BatchSection
    {
        uint64_t batchesFormed = 0;
        uint64_t batchedRequests = 0;
        double meanOccupancy = 0.0;
        uint64_t maxOccupancy = 0;

        /** Padded-token FLOPs as a share of all executed FLOPs. */
        double paddingWastePct = 0.0;

        uint64_t batchCompiles = 0;

        /** Requests served per compile actually paid: > 1 means
         *  the shape-bucketed executables were shared. */
        double compileAmortization = 0.0;

        /** Dispatches truncated below batch-max by the VRAM cap. */
        uint64_t vramSplits = 0;

        uint32_t gpusPerNode = 1;
    } batch;

    /** True when the run had a live fault plan. Gates the fault
     *  section everywhere, so fault-free report text is
     *  byte-identical to a build without the fault machinery. */
    bool faultsEnabled = false;

    /** Fault / recovery dashboard (all zero on fault-free runs). */
    struct FaultSection
    {
        uint64_t injected = 0;
        std::array<uint64_t, fault::kFaultKinds> byKind{};
        uint64_t retries = 0;
        uint64_t timeouts = 0;
        uint64_t msaRespawns = 0;
        uint64_t gpuRespawns = 0;
        uint64_t permanentWorkerLosses = 0;
        uint64_t cacheCorruptionsDetected = 0;
        double lostServiceSeconds = 0.0;

        /** Full-quality vs any-quality responses per hour. */
        double goodputPerHour = 0.0;

        /** p99 over all served responses (completed + degraded). */
        double p99AllSeconds = 0.0;

        /** p99 over completed requests no fault ever touched. */
        double p99CleanSeconds = 0.0;
        uint64_t cleanCompleted = 0;
    } fault;

    /** True when the run used a multi-node topology. Gates the
     *  cross-node section, so single-node report text is
     *  byte-identical to the pre-topology simulator. */
    bool multiNode = false;

    /** Cross-node dashboard (multi-node runs only). */
    struct NetSection
    {
        uint32_t nodes = 1;
        uint64_t nodeKills = 0;
        uint64_t nodeRebuilds = 0;
        uint64_t rerouted = 0;

        uint64_t commMessages = 0;
        uint64_t commBytes = 0;
        double commSerializeSeconds = 0.0;
        double commTransferSeconds = 0.0;
        double commLatencySeconds = 0.0;

        /** Communication share of all modeled work:
         *  comm / (comm + msa busy + gpu busy). */
        double commShare = 0.0;

        uint64_t remoteCacheLookups = 0;
        uint64_t remoteCacheHits = 0;

        /** Completed-request p99 split by whether the MSA-cache
         *  shard was local to the serving node. */
        double p99LocalSeconds = 0.0;
        double p99RemoteSeconds = 0.0;

        /** Per-node serving summary, node id ascending. */
        struct NodeLine
        {
            uint64_t routed = 0;
            double msaUtilization = 0.0;
            double gpuUtilization = 0.0;
        };
        std::vector<NodeLine> perNode;

        /** Per-link traffic, (src, dst) ascending; quiet links are
         *  omitted. Utilization is wire busy time / makespan. */
        struct LinkLine
        {
            uint32_t src = 0;
            uint32_t dst = 0;
            uint64_t messages = 0;
            uint64_t bytes = 0;
            double utilization = 0.0;
        };
        std::vector<LinkLine> links;
    } net;

    /** Fraction of offered load rejected by admission control. */
    double
    shedRate() const
    {
        return offered ? static_cast<double>(shed) /
                             static_cast<double>(offered)
                       : 0.0;
    }
};

/** Reduce @p result to its SLO report. */
SloReport buildSloReport(const ClusterResult &result);

/** Print the report as ASCII tables under @p title. */
void printSloReport(const SloReport &report,
                    const std::string &title);

/**
 * Canonical key=value serialization of @p report, one field per
 * line, every floating-point value rounded to %.3f. Two runs with
 * identical seeds render byte-identical text; the fixed rounding
 * also makes the committed fault-free golden
 * (bench/baselines/serve_slo.txt) stable across compilers, whose
 * fused-multiply-add choices differ in the last few ulps. The
 * fault section is emitted only when faults were enabled.
 */
std::string canonicalSloText(const SloReport &report);

/**
 * Inverse of canonicalSloText: parse the canonical key=value text
 * back into a report. Every field canonicalSloText emits round
 * trips — re-serializing the parsed report reproduces the input
 * byte for byte (the %.3f rounding is a fixed point). fatal() on a
 * malformed line, an unknown key, or keys out of canonical order.
 */
SloReport parseSloText(const std::string &text);

/**
 * Per-request CSV export: one row per offered request with
 * timestamps, stage waits, cache-hit flag, and outcome.
 */
CsvWriter requestCsv(const ClusterResult &result);

} // namespace afsb::serve

#endif // AFSB_SERVE_REPORT_HH
