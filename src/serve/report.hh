/**
 * @file
 * Tail-latency SLO reporting for cluster simulations.
 *
 * Summarizes one ClusterResult the way an on-call dashboard would:
 * latency percentiles (p50/p95/p99) over completed requests, the
 * time-in-queue vs time-in-service split, MSA cache effectiveness,
 * per-pool utilization, and the shed count. Renders as an ASCII
 * table and exports per-request rows as CSV.
 */

#ifndef AFSB_SERVE_REPORT_HH
#define AFSB_SERVE_REPORT_HH

#include <string>

#include "serve/cluster.hh"
#include "util/csv.hh"
#include "util/stats.hh"

namespace afsb::serve {

/** One simulated run reduced to its SLO dashboard numbers. */
struct SloReport
{
    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;

    /** End-to-end latency over completed requests. */
    Percentiles latency;
    double meanLatency = 0.0;
    double maxLatency = 0.0;

    /** Where completed requests spent their time, on average. */
    double meanMsaQueueSeconds = 0.0;
    double meanGpuQueueSeconds = 0.0;
    double meanServiceSeconds = 0.0;

    double cacheHitRate = 0.0;
    uint64_t cacheEvictions = 0;
    uint64_t cacheEntries = 0;
    uint64_t cacheBytesInUse = 0;

    double msaUtilization = 0.0;
    double gpuUtilization = 0.0;

    double throughputPerHour = 0.0;
    double makespanSeconds = 0.0;

    /** Fraction of offered load rejected by admission control. */
    double
    shedRate() const
    {
        return offered ? static_cast<double>(shed) /
                             static_cast<double>(offered)
                       : 0.0;
    }
};

/** Reduce @p result to its SLO report. */
SloReport buildSloReport(const ClusterResult &result);

/** Print the report as ASCII tables under @p title. */
void printSloReport(const SloReport &report,
                    const std::string &title);

/**
 * Per-request CSV export: one row per offered request with
 * timestamps, stage waits, cache-hit flag, and outcome.
 */
CsvWriter requestCsv(const ClusterResult &result);

} // namespace afsb::serve

#endif // AFSB_SERVE_REPORT_HH
