/**
 * @file
 * Content-addressed MSA result cache with LRU eviction under a byte
 * budget — the AF_Cache optimization — plus an optional similarity
 * tier: an LSH-banded MinHash sketch index that finds the cached
 * entry of a *near-identical* query when the exact key misses.
 *
 * The MSA phase dominates end-to-end AF3 latency (70-94% in the
 * paper) yet its output depends only on the query sequences, so a
 * cluster serving overlapping query populations can skip the phase
 * entirely for repeated queries. Keys are 64-bit digests of the
 * query content (serve::queryContentHash); values are the byte
 * footprint of the stored alignment, which drives eviction against
 * the configured budget. Entries inserted with a sketch additionally
 * register in per-band hash tables; approxLookup() probes those
 * bands and returns the best Jaccard-estimated candidate, which the
 * serving path turns into a delta re-search (msa::deltaSearch)
 * instead of a full database scan.
 */

#ifndef AFSB_SERVE_MSA_CACHE_HH
#define AFSB_SERVE_MSA_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "msa/sketch.hh"

namespace afsb::serve {

/** Byte-budgeted LRU cache of MSA results, keyed by content hash. */
class MsaResultCache
{
  public:
    /** Result of one lookup. */
    enum class Lookup {
        Miss,    ///< key absent
        Hit,     ///< key present, checksum verified
        Corrupt, ///< key present but failed its checksum; dropped
    };

    /** Outcome of one similarity probe. */
    struct ApproxResult
    {
        /** A banded candidate existed (regardless of threshold). */
        bool candidate = false;

        /** Candidate met the Jaccard threshold; `key` is usable. */
        bool accepted = false;

        uint64_t key = 0;     ///< best candidate's exact cache key
        double jaccard = 0.0; ///< its estimated Jaccard similarity
    };

    /** Hit/miss/eviction counters. */
    struct Stats
    {
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        uint64_t rejected = 0;  ///< entries larger than the budget
        uint64_t corrupted = 0; ///< checksum mismatches on lookup

        uint64_t approxLookups = 0; ///< similarity probes
        uint64_t approxHits = 0;    ///< probes accepted at threshold

        uint64_t misses() const { return lookups - hits; }

        double
        hitRate() const
        {
            return lookups
                       ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
        }

        double
        approxHitRate() const
        {
            return approxLookups
                       ? static_cast<double>(approxHits) /
                             static_cast<double>(approxLookups)
                       : 0.0;
        }
    };

    /** @param budget_bytes 0 disables the cache entirely. */
    explicit MsaResultCache(uint64_t budget_bytes)
        : budgetBytes_(budget_bytes)
    {}

    /**
     * Look up @p key; a verified hit refreshes its LRU position.
     * Every stored entry carries a checksum of (key, bytes) taken
     * at insertion; a mismatch on lookup (bit rot, or fault
     * injection via corrupt()) drops the entry — and its sketch
     * bands — and reports Lookup::Corrupt; the caller re-derives
     * the result through the MSA stage, exactly as a production
     * cache would on a failed integrity check. Counted in stats().
     */
    Lookup lookup(uint64_t key);

    /**
     * Insert (or refresh) @p key at @p bytes, evicting least-
     * recently-used entries until the budget holds it. Entries
     * larger than the whole budget are rejected (counted, not
     * stored).
     */
    void insert(uint64_t key, uint64_t bytes);

    /**
     * Insert with a query sketch: additionally registers the entry
     * in the LSH band tables so later approxLookup() probes can find
     * it. An empty sketch degrades to the exact-only insert.
     */
    void insert(uint64_t key, uint64_t bytes,
                const msa::QuerySketch &sketch);

    /**
     * Similarity probe: hash @p probe into each LSH band, collect
     * the cached entries colliding in any band, and return the one
     * with the highest estimated Jaccard (ties to the smaller key,
     * so the result is deterministic regardless of hash-table
     * iteration order). `accepted` requires jaccard >= @p threshold;
     * an accepted probe refreshes the candidate's LRU position (the
     * delta re-search is about to reuse its survivor set). Does not
     * count toward exact lookup/hit stats.
     */
    ApproxResult approxLookup(const msa::QuerySketch &probe,
                              double threshold);

    /**
     * Flip a bit in @p key's stored checksum (fault injection: the
     * entry decayed in storage). Returns false (no-op) when the key
     * is absent; the corruption is discovered — and the entry
     * dropped — only on the next lookup.
     */
    bool corrupt(uint64_t key);

    const Stats &stats() const { return stats_; }
    uint64_t budgetBytes() const { return budgetBytes_; }
    uint64_t bytesInUse() const { return bytesInUse_; }
    size_t entries() const { return index_.size(); }

    /** Entries carrying a sketch (== keys registered in bands). */
    size_t sketchedEntries() const { return sketches_.size(); }

    /** LSH shape shared by sketching and banding. */
    const msa::SketchConfig &sketchConfig() const { return lsh_; }

  private:
    struct Entry
    {
        uint64_t key;
        uint64_t bytes;
        uint64_t checksum;
    };

    /** Content digest stored with each entry and re-derived on
     *  lookup. */
    static uint64_t checksumOf(uint64_t key, uint64_t bytes);

    void evictOne();

    /** Drop @p key from the band tables and sketch store (no-op
     *  when the entry never carried a sketch). */
    void dropSketch(uint64_t key);

    uint64_t budgetBytes_;
    uint64_t bytesInUse_ = 0;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;

    msa::SketchConfig lsh_;
    /** key -> its sketch (kept for Jaccard scoring on probes). */
    std::unordered_map<uint64_t, msa::QuerySketch> sketches_;
    /** band hash -> keys whose sketch collides in that band. */
    std::unordered_map<uint64_t, std::vector<uint64_t>> bands_;

    Stats stats_;
};

} // namespace afsb::serve

#endif // AFSB_SERVE_MSA_CACHE_HH
