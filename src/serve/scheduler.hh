/**
 * @file
 * Admission control and queue-ordering policy for the serving
 * cluster.
 *
 * The cluster bounds the number of requests in the system (queued
 * or in service) and sheds arrivals beyond it — open-loop traffic
 * meeting a finite system, so tail latency stays bounded and the
 * shed count becomes the overload signal. Within a queue the
 * dispatch order is pluggable: FIFO, or shortest-job-first by
 * predicted token count (the cheap size predictor AF3 queries carry
 * in their sequence lengths).
 */

#ifndef AFSB_SERVE_SCHEDULER_HH
#define AFSB_SERVE_SCHEDULER_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace afsb::serve {

/** Dispatch-ordering policy. */
enum class SchedPolicy {
    Fifo, ///< arrival order
    Sjf,  ///< shortest predicted job (token count) first
};

/** Parse "fifo" / "sjf"; fatal() on anything else. */
SchedPolicy policyByName(const std::string &name);

/** Canonical name of a policy. */
const char *policyName(SchedPolicy policy);

/**
 * A dispatch queue with a pluggable ordering. Capacity is enforced
 * by the cluster-wide admission bound, not per queue, so the queue
 * itself is unbounded.
 */
class DispatchQueue
{
  public:
    explicit DispatchQueue(SchedPolicy policy) : policy_(policy) {}

    void push(Request request);

    /** Next request per policy; fatal() when empty. Ties in SJF
     *  break by arrival id, keeping dispatch deterministic. */
    Request pop();

    /** The request pop() would return, without removing it. */
    const Request &peek() const;

    /** Queued requests satisfying @p accept (batch-former probe). */
    size_t countIf(
        const std::function<bool(const Request &)> &accept) const;

    /**
     * Batch extraction: pop the policy head, then up to
     * @p maxCount - 1 further requests satisfying @p accept, taken
     * in policy order. The head is returned unconditionally (the
     * caller groups by its shape bucket), so it must satisfy
     * @p accept by construction. fatal() when empty.
     */
    std::vector<Request> popBatch(
        size_t maxCount,
        const std::function<bool(const Request &)> &accept);

    bool empty() const { return queue_.empty(); }
    size_t depth() const { return queue_.size(); }

    /** Largest depth ever observed. */
    size_t maxDepth() const { return maxDepth_; }

    SchedPolicy policy() const { return policy_; }

  private:
    SchedPolicy policy_;
    std::deque<Request> queue_;
    size_t maxDepth_ = 0;
};

/**
 * Cluster-wide admission controller: at most @p capacity requests
 * may be in the system (waiting or in service) at once; arrivals
 * beyond that are shed.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(size_t capacity)
        : capacity_(capacity)
    {}

    /** Try to admit one arrival; false means shed. */
    bool
    tryAdmit()
    {
        if (inSystem_ >= capacity_) {
            ++shedCount_;
            return false;
        }
        ++inSystem_;
        maxInSystem_ = std::max(maxInSystem_, inSystem_);
        return true;
    }

    /** A request left the system (completed). */
    void release();

    size_t capacity() const { return capacity_; }
    size_t inSystem() const { return inSystem_; }
    size_t maxInSystem() const { return maxInSystem_; }
    uint64_t shedCount() const { return shedCount_; }

  private:
    size_t capacity_;
    size_t inSystem_ = 0;
    size_t maxInSystem_ = 0;
    uint64_t shedCount_ = 0;
};

} // namespace afsb::serve

#endif // AFSB_SERVE_SCHEDULER_HH
