/**
 * @file
 * Request and per-request trace types for the serving-cluster
 * simulator.
 *
 * A request is one user query: a Table II sample (optionally one of
 * several distinct query variants with the same workload character),
 * arriving at a known simulated time. Its record captures every
 * timestamp on the way through the cluster — admission, MSA stage,
 * GPU stage — so the SLO report can split latency into queueing vs
 * service per pool.
 */

#ifndef AFSB_SERVE_REQUEST_HH
#define AFSB_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

#include "msa/sketch.hh"

namespace afsb::serve {

/** One user query in the open-loop request stream. */
struct Request
{
    uint64_t id = 0;          ///< arrival order, 0-based
    std::string sample;       ///< Table II sample name
    uint32_t variant = 0;     ///< distinct-query salt within a sample
    size_t tokens = 0;        ///< total residues (the SJF predictor)
    uint64_t contentHash = 0; ///< content-addressed MSA cache key
    double arrivalSeconds = 0.0;

    /** MinHash sketch for the similarity cache tier; empty unless
     *  the workload was generated with sketching on. */
    msa::QuerySketch sketch;
};

/** Terminal state of a request. */
enum class Outcome {
    Completed, ///< served through both stages at full quality
    Degraded,  ///< served via the no-MSA / reduced-recycling
               ///< fallback after the retry budget ran out
    Failed,    ///< gave up: retries exhausted, degradation off
    Shed,      ///< rejected by admission control
};

/** Canonical lower-case name (stable; used in CSV and reports). */
inline const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
    case Outcome::Completed:
        return "completed";
    case Outcome::Degraded:
        return "degraded";
    case Outcome::Failed:
        return "failed";
    case Outcome::Shed:
        return "shed";
    }
    return "unknown";
}

/** Full per-request trace through the cluster. */
struct RequestRecord
{
    Request request;
    Outcome outcome = Outcome::Completed;

    /** MSA stage skipped via the content-addressed result cache. */
    bool msaCacheHit = false;

    /** Served via the similarity tier: a near-identical cached
     *  query's survivor set was reused, the MSA stage ran as a
     *  delta re-search instead of a full database scan. */
    bool approxHit = false;

    /** A similarity candidate was found but the delta's acceptance
     *  check failed: the request paid the delta re-search *and* the
     *  full scan it fell back to. */
    bool deltaFallback = false;

    /** Finished (or failed) on the degraded fallback path. */
    bool degradedPath = false;

    /** Node that served (or last attempted) the request; always 0
     *  in a single-node topology. */
    uint32_t node = 0;

    /** Multi-node only: the MSA-cache shard owning this request's
     *  content hash lived on a different node, so the lookup (and
     *  any hit) paid a modeled cross-node transfer. */
    bool remoteCache = false;

    /** Service dispatches per stage (1 on a fault-free run; each
     *  retry adds one). */
    uint32_t msaAttempts = 0;
    uint32_t gpuAttempts = 0;

    /** Faults (injected or deadline timeouts) this request hit. */
    uint32_t faultsSeen = 0;

    /** Timestamps below describe the *successful* attempt; earlier
     *  failed attempts and their backoff show up as queue time. */
    double msaStartSeconds = 0.0; ///< MSA service begins (hit: skip)
    double msaEndSeconds = 0.0;   ///< MSA result available
    double gpuStartSeconds = 0.0; ///< inference service begins
    double finishSeconds = 0.0;   ///< response complete

    /** XLA compile paid on the assigned GPU worker (0 once the
     *  worker's persistent cache holds the shape bucket). In a
     *  batched dispatch every member records the one shared
     *  compile it waited through. */
    double compileSeconds = 0.0;

    /** Members in the GPU dispatch that served this request: 0 on
     *  the solo path (batching off), >= 1 through the batch former
     *  (1 = a singleton batch). */
    uint32_t batchSize = 0;

    /** Touched by at least one fault, retry, or timeout — the SLO
     *  report's clean-vs-affected tail split keys off this. */
    bool
    faultAffected() const
    {
        return faultsSeen > 0 || degradedPath || msaAttempts > 1 ||
               gpuAttempts > 1;
    }

    /** Wait before an MSA worker (0 on a cache hit). */
    double
    msaQueueSeconds() const
    {
        return msaStartSeconds - request.arrivalSeconds;
    }

    /** Wait between MSA completion and a GPU worker. */
    double
    gpuQueueSeconds() const
    {
        return gpuStartSeconds - msaEndSeconds;
    }

    /** Total time spent waiting in queues. */
    double
    queueSeconds() const
    {
        return msaQueueSeconds() + gpuQueueSeconds();
    }

    /** Total time in service (MSA + inference). */
    double
    serviceSeconds() const
    {
        return (msaEndSeconds - msaStartSeconds) +
               (finishSeconds - gpuStartSeconds);
    }

    /** End-to-end latency (finish - arrival). */
    double
    latencySeconds() const
    {
        return finishSeconds - request.arrivalSeconds;
    }
};

} // namespace afsb::serve

#endif // AFSB_SERVE_REQUEST_HH
