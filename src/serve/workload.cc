#include "serve/workload.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "bio/samples.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/str.hh"

namespace afsb::serve {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void
fnvMix(uint64_t &h, uint64_t byte)
{
    h ^= byte;
    h *= kFnvPrime;
}

} // namespace

uint64_t
queryContentHash(const bio::Complex &complex_input, uint32_t variant)
{
    uint64_t h = kFnvOffset;
    for (const auto &chain : complex_input.chains()) {
        fnvMix(h, static_cast<uint64_t>(chain.type()));
        for (uint8_t code : chain.codes())
            fnvMix(h, code);
        fnvMix(h, 0xff); // chain separator
    }
    for (int shift = 0; shift < 32; shift += 8)
        fnvMix(h, (variant >> shift) & 0xff);
    return h;
}

std::vector<MixEntry>
parseMix(const std::string &text)
{
    std::vector<MixEntry> mix;
    for (const auto &field : split(text, ',')) {
        const std::string entry = trim(field);
        if (entry.empty())
            fatal("mix: empty entry in '" + text + "'");
        MixEntry e;
        const auto eq = entry.find('=');
        if (eq == std::string::npos) {
            e.sample = entry;
        } else {
            e.sample = trim(entry.substr(0, eq));
            const std::string w = trim(entry.substr(eq + 1));
            char *end = nullptr;
            e.weight = std::strtod(w.c_str(), &end);
            if (w.empty() || (end && *end != '\0'))
                fatal("mix: malformed weight '" + w + "'");
            if (e.weight <= 0.0)
                fatal("mix: non-positive weight for " + e.sample);
        }
        const auto &names = bio::sampleNames();
        if (std::find(names.begin(), names.end(), e.sample) ==
            names.end())
            fatal("mix: unknown sample '" + e.sample + "'");
        mix.push_back(std::move(e));
    }
    if (mix.empty())
        fatal("mix: no entries in '" + text + "'");
    return mix;
}

std::vector<Request>
generateRequests(const WorkloadSpec &spec)
{
    if (spec.requestsPerSecond <= 0.0)
        fatal("workload: requestsPerSecond must be positive");
    if (spec.durationSeconds <= 0.0)
        fatal("workload: durationSeconds must be positive");
    if (spec.variantsPerSample == 0)
        fatal("workload: variantsPerSample must be >= 1");
    if (spec.mutationRate < 0.0 || spec.mutationRate >= 1.0)
        fatal("workload: mutationRate must be in [0, 1)");

    std::vector<MixEntry> mix = spec.mix;
    if (mix.empty())
        for (const auto &name : bio::sampleNames())
            mix.push_back({name, 1.0});

    std::vector<double> weights;
    weights.reserve(mix.size());
    for (const auto &e : mix)
        weights.push_back(e.weight);

    const bool mutate = spec.mutationRate > 0.0;
    const bool sketch = spec.sketchQueries || mutate;

    // Token counts and content hashes are derived once per
    // (sample, variant); samples themselves are deterministic.
    struct SampleInfo
    {
        size_t tokens = 0;
        std::vector<uint64_t> hashes;          // one per variant
        std::vector<msa::QuerySketch> sketches; // one per variant
        bio::Complex base;                      // mutation source
    };
    std::vector<SampleInfo> infos(mix.size());
    for (size_t i = 0; i < mix.size(); ++i) {
        const auto sample = bio::makeSample(mix[i].sample);
        infos[i].tokens = sample.complex.totalResidues();
        infos[i].hashes.reserve(spec.variantsPerSample);
        for (uint32_t v = 0; v < spec.variantsPerSample; ++v) {
            infos[i].hashes.push_back(
                queryContentHash(sample.complex, v));
            if (sketch && !mutate)
                infos[i].sketches.push_back(
                    msa::sketchComplex(sample.complex, v));
        }
        if (mutate)
            infos[i].base = sample.complex;
    }

    Rng rng(spec.seed);
    std::vector<Request> requests;
    double clock = 0.0;
    while (true) {
        // Exponential inter-arrival gap (inverse-CDF sampling).
        const double u = rng.nextDouble();
        clock += -std::log1p(-u) / spec.requestsPerSecond;
        if (clock >= spec.durationSeconds)
            break;
        const size_t pick = rng.nextWeighted(weights);
        const uint32_t variant = static_cast<uint32_t>(
            rng.nextBounded(spec.variantsPerSample));

        Request r;
        r.id = requests.size();
        r.sample = mix[pick].sample;
        r.variant = variant;
        r.tokens = infos[pick].tokens;
        r.contentHash = infos[pick].hashes[variant];
        r.arrivalSeconds = clock;
        if (mutate) {
            // Near-duplicate arrival: an independent point-mutated
            // copy of the base (sample, variant) query. Substitution
            // only, so the token count (and workload character) is
            // unchanged while the content hash almost always
            // diverges from the base — exactly the traffic an exact
            // content-addressed cache misses and the similarity
            // tier recovers.
            bio::Complex mutated(infos[pick].base.name());
            for (const auto &chain : infos[pick].base.chains()) {
                std::vector<uint8_t> codes = chain.codes();
                const size_t k = bio::alphabetSize(chain.type());
                for (auto &code : codes) {
                    if (rng.nextDouble() >= spec.mutationRate)
                        continue;
                    // Substitute with a *different* symbol so the
                    // realized mutation rate equals the knob.
                    uint8_t sub = static_cast<uint8_t>(
                        rng.nextBounded(k - 1));
                    if (sub >= code)
                        ++sub;
                    code = sub;
                }
                mutated.addChain(bio::Sequence(
                    chain.id(), chain.type(), std::move(codes)));
            }
            r.contentHash = queryContentHash(mutated, variant);
            r.sketch = msa::sketchComplex(mutated, variant);
        } else if (sketch) {
            r.sketch = infos[pick].sketches[variant];
        }
        requests.push_back(std::move(r));
    }
    return requests;
}

} // namespace afsb::serve
