#include "serve/scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::serve {

SchedPolicy
policyByName(const std::string &name)
{
    if (name == "fifo")
        return SchedPolicy::Fifo;
    if (name == "sjf")
        return SchedPolicy::Sjf;
    fatal("unknown scheduling policy '" + name + "' (fifo, sjf)");
}

const char *
policyName(SchedPolicy policy)
{
    return policy == SchedPolicy::Fifo ? "fifo" : "sjf";
}

void
DispatchQueue::push(Request request)
{
    queue_.push_back(std::move(request));
    maxDepth_ = std::max(maxDepth_, queue_.size());
}

namespace {

/** SJF order: shortest predicted job, ties by arrival id. */
bool
sjfBefore(const Request &a, const Request &b)
{
    if (a.tokens != b.tokens)
        return a.tokens < b.tokens;
    return a.id < b.id;
}

} // namespace

Request
DispatchQueue::pop()
{
    if (queue_.empty())
        fatal("DispatchQueue: pop on empty queue");
    auto it = queue_.begin();
    if (policy_ == SchedPolicy::Sjf)
        it = std::min_element(queue_.begin(), queue_.end(),
                              sjfBefore);
    Request out = std::move(*it);
    queue_.erase(it);
    return out;
}

const Request &
DispatchQueue::peek() const
{
    if (queue_.empty())
        fatal("DispatchQueue: peek on empty queue");
    if (policy_ == SchedPolicy::Sjf)
        return *std::min_element(queue_.begin(), queue_.end(),
                                 sjfBefore);
    return queue_.front();
}

size_t
DispatchQueue::countIf(
    const std::function<bool(const Request &)> &accept) const
{
    size_t n = 0;
    for (const auto &r : queue_)
        n += accept(r) ? 1 : 0;
    return n;
}

std::vector<Request>
DispatchQueue::popBatch(
    size_t maxCount,
    const std::function<bool(const Request &)> &accept)
{
    if (queue_.empty())
        fatal("DispatchQueue: popBatch on empty queue");
    if (maxCount == 0)
        fatal("DispatchQueue: popBatch with zero capacity");

    // Visit queued requests in policy order, deterministically.
    std::vector<size_t> order(queue_.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (policy_ == SchedPolicy::Sjf)
        std::sort(order.begin(), order.end(),
                  [this](size_t a, size_t b) {
                      return sjfBefore(queue_[a], queue_[b]);
                  });

    std::vector<size_t> taken;
    taken.push_back(order[0]); // the policy head, unconditionally
    for (size_t k = 1;
         k < order.size() && taken.size() < maxCount; ++k)
        if (accept(queue_[order[k]]))
            taken.push_back(order[k]);

    std::vector<Request> out;
    out.reserve(taken.size());
    for (size_t idx : taken)
        out.push_back(queue_[idx]);
    // Erase back-to-front so earlier indices stay valid.
    std::sort(taken.begin(), taken.end());
    for (size_t k = taken.size(); k-- > 0;)
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(taken[k]));
    return out;
}

void
AdmissionController::release()
{
    panicIf(inSystem_ == 0,
            "AdmissionController: release with empty system");
    --inSystem_;
}

} // namespace afsb::serve
