#include "serve/scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace afsb::serve {

SchedPolicy
policyByName(const std::string &name)
{
    if (name == "fifo")
        return SchedPolicy::Fifo;
    if (name == "sjf")
        return SchedPolicy::Sjf;
    fatal("unknown scheduling policy '" + name + "' (fifo, sjf)");
}

const char *
policyName(SchedPolicy policy)
{
    return policy == SchedPolicy::Fifo ? "fifo" : "sjf";
}

void
DispatchQueue::push(Request request)
{
    queue_.push_back(std::move(request));
    maxDepth_ = std::max(maxDepth_, queue_.size());
}

Request
DispatchQueue::pop()
{
    if (queue_.empty())
        fatal("DispatchQueue: pop on empty queue");
    auto it = queue_.begin();
    if (policy_ == SchedPolicy::Sjf) {
        it = std::min_element(
            queue_.begin(), queue_.end(),
            [](const Request &a, const Request &b) {
                if (a.tokens != b.tokens)
                    return a.tokens < b.tokens;
                return a.id < b.id;
            });
    }
    Request out = std::move(*it);
    queue_.erase(it);
    return out;
}

void
AdmissionController::release()
{
    panicIf(inSystem_ == 0,
            "AdmissionController: release with empty system");
    --inSystem_;
}

} // namespace afsb::serve
