#include "serve/report.hh"

#include <cstdio>

#include "util/str.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace afsb::serve {

SloReport
buildSloReport(const ClusterResult &result)
{
    SloReport report;
    report.offered = result.offered;
    report.completed = result.completed;
    report.degraded = result.degraded;
    report.failed = result.failed;
    report.shed = result.shed;
    report.cacheHitRate = result.cacheStats.hitRate();
    report.cacheEvictions = result.cacheStats.evictions;
    report.cacheEntries = result.cacheEntries;
    report.cacheBytesInUse = result.cacheBytesInUse;
    report.msaUtilization = result.msaUtilization();
    report.gpuUtilization = result.gpuUtilization();
    report.throughputPerHour = result.throughputPerHour();
    report.makespanSeconds = result.makespanSeconds;

    const auto latencies = result.completedLatencies();
    report.latency = percentilesOf(latencies);
    report.meanLatency = meanOf(latencies);
    for (double l : latencies)
        report.maxLatency = std::max(report.maxLatency, l);

    double msaQueue = 0.0, gpuQueue = 0.0, service = 0.0;
    for (const auto &rec : result.records) {
        if (rec.outcome != Outcome::Completed)
            continue;
        msaQueue += rec.msaQueueSeconds();
        gpuQueue += rec.gpuQueueSeconds();
        service += rec.serviceSeconds();
    }
    if (result.completed > 0) {
        const double n = static_cast<double>(result.completed);
        report.meanMsaQueueSeconds = msaQueue / n;
        report.meanGpuQueueSeconds = gpuQueue / n;
        report.meanServiceSeconds = service / n;
    }

    report.faultsEnabled = result.faultsEnabled;
    auto &ft = report.fault;
    ft.injected = result.faultsInjected;
    ft.byKind = result.faultsByKind;
    ft.retries = result.retries;
    ft.timeouts = result.timeouts;
    ft.msaRespawns = result.msaRespawns;
    ft.gpuRespawns = result.gpuRespawns;
    ft.permanentWorkerLosses = result.permanentWorkerLosses;
    ft.cacheCorruptionsDetected = result.cacheStats.corrupted;
    ft.lostServiceSeconds = result.lostServiceSeconds;
    ft.goodputPerHour = result.goodputPerHour();
    ft.p99AllSeconds = percentilesOf(result.servedLatencies()).p99;
    std::vector<double> clean;
    for (const auto &rec : result.records)
        if (rec.outcome == Outcome::Completed &&
            !rec.faultAffected())
            clean.push_back(rec.latencySeconds());
    ft.cleanCompleted = clean.size();
    ft.p99CleanSeconds = percentilesOf(clean).p99;
    return report;
}

void
printSloReport(const SloReport &report, const std::string &title)
{
    TextTable latency(title + " — latency SLO");
    latency.setHeader({"p50 (s)", "p95 (s)", "p99 (s)", "mean (s)",
                       "max (s)"});
    latency.addRow({strformat("%.1f", report.latency.p50),
                    strformat("%.1f", report.latency.p95),
                    strformat("%.1f", report.latency.p99),
                    strformat("%.1f", report.meanLatency),
                    strformat("%.1f", report.maxLatency)});
    latency.print();

    TextTable breakdown(title + " — where the time goes (mean)");
    breakdown.setHeader({"msa queue (s)", "gpu queue (s)",
                         "service (s)", "queue share"});
    const double total = report.meanMsaQueueSeconds +
                         report.meanGpuQueueSeconds +
                         report.meanServiceSeconds;
    breakdown.addRow(
        {strformat("%.1f", report.meanMsaQueueSeconds),
         strformat("%.1f", report.meanGpuQueueSeconds),
         strformat("%.1f", report.meanServiceSeconds),
         strformat("%.1f%%",
                   total > 0.0
                       ? 100.0 *
                             (report.meanMsaQueueSeconds +
                              report.meanGpuQueueSeconds) /
                             total
                       : 0.0)});
    breakdown.print();

    TextTable cluster(title + " — cluster health");
    cluster.setHeader({"offered", "completed", "shed", "shed rate",
                       "cache hits", "msa util", "gpu util",
                       "req/h"});
    cluster.addRow(
        {strformat("%llu",
                   static_cast<unsigned long long>(report.offered)),
         strformat("%llu", static_cast<unsigned long long>(
                               report.completed)),
         strformat("%llu",
                   static_cast<unsigned long long>(report.shed)),
         strformat("%.1f%%", 100.0 * report.shedRate()),
         strformat("%.1f%%", 100.0 * report.cacheHitRate),
         strformat("%.1f%%", 100.0 * report.msaUtilization),
         strformat("%.1f%%", 100.0 * report.gpuUtilization),
         strformat("%.1f", report.throughputPerHour)});
    cluster.print();

    std::printf("MSA cache: %zu entries, %s in use, "
                "%llu evictions\n",
                static_cast<size_t>(report.cacheEntries),
                formatBytes(report.cacheBytesInUse).c_str(),
                static_cast<unsigned long long>(
                    report.cacheEvictions));

    if (!report.faultsEnabled)
        return;
    const auto u64 = [](uint64_t v) {
        return strformat("%llu",
                         static_cast<unsigned long long>(v));
    };
    const auto kindCount = [&](fault::FaultKind k) {
        return u64(report.fault.byKind[static_cast<size_t>(k)]);
    };

    TextTable faults(title + " — injected faults");
    faults.setHeader({"total", "msa crash", "gpu crash",
                      "storage err", "storage spike",
                      "cache corrupt", "timeout"});
    faults.addRow(
        {u64(report.fault.injected),
         kindCount(fault::FaultKind::MsaWorkerCrash),
         kindCount(fault::FaultKind::GpuWorkerCrash),
         kindCount(fault::FaultKind::StorageReadError),
         kindCount(fault::FaultKind::StorageLatencySpike),
         kindCount(fault::FaultKind::CacheCorruption),
         kindCount(fault::FaultKind::RequestTimeout)});
    faults.print();

    TextTable recovery(title + " — recovery");
    recovery.setHeader({"retries", "timeouts", "respawns",
                        "perm lost", "degraded", "failed",
                        "lost svc (s)"});
    recovery.addRow(
        {u64(report.fault.retries), u64(report.fault.timeouts),
         u64(report.fault.msaRespawns + report.fault.gpuRespawns),
         u64(report.fault.permanentWorkerLosses),
         u64(report.degraded), u64(report.failed),
         strformat("%.1f", report.fault.lostServiceSeconds)});
    recovery.print();

    TextTable goodput(title + " — goodput under faults");
    goodput.setHeader({"goodput/h", "req/h", "p99 clean (s)",
                       "p99 all (s)", "clean n"});
    goodput.addRow(
        {strformat("%.1f", report.fault.goodputPerHour),
         strformat("%.1f", report.throughputPerHour),
         strformat("%.1f", report.fault.p99CleanSeconds),
         strformat("%.1f", report.fault.p99AllSeconds),
         u64(report.fault.cleanCompleted)});
    goodput.print();
}

std::string
canonicalSloText(const SloReport &report)
{
    std::string out;
    const auto addU = [&](const char *key, uint64_t v) {
        out += strformat("%s=%llu\n", key,
                         static_cast<unsigned long long>(v));
    };
    const auto addF = [&](const char *key, double v) {
        out += strformat("%s=%.3f\n", key, v);
    };

    addU("offered", report.offered);
    addU("completed", report.completed);
    addU("degraded", report.degraded);
    addU("failed", report.failed);
    addU("shed", report.shed);
    addF("latency_p50_s", report.latency.p50);
    addF("latency_p95_s", report.latency.p95);
    addF("latency_p99_s", report.latency.p99);
    addF("latency_mean_s", report.meanLatency);
    addF("latency_max_s", report.maxLatency);
    addF("mean_msa_queue_s", report.meanMsaQueueSeconds);
    addF("mean_gpu_queue_s", report.meanGpuQueueSeconds);
    addF("mean_service_s", report.meanServiceSeconds);
    addF("cache_hit_rate_pct", 100.0 * report.cacheHitRate);
    addU("cache_evictions", report.cacheEvictions);
    addU("cache_entries", report.cacheEntries);
    addU("cache_bytes", report.cacheBytesInUse);
    addF("msa_util_pct", 100.0 * report.msaUtilization);
    addF("gpu_util_pct", 100.0 * report.gpuUtilization);
    addF("throughput_per_h", report.throughputPerHour);
    addF("makespan_s", report.makespanSeconds);

    if (!report.faultsEnabled)
        return out;
    addU("faults_injected", report.fault.injected);
    for (size_t k = 0; k < fault::kFaultKinds; ++k)
        addU(strformat("fault_%s",
                       faultKindName(
                           static_cast<fault::FaultKind>(k)))
                 .c_str(),
             report.fault.byKind[k]);
    addU("retries", report.fault.retries);
    addU("timeouts", report.fault.timeouts);
    addU("msa_respawns", report.fault.msaRespawns);
    addU("gpu_respawns", report.fault.gpuRespawns);
    addU("permanent_worker_losses",
         report.fault.permanentWorkerLosses);
    addU("cache_corruptions_detected",
         report.fault.cacheCorruptionsDetected);
    addF("lost_service_s", report.fault.lostServiceSeconds);
    addF("goodput_per_h", report.fault.goodputPerHour);
    addF("latency_p99_all_s", report.fault.p99AllSeconds);
    addF("latency_p99_clean_s", report.fault.p99CleanSeconds);
    addU("clean_completed", report.fault.cleanCompleted);
    return out;
}

CsvWriter
requestCsv(const ClusterResult &result)
{
    CsvWriter csv;
    csv.setHeader({"id", "sample", "variant", "tokens", "arrival_s",
                   "outcome", "msa_cache_hit", "degraded_path",
                   "msa_attempts", "gpu_attempts", "faults_seen",
                   "msa_queue_s", "msa_service_s", "gpu_queue_s",
                   "gpu_service_s", "xla_compile_s", "latency_s"});
    for (const auto &rec : result.records) {
        const bool served = rec.outcome == Outcome::Completed ||
                            rec.outcome == Outcome::Degraded;
        csv.addRow(
            {strformat("%llu", static_cast<unsigned long long>(
                                   rec.request.id)),
             rec.request.sample,
             strformat("%u", rec.request.variant),
             strformat("%zu", rec.request.tokens),
             strformat("%.3f", rec.request.arrivalSeconds),
             outcomeName(rec.outcome),
             rec.msaCacheHit ? "1" : "0",
             rec.degradedPath ? "1" : "0",
             strformat("%u", rec.msaAttempts),
             strformat("%u", rec.gpuAttempts),
             strformat("%u", rec.faultsSeen),
             strformat("%.3f",
                       served ? rec.msaQueueSeconds() : 0.0),
             strformat("%.3f",
                       served ? rec.msaEndSeconds -
                                    rec.msaStartSeconds
                              : 0.0),
             strformat("%.3f",
                       served ? rec.gpuQueueSeconds() : 0.0),
             strformat("%.3f",
                       served ? rec.finishSeconds -
                                    rec.gpuStartSeconds
                              : 0.0),
             strformat("%.3f", rec.compileSeconds),
             strformat("%.3f",
                       served ? rec.latencySeconds() : 0.0)});
    }
    return csv;
}

} // namespace afsb::serve
