#include "serve/report.hh"

#include <cstdio>

#include "util/str.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace afsb::serve {

SloReport
buildSloReport(const ClusterResult &result)
{
    SloReport report;
    report.offered = result.offered;
    report.completed = result.completed;
    report.shed = result.shed;
    report.cacheHitRate = result.cacheStats.hitRate();
    report.cacheEvictions = result.cacheStats.evictions;
    report.cacheEntries = result.cacheEntries;
    report.cacheBytesInUse = result.cacheBytesInUse;
    report.msaUtilization = result.msaUtilization();
    report.gpuUtilization = result.gpuUtilization();
    report.throughputPerHour = result.throughputPerHour();
    report.makespanSeconds = result.makespanSeconds;

    const auto latencies = result.completedLatencies();
    report.latency = percentilesOf(latencies);
    report.meanLatency = meanOf(latencies);
    for (double l : latencies)
        report.maxLatency = std::max(report.maxLatency, l);

    double msaQueue = 0.0, gpuQueue = 0.0, service = 0.0;
    for (const auto &rec : result.records) {
        if (rec.outcome != Outcome::Completed)
            continue;
        msaQueue += rec.msaQueueSeconds();
        gpuQueue += rec.gpuQueueSeconds();
        service += rec.serviceSeconds();
    }
    if (result.completed > 0) {
        const double n = static_cast<double>(result.completed);
        report.meanMsaQueueSeconds = msaQueue / n;
        report.meanGpuQueueSeconds = gpuQueue / n;
        report.meanServiceSeconds = service / n;
    }
    return report;
}

void
printSloReport(const SloReport &report, const std::string &title)
{
    TextTable latency(title + " — latency SLO");
    latency.setHeader({"p50 (s)", "p95 (s)", "p99 (s)", "mean (s)",
                       "max (s)"});
    latency.addRow({strformat("%.1f", report.latency.p50),
                    strformat("%.1f", report.latency.p95),
                    strformat("%.1f", report.latency.p99),
                    strformat("%.1f", report.meanLatency),
                    strformat("%.1f", report.maxLatency)});
    latency.print();

    TextTable breakdown(title + " — where the time goes (mean)");
    breakdown.setHeader({"msa queue (s)", "gpu queue (s)",
                         "service (s)", "queue share"});
    const double total = report.meanMsaQueueSeconds +
                         report.meanGpuQueueSeconds +
                         report.meanServiceSeconds;
    breakdown.addRow(
        {strformat("%.1f", report.meanMsaQueueSeconds),
         strformat("%.1f", report.meanGpuQueueSeconds),
         strformat("%.1f", report.meanServiceSeconds),
         strformat("%.1f%%",
                   total > 0.0
                       ? 100.0 *
                             (report.meanMsaQueueSeconds +
                              report.meanGpuQueueSeconds) /
                             total
                       : 0.0)});
    breakdown.print();

    TextTable cluster(title + " — cluster health");
    cluster.setHeader({"offered", "completed", "shed", "shed rate",
                       "cache hits", "msa util", "gpu util",
                       "req/h"});
    cluster.addRow(
        {strformat("%llu",
                   static_cast<unsigned long long>(report.offered)),
         strformat("%llu", static_cast<unsigned long long>(
                               report.completed)),
         strformat("%llu",
                   static_cast<unsigned long long>(report.shed)),
         strformat("%.1f%%", 100.0 * report.shedRate()),
         strformat("%.1f%%", 100.0 * report.cacheHitRate),
         strformat("%.1f%%", 100.0 * report.msaUtilization),
         strformat("%.1f%%", 100.0 * report.gpuUtilization),
         strformat("%.1f", report.throughputPerHour)});
    cluster.print();

    std::printf("MSA cache: %zu entries, %s in use, "
                "%llu evictions\n",
                static_cast<size_t>(report.cacheEntries),
                formatBytes(report.cacheBytesInUse).c_str(),
                static_cast<unsigned long long>(
                    report.cacheEvictions));
}

CsvWriter
requestCsv(const ClusterResult &result)
{
    CsvWriter csv;
    csv.setHeader({"id", "sample", "variant", "tokens", "arrival_s",
                   "outcome", "msa_cache_hit", "msa_queue_s",
                   "msa_service_s", "gpu_queue_s", "gpu_service_s",
                   "xla_compile_s", "latency_s"});
    for (const auto &rec : result.records) {
        const bool done = rec.outcome == Outcome::Completed;
        csv.addRow(
            {strformat("%llu", static_cast<unsigned long long>(
                                   rec.request.id)),
             rec.request.sample,
             strformat("%u", rec.request.variant),
             strformat("%zu", rec.request.tokens),
             strformat("%.3f", rec.request.arrivalSeconds),
             done ? "completed" : "shed",
             rec.msaCacheHit ? "1" : "0",
             strformat("%.3f", done ? rec.msaQueueSeconds() : 0.0),
             strformat("%.3f",
                       done ? rec.msaEndSeconds -
                                  rec.msaStartSeconds
                            : 0.0),
             strformat("%.3f", done ? rec.gpuQueueSeconds() : 0.0),
             strformat("%.3f",
                       done ? rec.finishSeconds -
                                  rec.gpuStartSeconds
                            : 0.0),
             strformat("%.3f", rec.compileSeconds),
             strformat("%.3f",
                       done ? rec.latencySeconds() : 0.0)});
    }
    return csv;
}

} // namespace afsb::serve
