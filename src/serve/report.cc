#include "serve/report.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace afsb::serve {

SloReport
buildSloReport(const ClusterResult &result)
{
    SloReport report;
    report.offered = result.offered;
    report.completed = result.completed;
    report.degraded = result.degraded;
    report.failed = result.failed;
    report.shed = result.shed;
    report.cacheHitRate = result.cacheStats.hitRate();
    report.cacheEvictions = result.cacheStats.evictions;
    report.cacheEntries = result.cacheEntries;
    report.cacheBytesInUse = result.cacheBytesInUse;
    report.msaUtilization = result.msaUtilization();
    report.gpuUtilization = result.gpuUtilization();
    report.throughputPerHour = result.throughputPerHour();
    report.makespanSeconds = result.makespanSeconds;

    const auto latencies = result.completedLatencies();
    report.latency = percentilesOf(latencies);
    report.meanLatency = meanOf(latencies);
    for (double l : latencies)
        report.maxLatency = std::max(report.maxLatency, l);

    double msaQueue = 0.0, gpuQueue = 0.0, service = 0.0;
    for (const auto &rec : result.records) {
        if (rec.outcome != Outcome::Completed)
            continue;
        msaQueue += rec.msaQueueSeconds();
        gpuQueue += rec.gpuQueueSeconds();
        service += rec.serviceSeconds();
    }
    if (result.completed > 0) {
        const double n = static_cast<double>(result.completed);
        report.meanMsaQueueSeconds = msaQueue / n;
        report.meanGpuQueueSeconds = gpuQueue / n;
        report.meanServiceSeconds = service / n;
    }

    report.simCacheEnabled = result.simCacheEnabled;
    if (result.simCacheEnabled) {
        auto &sm = report.sim;
        sm.threshold = result.simCacheThreshold;
        sm.approxLookups = result.cacheStats.approxLookups;
        sm.approxHits = result.approxHits;
        sm.deltaFallbacks = result.deltaFallbacks;
        sm.approxHitRate = result.cacheStats.approxHitRate();
        sm.deltaSecondsSaved = result.deltaSecondsSaved;
        sm.remoteApproxProbes = result.remoteApproxProbes;
        sm.remoteApproxHits = result.remoteApproxHits;
    }

    report.batchingEnabled = result.batchingEnabled;
    if (result.batchingEnabled) {
        auto &bt = report.batch;
        bt.batchesFormed = result.batchesFormed;
        bt.batchedRequests = result.batchedRequests;
        bt.meanOccupancy = result.meanBatchOccupancy();
        bt.maxOccupancy = result.maxBatchOccupancy;
        bt.paddingWastePct = 100.0 * result.paddingWasteFraction();
        bt.batchCompiles = result.batchCompiles;
        bt.compileAmortization = result.compileAmortizationFactor();
        bt.vramSplits = result.vramBatchSplits;
        bt.gpusPerNode = result.gpusPerNode;
    }

    report.faultsEnabled = result.faultsEnabled;
    auto &ft = report.fault;
    ft.injected = result.faultsInjected;
    ft.byKind = result.faultsByKind;
    ft.retries = result.retries;
    ft.timeouts = result.timeouts;
    ft.msaRespawns = result.msaRespawns;
    ft.gpuRespawns = result.gpuRespawns;
    ft.permanentWorkerLosses = result.permanentWorkerLosses;
    ft.cacheCorruptionsDetected = result.cacheStats.corrupted;
    ft.lostServiceSeconds = result.lostServiceSeconds;
    ft.goodputPerHour = result.goodputPerHour();
    ft.p99AllSeconds = percentilesOf(result.servedLatencies()).p99;
    std::vector<double> clean;
    for (const auto &rec : result.records)
        if (rec.outcome == Outcome::Completed &&
            !rec.faultAffected())
            clean.push_back(rec.latencySeconds());
    ft.cleanCompleted = clean.size();
    ft.p99CleanSeconds = percentilesOf(clean).p99;

    report.multiNode = result.multiNode;
    if (result.multiNode) {
        auto &nt = report.net;
        nt.nodes = result.nodes;
        nt.nodeKills = result.nodeKills;
        nt.nodeRebuilds = result.nodeRebuilds;
        nt.rerouted = result.rerouted;
        nt.commMessages = result.comm.messages;
        nt.commBytes = result.comm.bytes;
        nt.commSerializeSeconds = result.comm.serializeSeconds;
        nt.commTransferSeconds = result.comm.transferSeconds;
        nt.commLatencySeconds = result.comm.latencySeconds;
        const double busy =
            result.msaBusySeconds + result.gpuBusySeconds;
        const double comm = result.comm.commSeconds();
        nt.commShare =
            busy + comm > 0.0 ? comm / (busy + comm) : 0.0;
        nt.remoteCacheLookups = result.remoteCacheLookups;
        nt.remoteCacheHits = result.remoteCacheHits;

        std::vector<double> local, remote;
        for (const auto &rec : result.records) {
            if (rec.outcome != Outcome::Completed)
                continue;
            (rec.remoteCache ? remote : local)
                .push_back(rec.latencySeconds());
        }
        nt.p99LocalSeconds = percentilesOf(local).p99;
        nt.p99RemoteSeconds = percentilesOf(remote).p99;

        for (const auto &ns : result.nodeStats) {
            SloReport::NetSection::NodeLine line;
            line.routed = ns.routed;
            const double msaCap = result.makespanSeconds *
                                  static_cast<double>(ns.msaWorkers);
            const double gpuCap = result.makespanSeconds *
                                  static_cast<double>(ns.gpuWorkers);
            line.msaUtilization =
                msaCap > 0.0 ? ns.msaBusySeconds / msaCap : 0.0;
            line.gpuUtilization =
                gpuCap > 0.0 ? ns.gpuBusySeconds / gpuCap : 0.0;
            nt.perNode.push_back(line);
        }
        for (const auto &ls : result.links) {
            SloReport::NetSection::LinkLine line;
            line.src = ls.src;
            line.dst = ls.dst;
            line.messages = ls.messages;
            line.bytes = ls.bytes;
            line.utilization =
                result.makespanSeconds > 0.0
                    ? ls.busySeconds / result.makespanSeconds
                    : 0.0;
            nt.links.push_back(line);
        }
    }
    return report;
}

void
printSloReport(const SloReport &report, const std::string &title)
{
    TextTable latency(title + " — latency SLO");
    latency.setHeader({"p50 (s)", "p95 (s)", "p99 (s)", "mean (s)",
                       "max (s)"});
    latency.addRow({strformat("%.1f", report.latency.p50),
                    strformat("%.1f", report.latency.p95),
                    strformat("%.1f", report.latency.p99),
                    strformat("%.1f", report.meanLatency),
                    strformat("%.1f", report.maxLatency)});
    latency.print();

    TextTable breakdown(title + " — where the time goes (mean)");
    breakdown.setHeader({"msa queue (s)", "gpu queue (s)",
                         "service (s)", "queue share"});
    const double total = report.meanMsaQueueSeconds +
                         report.meanGpuQueueSeconds +
                         report.meanServiceSeconds;
    breakdown.addRow(
        {strformat("%.1f", report.meanMsaQueueSeconds),
         strformat("%.1f", report.meanGpuQueueSeconds),
         strformat("%.1f", report.meanServiceSeconds),
         strformat("%.1f%%",
                   total > 0.0
                       ? 100.0 *
                             (report.meanMsaQueueSeconds +
                              report.meanGpuQueueSeconds) /
                             total
                       : 0.0)});
    breakdown.print();

    TextTable cluster(title + " — cluster health");
    cluster.setHeader({"offered", "completed", "shed", "shed rate",
                       "cache hits", "msa util", "gpu util",
                       "req/h"});
    cluster.addRow(
        {strformat("%llu",
                   static_cast<unsigned long long>(report.offered)),
         strformat("%llu", static_cast<unsigned long long>(
                               report.completed)),
         strformat("%llu",
                   static_cast<unsigned long long>(report.shed)),
         strformat("%.1f%%", 100.0 * report.shedRate()),
         strformat("%.1f%%", 100.0 * report.cacheHitRate),
         strformat("%.1f%%", 100.0 * report.msaUtilization),
         strformat("%.1f%%", 100.0 * report.gpuUtilization),
         strformat("%.1f", report.throughputPerHour)});
    cluster.print();

    std::printf("MSA cache: %zu entries, %s in use, "
                "%llu evictions\n",
                static_cast<size_t>(report.cacheEntries),
                formatBytes(report.cacheBytesInUse).c_str(),
                static_cast<unsigned long long>(
                    report.cacheEvictions));

    if (report.simCacheEnabled) {
        const auto s64 = [](uint64_t v) {
            return strformat("%llu",
                             static_cast<unsigned long long>(v));
        };
        const auto &sm = report.sim;
        TextTable sim(title + " — similarity cache tier");
        sim.setHeader({"threshold", "probes", "approx hits",
                       "fallbacks", "probe accept", "msa saved (s)",
                       "remote probes", "remote hits"});
        sim.addRow({strformat("%.2f", sm.threshold),
                    s64(sm.approxLookups), s64(sm.approxHits),
                    s64(sm.deltaFallbacks),
                    strformat("%.1f%%", 100.0 * sm.approxHitRate),
                    strformat("%.1f", sm.deltaSecondsSaved),
                    s64(sm.remoteApproxProbes),
                    s64(sm.remoteApproxHits)});
        sim.print();
    }

    if (report.batchingEnabled) {
        const auto b64 = [](uint64_t v) {
            return strformat("%llu",
                             static_cast<unsigned long long>(v));
        };
        const auto &bt = report.batch;
        TextTable batching(title + " — continuous batching");
        batching.setHeader({"batches", "batched reqs", "occ mean",
                            "occ max", "pad waste", "compiles",
                            "compile amort", "vram splits",
                            "gpus/node"});
        batching.addRow(
            {b64(bt.batchesFormed), b64(bt.batchedRequests),
             strformat("%.2f", bt.meanOccupancy),
             b64(bt.maxOccupancy),
             strformat("%.1f%%", bt.paddingWastePct),
             b64(bt.batchCompiles),
             strformat("%.2fx", bt.compileAmortization),
             b64(bt.vramSplits), b64(bt.gpusPerNode)});
        batching.print();
    }

    if (report.multiNode) {
        const auto n64 = [](uint64_t v) {
            return strformat("%llu",
                             static_cast<unsigned long long>(v));
        };
        const auto &nt = report.net;
        TextTable xnode(title + " — cross-node");
        xnode.setHeader({"nodes", "comm msgs", "comm bytes",
                         "comm share", "remote lookups",
                         "remote hits", "rerouted", "kills"});
        xnode.addRow(
            {n64(nt.nodes), n64(nt.commMessages),
             formatBytes(nt.commBytes),
             strformat("%.1f%%", 100.0 * nt.commShare),
             n64(nt.remoteCacheLookups), n64(nt.remoteCacheHits),
             n64(nt.rerouted), n64(nt.nodeKills)});
        xnode.print();

        TextTable perNode(title + " — per node");
        perNode.setHeader(
            {"node", "routed", "msa util", "gpu util"});
        for (size_t i = 0; i < nt.perNode.size(); ++i)
            perNode.addRow(
                {strformat("%zu", i), n64(nt.perNode[i].routed),
                 strformat("%.1f%%",
                           100.0 * nt.perNode[i].msaUtilization),
                 strformat("%.1f%%",
                           100.0 * nt.perNode[i].gpuUtilization)});
        perNode.print();

        std::printf("p99 local-cache %.1f s, remote-cache %.1f s\n",
                    nt.p99LocalSeconds, nt.p99RemoteSeconds);
    }

    if (!report.faultsEnabled)
        return;
    const auto u64 = [](uint64_t v) {
        return strformat("%llu",
                         static_cast<unsigned long long>(v));
    };
    const auto kindCount = [&](fault::FaultKind k) {
        return u64(report.fault.byKind[static_cast<size_t>(k)]);
    };

    TextTable faults(title + " — injected faults");
    faults.setHeader({"total", "msa crash", "gpu crash",
                      "storage err", "storage spike",
                      "cache corrupt", "timeout"});
    faults.addRow(
        {u64(report.fault.injected),
         kindCount(fault::FaultKind::MsaWorkerCrash),
         kindCount(fault::FaultKind::GpuWorkerCrash),
         kindCount(fault::FaultKind::StorageReadError),
         kindCount(fault::FaultKind::StorageLatencySpike),
         kindCount(fault::FaultKind::CacheCorruption),
         kindCount(fault::FaultKind::RequestTimeout)});
    faults.print();

    TextTable recovery(title + " — recovery");
    recovery.setHeader({"retries", "timeouts", "respawns",
                        "perm lost", "degraded", "failed",
                        "lost svc (s)"});
    recovery.addRow(
        {u64(report.fault.retries), u64(report.fault.timeouts),
         u64(report.fault.msaRespawns + report.fault.gpuRespawns),
         u64(report.fault.permanentWorkerLosses),
         u64(report.degraded), u64(report.failed),
         strformat("%.1f", report.fault.lostServiceSeconds)});
    recovery.print();

    TextTable goodput(title + " — goodput under faults");
    goodput.setHeader({"goodput/h", "req/h", "p99 clean (s)",
                       "p99 all (s)", "clean n"});
    goodput.addRow(
        {strformat("%.1f", report.fault.goodputPerHour),
         strformat("%.1f", report.throughputPerHour),
         strformat("%.1f", report.fault.p99CleanSeconds),
         strformat("%.1f", report.fault.p99AllSeconds),
         u64(report.fault.cleanCompleted)});
    goodput.print();
}

std::string
canonicalSloText(const SloReport &report)
{
    std::string out;
    const auto addU = [&](const char *key, uint64_t v) {
        out += strformat("%s=%llu\n", key,
                         static_cast<unsigned long long>(v));
    };
    const auto addF = [&](const char *key, double v) {
        out += strformat("%s=%.3f\n", key, v);
    };

    addU("offered", report.offered);
    addU("completed", report.completed);
    addU("degraded", report.degraded);
    addU("failed", report.failed);
    addU("shed", report.shed);
    addF("latency_p50_s", report.latency.p50);
    addF("latency_p95_s", report.latency.p95);
    addF("latency_p99_s", report.latency.p99);
    addF("latency_mean_s", report.meanLatency);
    addF("latency_max_s", report.maxLatency);
    addF("mean_msa_queue_s", report.meanMsaQueueSeconds);
    addF("mean_gpu_queue_s", report.meanGpuQueueSeconds);
    addF("mean_service_s", report.meanServiceSeconds);
    addF("cache_hit_rate_pct", 100.0 * report.cacheHitRate);
    addU("cache_evictions", report.cacheEvictions);
    addU("cache_entries", report.cacheEntries);
    addU("cache_bytes", report.cacheBytesInUse);
    addF("msa_util_pct", 100.0 * report.msaUtilization);
    addF("gpu_util_pct", 100.0 * report.gpuUtilization);
    addF("throughput_per_h", report.throughputPerHour);
    addF("makespan_s", report.makespanSeconds);

    if (report.simCacheEnabled) {
        const auto &sm = report.sim;
        addF("sim_cache_threshold", sm.threshold);
        addU("sim_approx_lookups", sm.approxLookups);
        addU("sim_approx_hits", sm.approxHits);
        addU("sim_delta_fallbacks", sm.deltaFallbacks);
        addF("sim_approx_hit_rate_pct", 100.0 * sm.approxHitRate);
        addF("sim_delta_saved_s", sm.deltaSecondsSaved);
        addU("sim_remote_probes", sm.remoteApproxProbes);
        addU("sim_remote_hits", sm.remoteApproxHits);
    }
    if (report.batchingEnabled) {
        const auto &bt = report.batch;
        addU("batches_formed", bt.batchesFormed);
        addU("batched_requests", bt.batchedRequests);
        addF("batch_occupancy_mean", bt.meanOccupancy);
        addU("batch_occupancy_max", bt.maxOccupancy);
        addF("batch_padding_waste_pct", bt.paddingWastePct);
        addU("batch_compiles", bt.batchCompiles);
        addF("batch_compile_amortization", bt.compileAmortization);
        addU("batch_vram_splits", bt.vramSplits);
        addU("batch_gpus_per_node", bt.gpusPerNode);
    }
    if (report.faultsEnabled) {
        addU("faults_injected", report.fault.injected);
        for (size_t k = 0; k < fault::kFaultKinds; ++k)
            addU(strformat("fault_%s",
                           faultKindName(
                               static_cast<fault::FaultKind>(k)))
                     .c_str(),
                 report.fault.byKind[k]);
        addU("retries", report.fault.retries);
        addU("timeouts", report.fault.timeouts);
        addU("msa_respawns", report.fault.msaRespawns);
        addU("gpu_respawns", report.fault.gpuRespawns);
        addU("permanent_worker_losses",
             report.fault.permanentWorkerLosses);
        addU("cache_corruptions_detected",
             report.fault.cacheCorruptionsDetected);
        addF("lost_service_s", report.fault.lostServiceSeconds);
        addF("goodput_per_h", report.fault.goodputPerHour);
        addF("latency_p99_all_s", report.fault.p99AllSeconds);
        addF("latency_p99_clean_s", report.fault.p99CleanSeconds);
        addU("clean_completed", report.fault.cleanCompleted);
    }
    if (report.multiNode) {
        const auto &nt = report.net;
        addU("nodes", nt.nodes);
        addU("node_kills", nt.nodeKills);
        addU("node_rebuilds", nt.nodeRebuilds);
        addU("rerouted", nt.rerouted);
        addU("comm_messages", nt.commMessages);
        addU("comm_bytes", nt.commBytes);
        addF("comm_serialize_s", nt.commSerializeSeconds);
        addF("comm_transfer_s", nt.commTransferSeconds);
        addF("comm_latency_s", nt.commLatencySeconds);
        addF("comm_share_pct", 100.0 * nt.commShare);
        addU("remote_cache_lookups", nt.remoteCacheLookups);
        addU("remote_cache_hits", nt.remoteCacheHits);
        addF("latency_p99_local_s", nt.p99LocalSeconds);
        addF("latency_p99_remote_s", nt.p99RemoteSeconds);
        for (size_t i = 0; i < nt.perNode.size(); ++i) {
            addU(strformat("node_%zu_routed", i).c_str(),
                 nt.perNode[i].routed);
            addF(strformat("node_%zu_msa_util_pct", i).c_str(),
                 100.0 * nt.perNode[i].msaUtilization);
            addF(strformat("node_%zu_gpu_util_pct", i).c_str(),
                 100.0 * nt.perNode[i].gpuUtilization);
        }
        for (const auto &l : nt.links) {
            addU(strformat("link_%u_%u_messages", l.src, l.dst)
                     .c_str(),
                 l.messages);
            addU(strformat("link_%u_%u_bytes", l.src, l.dst)
                     .c_str(),
                 l.bytes);
            addF(strformat("link_%u_%u_util_pct", l.src, l.dst)
                     .c_str(),
                 100.0 * l.utilization);
        }
    }
    return out;
}

namespace {

/**
 * Sequential cursor over key=value lines; parseSloText consumes
 * keys in exactly the order canonicalSloText emits them, so any
 * reordering, omission, or extra line is a hard error.
 */
class KvCursor
{
  public:
    explicit KvCursor(const std::string &text)
    {
        size_t start = 0;
        while (start < text.size()) {
            size_t end = text.find('\n', start);
            if (end == std::string::npos)
                fatal("slo parse: missing trailing newline");
            const std::string line =
                text.substr(start, end - start);
            start = end + 1;
            const size_t eq = line.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("slo parse: malformed line '" + line + "'");
            kv_.emplace_back(line.substr(0, eq),
                             line.substr(eq + 1));
        }
    }

    bool done() const { return pos_ >= kv_.size(); }

    const std::string &
    peekKey() const
    {
        if (done())
            fatal("slo parse: unexpected end of text");
        return kv_[pos_].first;
    }

    uint64_t
    nextU(const std::string &key)
    {
        const std::string v = nextValue(key);
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0')
            fatal("slo parse: bad integer for '" + key + "'");
        return parsed;
    }

    double
    nextF(const std::string &key)
    {
        const std::string v = nextValue(key);
        char *end = nullptr;
        const double parsed = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0')
            fatal("slo parse: bad number for '" + key + "'");
        return parsed;
    }

  private:
    std::string
    nextValue(const std::string &key)
    {
        if (done())
            fatal("slo parse: expected '" + key +
                  "', got end of text");
        if (kv_[pos_].first != key)
            fatal("slo parse: expected '" + key + "', got '" +
                  kv_[pos_].first + "'");
        return kv_[pos_++].second;
    }

    std::vector<std::pair<std::string, std::string>> kv_;
    size_t pos_ = 0;
};

} // namespace

SloReport
parseSloText(const std::string &text)
{
    KvCursor in(text);
    SloReport r;
    r.offered = in.nextU("offered");
    r.completed = in.nextU("completed");
    r.degraded = in.nextU("degraded");
    r.failed = in.nextU("failed");
    r.shed = in.nextU("shed");
    r.latency.p50 = in.nextF("latency_p50_s");
    r.latency.p95 = in.nextF("latency_p95_s");
    r.latency.p99 = in.nextF("latency_p99_s");
    r.meanLatency = in.nextF("latency_mean_s");
    r.maxLatency = in.nextF("latency_max_s");
    r.meanMsaQueueSeconds = in.nextF("mean_msa_queue_s");
    r.meanGpuQueueSeconds = in.nextF("mean_gpu_queue_s");
    r.meanServiceSeconds = in.nextF("mean_service_s");
    r.cacheHitRate = in.nextF("cache_hit_rate_pct") / 100.0;
    r.cacheEvictions = in.nextU("cache_evictions");
    r.cacheEntries = in.nextU("cache_entries");
    r.cacheBytesInUse = in.nextU("cache_bytes");
    r.msaUtilization = in.nextF("msa_util_pct") / 100.0;
    r.gpuUtilization = in.nextF("gpu_util_pct") / 100.0;
    r.throughputPerHour = in.nextF("throughput_per_h");
    r.makespanSeconds = in.nextF("makespan_s");

    if (!in.done() && in.peekKey() == "sim_cache_threshold") {
        r.simCacheEnabled = true;
        auto &sm = r.sim;
        sm.threshold = in.nextF("sim_cache_threshold");
        sm.approxLookups = in.nextU("sim_approx_lookups");
        sm.approxHits = in.nextU("sim_approx_hits");
        sm.deltaFallbacks = in.nextU("sim_delta_fallbacks");
        sm.approxHitRate =
            in.nextF("sim_approx_hit_rate_pct") / 100.0;
        sm.deltaSecondsSaved = in.nextF("sim_delta_saved_s");
        sm.remoteApproxProbes = in.nextU("sim_remote_probes");
        sm.remoteApproxHits = in.nextU("sim_remote_hits");
    }

    if (!in.done() && in.peekKey() == "batches_formed") {
        r.batchingEnabled = true;
        auto &bt = r.batch;
        bt.batchesFormed = in.nextU("batches_formed");
        bt.batchedRequests = in.nextU("batched_requests");
        bt.meanOccupancy = in.nextF("batch_occupancy_mean");
        bt.maxOccupancy = in.nextU("batch_occupancy_max");
        bt.paddingWastePct = in.nextF("batch_padding_waste_pct");
        bt.batchCompiles = in.nextU("batch_compiles");
        bt.compileAmortization =
            in.nextF("batch_compile_amortization");
        bt.vramSplits = in.nextU("batch_vram_splits");
        bt.gpusPerNode =
            static_cast<uint32_t>(in.nextU("batch_gpus_per_node"));
    }

    if (!in.done() && in.peekKey() == "faults_injected") {
        r.faultsEnabled = true;
        auto &ft = r.fault;
        ft.injected = in.nextU("faults_injected");
        for (size_t k = 0; k < fault::kFaultKinds; ++k)
            ft.byKind[k] = in.nextU(strformat(
                "fault_%s",
                faultKindName(static_cast<fault::FaultKind>(k))));
        ft.retries = in.nextU("retries");
        ft.timeouts = in.nextU("timeouts");
        ft.msaRespawns = in.nextU("msa_respawns");
        ft.gpuRespawns = in.nextU("gpu_respawns");
        ft.permanentWorkerLosses =
            in.nextU("permanent_worker_losses");
        ft.cacheCorruptionsDetected =
            in.nextU("cache_corruptions_detected");
        ft.lostServiceSeconds = in.nextF("lost_service_s");
        ft.goodputPerHour = in.nextF("goodput_per_h");
        ft.p99AllSeconds = in.nextF("latency_p99_all_s");
        ft.p99CleanSeconds = in.nextF("latency_p99_clean_s");
        ft.cleanCompleted = in.nextU("clean_completed");
    }

    if (!in.done() && in.peekKey() == "nodes") {
        r.multiNode = true;
        auto &nt = r.net;
        nt.nodes = static_cast<uint32_t>(in.nextU("nodes"));
        nt.nodeKills = in.nextU("node_kills");
        nt.nodeRebuilds = in.nextU("node_rebuilds");
        nt.rerouted = in.nextU("rerouted");
        nt.commMessages = in.nextU("comm_messages");
        nt.commBytes = in.nextU("comm_bytes");
        nt.commSerializeSeconds = in.nextF("comm_serialize_s");
        nt.commTransferSeconds = in.nextF("comm_transfer_s");
        nt.commLatencySeconds = in.nextF("comm_latency_s");
        nt.commShare = in.nextF("comm_share_pct") / 100.0;
        nt.remoteCacheLookups = in.nextU("remote_cache_lookups");
        nt.remoteCacheHits = in.nextU("remote_cache_hits");
        nt.p99LocalSeconds = in.nextF("latency_p99_local_s");
        nt.p99RemoteSeconds = in.nextF("latency_p99_remote_s");
        for (size_t i = 0;
             !in.done() &&
             in.peekKey() == strformat("node_%zu_routed", i);
             ++i) {
            SloReport::NetSection::NodeLine line;
            line.routed =
                in.nextU(strformat("node_%zu_routed", i));
            line.msaUtilization =
                in.nextF(strformat("node_%zu_msa_util_pct", i)) /
                100.0;
            line.gpuUtilization =
                in.nextF(strformat("node_%zu_gpu_util_pct", i)) /
                100.0;
            nt.perNode.push_back(line);
        }
        while (!in.done() &&
               in.peekKey().compare(0, 5, "link_") == 0) {
            unsigned src = 0, dst = 0;
            if (std::sscanf(in.peekKey().c_str(),
                            "link_%u_%u_messages", &src,
                            &dst) != 2)
                fatal("slo parse: malformed link key '" +
                      in.peekKey() + "'");
            SloReport::NetSection::LinkLine line;
            line.src = src;
            line.dst = dst;
            line.messages = in.nextU(
                strformat("link_%u_%u_messages", src, dst));
            line.bytes =
                in.nextU(strformat("link_%u_%u_bytes", src, dst));
            line.utilization =
                in.nextF(
                    strformat("link_%u_%u_util_pct", src, dst)) /
                100.0;
            nt.links.push_back(line);
        }
    }

    if (!in.done())
        fatal("slo parse: unexpected key '" + in.peekKey() + "'");
    return r;
}

CsvWriter
requestCsv(const ClusterResult &result)
{
    CsvWriter csv;
    csv.setHeader({"id", "sample", "variant", "tokens", "arrival_s",
                   "outcome", "msa_cache_hit", "degraded_path",
                   "msa_attempts", "gpu_attempts", "faults_seen",
                   "msa_queue_s", "msa_service_s", "gpu_queue_s",
                   "gpu_service_s", "xla_compile_s", "batch_size",
                   "latency_s"});
    for (const auto &rec : result.records) {
        const bool served = rec.outcome == Outcome::Completed ||
                            rec.outcome == Outcome::Degraded;
        csv.addRow(
            {strformat("%llu", static_cast<unsigned long long>(
                                   rec.request.id)),
             rec.request.sample,
             strformat("%u", rec.request.variant),
             strformat("%zu", rec.request.tokens),
             strformat("%.3f", rec.request.arrivalSeconds),
             outcomeName(rec.outcome),
             rec.msaCacheHit ? "1" : "0",
             rec.degradedPath ? "1" : "0",
             strformat("%u", rec.msaAttempts),
             strformat("%u", rec.gpuAttempts),
             strformat("%u", rec.faultsSeen),
             strformat("%.3f",
                       served ? rec.msaQueueSeconds() : 0.0),
             strformat("%.3f",
                       served ? rec.msaEndSeconds -
                                    rec.msaStartSeconds
                              : 0.0),
             strformat("%.3f",
                       served ? rec.gpuQueueSeconds() : 0.0),
             strformat("%.3f",
                       served ? rec.finishSeconds -
                                    rec.gpuStartSeconds
                              : 0.0),
             strformat("%.3f", rec.compileSeconds),
             strformat("%u", rec.batchSize),
             strformat("%.3f",
                       served ? rec.latencySeconds() : 0.0)});
    }
    return csv;
}

} // namespace afsb::serve
