/**
 * @file
 * Open-loop request generation for the serving-cluster simulator.
 *
 * Arrivals follow a Poisson process (exponential inter-arrival
 * gaps) at a configurable rate over a fixed duration; each arrival
 * draws a sample from a weighted mix of the Table II inputs and one
 * of a small number of distinct query variants per sample. Fewer
 * variants means more repeated queries — the knob that exercises
 * the content-addressed MSA result cache. Everything is seeded, so
 * a workload is reproducible bit-for-bit.
 */

#ifndef AFSB_SERVE_WORKLOAD_HH
#define AFSB_SERVE_WORKLOAD_HH

#include <vector>

#include "bio/sequence.hh"
#include "serve/request.hh"

namespace afsb::serve {

/** One weighted entry of the request mix. */
struct MixEntry
{
    std::string sample;  ///< Table II sample name
    double weight = 1.0; ///< relative arrival probability
};

/** Open-loop workload description. */
struct WorkloadSpec
{
    /** Mean arrival rate of the Poisson process. */
    double requestsPerSecond = 0.5;

    /** Length of the arrival window; requests arriving inside it
     *  are still served to completion afterwards. */
    double durationSeconds = 3600.0;

    uint64_t seed = 0x5e7eaf3b;

    /** Sample mix; empty means uniform over all Table II samples. */
    std::vector<MixEntry> mix;

    /**
     * Distinct query variants per sample. Each variant hashes to
     * its own MSA-cache key while sharing the sample's workload
     * character; 1 makes every request for a sample a repeat, large
     * values approximate an all-unique stream.
     */
    uint32_t variantsPerSample = 4;

    /**
     * Near-duplicate traffic: per-residue point-mutation
     * probability applied to each arrival's base (sample, variant)
     * query. 0 (the default) disables mutation entirely — the rng
     * draw sequence and every generated request are bit-identical
     * to the pre-mutation generator. Positive rates make almost
     * every arrival a distinct content hash (exact-cache misses)
     * while staying within a few percent of its base query — the
     * traffic shape the similarity cache tier exists for. Must be
     * in [0, 1).
     */
    double mutationRate = 0.0;

    /**
     * Compute a MinHash sketch per request (Request::sketch) so the
     * serving path can probe the similarity tier. Implied by
     * mutationRate > 0; off (with rate 0) keeps requests
     * byte-identical to the pre-sketch generator.
     */
    bool sketchQueries = false;
};

/**
 * Content-addressed cache key: a 64-bit FNV-1a digest over the
 * complex's chain modalities and residue codes, salted with the
 * query @p variant (distinct users submitting distinct sequences of
 * identical workload character).
 */
uint64_t queryContentHash(const bio::Complex &complex_input,
                          uint32_t variant);

/**
 * Parse a mix string like "2PV7=3,promo=1" (weights optional:
 * "2PV7,promo" weighs both equally). fatal() on unknown samples,
 * malformed entries, or non-positive weights.
 */
std::vector<MixEntry> parseMix(const std::string &text);

/**
 * Generate the arrival stream for @p spec: Poisson arrivals in
 * [0, duration), each tagged with sample, variant, predicted token
 * count, and content hash. Sorted by arrival time.
 */
std::vector<Request> generateRequests(const WorkloadSpec &spec);

} // namespace afsb::serve

#endif // AFSB_SERVE_WORKLOAD_HH
