#include "serve/cluster.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "gpusim/inference_sim.hh"
#include "gpusim/init_profile.hh"
#include "util/logging.hh"

namespace afsb::serve {

std::vector<double>
ClusterResult::completedLatencies() const
{
    std::vector<double> out;
    out.reserve(records.size());
    for (const auto &rec : records)
        if (rec.outcome == Outcome::Completed)
            out.push_back(rec.latencySeconds());
    return out;
}

std::vector<double>
ClusterResult::servedLatencies() const
{
    std::vector<double> out;
    out.reserve(records.size());
    for (const auto &rec : records)
        if (rec.outcome == Outcome::Completed ||
            rec.outcome == Outcome::Degraded)
            out.push_back(rec.latencySeconds());
    return out;
}

const MsaServiceOracle::Service &
MsaServiceOracle::characterize(const sys::PlatformSpec &platform,
                               const core::Workspace &workspace,
                               const ClusterConfig &config,
                               const std::string &sample)
{
    auto it = memo_.find(sample);
    if (it != memo_.end())
        return it->second;

    const auto input = bio::makeSample(sample);
    core::MsaPhaseOptions opt = config.msaOptions;
    opt.threads = config.msaThreadsPerWorker;
    const auto r =
        core::runMsaPhase(input.complex, platform, workspace, opt);
    if (r.oom)
        fatal("serve: MSA phase for sample '" + sample +
              "' OOMs on " + platform.name + "; use `estimate` first");

    Service svc;
    svc.seconds = r.seconds;
    // Stored-alignment footprint: one byte per residue per aligned
    // row, per chain (an a3m-like encoding).
    uint64_t bytes = 0;
    const auto &chains = input.complex.chains();
    for (size_t i = 0;
         i < chains.size() && i < r.msaDepthPerChain.size(); ++i)
        bytes += static_cast<uint64_t>(r.msaDepthPerChain[i]) *
                 chains[i].length();
    svc.resultBytes = std::max<uint64_t>(bytes, 1024);

    // Delta re-search cost model from the engine's own counters: a
    // survivors-only rescan touches the MSV cells of the survivor
    // fraction of targets, plus all Viterbi/Forward cells (the full
    // scan ran those kernels only on survivors anyway).
    const auto &sc = r.scanStats;
    const double fullCells =
        static_cast<double>(sc.cellsMsv + sc.cellsViterbi +
                            sc.cellsForward);
    double fraction = 1.0;
    if (fullCells > 0.0)
        fraction = (sc.msvPassRate() *
                        static_cast<double>(sc.cellsMsv) +
                    static_cast<double>(sc.cellsViterbi) +
                    static_cast<double>(sc.cellsForward)) /
                   fullCells;
    fraction = std::min(1.0, std::max(0.01, fraction));
    svc.deltaSeconds = svc.seconds * fraction;
    return memo_.emplace(sample, svc).first->second;
}

namespace {

/** A long-lived GPU worker process with persistent model state. */
struct GpuWorker
{
    gpusim::XlaCache xla;
    uint64_t served = 0;
    /** GPU context up (init paid): set on first dispatch, kept by a
     *  respawn — the boot cost covers re-init, only the XLA cache is
     *  lost. */
    bool initialized = false;
};

/** A stage completion (or mid-service fault) on the event clock. */
struct Completion
{
    double time = 0.0;
    uint32_t worker = 0; ///< node-local id within its pool
    size_t record = 0;
    uint32_t node = 0;
    double start = 0.0; ///< dispatch time (node-kill refunds)

    /** Batched GPU dispatch: record ids of every member, in
     *  dispatch (policy) order. Empty on the solo path — handlers
     *  treat that as the single `record` member, keeping the
     *  legacy event sequence untouched. */
    std::vector<uint64_t> members = {};

    /** The attempt aborts at @c time instead of finishing. */
    bool fault = false;
    fault::FaultKind kind = fault::FaultKind::MsaWorkerCrash;
    bool workerDies = false;
    bool permanent = false;

    bool
    operator>(const Completion &other) const
    {
        if (time != other.time)
            return time > other.time;
        return record > other.record;
    }
};

/** A batch-wait expiry: wakes the dispatcher so a partially formed
 *  batch stops holding for co-batchees. Carries no payload — the
 *  dispatch pass re-derives the decision from queue state. */
struct BatchTimer
{
    double time = 0.0;
    uint64_t seq = 0;

    bool
    operator>(const BatchTimer &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

using CompletionQueue =
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>;

/** A crashed worker finishing its boot. */
struct Respawn
{
    double time = 0.0;
    uint32_t worker = 0;
    bool gpuPool = false;
    uint64_t seq = 0;
    uint32_t node = 0;
    uint64_t gen = 0; ///< node generation; stale respawns drop

    bool
    operator>(const Respawn &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

/** A request (re-)entering a stage queue: retry backoff, a routed
 *  arrival reaching its node, or a node-kill reroute landing. */
struct Requeue
{
    double time = 0.0;
    size_t record = 0;
    bool gpuStage = false;
    uint64_t seq = 0;
    uint32_t node = 0;

    bool
    operator>(const Requeue &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

/** A killed node rejoining the cluster. */
struct NodeUp
{
    double time = 0.0;
    uint32_t node = 0;
    uint64_t seq = 0;

    bool
    operator>(const NodeUp &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

template <typename T>
using MinQueue =
    std::priority_queue<T, std::vector<T>, std::greater<T>>;

constexpr double kNoEvent = 1e300;

template <typename Q>
double
nextTime(const Q &q)
{
    return q.empty() ? kNoEvent : q.top().time;
}

} // namespace

ClusterResult
simulateCluster(const sys::PlatformSpec &platform,
                const core::Workspace &workspace,
                const std::vector<Request> &requests,
                const ClusterConfig &config)
{
    if (config.msaWorkers == 0 || config.gpuWorkers == 0)
        fatal("serve: need at least one worker in each pool");
    if (config.admissionCapacity == 0)
        fatal("serve: admission capacity must be >= 1");
    if (config.topology.nodes == 0)
        fatal("serve: topology needs at least one node");
    const RecoveryPolicy &recovery = config.recovery;
    if (recovery.maxAttemptsPerStage == 0)
        fatal("serve: maxAttemptsPerStage must be >= 1");
    if (config.batchMax == 0)
        fatal("serve: batchMax must be >= 1");
    if (config.batchWaitSeconds < 0.0)
        fatal("serve: batchWaitSeconds must be >= 0");
    if (config.gpusPerNode == 0)
        fatal("serve: gpusPerNode must be >= 1");
    if (config.bucketTokens == 0)
        fatal("serve: bucketTokens must be >= 1");
    if (config.simCacheThreshold < 0.0 ||
        config.simCacheThreshold > 1.0)
        fatal("serve: simCacheThreshold must be in (0, 1] "
              "(0 disables)");
    if (config.simCacheMinRetention < 0.0 ||
        config.simCacheMinRetention > 1.0)
        fatal("serve: simCacheMinRetention must be in [0, 1]");

    const uint32_t nodes = config.topology.nodes;
    const bool multiNode = nodes > 1;
    const bool simEnabled = config.simCacheThreshold > 0.0;
    net::Interconnect fabric(config.topology);
    const uint32_t router = config.topology.routerId();

    ClusterResult result;
    result.msaWorkers = config.msaWorkers * nodes;
    result.gpuWorkers = config.gpuWorkers * nodes;
    result.multiNode = multiNode;
    result.simCacheEnabled = simEnabled;
    result.simCacheThreshold = config.simCacheThreshold;
    result.nodes = nodes;
    result.nodeStats.resize(nodes);
    for (auto &ns : result.nodeStats) {
        ns.msaWorkers = config.msaWorkers;
        ns.gpuWorkers = config.gpuWorkers;
    }

    // Arrival order defines record order and request ids.
    std::vector<Request> arrivals = requests;
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalSeconds < b.arrivalSeconds;
                     });
    result.records.resize(arrivals.size());
    for (size_t i = 0; i < arrivals.size(); ++i) {
        arrivals[i].id = i;
        result.records[i].request = arrivals[i];
    }

    MsaServiceOracle localOracle;
    MsaServiceOracle &oracle =
        config.msaOracle ? *config.msaOracle : localOracle;
    const auto msaService = [&](const std::string &sample)
        -> const MsaServiceOracle::Service & {
        return oracle.characterize(platform, workspace, config,
                                   sample);
    };

    // The MSA result cache shards by content hash across nodes;
    // single-node keeps the whole budget in its one shard, so its
    // behavior is exactly the unsharded cache.
    const uint64_t perNodeBudget =
        multiNode ? config.msaCacheBudgetBytes / nodes
                  : config.msaCacheBudgetBytes;
    std::vector<MsaResultCache> caches;
    caches.reserve(nodes);
    for (uint32_t nd = 0; nd < nodes; ++nd)
        caches.emplace_back(perNodeBudget);
    const auto ownerOf = [&](uint64_t key) -> uint32_t {
        return multiNode ? static_cast<uint32_t>(key % nodes) : 0;
    };

    AdmissionController admission(config.admissionCapacity);
    std::vector<DispatchQueue> msaQueues;
    std::vector<DispatchQueue> gpuQueues;
    for (uint32_t nd = 0; nd < nodes; ++nd) {
        msaQueues.emplace_back(config.policy);
        gpuQueues.emplace_back(config.policy);
    }

    // GPU workers carry persistent compile caches at the configured
    // bucket width (the batch former groups by the same buckets).
    const GpuWorker freshGpuWorker{
        gpusim::XlaCache(config.bucketTokens), 0, false};
    std::vector<std::vector<GpuWorker>> gpuWorkers(
        nodes,
        std::vector<GpuWorker>(config.gpuWorkers, freshGpuWorker));
    std::vector<std::vector<uint32_t>> freeGpu(nodes);
    std::vector<std::vector<uint32_t>> freeMsa(nodes);
    for (uint32_t nd = 0; nd < nodes; ++nd) {
        for (uint32_t w = config.gpuWorkers; w-- > 0;)
            freeGpu[nd].push_back(w); // back() pops lowest id first
        for (uint32_t w = config.msaWorkers; w-- > 0;)
            freeMsa[nd].push_back(w);
    }

    CompletionQueue msaBusy;
    CompletionQueue gpuBusy;
    MinQueue<Respawn> respawnQueue;
    MinQueue<Requeue> requeueQueue;
    MinQueue<NodeUp> nodeUpQueue;
    MinQueue<BatchTimer> batchTimerQueue;
    uint64_t eventSeq = 0;

    // Continuous batching: each GPU worker drives an equal share of
    // the node's data-parallel devices (at least one).
    const bool batching = config.batchMax > 1;
    const uint32_t gpusPerWorker = std::max<uint32_t>(
        1, config.gpusPerNode / config.gpuWorkers);
    result.batchingEnabled = batching;
    result.gpusPerNode = config.gpusPerNode;

    fault::Injector injector(config.faultPlan);
    const bool faultsOn = !config.faultPlan.empty();
    // Deadlines inject timeouts even without a plan, so they also
    // switch the fault section of reports on.
    result.faultsEnabled = faultsOn ||
                           recovery.msaDeadlineSeconds > 0.0 ||
                           recovery.gpuDeadlineSeconds > 0.0;
    // Per-node live-replica counts; the last live replica of a pool
    // on a node is never lost permanently (the supervisor always
    // restarts the final replica), so no queue can strand.
    std::vector<uint32_t> liveMsa(nodes, config.msaWorkers);
    std::vector<uint32_t> liveGpu(nodes, config.gpuWorkers);
    std::vector<char> nodeAlive(nodes, 1);
    std::vector<uint64_t> nodeGen(nodes, 0);
    uint64_t retriesUsed = 0;

    // Scripted node kills, in (time, script order); only meaningful
    // in a multi-node topology (a kill may never take the last
    // live node).
    std::vector<fault::NodeKill> kills = config.faultPlan.nodeKills;
    std::stable_sort(kills.begin(), kills.end(),
                     [](const fault::NodeKill &a,
                        const fault::NodeKill &b) {
                         return a.atSeconds < b.atSeconds;
                     });
    size_t nextKill = 0;
    MsaResultCache::Stats lostCacheStats;

    uint64_t routeCounter = 0;
    const auto pickNode = [&]() -> uint32_t {
        uint32_t cand = static_cast<uint32_t>(routeCounter % nodes);
        while (!nodeAlive[cand]) {
            ++routeCounter;
            cand = static_cast<uint32_t>(routeCounter % nodes);
        }
        ++routeCounter;
        return cand;
    };

    const double msaRespawnDelay =
        recovery.respawnSpawnSeconds + recovery.msaRespawnSeconds;
    const double gpuRespawnDelay =
        recovery.respawnSpawnSeconds +
        (recovery.gpuRespawnSeconds >= 0.0
             ? recovery.gpuRespawnSeconds
             : gpusim::initPhaseSeconds(platform));

    // Per-request time of the latest entry into its current stage
    // queue (deadlines run from here); terminal flag for the
    // conservation check.
    std::vector<double> stageEnqueue(arrivals.size(), 0.0);
    std::vector<char> finished(arrivals.size(), 0);

    gpusim::InferenceSimOptions inferOptions;
    inferOptions.threads = config.inferenceThreads;
    inferOptions.unifiedMemory = config.unifiedMemory;

    size_t nextArrival = 0;
    double clock = 0.0;

    const auto finish = [&](RequestRecord &rec, Outcome outcome,
                            double now) {
        rec.outcome = outcome;
        rec.finishSeconds = now;
        finished[rec.request.id] = 1;
        admission.release();
    };

    /**
     * A service attempt for @p rec on @p stage just died at @p now
     * (injected fault, deadline, or node loss): retry with backoff
     * while the per-stage attempt cap and the cluster retry budget
     * allow, else degrade (shed the MSA stage, reduced-recycling
     * GPU pass) or fail hard. @p node is where the retry re-enters;
     * a dead node reroutes when the requeue fires.
     */
    const auto failAttempt = [&](RequestRecord &rec, bool gpuStage,
                                 double now, fault::FaultKind kind,
                                 uint32_t worker, bool permanent,
                                 uint32_t node) {
        ++rec.faultsSeen;
        injector.record({now, kind, worker, rec.request.id,
                         permanent});
        if (kind == fault::FaultKind::RequestTimeout)
            ++result.timeouts;

        const uint32_t attempts =
            gpuStage ? rec.gpuAttempts : rec.msaAttempts;
        if (attempts < recovery.maxAttemptsPerStage &&
            retriesUsed < recovery.retryBudget) {
            ++retriesUsed;
            ++result.retries;
            const double backoff =
                recovery.backoffBaseSeconds *
                std::pow(recovery.backoffMultiplier,
                         static_cast<double>(attempts) - 1.0);
            requeueQueue.push(
                {now + backoff, rec.request.id, gpuStage,
                 eventSeq++, node});
            return;
        }
        if (recovery.degradeOnExhaustion) {
            if (!rec.degradedPath) {
                rec.degradedPath = true;
                if (!gpuStage) // no-MSA fallback: skip the stage
                    rec.msaEndSeconds = now;
            }
            requeueQueue.push(
                {now, rec.request.id, true, eventSeq++, node});
            return;
        }
        finish(rec, Outcome::Failed, now);
    };

    const auto dispatch = [&](double now) {
        for (uint32_t nd = 0; nd < nodes; ++nd) {
            auto &queue = msaQueues[nd];
            auto &idle = freeMsa[nd];
            while (!idle.empty() && !queue.empty()) {
                const Request r = queue.pop();
                auto &rec = result.records[r.id];
                // Expired while queued: the attempt never starts.
                if (recovery.msaDeadlineSeconds > 0.0 &&
                    now - stageEnqueue[r.id] >=
                        recovery.msaDeadlineSeconds) {
                    ++rec.msaAttempts;
                    failAttempt(rec, false, now,
                                fault::FaultKind::RequestTimeout, 0,
                                false, nd);
                    continue;
                }
                const uint32_t wid = idle.back();
                idle.pop_back();
                ++rec.msaAttempts;
                rec.node = nd;
                const auto &svc = msaService(r.sample);
                double service = svc.seconds;
                if (rec.approxHit) {
                    // Similarity tier: the stage is a delta
                    // re-search over the cached survivor set, not a
                    // full database scan.
                    service = svc.deltaSeconds;
                    if (rec.msaAttempts == 1)
                        result.deltaSecondsSaved +=
                            svc.seconds - svc.deltaSeconds;
                } else if (rec.deltaFallback) {
                    // Rejected delta: the re-search ran, failed its
                    // acceptance check, and the full scan followed.
                    service = svc.deltaSeconds + svc.seconds;
                    if (rec.msaAttempts == 1)
                        result.deltaSecondsSaved -=
                            svc.deltaSeconds;
                }

                Completion c{now + service, wid, r.id, nd, now};
                if (faultsOn) {
                    const auto d = injector.msaService();
                    if (d.latencyFactor > 1.0) {
                        service *= d.latencyFactor;
                        c.time = now + service;
                        injector.record(
                            {now,
                             fault::FaultKind::StorageLatencySpike,
                             nd * config.msaWorkers + wid, r.id,
                             false});
                        ++rec.faultsSeen;
                    }
                    if (d.failed()) {
                        c.fault = true;
                        c.kind =
                            d.crash
                                ? fault::FaultKind::MsaWorkerCrash
                                : fault::FaultKind::StorageReadError;
                        c.workerDies = d.crash;
                        c.permanent = d.crash && d.permanent;
                        c.time = now + service * d.failFraction;
                    }
                }
                if (recovery.msaDeadlineSeconds > 0.0) {
                    const double deadline =
                        stageEnqueue[r.id] +
                        recovery.msaDeadlineSeconds;
                    if (deadline < c.time) {
                        c.time = deadline;
                        c.fault = true;
                        c.kind = fault::FaultKind::RequestTimeout;
                        c.workerDies = false;
                        c.permanent = false;
                    }
                }
                rec.msaStartSeconds = now;
                const double occupied = c.time - now;
                result.msaBusySeconds += occupied;
                result.nodeStats[nd].msaBusySeconds += occupied;
                if (c.fault)
                    result.lostServiceSeconds += occupied;
                msaBusy.push(c);
            }
        }
        for (uint32_t nd = 0; nd < nodes; ++nd) {
            auto &queue = gpuQueues[nd];
            auto &idle = freeGpu[nd];
            // Solo dispatch (batching off): the pre-batching code
            // path, kept verbatim so batchMax == 1 is bit-identical
            // to the legacy simulator.
            while (!batching && !idle.empty() && !queue.empty()) {
                const Request r = queue.pop();
                auto &rec = result.records[r.id];
                const bool degraded = rec.degradedPath;
                if (!degraded &&
                    recovery.gpuDeadlineSeconds > 0.0 &&
                    now - stageEnqueue[r.id] >=
                        recovery.gpuDeadlineSeconds) {
                    ++rec.gpuAttempts;
                    failAttempt(rec, true, now,
                                fault::FaultKind::RequestTimeout, 0,
                                false, nd);
                    continue;
                }
                const uint32_t wid = idle.back();
                idle.pop_back();
                ++rec.gpuAttempts;
                rec.node = nd;
                auto &worker = gpuWorkers[nd][wid];
                inferOptions.gpuAlreadyInitialized =
                    worker.initialized;
                const auto infer = gpusim::simulateInference(
                    platform, r.tokens, worker.xla, inferOptions);
                if (infer.oom)
                    fatal("serve: inference for sample '" +
                          r.sample + "' OOMs on " + platform.name +
                          " without unified memory");
                ++worker.served;
                worker.initialized = true;
                rec.gpuStartSeconds = now;
                rec.compileSeconds = infer.compileSeconds;
                double service = infer.totalSeconds();
                if (degraded)
                    // Reduced-recycling fallback: fewer diffusion
                    // recycles, proportionally less GPU compute.
                    service -=
                        infer.gpuComputeSeconds *
                        (1.0 - recovery.degradedRecyclingFactor);

                Completion c{now + service, wid, r.id, nd, now};
                // The degraded pass is the last-ditch answer:
                // exempt from injection and deadlines so it always
                // completes.
                if (faultsOn && !degraded) {
                    const auto d = injector.gpuService();
                    if (d.crash) {
                        c.fault = true;
                        c.kind = fault::FaultKind::GpuWorkerCrash;
                        c.workerDies = true;
                        c.permanent = d.permanent;
                        c.time = now + service * d.failFraction;
                    }
                }
                if (!degraded &&
                    recovery.gpuDeadlineSeconds > 0.0) {
                    const double deadline =
                        stageEnqueue[r.id] +
                        recovery.gpuDeadlineSeconds;
                    if (deadline < c.time) {
                        c.time = deadline;
                        c.fault = true;
                        c.kind = fault::FaultKind::RequestTimeout;
                        c.workerDies = false;
                        c.permanent = false;
                    }
                }
                const double occupied = c.time - now;
                result.gpuBusySeconds += occupied;
                result.nodeStats[nd].gpuBusySeconds += occupied;
                if (c.fault)
                    result.lostServiceSeconds += occupied;
                gpuBusy.push(c);
            }

            // Continuous batching: the policy head leads a batch of
            // bucket-compatible queued requests; the whole batch
            // runs as one padded dispatch on the worker's device
            // share, paying compile and finalize base once.
            while (batching && !idle.empty() && !queue.empty()) {
                const Request head = queue.peek();
                auto &headRec = result.records[head.id];
                const bool degraded = headRec.degradedPath;
                if (!degraded &&
                    recovery.gpuDeadlineSeconds > 0.0 &&
                    now - stageEnqueue[head.id] >=
                        recovery.gpuDeadlineSeconds) {
                    queue.pop();
                    ++headRec.gpuAttempts;
                    failAttempt(headRec, true, now,
                                fault::FaultKind::RequestTimeout, 0,
                                false, nd);
                    continue;
                }

                std::vector<Request> members;
                if (degraded) {
                    // The degraded pass dispatches solo: it is the
                    // last-ditch answer, never held for co-batchees
                    // and never mixed into a shared executable run.
                    queue.pop();
                    members.push_back(head);
                } else {
                    const uint32_t bucket = static_cast<uint32_t>(
                        head.tokens / config.bucketTokens);
                    const auto accept =
                        [&](const Request &cand) -> bool {
                        const auto &rec = result.records[cand.id];
                        if (rec.degradedPath)
                            return false;
                        // Expired candidates stay queued; they fail
                        // at the head, exactly like the solo path.
                        if (recovery.gpuDeadlineSeconds > 0.0 &&
                            now - stageEnqueue[cand.id] >=
                                recovery.gpuDeadlineSeconds)
                            return false;
                        return cand.tokens / config.bucketTokens ==
                               bucket;
                    };
                    // VRAM gate: the batch's padded activations
                    // must fit the worker's device share; an
                    // oversized group splits (the remainder stays
                    // queued for the next free worker).
                    const size_t execTokens =
                        static_cast<size_t>(bucket + 1) *
                            config.bucketTokens -
                        1;
                    const size_t vramCap =
                        gpusim::maxBatchForVram(
                            platform, execTokens,
                            inferOptions.config) *
                        gpusPerWorker;
                    const size_t cap = std::min<size_t>(
                        config.batchMax,
                        std::max<size_t>(1, vramCap));
                    const size_t avail = queue.countIf(accept);
                    // Compare against the same rounded sum the
                    // timer carries, so the hold always ends once
                    // the clock reaches the pushed wake-up.
                    const double waitDeadline =
                        stageEnqueue[head.id] +
                        config.batchWaitSeconds;
                    if (avail < cap &&
                        config.batchWaitSeconds > 0.0 &&
                        now < waitDeadline) {
                        // Hold for co-batchees: wake the dispatcher
                        // when the head's wait budget expires.
                        batchTimerQueue.push(
                            {waitDeadline, eventSeq++});
                        break; // head-of-line holds this queue
                    }
                    if (cap < config.batchMax && avail > cap)
                        ++result.vramBatchSplits;
                    members = queue.popBatch(cap, accept);
                }

                const uint32_t wid = idle.back();
                idle.pop_back();
                auto &worker = gpuWorkers[nd][wid];
                inferOptions.gpuAlreadyInitialized =
                    worker.initialized;
                std::vector<size_t> tokensList;
                tokensList.reserve(members.size());
                for (const auto &m : members)
                    tokensList.push_back(m.tokens);
                const auto infer =
                    gpusim::simulateBatchedInference(
                        platform, tokensList, worker.xla,
                        inferOptions, gpusPerWorker);
                if (infer.oom)
                    fatal("serve: batched inference for sample '" +
                          head.sample + "' OOMs on " +
                          platform.name +
                          " without unified memory");
                worker.served += members.size();
                worker.initialized = true;

                double service = infer.totalSeconds();
                if (degraded)
                    service -=
                        infer.gpuComputeSeconds *
                        (1.0 - recovery.degradedRecyclingFactor);

                Completion c{now + service, wid, head.id, nd, now};
                c.members.reserve(members.size());
                for (const auto &m : members) {
                    auto &rec = result.records[m.id];
                    ++rec.gpuAttempts;
                    rec.node = nd;
                    rec.gpuStartSeconds = now;
                    rec.compileSeconds = infer.compileSeconds;
                    rec.batchSize =
                        static_cast<uint32_t>(members.size());
                    c.members.push_back(m.id);
                }

                // Former accounting; the degraded singleton is the
                // fallback path, not a formed batch.
                if (!degraded) {
                    ++result.batchesFormed;
                    result.batchedRequests += members.size();
                    result.maxBatchOccupancy =
                        std::max<uint64_t>(result.maxBatchOccupancy,
                                           members.size());
                    result.batchUsefulFlops += infer.usefulFlops;
                    result.batchPaddedFlops += infer.paddedFlops;
                    if (infer.compileSeconds > 0.0) {
                        ++result.batchCompiles;
                        result.batchCompileSeconds +=
                            infer.compileSeconds;
                        result.compileSharedRequests +=
                            members.size();
                    }
                }

                // One service attempt per dispatch: a batch draws
                // the injector exactly once, like a solo dispatch,
                // so enabling batching never shifts the decision
                // stream of later sites.
                if (faultsOn && !degraded) {
                    const auto d = injector.gpuService();
                    if (d.crash) {
                        c.fault = true;
                        c.kind = fault::FaultKind::GpuWorkerCrash;
                        c.workerDies = true;
                        c.permanent = d.permanent;
                        c.time = now + service * d.failFraction;
                    }
                }
                if (!degraded &&
                    recovery.gpuDeadlineSeconds > 0.0) {
                    // The batch must beat the tightest member
                    // deadline; an overrun aborts every member.
                    double deadline = kNoEvent;
                    for (const auto &m : members)
                        deadline = std::min(
                            deadline,
                            stageEnqueue[m.id] +
                                recovery.gpuDeadlineSeconds);
                    if (deadline < c.time) {
                        c.time = deadline;
                        c.fault = true;
                        c.kind = fault::FaultKind::RequestTimeout;
                        c.workerDies = false;
                        c.permanent = false;
                    }
                }
                const double occupied = c.time - now;
                result.gpuBusySeconds += occupied;
                result.nodeStats[nd].gpuBusySeconds += occupied;
                if (c.fault)
                    result.lostServiceSeconds += occupied;
                gpuBusy.push(c);
            }
        }
    };

    /** Handle a crash: respawn after the boot delay, or shrink the
     *  pool permanently — never below one live replica. */
    const auto crashWorker = [&](uint32_t nd, uint32_t wid,
                                 bool gpuPool, double now,
                                 bool permanent) {
        uint32_t &live = gpuPool ? liveGpu[nd] : liveMsa[nd];
        if (permanent && live <= 1)
            permanent = false; // supervisor restarts the last one
        if (gpuPool)
            gpuWorkers[nd][wid].xla.clear(); // persistent state lost
        if (permanent) {
            --live;
            ++result.permanentWorkerLosses;
            return permanent;
        }
        respawnQueue.push(
            {now + (gpuPool ? gpuRespawnDelay : msaRespawnDelay),
             wid, gpuPool, eventSeq++, nd, nodeGen[nd]});
        return permanent;
    };

    /** The MSA stage for @p rec finished at @p now on @p nd: insert
     *  the result into its owner's cache shard (paying a transfer
     *  when the owner is remote) and enter the GPU queue. */
    const auto msaDone = [&](RequestRecord &rec, uint32_t nd,
                             double now) {
        const uint64_t key = rec.request.contentHash;
        const uint32_t owner = ownerOf(key);
        if (nodeAlive[owner]) {
            const bool corrupt =
                faultsOn && injector.cacheInsertCorrupted();
            const uint64_t bytes =
                msaService(rec.request.sample).resultBytes;
            if (multiNode && owner != nd)
                fabric.send(now, nd, owner, bytes,
                            net::MsgKind::CacheInsert,
                            rec.request.id);
            if (simEnabled && !rec.request.sketch.empty())
                // Register the query's sketch so later
                // near-duplicates can find this entry's survivor
                // set through the LSH bands.
                caches[owner].insert(key, bytes,
                                     rec.request.sketch);
            else
                caches[owner].insert(key, bytes);
            if (corrupt && caches[owner].corrupt(key))
                injector.record({now,
                                 fault::FaultKind::CacheCorruption,
                                 owner, rec.request.id, false});
        }
        stageEnqueue[rec.request.id] = now;
        gpuQueues[nd].push(rec.request);
    };

    while (nextArrival < arrivals.size() || !msaBusy.empty() ||
           !gpuBusy.empty() || !respawnQueue.empty() ||
           !requeueQueue.empty() || !nodeUpQueue.empty() ||
           !batchTimerQueue.empty() || nextKill < kills.size()) {
        const double arrivalTime =
            nextArrival < arrivals.size()
                ? arrivals[nextArrival].arrivalSeconds
                : kNoEvent;
        const double killTime = nextKill < kills.size()
                                    ? kills[nextKill].atSeconds
                                    : kNoEvent;
        clock = std::min({arrivalTime, nextTime(msaBusy),
                          nextTime(gpuBusy),
                          nextTime(respawnQueue),
                          nextTime(requeueQueue),
                          nextTime(nodeUpQueue),
                          nextTime(batchTimerQueue), killTime});

        // Batch-wait timers only advance the clock: the dispatch
        // pass below re-derives everything from queue state.
        while (!batchTimerQueue.empty() &&
               batchTimerQueue.top().time <= clock)
            batchTimerQueue.pop();

        // Completions first, so capacity freed at this instant is
        // visible to a simultaneous arrival.
        while (!gpuBusy.empty() && gpuBusy.top().time <= clock) {
            const Completion done = gpuBusy.top();
            gpuBusy.pop();
            // Solo completions carry one record; batched ones carry
            // every member of the dispatch, finished (or failed) in
            // dispatch order.
            std::vector<uint64_t> ids = done.members;
            if (ids.empty())
                ids.push_back(done.record);
            if (!done.fault) {
                for (uint64_t id : ids) {
                    auto &rec = result.records[id];
                    double finishAt = done.time;
                    if (multiNode)
                        // The structure travels back to the front
                        // end; the user-visible latency ends at the
                        // router.
                        finishAt =
                            fabric
                                .send(done.time, done.node, router,
                                      config.routeResponseBytes,
                                      net::MsgKind::RouteResponse,
                                      rec.request.id)
                                .arriveTime;
                    finish(rec,
                           rec.degradedPath ? Outcome::Degraded
                                            : Outcome::Completed,
                           finishAt);
                }
                freeGpu[done.node].push_back(done.worker);
                continue;
            }
            const bool permanent =
                done.workerDies
                    ? crashWorker(done.node, done.worker, true,
                                  done.time, done.permanent)
                    : (freeGpu[done.node].push_back(done.worker),
                       false);
            // A mid-batch crash or timeout aborts every member; each
            // re-enters the retry path with its own backoff budget.
            for (uint64_t id : ids)
                failAttempt(result.records[id], true, done.time,
                            done.kind,
                            done.node * config.gpuWorkers +
                                done.worker,
                            permanent, done.node);
        }

        while (!msaBusy.empty() && msaBusy.top().time <= clock) {
            const Completion done = msaBusy.top();
            msaBusy.pop();
            auto &rec = result.records[done.record];
            if (!done.fault) {
                rec.msaEndSeconds = done.time;
                freeMsa[done.node].push_back(done.worker);
                msaDone(rec, done.node, done.time);
                continue;
            }
            const bool permanent =
                done.workerDies
                    ? crashWorker(done.node, done.worker, false,
                                  done.time, done.permanent)
                    : (freeMsa[done.node].push_back(done.worker),
                       false);
            failAttempt(rec, false, done.time, done.kind,
                        done.node * config.msaWorkers + done.worker,
                        permanent, done.node);
        }

        // Scripted node kills: completions at exactly the kill time
        // made it out; everything still on the node is lost.
        while (nextKill < kills.size() &&
               kills[nextKill].atSeconds <= clock) {
            const fault::NodeKill kill = kills[nextKill++];
            const double now = kill.atSeconds;
            if (!multiNode)
                continue; // a single node is never killable
            if (kill.node >= nodes)
                fatal("serve: node kill targets a node beyond the "
                      "topology");
            if (!nodeAlive[kill.node])
                continue;
            uint32_t liveNodes = 0;
            for (uint32_t nd = 0; nd < nodes; ++nd)
                liveNodes += nodeAlive[nd] ? 1 : 0;
            if (liveNodes <= 1)
                continue; // never take the last live node
            const uint32_t nd = kill.node;
            nodeAlive[nd] = 0;
            ++nodeGen[nd];
            ++result.nodeKills;
            injector.record({now, fault::FaultKind::NodeFailure, nd,
                             0, kill.rebuildSeconds < 0.0});

            // In-flight attempts die mid-service: refund the busy
            // time they will never serve, book what they did burn
            // as lost, and push each through the retry path.
            const auto extractInflight = [&](CompletionQueue &q,
                                             bool gpuStage) {
                std::vector<Completion> keep, lost;
                while (!q.empty()) {
                    const Completion c = q.top();
                    q.pop();
                    (c.node == nd ? lost : keep).push_back(c);
                }
                for (const auto &c : keep)
                    q.push(c);
                for (const auto &c : lost) {
                    const double refund = c.time - now;
                    double &busy = gpuStage
                                       ? result.gpuBusySeconds
                                       : result.msaBusySeconds;
                    busy -= refund;
                    auto &ns = result.nodeStats[nd];
                    (gpuStage ? ns.gpuBusySeconds
                              : ns.msaBusySeconds) -= refund;
                    if (c.fault)
                        result.lostServiceSeconds -= refund;
                    else
                        result.lostServiceSeconds += now - c.start;
                    const uint32_t perPool =
                        gpuStage ? config.gpuWorkers
                                 : config.msaWorkers;
                    // Every batch member aboard a dying node fails
                    // and retries (busy/lost time refunds above are
                    // per dispatch, not per member).
                    std::vector<uint64_t> ids = c.members;
                    if (ids.empty())
                        ids.push_back(c.record);
                    for (uint64_t id : ids)
                        failAttempt(result.records[id], gpuStage,
                                    now,
                                    fault::FaultKind::NodeFailure,
                                    nd * perPool + c.worker, false,
                                    nd);
                }
            };
            extractInflight(gpuBusy, true);
            extractInflight(msaBusy, false);

            // Queued requests reroute through the router to a live
            // node, paying a fresh forward transfer.
            const auto drainQueue = [&](DispatchQueue &q,
                                        bool gpuStage) {
                while (!q.empty()) {
                    const Request r = q.pop();
                    ++result.rerouted;
                    const uint32_t tgt = pickNode();
                    ++result.nodeStats[tgt].routed;
                    result.records[r.id].node = tgt;
                    const auto d = fabric.send(
                        now, router, tgt, config.routeRequestBytes,
                        net::MsgKind::RouteRequest, r.id);
                    requeueQueue.push({d.arriveTime, r.id, gpuStage,
                                       eventSeq++, tgt});
                }
            };
            drainQueue(msaQueues[nd], false);
            drainQueue(gpuQueues[nd], true);

            freeMsa[nd].clear();
            freeGpu[nd].clear();
            liveMsa[nd] = 0;
            liveGpu[nd] = 0;

            // The cache shard dies with the node; keep its counters
            // for the end-of-run aggregate.
            const auto &cs = caches[nd].stats();
            lostCacheStats.lookups += cs.lookups;
            lostCacheStats.hits += cs.hits;
            lostCacheStats.insertions += cs.insertions;
            lostCacheStats.evictions += cs.evictions;
            lostCacheStats.rejected += cs.rejected;
            lostCacheStats.corrupted += cs.corrupted;
            lostCacheStats.approxLookups += cs.approxLookups;
            lostCacheStats.approxHits += cs.approxHits;
            caches[nd] = MsaResultCache(perNodeBudget);

            if (kill.rebuildSeconds >= 0.0)
                nodeUpQueue.push(
                    {now + kill.rebuildSeconds, nd, eventSeq++});
        }

        while (!respawnQueue.empty() &&
               respawnQueue.top().time <= clock) {
            const Respawn up = respawnQueue.top();
            respawnQueue.pop();
            // The node died while this worker was booting.
            if (up.gen != nodeGen[up.node])
                continue;
            if (up.gpuPool) {
                ++result.gpuRespawns;
                freeGpu[up.node].push_back(up.worker);
            } else {
                ++result.msaRespawns;
                freeMsa[up.node].push_back(up.worker);
            }
        }

        while (!nodeUpQueue.empty() &&
               nodeUpQueue.top().time <= clock) {
            const NodeUp up = nodeUpQueue.top();
            nodeUpQueue.pop();
            const uint32_t nd = up.node;
            nodeAlive[nd] = 1;
            ++result.nodeRebuilds;
            liveMsa[nd] = config.msaWorkers;
            liveGpu[nd] = config.gpuWorkers;
            gpuWorkers[nd].assign(config.gpuWorkers,
                                  freshGpuWorker);
            freeMsa[nd].clear();
            freeGpu[nd].clear();
            for (uint32_t w = config.gpuWorkers; w-- > 0;)
                freeGpu[nd].push_back(w);
            for (uint32_t w = config.msaWorkers; w-- > 0;)
                freeMsa[nd].push_back(w);
        }

        // Keep the free-worker lists ordered so the lowest id is
        // always dispatched next (determinism).
        for (uint32_t nd = 0; nd < nodes; ++nd) {
            std::sort(freeGpu[nd].begin(), freeGpu[nd].end(),
                      std::greater<uint32_t>());
            std::sort(freeMsa[nd].begin(), freeMsa[nd].end(),
                      std::greater<uint32_t>());
        }

        while (!requeueQueue.empty() &&
               requeueQueue.top().time <= clock) {
            const Requeue rq = requeueQueue.top();
            requeueQueue.pop();
            auto &rec = result.records[rq.record];
            if (multiNode && !nodeAlive[rq.node]) {
                // Destination died while the request was in flight
                // or backing off: the router re-forwards it.
                ++result.rerouted;
                const uint32_t tgt = pickNode();
                ++result.nodeStats[tgt].routed;
                rec.node = tgt;
                const auto d = fabric.send(
                    rq.time, router, tgt, config.routeRequestBytes,
                    net::MsgKind::RouteRequest, rq.record);
                requeueQueue.push({d.arriveTime, rq.record,
                                   rq.gpuStage, eventSeq++, tgt});
                continue;
            }
            stageEnqueue[rq.record] = rq.time;
            (rq.gpuStage ? gpuQueues[rq.node]
                         : msaQueues[rq.node])
                .push(rec.request);
        }

        while (nextArrival < arrivals.size() &&
               arrivals[nextArrival].arrivalSeconds <= clock) {
            const Request &r = arrivals[nextArrival++];
            auto &rec = result.records[r.id];
            ++result.offered;
            if (!admission.tryAdmit()) {
                rec.outcome = Outcome::Shed;
                rec.msaStartSeconds = rec.msaEndSeconds =
                    rec.gpuStartSeconds = rec.finishSeconds =
                        r.arrivalSeconds;
                finished[r.id] = 1;
                continue;
            }
            if (!multiNode) {
                stageEnqueue[r.id] = r.arrivalSeconds;
                if (caches[0].lookup(r.contentHash) ==
                    MsaResultCache::Lookup::Hit) {
                    // AF_Cache hit: the MSA stage vanishes.
                    rec.msaCacheHit = true;
                    rec.msaStartSeconds = rec.msaEndSeconds =
                        r.arrivalSeconds;
                    gpuQueues[0].push(r);
                } else {
                    // Miss, or a corrupted entry detected and
                    // dropped at lookup — either way the MSA stage
                    // runs. With the similarity tier on, a
                    // near-identical cached query can still shrink
                    // it to a delta re-search.
                    if (simEnabled && !r.sketch.empty()) {
                        const auto ap = caches[0].approxLookup(
                            r.sketch, config.simCacheThreshold);
                        if (ap.accepted) {
                            if (ap.jaccard >=
                                config.simCacheMinRetention) {
                                rec.approxHit = true;
                                ++result.approxHits;
                            } else {
                                rec.deltaFallback = true;
                                ++result.deltaFallbacks;
                            }
                        }
                    }
                    msaQueues[0].push(r);
                }
                continue;
            }

            // Multi-node: the router forwards the request to a live
            // node; the cache shard owning its content hash answers
            // the MSA-cache probe, paying a control round trip (and
            // the result transfer on a hit) when it is remote. The
            // shard's answer is decided here, at forward time — a
            // modeled approximation that keeps the lookup on the
            // deterministic arrival order.
            const uint32_t nd = pickNode();
            rec.node = nd;
            ++result.nodeStats[nd].routed;
            double ready =
                fabric
                    .send(r.arrivalSeconds, router, nd,
                          config.routeRequestBytes,
                          net::MsgKind::RouteRequest, r.id)
                    .arriveTime;
            const uint32_t owner = ownerOf(r.contentHash);
            bool hit = false;
            if (nodeAlive[owner]) {
                if (owner != nd) {
                    rec.remoteCache = true;
                    ++result.remoteCacheLookups;
                    const auto probe = fabric.send(
                        ready, nd, owner, config.cacheControlBytes,
                        net::MsgKind::CacheLookup, r.id);
                    hit = caches[owner].lookup(r.contentHash) ==
                          MsaResultCache::Lookup::Hit;
                    if (hit) {
                        ++result.remoteCacheHits;
                        ready = fabric
                                    .send(probe.arriveTime, owner,
                                          nd,
                                          msaService(r.sample)
                                              .resultBytes,
                                          net::MsgKind::CacheResult,
                                          r.id)
                                    .arriveTime;
                    } else {
                        ready = fabric
                                    .send(probe.arriveTime, owner,
                                          nd,
                                          config.cacheControlBytes,
                                          net::MsgKind::CacheReply,
                                          r.id)
                                    .arriveTime;
                    }
                } else {
                    hit = caches[owner].lookup(r.contentHash) ==
                          MsaResultCache::Lookup::Hit;
                }
            }
            if (hit) {
                rec.msaCacheHit = true;
                rec.msaStartSeconds = rec.msaEndSeconds = ready;
            } else if (simEnabled && !r.sketch.empty()) {
                // Exact miss: broadcast the similarity probe to
                // every live cache shard (the sketch index is
                // sharded with the entries it describes). All
                // probes go out in parallel; the request proceeds
                // once the last reply — and the survivor set from
                // an accepting shard — is in.
                MsaResultCache::ApproxResult best;
                uint32_t bestShard = 0;
                double repliesIn = ready;
                for (uint32_t shard = 0; shard < nodes; ++shard) {
                    if (!nodeAlive[shard])
                        continue;
                    double shardReady = ready;
                    if (shard != nd) {
                        ++result.remoteApproxProbes;
                        shardReady =
                            fabric
                                .send(ready, nd, shard,
                                      config.cacheControlBytes,
                                      net::MsgKind::CacheLookup,
                                      r.id)
                                .arriveTime;
                    }
                    const auto ap = caches[shard].approxLookup(
                        r.sketch, config.simCacheThreshold);
                    const bool better =
                        ap.candidate &&
                        (!best.candidate ||
                         ap.jaccard > best.jaccard ||
                         (ap.jaccard == best.jaccard &&
                          ap.key < best.key));
                    if (better) {
                        best = ap;
                        bestShard = shard;
                    }
                    if (shard != nd) {
                        // A shard with an accepted candidate ships
                        // its survivor set (it cannot know whether
                        // another shard holds a better one); the
                        // rest send a control-size negative reply.
                        const bool ships = ap.accepted;
                        const double back =
                            fabric
                                .send(shardReady, shard, nd,
                                      ships ? config
                                                  .simCacheSurvivorBytes
                                            : config
                                                  .cacheControlBytes,
                                      ships
                                          ? net::MsgKind::CacheResult
                                          : net::MsgKind::CacheReply,
                                      r.id)
                                .arriveTime;
                        repliesIn = std::max(repliesIn, back);
                    }
                }
                if (best.accepted) {
                    if (bestShard != nd) {
                        rec.remoteCache = true;
                        ++result.remoteApproxHits;
                    }
                    if (best.jaccard >=
                        config.simCacheMinRetention) {
                        rec.approxHit = true;
                        ++result.approxHits;
                    } else {
                        rec.deltaFallback = true;
                        ++result.deltaFallbacks;
                    }
                }
                ready = repliesIn;
            }
            requeueQueue.push(
                {ready, r.id, hit, eventSeq++, nd});
        }

        dispatch(clock);
        result.makespanSeconds =
            std::max(result.makespanSeconds, clock);
    }

    for (size_t i = 0; i < result.records.size(); ++i) {
        panicIf(!finished[i],
                "serve: request lost by the event loop");
        switch (result.records[i].outcome) {
        case Outcome::Completed:
            ++result.completed;
            break;
        case Outcome::Degraded:
            ++result.degraded;
            break;
        case Outcome::Failed:
            ++result.failed;
            break;
        case Outcome::Shed:
            ++result.shed;
            break;
        }
        // A response may still be on the wire when the last node
        // event fires; the makespan covers its arrival.
        result.makespanSeconds =
            std::max(result.makespanSeconds,
                     result.records[i].finishSeconds);
    }
    MsaResultCache::Stats aggStats = lostCacheStats;
    for (const auto &shard : caches) {
        const auto &cs = shard.stats();
        aggStats.lookups += cs.lookups;
        aggStats.hits += cs.hits;
        aggStats.insertions += cs.insertions;
        aggStats.evictions += cs.evictions;
        aggStats.rejected += cs.rejected;
        aggStats.corrupted += cs.corrupted;
        aggStats.approxLookups += cs.approxLookups;
        aggStats.approxHits += cs.approxHits;
        result.cacheBytesInUse += shard.bytesInUse();
        result.cacheEntries += shard.entries();
    }
    result.cacheStats = aggStats;
    for (uint32_t nd = 0; nd < nodes; ++nd) {
        result.msaQueueMaxDepth = std::max(
            result.msaQueueMaxDepth, msaQueues[nd].maxDepth());
        result.gpuQueueMaxDepth = std::max(
            result.gpuQueueMaxDepth, gpuQueues[nd].maxDepth());
    }
    result.maxInSystem = admission.maxInSystem();

    result.faultsInjected = injector.injectedCount();
    result.faultsByKind = injector.countsByKind();
    result.faultLog = injector.renderLog();

    result.comm = fabric.stats();
    result.links = fabric.activeLinks();
    if (multiNode)
        result.commTrace = fabric.trace().render();

    for (const auto &rec : result.records) {
        const std::string &s = rec.request.sample;
        if (!result.msaSecondsBySample.count(s) &&
            rec.outcome == Outcome::Completed &&
            !rec.msaCacheHit && !rec.faultAffected())
            result.msaSecondsBySample[s] =
                rec.msaEndSeconds - rec.msaStartSeconds;
    }
    return result;
}

} // namespace afsb::serve
