#include "serve/cluster.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "gpusim/inference_sim.hh"
#include "gpusim/init_profile.hh"
#include "util/logging.hh"

namespace afsb::serve {

std::vector<double>
ClusterResult::completedLatencies() const
{
    std::vector<double> out;
    out.reserve(records.size());
    for (const auto &rec : records)
        if (rec.outcome == Outcome::Completed)
            out.push_back(rec.latencySeconds());
    return out;
}

std::vector<double>
ClusterResult::servedLatencies() const
{
    std::vector<double> out;
    out.reserve(records.size());
    for (const auto &rec : records)
        if (rec.outcome == Outcome::Completed ||
            rec.outcome == Outcome::Degraded)
            out.push_back(rec.latencySeconds());
    return out;
}

const MsaServiceOracle::Service &
MsaServiceOracle::characterize(const sys::PlatformSpec &platform,
                               const core::Workspace &workspace,
                               const ClusterConfig &config,
                               const std::string &sample)
{
    auto it = memo_.find(sample);
    if (it != memo_.end())
        return it->second;

    const auto input = bio::makeSample(sample);
    core::MsaPhaseOptions opt = config.msaOptions;
    opt.threads = config.msaThreadsPerWorker;
    const auto r =
        core::runMsaPhase(input.complex, platform, workspace, opt);
    if (r.oom)
        fatal("serve: MSA phase for sample '" + sample +
              "' OOMs on " + platform.name + "; use `estimate` first");

    Service svc;
    svc.seconds = r.seconds;
    // Stored-alignment footprint: one byte per residue per aligned
    // row, per chain (an a3m-like encoding).
    uint64_t bytes = 0;
    const auto &chains = input.complex.chains();
    for (size_t i = 0;
         i < chains.size() && i < r.msaDepthPerChain.size(); ++i)
        bytes += static_cast<uint64_t>(r.msaDepthPerChain[i]) *
                 chains[i].length();
    svc.resultBytes = std::max<uint64_t>(bytes, 1024);
    return memo_.emplace(sample, svc).first->second;
}

namespace {

/** A long-lived GPU worker process with persistent model state. */
struct GpuWorker
{
    gpusim::XlaCache xla;
    uint64_t served = 0;
    /** GPU context up (init paid): set on first dispatch, kept by a
     *  respawn — the boot cost covers re-init, only the XLA cache is
     *  lost. */
    bool initialized = false;
};

/** A stage completion (or mid-service fault) on the event clock. */
struct Completion
{
    double time = 0.0;
    uint32_t worker = 0;
    size_t record = 0;

    /** The attempt aborts at @c time instead of finishing. */
    bool fault = false;
    fault::FaultKind kind = fault::FaultKind::MsaWorkerCrash;
    bool workerDies = false;
    bool permanent = false;

    bool
    operator>(const Completion &other) const
    {
        if (time != other.time)
            return time > other.time;
        return record > other.record;
    }
};

using CompletionQueue =
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>;

/** A crashed worker finishing its boot. */
struct Respawn
{
    double time = 0.0;
    uint32_t worker = 0;
    bool gpuPool = false;
    uint64_t seq = 0;

    bool
    operator>(const Respawn &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

/** A request re-entering a stage queue after backoff. */
struct Requeue
{
    double time = 0.0;
    size_t record = 0;
    bool gpuStage = false;
    uint64_t seq = 0;

    bool
    operator>(const Requeue &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

template <typename T>
using MinQueue =
    std::priority_queue<T, std::vector<T>, std::greater<T>>;

constexpr double kNoEvent = 1e300;

template <typename Q>
double
nextTime(const Q &q)
{
    return q.empty() ? kNoEvent : q.top().time;
}

} // namespace

ClusterResult
simulateCluster(const sys::PlatformSpec &platform,
                const core::Workspace &workspace,
                const std::vector<Request> &requests,
                const ClusterConfig &config)
{
    if (config.msaWorkers == 0 || config.gpuWorkers == 0)
        fatal("serve: need at least one worker in each pool");
    if (config.admissionCapacity == 0)
        fatal("serve: admission capacity must be >= 1");
    const RecoveryPolicy &recovery = config.recovery;
    if (recovery.maxAttemptsPerStage == 0)
        fatal("serve: maxAttemptsPerStage must be >= 1");

    ClusterResult result;
    result.msaWorkers = config.msaWorkers;
    result.gpuWorkers = config.gpuWorkers;

    // Arrival order defines record order and request ids.
    std::vector<Request> arrivals = requests;
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalSeconds < b.arrivalSeconds;
                     });
    result.records.resize(arrivals.size());
    for (size_t i = 0; i < arrivals.size(); ++i) {
        arrivals[i].id = i;
        result.records[i].request = arrivals[i];
    }

    MsaServiceOracle localOracle;
    MsaServiceOracle &oracle =
        config.msaOracle ? *config.msaOracle : localOracle;
    const auto msaService = [&](const std::string &sample)
        -> const MsaServiceOracle::Service & {
        return oracle.characterize(platform, workspace, config,
                                   sample);
    };

    MsaResultCache cache(config.msaCacheBudgetBytes);
    AdmissionController admission(config.admissionCapacity);
    DispatchQueue msaQueue(config.policy);
    DispatchQueue gpuQueue(config.policy);

    std::vector<GpuWorker> gpuWorkers(config.gpuWorkers);
    std::vector<uint32_t> freeGpu;
    for (uint32_t w = config.gpuWorkers; w-- > 0;)
        freeGpu.push_back(w); // back() pops the lowest id first
    std::vector<uint32_t> freeMsa;
    for (uint32_t w = config.msaWorkers; w-- > 0;)
        freeMsa.push_back(w);

    CompletionQueue msaBusy;
    CompletionQueue gpuBusy;
    MinQueue<Respawn> respawnQueue;
    MinQueue<Requeue> requeueQueue;
    uint64_t eventSeq = 0;

    fault::Injector injector(config.faultPlan);
    const bool faultsOn = !config.faultPlan.empty();
    // Deadlines inject timeouts even without a plan, so they also
    // switch the fault section of reports on.
    result.faultsEnabled = faultsOn ||
                           recovery.msaDeadlineSeconds > 0.0 ||
                           recovery.gpuDeadlineSeconds > 0.0;
    // Workers not permanently lost; the last live replica of a pool
    // is never lost permanently (the supervisor always restarts the
    // final replica), so no queue can strand.
    uint32_t liveMsa = config.msaWorkers;
    uint32_t liveGpu = config.gpuWorkers;
    uint64_t retriesUsed = 0;

    const double msaRespawnDelay =
        recovery.respawnSpawnSeconds + recovery.msaRespawnSeconds;
    const double gpuRespawnDelay =
        recovery.respawnSpawnSeconds +
        (recovery.gpuRespawnSeconds >= 0.0
             ? recovery.gpuRespawnSeconds
             : gpusim::initPhaseSeconds(platform));

    // Per-request time of the latest entry into its current stage
    // queue (deadlines run from here); terminal flag for the
    // conservation check.
    std::vector<double> stageEnqueue(arrivals.size(), 0.0);
    std::vector<char> finished(arrivals.size(), 0);

    gpusim::InferenceSimOptions inferOptions;
    inferOptions.threads = config.inferenceThreads;
    inferOptions.unifiedMemory = config.unifiedMemory;

    size_t nextArrival = 0;
    double clock = 0.0;

    const auto finish = [&](RequestRecord &rec, Outcome outcome,
                            double now) {
        rec.outcome = outcome;
        rec.finishSeconds = now;
        finished[rec.request.id] = 1;
        admission.release();
    };

    /**
     * A service attempt for @p rec on @p stage just died at @p now
     * (injected fault or deadline): retry with backoff while the
     * per-stage attempt cap and the cluster retry budget allow,
     * else degrade (shed the MSA stage, reduced-recycling GPU pass)
     * or fail hard.
     */
    const auto failAttempt = [&](RequestRecord &rec, bool gpuStage,
                                 double now, fault::FaultKind kind,
                                 uint32_t worker, bool permanent) {
        ++rec.faultsSeen;
        injector.record({now, kind, worker, rec.request.id,
                         permanent});
        if (kind == fault::FaultKind::RequestTimeout)
            ++result.timeouts;

        const uint32_t attempts =
            gpuStage ? rec.gpuAttempts : rec.msaAttempts;
        if (attempts < recovery.maxAttemptsPerStage &&
            retriesUsed < recovery.retryBudget) {
            ++retriesUsed;
            ++result.retries;
            const double backoff =
                recovery.backoffBaseSeconds *
                std::pow(recovery.backoffMultiplier,
                         static_cast<double>(attempts) - 1.0);
            requeueQueue.push(
                {now + backoff, rec.request.id, gpuStage,
                 eventSeq++});
            return;
        }
        if (recovery.degradeOnExhaustion) {
            if (!rec.degradedPath) {
                rec.degradedPath = true;
                if (!gpuStage) // no-MSA fallback: skip the stage
                    rec.msaEndSeconds = now;
            }
            requeueQueue.push(
                {now, rec.request.id, true, eventSeq++});
            return;
        }
        finish(rec, Outcome::Failed, now);
    };

    const auto dispatch = [&](double now) {
        while (!freeMsa.empty() && !msaQueue.empty()) {
            const Request r = msaQueue.pop();
            auto &rec = result.records[r.id];
            // Expired while queued: the attempt never starts.
            if (recovery.msaDeadlineSeconds > 0.0 &&
                now - stageEnqueue[r.id] >=
                    recovery.msaDeadlineSeconds) {
                ++rec.msaAttempts;
                failAttempt(rec, false, now,
                            fault::FaultKind::RequestTimeout, 0,
                            false);
                continue;
            }
            const uint32_t wid = freeMsa.back();
            freeMsa.pop_back();
            ++rec.msaAttempts;
            const auto &svc = msaService(r.sample);
            double service = svc.seconds;

            Completion c{now + service, wid, r.id};
            if (faultsOn) {
                const auto d = injector.msaService();
                if (d.latencyFactor > 1.0) {
                    service *= d.latencyFactor;
                    c.time = now + service;
                    injector.record(
                        {now,
                         fault::FaultKind::StorageLatencySpike, wid,
                         r.id, false});
                    ++rec.faultsSeen;
                }
                if (d.failed()) {
                    c.fault = true;
                    c.kind =
                        d.crash
                            ? fault::FaultKind::MsaWorkerCrash
                            : fault::FaultKind::StorageReadError;
                    c.workerDies = d.crash;
                    c.permanent = d.crash && d.permanent;
                    c.time = now + service * d.failFraction;
                }
            }
            if (recovery.msaDeadlineSeconds > 0.0) {
                const double deadline =
                    stageEnqueue[r.id] +
                    recovery.msaDeadlineSeconds;
                if (deadline < c.time) {
                    c.time = deadline;
                    c.fault = true;
                    c.kind = fault::FaultKind::RequestTimeout;
                    c.workerDies = false;
                    c.permanent = false;
                }
            }
            rec.msaStartSeconds = now;
            const double occupied = c.time - now;
            result.msaBusySeconds += occupied;
            if (c.fault)
                result.lostServiceSeconds += occupied;
            msaBusy.push(c);
        }
        while (!freeGpu.empty() && !gpuQueue.empty()) {
            const Request r = gpuQueue.pop();
            auto &rec = result.records[r.id];
            const bool degraded = rec.degradedPath;
            if (!degraded && recovery.gpuDeadlineSeconds > 0.0 &&
                now - stageEnqueue[r.id] >=
                    recovery.gpuDeadlineSeconds) {
                ++rec.gpuAttempts;
                failAttempt(rec, true, now,
                            fault::FaultKind::RequestTimeout, 0,
                            false);
                continue;
            }
            const uint32_t wid = freeGpu.back();
            freeGpu.pop_back();
            ++rec.gpuAttempts;
            auto &worker = gpuWorkers[wid];
            inferOptions.gpuAlreadyInitialized = worker.initialized;
            const auto infer = gpusim::simulateInference(
                platform, r.tokens, worker.xla, inferOptions);
            if (infer.oom)
                fatal("serve: inference for sample '" + r.sample +
                      "' OOMs on " + platform.name +
                      " without unified memory");
            ++worker.served;
            worker.initialized = true;
            rec.gpuStartSeconds = now;
            rec.compileSeconds = infer.compileSeconds;
            double service = infer.totalSeconds();
            if (degraded)
                // Reduced-recycling fallback: fewer diffusion
                // recycles, proportionally less GPU compute.
                service -= infer.gpuComputeSeconds *
                           (1.0 - recovery.degradedRecyclingFactor);

            Completion c{now + service, wid, r.id};
            // The degraded pass is the last-ditch answer: exempt
            // from injection and deadlines so it always completes.
            if (faultsOn && !degraded) {
                const auto d = injector.gpuService();
                if (d.crash) {
                    c.fault = true;
                    c.kind = fault::FaultKind::GpuWorkerCrash;
                    c.workerDies = true;
                    c.permanent = d.permanent;
                    c.time = now + service * d.failFraction;
                }
            }
            if (!degraded && recovery.gpuDeadlineSeconds > 0.0) {
                const double deadline =
                    stageEnqueue[r.id] +
                    recovery.gpuDeadlineSeconds;
                if (deadline < c.time) {
                    c.time = deadline;
                    c.fault = true;
                    c.kind = fault::FaultKind::RequestTimeout;
                    c.workerDies = false;
                    c.permanent = false;
                }
            }
            const double occupied = c.time - now;
            result.gpuBusySeconds += occupied;
            if (c.fault)
                result.lostServiceSeconds += occupied;
            gpuBusy.push(c);
        }
    };

    /** Handle a crash: respawn after the boot delay, or shrink the
     *  pool permanently — never below one live replica. */
    const auto crashWorker = [&](uint32_t wid, bool gpuPool,
                                 double now, bool permanent) {
        uint32_t &live = gpuPool ? liveGpu : liveMsa;
        if (permanent && live <= 1)
            permanent = false; // supervisor restarts the last one
        if (gpuPool)
            gpuWorkers[wid].xla.clear(); // persistent state lost
        if (permanent) {
            --live;
            ++result.permanentWorkerLosses;
            return permanent;
        }
        respawnQueue.push(
            {now + (gpuPool ? gpuRespawnDelay : msaRespawnDelay),
             wid, gpuPool, eventSeq++});
        return permanent;
    };

    while (nextArrival < arrivals.size() || !msaBusy.empty() ||
           !gpuBusy.empty() || !respawnQueue.empty() ||
           !requeueQueue.empty()) {
        const double arrivalTime =
            nextArrival < arrivals.size()
                ? arrivals[nextArrival].arrivalSeconds
                : kNoEvent;
        clock = std::min({arrivalTime, nextTime(msaBusy),
                          nextTime(gpuBusy),
                          nextTime(respawnQueue),
                          nextTime(requeueQueue)});

        // Completions first, so capacity freed at this instant is
        // visible to a simultaneous arrival.
        while (!gpuBusy.empty() && gpuBusy.top().time <= clock) {
            const Completion done = gpuBusy.top();
            gpuBusy.pop();
            auto &rec = result.records[done.record];
            if (!done.fault) {
                finish(rec,
                       rec.degradedPath ? Outcome::Degraded
                                        : Outcome::Completed,
                       done.time);
                freeGpu.push_back(done.worker);
                continue;
            }
            const bool permanent =
                done.workerDies
                    ? crashWorker(done.worker, true, done.time,
                                  done.permanent)
                    : (freeGpu.push_back(done.worker), false);
            failAttempt(rec, true, done.time, done.kind,
                        done.worker, permanent);
        }

        while (!msaBusy.empty() && msaBusy.top().time <= clock) {
            const Completion done = msaBusy.top();
            msaBusy.pop();
            auto &rec = result.records[done.record];
            if (!done.fault) {
                rec.msaEndSeconds = done.time;
                freeMsa.push_back(done.worker);
                const uint64_t key = rec.request.contentHash;
                const bool corrupt =
                    faultsOn && injector.cacheInsertCorrupted();
                cache.insert(
                    key, msaService(rec.request.sample).resultBytes);
                if (corrupt && cache.corrupt(key))
                    injector.record(
                        {done.time,
                         fault::FaultKind::CacheCorruption, 0,
                         rec.request.id, false});
                stageEnqueue[rec.request.id] = done.time;
                gpuQueue.push(rec.request);
                continue;
            }
            const bool permanent =
                done.workerDies
                    ? crashWorker(done.worker, false, done.time,
                                  done.permanent)
                    : (freeMsa.push_back(done.worker), false);
            failAttempt(rec, false, done.time, done.kind,
                        done.worker, permanent);
        }

        while (!respawnQueue.empty() &&
               respawnQueue.top().time <= clock) {
            const Respawn up = respawnQueue.top();
            respawnQueue.pop();
            if (up.gpuPool) {
                ++result.gpuRespawns;
                freeGpu.push_back(up.worker);
            } else {
                ++result.msaRespawns;
                freeMsa.push_back(up.worker);
            }
        }

        // Keep the free-worker lists ordered so the lowest id is
        // always dispatched next (determinism).
        std::sort(freeGpu.begin(), freeGpu.end(),
                  std::greater<uint32_t>());
        std::sort(freeMsa.begin(), freeMsa.end(),
                  std::greater<uint32_t>());

        while (!requeueQueue.empty() &&
               requeueQueue.top().time <= clock) {
            const Requeue rq = requeueQueue.top();
            requeueQueue.pop();
            auto &rec = result.records[rq.record];
            stageEnqueue[rq.record] = rq.time;
            (rq.gpuStage ? gpuQueue : msaQueue).push(rec.request);
        }

        while (nextArrival < arrivals.size() &&
               arrivals[nextArrival].arrivalSeconds <= clock) {
            const Request &r = arrivals[nextArrival++];
            auto &rec = result.records[r.id];
            ++result.offered;
            if (!admission.tryAdmit()) {
                rec.outcome = Outcome::Shed;
                rec.msaStartSeconds = rec.msaEndSeconds =
                    rec.gpuStartSeconds = rec.finishSeconds =
                        r.arrivalSeconds;
                finished[r.id] = 1;
                continue;
            }
            stageEnqueue[r.id] = r.arrivalSeconds;
            if (cache.lookup(r.contentHash) ==
                MsaResultCache::Lookup::Hit) {
                // AF_Cache hit: the MSA stage vanishes.
                rec.msaCacheHit = true;
                rec.msaStartSeconds = rec.msaEndSeconds =
                    r.arrivalSeconds;
                gpuQueue.push(r);
            } else {
                // Miss, or a corrupted entry detected and dropped
                // at lookup — either way the MSA stage runs.
                msaQueue.push(r);
            }
        }

        dispatch(clock);
        result.makespanSeconds =
            std::max(result.makespanSeconds, clock);
    }

    for (size_t i = 0; i < result.records.size(); ++i) {
        panicIf(!finished[i],
                "serve: request lost by the event loop");
        switch (result.records[i].outcome) {
        case Outcome::Completed:
            ++result.completed;
            break;
        case Outcome::Degraded:
            ++result.degraded;
            break;
        case Outcome::Failed:
            ++result.failed;
            break;
        case Outcome::Shed:
            ++result.shed;
            break;
        }
    }
    result.cacheStats = cache.stats();
    result.cacheBytesInUse = cache.bytesInUse();
    result.cacheEntries = cache.entries();
    result.msaQueueMaxDepth = msaQueue.maxDepth();
    result.gpuQueueMaxDepth = gpuQueue.maxDepth();
    result.maxInSystem = admission.maxInSystem();

    result.faultsInjected = injector.injectedCount();
    result.faultsByKind = injector.countsByKind();
    result.faultLog = injector.renderLog();

    for (const auto &rec : result.records) {
        const std::string &s = rec.request.sample;
        if (!result.msaSecondsBySample.count(s) &&
            rec.outcome == Outcome::Completed &&
            !rec.msaCacheHit && !rec.faultAffected())
            result.msaSecondsBySample[s] =
                rec.msaEndSeconds - rec.msaStartSeconds;
    }
    return result;
}

} // namespace afsb::serve
