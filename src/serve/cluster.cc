#include "serve/cluster.hh"

#include <algorithm>
#include <queue>

#include "gpusim/inference_sim.hh"
#include "util/logging.hh"

namespace afsb::serve {

std::vector<double>
ClusterResult::completedLatencies() const
{
    std::vector<double> out;
    out.reserve(records.size());
    for (const auto &rec : records)
        if (rec.outcome == Outcome::Completed)
            out.push_back(rec.latencySeconds());
    return out;
}

namespace {

/**
 * Deterministic service-time oracle. The MSA phase depends only on
 * (sample, platform, worker threads), so each distinct sample is
 * characterized once with the real engine and the result reused for
 * every request — the simulation equivalent of every worker running
 * identical software on identical inputs.
 */
class ServiceModel
{
  public:
    ServiceModel(const sys::PlatformSpec &platform,
                 const core::Workspace &workspace,
                 const ClusterConfig &config)
        : platform_(platform), workspace_(workspace),
          config_(config)
    {}

    struct MsaService
    {
        double seconds = 0.0;
        uint64_t resultBytes = 0;
    };

    const MsaService &
    msaService(const std::string &sample)
    {
        auto it = msa_.find(sample);
        if (it != msa_.end())
            return it->second;

        const auto input = bio::makeSample(sample);
        core::MsaPhaseOptions opt = config_.msaOptions;
        opt.threads = config_.msaThreadsPerWorker;
        const auto r = core::runMsaPhase(input.complex, platform_,
                                         workspace_, opt);
        if (r.oom)
            fatal("serve: MSA phase for sample '" + sample +
                  "' OOMs on " + platform_.name +
                  "; use `estimate` first");

        MsaService svc;
        svc.seconds = r.seconds;
        // Stored-alignment footprint: one byte per residue per
        // aligned row, per chain (an a3m-like encoding).
        uint64_t bytes = 0;
        const auto &chains = input.complex.chains();
        for (size_t i = 0;
             i < chains.size() && i < r.msaDepthPerChain.size();
             ++i)
            bytes += static_cast<uint64_t>(r.msaDepthPerChain[i]) *
                     chains[i].length();
        svc.resultBytes = std::max<uint64_t>(bytes, 1024);
        return msa_.emplace(sample, svc).first->second;
    }

  private:
    const sys::PlatformSpec &platform_;
    const core::Workspace &workspace_;
    const ClusterConfig &config_;
    std::map<std::string, MsaService> msa_;
};

/** A long-lived GPU worker process with persistent model state. */
struct GpuWorker
{
    gpusim::XlaCache xla;
    uint64_t served = 0;
};

/** A stage completion on the event clock. */
struct Completion
{
    double time = 0.0;
    uint32_t worker = 0;
    size_t record = 0;

    bool
    operator>(const Completion &other) const
    {
        if (time != other.time)
            return time > other.time;
        return record > other.record;
    }
};

using CompletionQueue =
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>;

constexpr double kNoEvent = 1e300;

double
nextTime(const CompletionQueue &q)
{
    return q.empty() ? kNoEvent : q.top().time;
}

} // namespace

ClusterResult
simulateCluster(const sys::PlatformSpec &platform,
                const core::Workspace &workspace,
                const std::vector<Request> &requests,
                const ClusterConfig &config)
{
    if (config.msaWorkers == 0 || config.gpuWorkers == 0)
        fatal("serve: need at least one worker in each pool");
    if (config.admissionCapacity == 0)
        fatal("serve: admission capacity must be >= 1");

    ClusterResult result;
    result.msaWorkers = config.msaWorkers;
    result.gpuWorkers = config.gpuWorkers;

    // Arrival order defines record order and request ids.
    std::vector<Request> arrivals = requests;
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalSeconds < b.arrivalSeconds;
                     });
    result.records.resize(arrivals.size());
    for (size_t i = 0; i < arrivals.size(); ++i) {
        arrivals[i].id = i;
        result.records[i].request = arrivals[i];
    }

    ServiceModel model(platform, workspace, config);
    MsaResultCache cache(config.msaCacheBudgetBytes);
    AdmissionController admission(config.admissionCapacity);
    DispatchQueue msaQueue(config.policy);
    DispatchQueue gpuQueue(config.policy);

    std::vector<GpuWorker> gpuWorkers(config.gpuWorkers);
    std::vector<uint32_t> freeGpu;
    for (uint32_t w = config.gpuWorkers; w-- > 0;)
        freeGpu.push_back(w); // back() pops the lowest id first
    uint32_t freeMsa = config.msaWorkers;

    CompletionQueue msaBusy;
    CompletionQueue gpuBusy;

    gpusim::InferenceSimOptions inferOptions;
    inferOptions.threads = config.inferenceThreads;
    inferOptions.unifiedMemory = config.unifiedMemory;

    size_t nextArrival = 0;
    double clock = 0.0;

    const auto dispatch = [&](double now) {
        while (freeMsa > 0 && !msaQueue.empty()) {
            const Request r = msaQueue.pop();
            auto &rec = result.records[r.id];
            const auto &svc = model.msaService(r.sample);
            rec.msaStartSeconds = now;
            --freeMsa;
            result.msaBusySeconds += svc.seconds;
            msaBusy.push({now + svc.seconds, 0, r.id});
        }
        while (!freeGpu.empty() && !gpuQueue.empty()) {
            const Request r = gpuQueue.pop();
            auto &rec = result.records[r.id];
            const uint32_t wid = freeGpu.back();
            freeGpu.pop_back();
            auto &worker = gpuWorkers[wid];
            inferOptions.gpuAlreadyInitialized = worker.served > 0;
            const auto infer = gpusim::simulateInference(
                platform, r.tokens, worker.xla, inferOptions);
            if (infer.oom)
                fatal("serve: inference for sample '" + r.sample +
                      "' OOMs on " + platform.name +
                      " without unified memory");
            ++worker.served;
            rec.gpuStartSeconds = now;
            rec.compileSeconds = infer.compileSeconds;
            const double service = infer.totalSeconds();
            result.gpuBusySeconds += service;
            gpuBusy.push({now + service, wid, r.id});
        }
    };

    while (nextArrival < arrivals.size() || !msaBusy.empty() ||
           !gpuBusy.empty()) {
        const double arrivalTime =
            nextArrival < arrivals.size()
                ? arrivals[nextArrival].arrivalSeconds
                : kNoEvent;
        clock = std::min({arrivalTime, nextTime(msaBusy),
                          nextTime(gpuBusy)});

        // Completions first, so capacity freed at this instant is
        // visible to a simultaneous arrival.
        while (!gpuBusy.empty() && gpuBusy.top().time <= clock) {
            const Completion done = gpuBusy.top();
            gpuBusy.pop();
            auto &rec = result.records[done.record];
            rec.finishSeconds = done.time;
            rec.outcome = Outcome::Completed;
            freeGpu.push_back(done.worker);
            admission.release();
        }
        // Keep the free-worker list ordered so the lowest id is
        // always dispatched next (determinism).
        std::sort(freeGpu.begin(), freeGpu.end(),
                  std::greater<uint32_t>());

        while (!msaBusy.empty() && msaBusy.top().time <= clock) {
            const Completion done = msaBusy.top();
            msaBusy.pop();
            auto &rec = result.records[done.record];
            rec.msaEndSeconds = done.time;
            ++freeMsa;
            cache.insert(rec.request.contentHash,
                         model.msaService(rec.request.sample)
                             .resultBytes);
            gpuQueue.push(rec.request);
        }

        while (nextArrival < arrivals.size() &&
               arrivals[nextArrival].arrivalSeconds <= clock) {
            const Request &r = arrivals[nextArrival++];
            auto &rec = result.records[r.id];
            ++result.offered;
            if (!admission.tryAdmit()) {
                rec.outcome = Outcome::Shed;
                rec.msaStartSeconds = rec.msaEndSeconds =
                    rec.gpuStartSeconds = rec.finishSeconds =
                        r.arrivalSeconds;
                continue;
            }
            if (cache.lookup(r.contentHash)) {
                // AF_Cache hit: the MSA stage vanishes.
                rec.msaCacheHit = true;
                rec.msaStartSeconds = rec.msaEndSeconds =
                    r.arrivalSeconds;
                gpuQueue.push(r);
            } else {
                msaQueue.push(r);
            }
        }

        dispatch(clock);
        result.makespanSeconds =
            std::max(result.makespanSeconds, clock);
    }

    for (const auto &rec : result.records) {
        if (rec.outcome == Outcome::Completed)
            ++result.completed;
        else
            ++result.shed;
    }
    result.cacheStats = cache.stats();
    result.cacheBytesInUse = cache.bytesInUse();
    result.cacheEntries = cache.entries();
    result.msaQueueMaxDepth = msaQueue.maxDepth();
    result.gpuQueueMaxDepth = gpuQueue.maxDepth();
    result.maxInSystem = admission.maxInSystem();

    for (const auto &rec : result.records) {
        const std::string &s = rec.request.sample;
        if (!result.msaSecondsBySample.count(s) &&
            rec.outcome == Outcome::Completed &&
            !rec.msaCacheHit)
            result.msaSecondsBySample[s] =
                rec.msaEndSeconds - rec.msaStartSeconds;
    }
    return result;
}

} // namespace afsb::serve
