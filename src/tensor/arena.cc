#include "tensor/arena.hh"

#include <algorithm>
#include <cstring>

namespace afsb::tensor {

namespace {

/** Smallest block ever allocated (floats). */
constexpr size_t kMinBlockFloats = 1 << 16;

/** Round a request up to a 16-float (64-byte) boundary. */
inline size_t
roundUp(size_t n)
{
    return (n + 15) & ~static_cast<size_t>(15);
}

} // namespace

Arena::Arena(size_t initial_floats)
{
    if (initial_floats > 0) {
        Block b;
        b.data.resize(roundUp(initial_floats));
        blocks_.push_back(std::move(b));
    }
}

float *
Arena::alloc(size_t n)
{
    n = roundUp(std::max<size_t>(n, 1));
    // Advance through blocks left over from earlier high-water marks
    // before growing; rewind() keeps their capacity.
    while (cur_ < blocks_.size()) {
        Block &b = blocks_[cur_];
        if (b.used + n <= b.data.size()) {
            float *p = b.data.data() + b.used;
            b.used += n;
            live_ += n;
            highWater_ = std::max(highWater_, live_);
            return p;
        }
        if (cur_ + 1 >= blocks_.size())
            break;
        ++cur_;
    }
    // Geometric growth so a deep stack settles into O(1) blocks.
    Block fresh;
    const size_t prev =
        blocks_.empty() ? kMinBlockFloats
                        : blocks_.back().data.size() * 2;
    fresh.data.resize(std::max(prev, n));
    fresh.used = n;
    blocks_.push_back(std::move(fresh));
    cur_ = blocks_.size() - 1;
    live_ += n;
    highWater_ = std::max(highWater_, live_);
    return blocks_.back().data.data();
}

float *
Arena::allocZero(size_t n)
{
    float *p = alloc(n);
    std::memset(p, 0, roundUp(std::max<size_t>(n, 1)) *
                          sizeof(float));
    return p;
}

Arena::Mark
Arena::mark() const
{
    if (blocks_.empty())
        return Mark{};
    return Mark{cur_, blocks_[cur_].used};
}

void
Arena::rewind(Mark m)
{
    if (blocks_.empty())
        return;
    if (m.block >= blocks_.size()) {
        m.block = blocks_.size() - 1;
        m.used = blocks_[m.block].used;
    }
    blocks_[m.block].used = m.used;
    for (size_t b = m.block + 1; b < blocks_.size(); ++b)
        blocks_[b].used = 0;
    cur_ = m.block;
    live_ = 0;
    for (const Block &b : blocks_)
        live_ += b.used;
}

size_t
Arena::capacityFloats() const
{
    size_t total = 0;
    for (const Block &b : blocks_)
        total += b.data.size();
    return total;
}

} // namespace afsb::tensor
