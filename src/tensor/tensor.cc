#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/arena.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::tensor {

namespace {

size_t
shapeSize(const std::vector<size_t> &shape)
{
    size_t n = 1;
    for (size_t d : shape) {
        panicIf(d == 0, "Tensor: zero dimension");
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)),
      own_(shapeSize(shape_), 0.0f),
      ptr_(own_.data()),
      size_(own_.size())
{}

Tensor::Tensor(std::vector<size_t> shape, float value)
    : shape_(std::move(shape)),
      own_(shapeSize(shape_), value),
      ptr_(own_.data()),
      size_(own_.size())
{}

Tensor
Tensor::zeros(std::vector<size_t> shape, Arena *arena)
{
    if (!arena)
        return Tensor(std::move(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.size_ = shapeSize(t.shape_);
    t.ptr_ = arena->allocZero(t.size_);
    return t;
}

Tensor
Tensor::uninitialized(std::vector<size_t> shape, Arena *arena)
{
    if (!arena)
        return Tensor(std::move(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.size_ = shapeSize(t.shape_);
    t.ptr_ = arena->alloc(t.size_);
    return t;
}

Tensor
Tensor::randomNormal(std::vector<size_t> shape, Rng &rng,
                     float stddev)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.size_; ++i)
        t.ptr_[i] =
            stddev * static_cast<float>(rng.nextGaussian());
    return t;
}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_),
      own_(other.ptr_, other.ptr_ + other.size_),
      ptr_(own_.data()),
      size_(other.size_)
{}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    shape_ = other.shape_;
    own_.assign(other.ptr_, other.ptr_ + other.size_);
    ptr_ = own_.data();
    size_ = other.size_;
    return *this;
}

Tensor::Tensor(Tensor &&other) noexcept
    : shape_(std::move(other.shape_)),
      own_(std::move(other.own_)),
      ptr_(own_.empty() ? other.ptr_ : own_.data()),
      size_(other.size_)
{
    other.shape_.clear();
    other.ptr_ = nullptr;
    other.size_ = 0;
}

Tensor &
Tensor::operator=(Tensor &&other) noexcept
{
    if (this == &other)
        return *this;
    shape_ = std::move(other.shape_);
    own_ = std::move(other.own_);
    ptr_ = own_.empty() ? other.ptr_ : own_.data();
    size_ = other.size_;
    other.shape_.clear();
    other.ptr_ = nullptr;
    other.size_ = 0;
    return *this;
}

size_t
Tensor::offset(size_t i, size_t j) const
{
    panicIf(rank() != 2, "Tensor: rank-2 access on " + shapeString());
    return i * shape_[1] + j;
}

size_t
Tensor::offset(size_t i, size_t j, size_t k) const
{
    panicIf(rank() != 3, "Tensor: rank-3 access on " + shapeString());
    return (i * shape_[1] + j) * shape_[2] + k;
}

size_t
Tensor::offset(size_t i, size_t j, size_t k, size_t l) const
{
    panicIf(rank() != 4, "Tensor: rank-4 access on " + shapeString());
    return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float &
Tensor::at(size_t i)
{
    panicIf(rank() != 1, "Tensor: rank-1 access on " + shapeString());
    return ptr_[i];
}

float &Tensor::at(size_t i, size_t j) { return ptr_[offset(i, j)]; }

float &
Tensor::at(size_t i, size_t j, size_t k)
{
    return ptr_[offset(i, j, k)];
}

float &
Tensor::at(size_t i, size_t j, size_t k, size_t l)
{
    return ptr_[offset(i, j, k, l)];
}

float
Tensor::at(size_t i) const
{
    panicIf(rank() != 1, "Tensor: rank-1 access on " + shapeString());
    return ptr_[i];
}

float Tensor::at(size_t i, size_t j) const { return ptr_[offset(i, j)]; }

float
Tensor::at(size_t i, size_t j, size_t k) const
{
    return ptr_[offset(i, j, k)];
}

float
Tensor::at(size_t i, size_t j, size_t k, size_t l) const
{
    return ptr_[offset(i, j, k, l)];
}

void
Tensor::fill(float value)
{
    std::fill(ptr_, ptr_ + size_, value);
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (size_t i = 0; i < size_; ++i)
        s += ptr_[i];
    return s;
}

bool
Tensor::hasNonFinite() const
{
    for (size_t i = 0; i < size_; ++i)
        if (!std::isfinite(ptr_[i]))
            return true;
    return false;
}

std::string
Tensor::shapeString() const
{
    std::string out = "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            out += ", ";
        out += strformat("%zu", shape_[i]);
    }
    return out + "]";
}

bool
Tensor::operator==(const Tensor &other) const
{
    return shape_ == other.shape_ &&
           std::equal(ptr_, ptr_ + size_, other.ptr_);
}

} // namespace afsb::tensor
