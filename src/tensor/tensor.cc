#include "tensor/tensor.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/str.hh"

namespace afsb::tensor {

namespace {

size_t
shapeSize(const std::vector<size_t> &shape)
{
    size_t n = 1;
    for (size_t d : shape) {
        panicIf(d == 0, "Tensor: zero dimension");
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(shapeSize(shape_), 0.0f)
{}

Tensor::Tensor(std::vector<size_t> shape, float value)
    : shape_(std::move(shape)), data_(shapeSize(shape_), value)
{}

Tensor
Tensor::randomNormal(std::vector<size_t> shape, Rng &rng,
                     float stddev)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = stddev * static_cast<float>(rng.nextGaussian());
    return t;
}

size_t
Tensor::offset(size_t i, size_t j) const
{
    panicIf(rank() != 2, "Tensor: rank-2 access on " + shapeString());
    return i * shape_[1] + j;
}

size_t
Tensor::offset(size_t i, size_t j, size_t k) const
{
    panicIf(rank() != 3, "Tensor: rank-3 access on " + shapeString());
    return (i * shape_[1] + j) * shape_[2] + k;
}

size_t
Tensor::offset(size_t i, size_t j, size_t k, size_t l) const
{
    panicIf(rank() != 4, "Tensor: rank-4 access on " + shapeString());
    return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float &
Tensor::at(size_t i)
{
    panicIf(rank() != 1, "Tensor: rank-1 access on " + shapeString());
    return data_[i];
}

float &Tensor::at(size_t i, size_t j) { return data_[offset(i, j)]; }

float &
Tensor::at(size_t i, size_t j, size_t k)
{
    return data_[offset(i, j, k)];
}

float &
Tensor::at(size_t i, size_t j, size_t k, size_t l)
{
    return data_[offset(i, j, k, l)];
}

float
Tensor::at(size_t i) const
{
    panicIf(rank() != 1, "Tensor: rank-1 access on " + shapeString());
    return data_[i];
}

float Tensor::at(size_t i, size_t j) const { return data_[offset(i, j)]; }

float
Tensor::at(size_t i, size_t j, size_t k) const
{
    return data_[offset(i, j, k)];
}

float
Tensor::at(size_t i, size_t j, size_t k, size_t l) const
{
    return data_[offset(i, j, k, l)];
}

void
Tensor::fill(float value)
{
    for (auto &v : data_)
        v = value;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float v : data_)
        s += v;
    return s;
}

bool
Tensor::hasNonFinite() const
{
    for (float v : data_)
        if (!std::isfinite(v))
            return true;
    return false;
}

std::string
Tensor::shapeString() const
{
    std::string out = "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            out += ", ";
        out += strformat("%zu", shape_[i]);
    }
    return out + "]";
}

} // namespace afsb::tensor
