/**
 * @file
 * Bump-pointer workspace arena for layer temporaries.
 *
 * The Pairformer/Diffusion stack allocates the same (N, N, c) and
 * (N, hd) intermediates for every one of the 48 blocks x recycling
 * iterations; with plain owning tensors each of those is a fresh
 * allocation plus a zero-fill. An Arena hands the same memory back
 * layer after layer: ops draw scratch with alloc()/allocZero(), and a
 * per-layer Arena::Scope rewinds the bump pointer on exit so the next
 * layer reuses the now-hot pages.
 *
 * Contract:
 *  - alloc()/rewind() are called from one thread at a time (layers
 *    allocate on the dispatching thread before any parallelFor).
 *  - Tensors backed by the arena (Tensor::zeros / Tensor::uninitialized
 *    with a non-null arena) are views: they must not outlive the Scope
 *    they were allocated under. Copying one yields an owning tensor.
 *  - Results are bit-identical with and without an arena; the arena
 *    only changes where scratch lives, never what is computed.
 */

#ifndef AFSB_TENSOR_ARENA_HH
#define AFSB_TENSOR_ARENA_HH

#include <cstddef>
#include <vector>

namespace afsb::tensor {

/** Growable bump-pointer float arena with scoped rewind. */
class Arena
{
  public:
    /** @param initial_floats Capacity of the first block (0 defers
     *         the first allocation to the first alloc call). */
    explicit Arena(size_t initial_floats = 0);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Uninitialized scratch of @p n floats (may contain stale data
     * from a previous scope; every element must be written before it
     * is read). Requests are rounded up to a 16-float boundary so
     * consecutive slabs stay vector-aligned relative to each other.
     */
    float *alloc(size_t n);

    /** Zero-filled scratch of @p n floats. */
    float *allocZero(size_t n);

    /** Position of the bump pointer; pass to rewind(). */
    struct Mark
    {
        size_t block = 0;
        size_t used = 0;
    };

    Mark mark() const;

    /** Release everything allocated after @p m (capacity is kept). */
    void rewind(Mark m);

    /** Floats currently allocated across all blocks. */
    size_t liveFloats() const { return live_; }

    /** Peak of liveFloats() over the arena's lifetime. */
    size_t highWaterFloats() const { return highWater_; }

    /** Total reserved capacity in floats. */
    size_t capacityFloats() const;

    /** Number of backing blocks (growth diagnostic). */
    size_t blockCount() const { return blocks_.size(); }

    /**
     * RAII rewind: captures the mark on entry, rewinds on exit.
     * A null arena makes the scope a no-op, so call sites can thread
     * an optional `Arena *` without branching.
     */
    class Scope
    {
      public:
        explicit Scope(Arena *arena) : arena_(arena)
        {
            if (arena_)
                mark_ = arena_->mark();
        }

        ~Scope()
        {
            if (arena_)
                arena_->rewind(mark_);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Arena *arena_;
        Mark mark_{};
    };

  private:
    struct Block
    {
        std::vector<float> data;
        size_t used = 0;
    };

    std::vector<Block> blocks_;
    size_t cur_ = 0;        ///< block the bump pointer lives in
    size_t live_ = 0;
    size_t highWater_ = 0;
};

} // namespace afsb::tensor

#endif // AFSB_TENSOR_ARENA_HH
