/**
 * @file
 * Minimal dense float32 tensor.
 *
 * Just enough machinery for the Pairformer and Diffusion modules:
 * row-major contiguous storage, up to 4 dimensions, seeded random
 * initialization. No views, no broadcasting, no autograd — the model
 * runs inference only and the performance-relevant structure (shape,
 * layout, arithmetic volume) is what matters.
 *
 * Storage is either owning (a private buffer, the default) or a slab
 * borrowed from a tensor::Arena via zeros()/uninitialized(). Arena
 * tensors are views scoped by Arena::Scope: they must not outlive
 * their scope, and copying one always produces an owning tensor, so
 * anything that escapes a layer by value is safe by construction.
 */

#ifndef AFSB_TENSOR_TENSOR_HH
#define AFSB_TENSOR_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace afsb::tensor {

class Arena;

/** Dense row-major float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-initialized tensor of the given shape (owning). */
    explicit Tensor(std::vector<size_t> shape);

    /** Tensor filled with @p value (owning). */
    Tensor(std::vector<size_t> shape, float value);

    /**
     * Zero-filled tensor drawing storage from @p arena; owning when
     * @p arena is null. Bit-identical semantics either way.
     */
    static Tensor zeros(std::vector<size_t> shape, Arena *arena);

    /**
     * Scratch tensor whose contents are unspecified until written
     * (arena slabs carry stale data from earlier scopes; owning
     * storage happens to be zeroed). Every element must be stored
     * before it is loaded.
     */
    static Tensor uninitialized(std::vector<size_t> shape,
                                Arena *arena);

    /** Gaussian-initialized tensor (std = 1/sqrt(fan_in)-style). */
    static Tensor randomNormal(std::vector<size_t> shape, Rng &rng,
                               float stddev = 1.0f);

    /** Copies deep-copy into owning storage, even from a view. */
    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept;
    Tensor &operator=(Tensor &&other) noexcept;
    ~Tensor() = default;

    const std::vector<size_t> &shape() const { return shape_; }
    size_t rank() const { return shape_.size(); }
    size_t size() const { return size_; }
    uint64_t bytes() const { return size_ * sizeof(float); }

    /** True when the storage is an arena slab (not owned). */
    bool isView() const { return ptr_ != nullptr && own_.empty(); }

    /** Dimension @p i of the shape. */
    size_t dim(size_t i) const { return shape_.at(i); }

    float *data() { return ptr_; }
    const float *data() const { return ptr_; }

    float &operator[](size_t i) { return ptr_[i]; }
    float operator[](size_t i) const { return ptr_[i]; }

    /** Element accessors (rank-checked with panic on mismatch). */
    float &at(size_t i);
    float &at(size_t i, size_t j);
    float &at(size_t i, size_t j, size_t k);
    float &at(size_t i, size_t j, size_t k, size_t l);
    float at(size_t i) const;
    float at(size_t i, size_t j) const;
    float at(size_t i, size_t j, size_t k) const;
    float at(size_t i, size_t j, size_t k, size_t l) const;

    /** Fill every element with @p value. */
    void fill(float value);

    /** Sum of all elements. */
    double sum() const;

    /** True when any element is NaN or infinite. */
    bool hasNonFinite() const;

    /** "[2, 3, 4]" */
    std::string shapeString() const;

    /** Same shape and bitwise-equal elements. */
    bool operator==(const Tensor &other) const;

  private:
    size_t offset(size_t i, size_t j) const;
    size_t offset(size_t i, size_t j, size_t k) const;
    size_t offset(size_t i, size_t j, size_t k, size_t l) const;

    std::vector<size_t> shape_;
    std::vector<float> own_;    ///< owning storage; empty for views
    float *ptr_ = nullptr;
    size_t size_ = 0;
};

} // namespace afsb::tensor

#endif // AFSB_TENSOR_TENSOR_HH
