/**
 * @file
 * Minimal dense float32 tensor.
 *
 * Just enough machinery for the Pairformer and Diffusion modules:
 * row-major contiguous storage, up to 4 dimensions, seeded random
 * initialization. No views, no broadcasting, no autograd — the model
 * runs inference only and the performance-relevant structure (shape,
 * layout, arithmetic volume) is what matters.
 */

#ifndef AFSB_TENSOR_TENSOR_HH
#define AFSB_TENSOR_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace afsb::tensor {

/** Dense row-major float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<size_t> shape);

    /** Tensor filled with @p value. */
    Tensor(std::vector<size_t> shape, float value);

    /** Gaussian-initialized tensor (std = 1/sqrt(fan_in)-style). */
    static Tensor randomNormal(std::vector<size_t> shape, Rng &rng,
                               float stddev = 1.0f);

    const std::vector<size_t> &shape() const { return shape_; }
    size_t rank() const { return shape_.size(); }
    size_t size() const { return data_.size(); }
    uint64_t bytes() const { return data_.size() * sizeof(float); }

    /** Dimension @p i of the shape. */
    size_t dim(size_t i) const { return shape_.at(i); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** Element accessors (rank-checked with panic on mismatch). */
    float &at(size_t i);
    float &at(size_t i, size_t j);
    float &at(size_t i, size_t j, size_t k);
    float &at(size_t i, size_t j, size_t k, size_t l);
    float at(size_t i) const;
    float at(size_t i, size_t j) const;
    float at(size_t i, size_t j, size_t k) const;
    float at(size_t i, size_t j, size_t k, size_t l) const;

    /** Fill every element with @p value. */
    void fill(float value);

    /** Sum of all elements. */
    double sum() const;

    /** True when any element is NaN or infinite. */
    bool hasNonFinite() const;

    /** "[2, 3, 4]" */
    std::string shapeString() const;

    bool operator==(const Tensor &other) const = default;

  private:
    size_t offset(size_t i, size_t j) const;
    size_t offset(size_t i, size_t j, size_t k) const;
    size_t offset(size_t i, size_t j, size_t k, size_t l) const;

    std::vector<size_t> shape_;
    std::vector<float> data_;
};

} // namespace afsb::tensor

#endif // AFSB_TENSOR_TENSOR_HH
