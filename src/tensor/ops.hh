/**
 * @file
 * Tensor operations used by the Pairformer and Diffusion modules.
 *
 * The four heavy kernels (matmul, linear, softmax, layerNorm) accept
 * an optional ThreadPool: when supplied, output rows are partitioned
 * across the pool. Ownership of a row is static (each row is computed
 * start-to-finish by one task with the same serial inner loops), so
 * results are bit-identical to the serial path at every thread count.
 * The default is nullptr — serial — so existing callers and
 * deterministic tests are unaffected.
 */

#ifndef AFSB_TENSOR_OPS_HH
#define AFSB_TENSOR_OPS_HH

#include "tensor/tensor.hh"

namespace afsb {
class ThreadPool;
}

namespace afsb::tensor {

/** C = A (m x k) * B (k x n). */
Tensor matmul(const Tensor &a, const Tensor &b,
              ThreadPool *pool = nullptr);

/**
 * y = x * W + b over the last dimension: x is (..., in), W is
 * (in, out), b is (out).
 */
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &b,
              ThreadPool *pool = nullptr);

/** Softmax over the last dimension (numerically stable). */
Tensor softmax(const Tensor &x, ThreadPool *pool = nullptr);

/** Layer normalization over the last dimension. */
Tensor layerNorm(const Tensor &x, float eps = 1e-5f,
                 ThreadPool *pool = nullptr);

/** Elementwise GELU (tanh approximation). */
Tensor gelu(const Tensor &x);

/** Elementwise logistic sigmoid. */
Tensor sigmoid(const Tensor &x);

/** Elementwise ReLU. */
Tensor relu(const Tensor &x);

/** Elementwise sum (shapes must match). */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise product (shapes must match). */
Tensor mul(const Tensor &a, const Tensor &b);

/** Scale by a constant. */
Tensor scale(const Tensor &a, float s);

/** In-place a += b. */
void addInPlace(Tensor &a, const Tensor &b);

/** 2-D transpose. */
Tensor transpose(const Tensor &a);

/** Mean of |a - b| (test helper). */
double meanAbsDiff(const Tensor &a, const Tensor &b);

} // namespace afsb::tensor

#endif // AFSB_TENSOR_OPS_HH
