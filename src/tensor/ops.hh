/**
 * @file
 * Tensor operations used by the Pairformer and Diffusion modules.
 *
 * The four heavy kernels (matmul, linear, softmax, layerNorm) accept
 * an optional ThreadPool: when supplied, output rows are partitioned
 * across the pool. Ownership of a row is static (each row is computed
 * start-to-finish by one task with the same serial inner loops), so
 * results are bit-identical to the serial path at every thread count.
 * The default is nullptr — serial — so existing callers and
 * deterministic tests are unaffected.
 *
 * Every op additionally accepts an optional tensor::Arena: when
 * supplied, the result tensor is a scoped arena view instead of a
 * fresh allocation (see arena.hh for the lifetime rules). Results are
 * bit-identical with and without an arena.
 */

#ifndef AFSB_TENSOR_OPS_HH
#define AFSB_TENSOR_OPS_HH

#include "tensor/tensor.hh"

namespace afsb {
class ThreadPool;
}

namespace afsb::tensor {

class Arena;

/** C = A (m x k) * B (k x n). */
Tensor matmul(const Tensor &a, const Tensor &b,
              ThreadPool *pool = nullptr, Arena *arena = nullptr);

/**
 * y = x * W + b over the last dimension: x is (..., in), W is
 * (in, out), b is (out).
 */
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &b,
              ThreadPool *pool = nullptr, Arena *arena = nullptr);

/**
 * Bias-free projection: y = x * W. Bit-identical to linear() with a
 * zero bias, without materializing one per call site.
 */
Tensor linear(const Tensor &x, const Tensor &w,
              ThreadPool *pool = nullptr, Arena *arena = nullptr);

/**
 * c (m rows spaced @p cstride floats apart) += a (m rows spaced
 * @p astride, each k wide) * b (k rows spaced @p bstride, each n
 * wide). The cache-blocked, two-row register-blocked microkernel
 * behind matmul/linear, exposed with explicit row strides so the
 * attention kernels can run packed per-head slabs through it. Rows
 * of c must be initialized (the kernel accumulates); row pairing is
 * fixed from row 0 of the call, so one call is one deterministic
 * unit of work regardless of how callers parallelize around it.
 */
void gemmAcc(const float *a, size_t astride, const float *b,
             size_t bstride, float *c, size_t cstride, size_t m,
             size_t k, size_t n);

/** Softmax over the last dimension (numerically stable). */
Tensor softmax(const Tensor &x, ThreadPool *pool = nullptr,
               Arena *arena = nullptr);

/** Layer normalization over the last dimension. */
Tensor layerNorm(const Tensor &x, float eps = 1e-5f,
                 ThreadPool *pool = nullptr, Arena *arena = nullptr);

/** Elementwise GELU (tanh approximation). */
Tensor gelu(const Tensor &x, Arena *arena = nullptr);

/** Elementwise logistic sigmoid. */
Tensor sigmoid(const Tensor &x, Arena *arena = nullptr);

/** Elementwise ReLU. */
Tensor relu(const Tensor &x, Arena *arena = nullptr);

/** Elementwise sum (shapes must match). */
Tensor add(const Tensor &a, const Tensor &b, Arena *arena = nullptr);

/** Elementwise product (shapes must match). */
Tensor mul(const Tensor &a, const Tensor &b, Arena *arena = nullptr);

/** Scale by a constant. */
Tensor scale(const Tensor &a, float s, Arena *arena = nullptr);

/** In-place a += b. */
void addInPlace(Tensor &a, const Tensor &b);

/** 2-D transpose. */
Tensor transpose(const Tensor &a);

/** Mean of |a - b| (test helper). */
double meanAbsDiff(const Tensor &a, const Tensor &b);

/** Max of |a - b| / max(1, |b|) (equivalence-test helper). */
double maxRelDiff(const Tensor &a, const Tensor &b);

/**
 * Row/element-range building blocks behind the whole-tensor ops
 * above.  The task-graph scheduler (model/block_graph.cc) spawns one
 * task per row block and calls these directly; the whole-tensor ops
 * call the very same compiled bodies from their parallelFor blocks.
 * One shared implementation is what makes the task-graph path
 * bit-identical to the fork-join path by construction: the same
 * instruction sequence produces every element, only the executing
 * thread differs.
 *
 * GEMM-backed ranges (linearRows) must start on an even row so the
 * 2-row pairing inside gemmAcc is a function of the absolute row
 * index (the pool-determinism contract).
 */
namespace rowops {

/** y rows [r0, r1) = layerNorm(x rows).  d = row width. */
void layerNormRows(const float *x, float *y, size_t d, float eps,
                   size_t r0, size_t r1);

/**
 * y rows [r0, r1) = x rows * W (+ bias when non-null).  r0 must be
 * even (see above).
 */
void linearRows(const float *x, const float *w, const float *bias,
                float *y, size_t in, size_t out, size_t r0,
                size_t r1);

/** y[i] = sigmoid(x[i]) over the element range [i0, i1). */
void sigmoidRange(const float *x, float *y, size_t i0, size_t i1);

/** y[i] = gelu(x[i]) (tanh approximation) over [i0, i1). */
void geluRange(const float *x, float *y, size_t i0, size_t i1);

/** c[i] = a[i] * b[i] over [i0, i1). */
void mulRange(const float *a, const float *b, float *c, size_t i0,
              size_t i1);

/** a[i] += b[i] over [i0, i1). */
void addRange(float *a, const float *b, size_t i0, size_t i1);

/** y[i] = x[i] * s over [i0, i1). */
void scaleRange(const float *x, float *y, float s, size_t i0,
                size_t i1);

} // namespace rowops

} // namespace afsb::tensor

#endif // AFSB_TENSOR_OPS_HH
