/**
 * @file
 * Tensor operations used by the Pairformer and Diffusion modules.
 */

#ifndef AFSB_TENSOR_OPS_HH
#define AFSB_TENSOR_OPS_HH

#include "tensor/tensor.hh"

namespace afsb::tensor {

/** C = A (m x k) * B (k x n). */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * y = x * W + b over the last dimension: x is (..., in), W is
 * (in, out), b is (out).
 */
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &b);

/** Softmax over the last dimension (numerically stable). */
Tensor softmax(const Tensor &x);

/** Layer normalization over the last dimension. */
Tensor layerNorm(const Tensor &x, float eps = 1e-5f);

/** Elementwise GELU (tanh approximation). */
Tensor gelu(const Tensor &x);

/** Elementwise logistic sigmoid. */
Tensor sigmoid(const Tensor &x);

/** Elementwise ReLU. */
Tensor relu(const Tensor &x);

/** Elementwise sum (shapes must match). */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise product (shapes must match). */
Tensor mul(const Tensor &a, const Tensor &b);

/** Scale by a constant. */
Tensor scale(const Tensor &a, float s);

/** In-place a += b. */
void addInPlace(Tensor &a, const Tensor &b);

/** 2-D transpose. */
Tensor transpose(const Tensor &a);

/** Mean of |a - b| (test helper). */
double meanAbsDiff(const Tensor &a, const Tensor &b);

} // namespace afsb::tensor

#endif // AFSB_TENSOR_OPS_HH
