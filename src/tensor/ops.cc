#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "tensor/arena.hh"
#include "util/grain.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace afsb::tensor {

namespace {

/** Rows per parallel task (shared flop-budget policy). */
inline size_t
rowGrain(size_t flops_per_row)
{
    return grain::forFlops(flops_per_row);
}

/**
 * Output-column tile width (floats) for the GEMM-style kernels: the
 * C-row tile (2 KiB) plus eight streaming B-row tiles stay L1-resident
 * for the whole K sweep.
 */
constexpr size_t kColTile = 512;

/**
 * crow[0..n) += A-row * B over k terms, K unrolled 8-wide so every
 * C element is loaded and stored once per eight MACs, and column-tiled
 * so the accumulator tile stays cache-hot. Branch-free: zero A values
 * multiply through instead of branching — the old
 * `if (av == 0.0f) continue;` zero-skip blocked vectorization and
 * mispredicted on dense weights. B rows are @p bstride floats apart
 * (== n for a dense row-major B, wider for packed sub-matrices).
 */
inline void
accumulateRow(const float *AFSB_RESTRICT arow,
              const float *AFSB_RESTRICT b, float *AFSB_RESTRICT crow,
              size_t k, size_t n, size_t bstride)
{
    for (size_t j0 = 0; j0 < n; j0 += kColTile) {
        const size_t j1 = std::min(n, j0 + kColTile);
        size_t kk = 0;
        for (; kk + 8 <= k; kk += 8) {
            const float a0 = arow[kk], a1 = arow[kk + 1];
            const float a2 = arow[kk + 2], a3 = arow[kk + 3];
            const float a4 = arow[kk + 4], a5 = arow[kk + 5];
            const float a6 = arow[kk + 6], a7 = arow[kk + 7];
            const float *AFSB_RESTRICT b0 = b + kk * bstride;
            const float *AFSB_RESTRICT b1 = b0 + bstride;
            const float *AFSB_RESTRICT b2 = b1 + bstride;
            const float *AFSB_RESTRICT b3 = b2 + bstride;
            const float *AFSB_RESTRICT b4 = b3 + bstride;
            const float *AFSB_RESTRICT b5 = b4 + bstride;
            const float *AFSB_RESTRICT b6 = b5 + bstride;
            const float *AFSB_RESTRICT b7 = b6 + bstride;
            AFSB_VECTORIZE_LOOP
            for (size_t j = j0; j < j1; ++j)
                crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] +
                           a3 * b3[j] + a4 * b4[j] + a5 * b5[j] +
                           a6 * b6[j] + a7 * b7[j];
        }
        for (; kk < k; ++kk) {
            const float av = arow[kk];
            const float *AFSB_RESTRICT brow = b + kk * bstride;
            AFSB_VECTORIZE_LOOP
            for (size_t j = j0; j < j1; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/**
 * Two-row variant: rows 2t and 2t+1 share every B-row load, doubling
 * the arithmetic intensity of the K sweep. Each output row's own
 * accumulation is the same expression as the single-row kernel — the
 * paired row never mixes in.
 */
inline void
accumulateRowPair(const float *AFSB_RESTRICT arow0,
                  const float *AFSB_RESTRICT arow1,
                  const float *AFSB_RESTRICT b,
                  float *AFSB_RESTRICT c0, float *AFSB_RESTRICT c1,
                  size_t k, size_t n, size_t bstride)
{
    for (size_t j0 = 0; j0 < n; j0 += kColTile) {
        const size_t j1 = std::min(n, j0 + kColTile);
        size_t kk = 0;
        for (; kk + 8 <= k; kk += 8) {
            const float a00 = arow0[kk], a01 = arow0[kk + 1];
            const float a02 = arow0[kk + 2], a03 = arow0[kk + 3];
            const float a04 = arow0[kk + 4], a05 = arow0[kk + 5];
            const float a06 = arow0[kk + 6], a07 = arow0[kk + 7];
            const float a10 = arow1[kk], a11 = arow1[kk + 1];
            const float a12 = arow1[kk + 2], a13 = arow1[kk + 3];
            const float a14 = arow1[kk + 4], a15 = arow1[kk + 5];
            const float a16 = arow1[kk + 6], a17 = arow1[kk + 7];
            const float *AFSB_RESTRICT b0 = b + kk * bstride;
            const float *AFSB_RESTRICT b1 = b0 + bstride;
            const float *AFSB_RESTRICT b2 = b1 + bstride;
            const float *AFSB_RESTRICT b3 = b2 + bstride;
            const float *AFSB_RESTRICT b4 = b3 + bstride;
            const float *AFSB_RESTRICT b5 = b4 + bstride;
            const float *AFSB_RESTRICT b6 = b5 + bstride;
            const float *AFSB_RESTRICT b7 = b6 + bstride;
            AFSB_VECTORIZE_LOOP
            for (size_t j = j0; j < j1; ++j) {
                c0[j] += a00 * b0[j] + a01 * b1[j] + a02 * b2[j] +
                         a03 * b3[j] + a04 * b4[j] + a05 * b5[j] +
                         a06 * b6[j] + a07 * b7[j];
                c1[j] += a10 * b0[j] + a11 * b1[j] + a12 * b2[j] +
                         a13 * b3[j] + a14 * b4[j] + a15 * b5[j] +
                         a16 * b6[j] + a17 * b7[j];
            }
        }
        for (; kk < k; ++kk) {
            const float a0v = arow0[kk], a1v = arow1[kk];
            const float *AFSB_RESTRICT brow = b + kk * bstride;
            AFSB_VECTORIZE_LOOP
            for (size_t j = j0; j < j1; ++j) {
                c0[j] += a0v * brow[j];
                c1[j] += a1v * brow[j];
            }
        }
    }
}

/** Run fn(begin, end) over [0, rows), parallel when a pool is given.
 *  Rows are statically owned by whichever task receives them, so the
 *  result is identical to fn(0, rows). */
inline void
forRows(size_t rows, size_t flops_per_row, ThreadPool *pool,
        const std::function<void(size_t, size_t)> &fn)
{
    if (pool)
        pool->parallelFor(rows, rowGrain(flops_per_row), fn);
    else
        fn(0, rows);
}

/** forRows with the block grain rounded up to a multiple of
 *  @p align: blocks then always start on an align-multiple row, so
 *  row grouping inside the GEMM kernels is a function of the
 *  absolute row index alone — which kernel (paired or single)
 *  computes a given row never depends on the pool size, keeping
 *  parallel results bit-identical to serial. */
inline void
forRowsAligned(size_t rows, size_t flops_per_row, size_t align,
               ThreadPool *pool,
               const std::function<void(size_t, size_t)> &fn)
{
    if (pool) {
        pool->parallelFor(
            rows, grain::forFlopsAligned(flops_per_row, align), fn);
    } else {
        fn(0, rows);
    }
}

/** Row sweep for the GEMM kernels: pairs first, then a single-row
 *  tail. Callers must hand in align-2 blocks (forRowsAligned) so the
 *  pairing is position-independent. */
inline void
gemmRows(const float *a, size_t astride, const float *b,
         size_t bstride, float *c, size_t cstride, size_t k, size_t n,
         size_t r0, size_t r1)
{
    size_t i = r0;
    for (; i + 2 <= r1; i += 2)
        accumulateRowPair(a + i * astride, a + (i + 1) * astride, b,
                          c + i * cstride, c + (i + 1) * cstride, k,
                          n, bstride);
    if (i < r1)
        accumulateRow(a + i * astride, b, c + i * cstride, k, n,
                      bstride);
}

} // namespace

void
gemmAcc(const float *a, size_t astride, const float *b,
        size_t bstride, float *c, size_t cstride, size_t m, size_t k,
        size_t n)
{
    gemmRows(a, astride, b, bstride, c, cstride, k, n, 0, m);
}

Tensor
matmul(const Tensor &a, const Tensor &b, ThreadPool *pool,
       Arena *arena)
{
    panicIf(a.rank() != 2 || b.rank() != 2, "matmul: rank-2 only");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    panicIf(b.dim(0) != k, "matmul: inner dims differ");

    Tensor c = Tensor::zeros({m, n}, arena);
    forRowsAligned(m, 2 * k * n, 2, pool, [&](size_t r0, size_t r1) {
        gemmRows(a.data(), k, b.data(), n, c.data(), n, k, n, r0,
                 r1);
    });
    return c;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &b,
       ThreadPool *pool, Arena *arena)
{
    panicIf(w.rank() != 2, "linear: weight must be rank 2");
    const size_t in = w.dim(0), out = w.dim(1);
    panicIf(x.dim(x.rank() - 1) != in, "linear: input dim mismatch");
    panicIf(b.rank() != 1 || b.dim(0) != out,
            "linear: bias dim mismatch");

    std::vector<size_t> outShape = x.shape();
    outShape.back() = out;
    Tensor y = Tensor::uninitialized(std::move(outShape), arena);

    const size_t rows = x.size() / in;
    forRowsAligned(rows, 2 * in * out, 2, pool,
                   [&](size_t r0, size_t r1) {
        rowops::linearRows(x.data(), w.data(), b.data(), y.data(),
                           in, out, r0, r1);
    });
    return y;
}

Tensor
linear(const Tensor &x, const Tensor &w, ThreadPool *pool,
       Arena *arena)
{
    panicIf(w.rank() != 2, "linear: weight must be rank 2");
    const size_t in = w.dim(0), out = w.dim(1);
    panicIf(x.dim(x.rank() - 1) != in, "linear: input dim mismatch");

    std::vector<size_t> outShape = x.shape();
    outShape.back() = out;
    Tensor y = Tensor::uninitialized(std::move(outShape), arena);

    const size_t rows = x.size() / in;
    forRowsAligned(rows, 2 * in * out, 2, pool,
                   [&](size_t r0, size_t r1) {
        rowops::linearRows(x.data(), w.data(), nullptr, y.data(),
                           in, out, r0, r1);
    });
    return y;
}

Tensor
softmax(const Tensor &x, ThreadPool *pool, Arena *arena)
{
    const size_t d = x.dim(x.rank() - 1);
    Tensor y = Tensor::uninitialized(x.shape(), arena);
    const size_t rows = x.size() / d;
    forRows(rows, 8 * d, pool, [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
            const float *AFSB_RESTRICT src = x.data() + r * d;
            float *AFSB_RESTRICT row = y.data() + r * d;
            float mx = src[0];
            for (size_t i = 1; i < d; ++i)
                mx = std::max(mx, src[i]);
            float sum = 0.0f;
            for (size_t i = 0; i < d; ++i) {
                row[i] = std::exp(src[i] - mx);
                sum += row[i];
            }
            const float inv = 1.0f / sum;
            AFSB_VECTORIZE_LOOP
            for (size_t i = 0; i < d; ++i)
                row[i] *= inv;
        }
    });
    return y;
}

Tensor
layerNorm(const Tensor &x, float eps, ThreadPool *pool, Arena *arena)
{
    const size_t d = x.dim(x.rank() - 1);
    Tensor y = Tensor::uninitialized(x.shape(), arena);
    const size_t rows = x.size() / d;
    forRows(rows, 6 * d, pool, [&](size_t r0, size_t r1) {
        rowops::layerNormRows(x.data(), y.data(), d, eps, r0, r1);
    });
    return y;
}

Tensor
gelu(const Tensor &x, Arena *arena)
{
    Tensor y = Tensor::uninitialized(x.shape(), arena);
    rowops::geluRange(x.data(), y.data(), 0, y.size());
    return y;
}

Tensor
sigmoid(const Tensor &x, Arena *arena)
{
    Tensor y = Tensor::uninitialized(x.shape(), arena);
    rowops::sigmoidRange(x.data(), y.data(), 0, y.size());
    return y;
}

Tensor
relu(const Tensor &x, Arena *arena)
{
    Tensor y = Tensor::uninitialized(x.shape(), arena);
    for (size_t i = 0; i < y.size(); ++i)
        y[i] = std::max(0.0f, x[i]);
    return y;
}

Tensor
add(const Tensor &a, const Tensor &b, Arena *arena)
{
    panicIf(a.shape() != b.shape(), "add: shape mismatch");
    Tensor c = Tensor::uninitialized(a.shape(), arena);
    for (size_t i = 0; i < c.size(); ++i)
        c[i] = a[i] + b[i];
    return c;
}

Tensor
mul(const Tensor &a, const Tensor &b, Arena *arena)
{
    panicIf(a.shape() != b.shape(), "mul: shape mismatch");
    Tensor c = Tensor::uninitialized(a.shape(), arena);
    rowops::mulRange(a.data(), b.data(), c.data(), 0, c.size());
    return c;
}

Tensor
scale(const Tensor &a, float s, Arena *arena)
{
    Tensor c = Tensor::uninitialized(a.shape(), arena);
    rowops::scaleRange(a.data(), c.data(), s, 0, c.size());
    return c;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    panicIf(a.shape() != b.shape(), "addInPlace: shape mismatch");
    rowops::addRange(a.data(), b.data(), 0, a.size());
}

Tensor
transpose(const Tensor &a)
{
    panicIf(a.rank() != 2, "transpose: rank-2 only");
    Tensor t({a.dim(1), a.dim(0)});
    for (size_t i = 0; i < a.dim(0); ++i)
        for (size_t j = 0; j < a.dim(1); ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

double
meanAbsDiff(const Tensor &a, const Tensor &b)
{
    panicIf(a.shape() != b.shape(), "meanAbsDiff: shape mismatch");
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += std::abs(static_cast<double>(a[i]) - b[i]);
    return a.size() ? s / static_cast<double>(a.size()) : 0.0;
}

namespace rowops {

void
layerNormRows(const float *x, float *y, size_t d, float eps,
              size_t r0, size_t r1)
{
    for (size_t r = r0; r < r1; ++r) {
        const float *AFSB_RESTRICT src = x + r * d;
        float *AFSB_RESTRICT row = y + r * d;
        float mean = 0.0f;
        for (size_t i = 0; i < d; ++i)
            mean += src[i];
        mean /= static_cast<float>(d);
        float var = 0.0f;
        for (size_t i = 0; i < d; ++i) {
            const float c = src[i] - mean;
            var += c * c;
        }
        var /= static_cast<float>(d);
        const float inv = 1.0f / std::sqrt(var + eps);
        AFSB_VECTORIZE_LOOP
        for (size_t i = 0; i < d; ++i)
            row[i] = (src[i] - mean) * inv;
    }
}

void
linearRows(const float *x, const float *w, const float *bias,
           float *y, size_t in, size_t out, size_t r0, size_t r1)
{
    if (bias) {
        for (size_t r = r0; r < r1; ++r) {
            float *AFSB_RESTRICT yo = y + r * out;
            const float *AFSB_RESTRICT bp = bias;
            AFSB_VECTORIZE_LOOP
            for (size_t o = 0; o < out; ++o)
                yo[o] = bp[o];
        }
    } else {
        for (size_t r = r0; r < r1; ++r) {
            float *AFSB_RESTRICT yo = y + r * out;
            AFSB_VECTORIZE_LOOP
            for (size_t o = 0; o < out; ++o)
                yo[o] = 0.0f;
        }
    }
    gemmRows(x, in, w, out, y, out, in, out, r0, r1);
}

void
sigmoidRange(const float *x, float *y, size_t i0, size_t i1)
{
    for (size_t i = i0; i < i1; ++i)
        y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void
geluRange(const float *x, float *y, size_t i0, size_t i1)
{
    constexpr float c = 0.7978845608f;  // sqrt(2/pi)
    for (size_t i = i0; i < i1; ++i) {
        const float v = x[i];
        y[i] = 0.5f * v *
               (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
    }
}

void
mulRange(const float *a, const float *b, float *c, size_t i0,
         size_t i1)
{
    for (size_t i = i0; i < i1; ++i)
        c[i] = a[i] * b[i];
}

void
addRange(float *a, const float *b, size_t i0, size_t i1)
{
    for (size_t i = i0; i < i1; ++i)
        a[i] += b[i];
}

void
scaleRange(const float *x, float *y, float s, size_t i0, size_t i1)
{
    for (size_t i = i0; i < i1; ++i)
        y[i] = x[i] * s;
}

} // namespace rowops

double
maxRelDiff(const Tensor &a, const Tensor &b)
{
    panicIf(a.shape() != b.shape(), "maxRelDiff: shape mismatch");
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double ref = std::max(1.0, std::abs(
                                             static_cast<double>(b[i])));
        worst = std::max(
            worst,
            std::abs(static_cast<double>(a[i]) - b[i]) / ref);
    }
    return worst;
}

} // namespace afsb::tensor
