#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace afsb::tensor {

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    panicIf(a.rank() != 2 || b.rank() != 2, "matmul: rank-2 only");
    const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    panicIf(b.dim(0) != k, "matmul: inner dims differ");

    Tensor c({m, n});
    // ikj loop order keeps B streaming and C row-hot.
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float *brow = b.data() + kk * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &b)
{
    panicIf(w.rank() != 2, "linear: weight must be rank 2");
    const size_t in = w.dim(0), out = w.dim(1);
    panicIf(x.dim(x.rank() - 1) != in, "linear: input dim mismatch");
    panicIf(b.rank() != 1 || b.dim(0) != out,
            "linear: bias dim mismatch");

    std::vector<size_t> outShape = x.shape();
    outShape.back() = out;
    Tensor y(std::move(outShape));

    const size_t rows = x.size() / in;
    for (size_t r = 0; r < rows; ++r) {
        const float *xi = x.data() + r * in;
        float *yo = y.data() + r * out;
        for (size_t o = 0; o < out; ++o)
            yo[o] = b[o];
        for (size_t i = 0; i < in; ++i) {
            const float xv = xi[i];
            if (xv == 0.0f)
                continue;
            const float *wrow = w.data() + i * out;
            for (size_t o = 0; o < out; ++o)
                yo[o] += xv * wrow[o];
        }
    }
    return y;
}

Tensor
softmax(const Tensor &x)
{
    const size_t d = x.dim(x.rank() - 1);
    Tensor y = x;
    const size_t rows = x.size() / d;
    for (size_t r = 0; r < rows; ++r) {
        float *row = y.data() + r * d;
        float mx = row[0];
        for (size_t i = 1; i < d; ++i)
            mx = std::max(mx, row[i]);
        float sum = 0.0f;
        for (size_t i = 0; i < d; ++i) {
            row[i] = std::exp(row[i] - mx);
            sum += row[i];
        }
        const float inv = 1.0f / sum;
        for (size_t i = 0; i < d; ++i)
            row[i] *= inv;
    }
    return y;
}

Tensor
layerNorm(const Tensor &x, float eps)
{
    const size_t d = x.dim(x.rank() - 1);
    Tensor y = x;
    const size_t rows = x.size() / d;
    for (size_t r = 0; r < rows; ++r) {
        float *row = y.data() + r * d;
        float mean = 0.0f;
        for (size_t i = 0; i < d; ++i)
            mean += row[i];
        mean /= static_cast<float>(d);
        float var = 0.0f;
        for (size_t i = 0; i < d; ++i) {
            const float c = row[i] - mean;
            var += c * c;
        }
        var /= static_cast<float>(d);
        const float inv = 1.0f / std::sqrt(var + eps);
        for (size_t i = 0; i < d; ++i)
            row[i] = (row[i] - mean) * inv;
    }
    return y;
}

Tensor
gelu(const Tensor &x)
{
    Tensor y = x;
    constexpr float c = 0.7978845608f;  // sqrt(2/pi)
    for (size_t i = 0; i < y.size(); ++i) {
        const float v = y[i];
        y[i] = 0.5f * v *
               (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
    }
    return y;
}

Tensor
sigmoid(const Tensor &x)
{
    Tensor y = x;
    for (size_t i = 0; i < y.size(); ++i)
        y[i] = 1.0f / (1.0f + std::exp(-y[i]));
    return y;
}

Tensor
relu(const Tensor &x)
{
    Tensor y = x;
    for (size_t i = 0; i < y.size(); ++i)
        y[i] = std::max(0.0f, y[i]);
    return y;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    panicIf(a.shape() != b.shape(), "add: shape mismatch");
    Tensor c = a;
    for (size_t i = 0; i < c.size(); ++i)
        c[i] += b[i];
    return c;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    panicIf(a.shape() != b.shape(), "mul: shape mismatch");
    Tensor c = a;
    for (size_t i = 0; i < c.size(); ++i)
        c[i] *= b[i];
    return c;
}

Tensor
scale(const Tensor &a, float s)
{
    Tensor c = a;
    for (size_t i = 0; i < c.size(); ++i)
        c[i] *= s;
    return c;
}

void
addInPlace(Tensor &a, const Tensor &b)
{
    panicIf(a.shape() != b.shape(), "addInPlace: shape mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] += b[i];
}

Tensor
transpose(const Tensor &a)
{
    panicIf(a.rank() != 2, "transpose: rank-2 only");
    Tensor t({a.dim(1), a.dim(0)});
    for (size_t i = 0; i < a.dim(0); ++i)
        for (size_t j = 0; j < a.dim(1); ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

double
meanAbsDiff(const Tensor &a, const Tensor &b)
{
    panicIf(a.shape() != b.shape(), "meanAbsDiff: shape mismatch");
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += std::abs(static_cast<double>(a[i]) - b[i]);
    return a.size() ? s / static_cast<double>(a.size()) : 0.0;
}

} // namespace afsb::tensor
