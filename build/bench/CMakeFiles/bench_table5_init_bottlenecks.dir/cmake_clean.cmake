file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_init_bottlenecks.dir/bench_table5_init_bottlenecks.cc.o"
  "CMakeFiles/bench_table5_init_bottlenecks.dir/bench_table5_init_bottlenecks.cc.o.d"
  "bench_table5_init_bottlenecks"
  "bench_table5_init_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_init_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
