# Empty dependencies file for bench_table5_init_bottlenecks.
# This may be replaced when dependencies are built.
