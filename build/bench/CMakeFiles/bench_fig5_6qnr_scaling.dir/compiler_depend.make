# Empty compiler generated dependencies file for bench_fig5_6qnr_scaling.
# This may be replaced when dependencies are built.
