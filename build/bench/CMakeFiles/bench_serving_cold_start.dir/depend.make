# Empty dependencies file for bench_serving_cold_start.
# This may be replaced when dependencies are built.
