file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_table6_layers.dir/bench_fig9_table6_layers.cc.o"
  "CMakeFiles/bench_fig9_table6_layers.dir/bench_fig9_table6_layers.cc.o.d"
  "bench_fig9_table6_layers"
  "bench_fig9_table6_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_table6_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
