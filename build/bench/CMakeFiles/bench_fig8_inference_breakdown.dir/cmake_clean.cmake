file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_inference_breakdown.dir/bench_fig8_inference_breakdown.cc.o"
  "CMakeFiles/bench_fig8_inference_breakdown.dir/bench_fig8_inference_breakdown.cc.o.d"
  "bench_fig8_inference_breakdown"
  "bench_fig8_inference_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_inference_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
