# Empty compiler generated dependencies file for bench_table3_cpu_metrics.
# This may be replaced when dependencies are built.
