file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cpu_metrics.dir/bench_table3_cpu_metrics.cc.o"
  "CMakeFiles/bench_table3_cpu_metrics.dir/bench_table3_cpu_metrics.cc.o.d"
  "bench_table3_cpu_metrics"
  "bench_table3_cpu_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cpu_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
