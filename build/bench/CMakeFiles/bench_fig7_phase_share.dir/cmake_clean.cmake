file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_phase_share.dir/bench_fig7_phase_share.cc.o"
  "CMakeFiles/bench_fig7_phase_share.dir/bench_fig7_phase_share.cc.o.d"
  "bench_fig7_phase_share"
  "bench_fig7_phase_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_phase_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
