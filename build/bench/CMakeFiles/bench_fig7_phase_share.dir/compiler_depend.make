# Empty compiler generated dependencies file for bench_fig7_phase_share.
# This may be replaced when dependencies are built.
