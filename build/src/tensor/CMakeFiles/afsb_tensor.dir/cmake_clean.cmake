file(REMOVE_RECURSE
  "CMakeFiles/afsb_tensor.dir/ops.cc.o"
  "CMakeFiles/afsb_tensor.dir/ops.cc.o.d"
  "CMakeFiles/afsb_tensor.dir/tensor.cc.o"
  "CMakeFiles/afsb_tensor.dir/tensor.cc.o.d"
  "libafsb_tensor.a"
  "libafsb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
