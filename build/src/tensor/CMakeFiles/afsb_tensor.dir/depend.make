# Empty dependencies file for afsb_tensor.
# This may be replaced when dependencies are built.
