file(REMOVE_RECURSE
  "libafsb_tensor.a"
)
