# Empty dependencies file for afsb_util.
# This may be replaced when dependencies are built.
