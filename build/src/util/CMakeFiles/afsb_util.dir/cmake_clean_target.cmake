file(REMOVE_RECURSE
  "libafsb_util.a"
)
