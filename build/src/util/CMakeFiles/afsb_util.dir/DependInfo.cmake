
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cc" "src/util/CMakeFiles/afsb_util.dir/cli.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/cli.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/util/CMakeFiles/afsb_util.dir/csv.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/csv.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/afsb_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/interp.cc" "src/util/CMakeFiles/afsb_util.dir/interp.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/interp.cc.o.d"
  "/root/repo/src/util/json.cc" "src/util/CMakeFiles/afsb_util.dir/json.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/json.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/afsb_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/logging.cc.o.d"
  "/root/repo/src/util/memtrace.cc" "src/util/CMakeFiles/afsb_util.dir/memtrace.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/memtrace.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/util/CMakeFiles/afsb_util.dir/rng.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/util/CMakeFiles/afsb_util.dir/stats.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/stats.cc.o.d"
  "/root/repo/src/util/str.cc" "src/util/CMakeFiles/afsb_util.dir/str.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/str.cc.o.d"
  "/root/repo/src/util/table.cc" "src/util/CMakeFiles/afsb_util.dir/table.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/table.cc.o.d"
  "/root/repo/src/util/threadpool.cc" "src/util/CMakeFiles/afsb_util.dir/threadpool.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/threadpool.cc.o.d"
  "/root/repo/src/util/units.cc" "src/util/CMakeFiles/afsb_util.dir/units.cc.o" "gcc" "src/util/CMakeFiles/afsb_util.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
