file(REMOVE_RECURSE
  "CMakeFiles/afsb_util.dir/cli.cc.o"
  "CMakeFiles/afsb_util.dir/cli.cc.o.d"
  "CMakeFiles/afsb_util.dir/csv.cc.o"
  "CMakeFiles/afsb_util.dir/csv.cc.o.d"
  "CMakeFiles/afsb_util.dir/histogram.cc.o"
  "CMakeFiles/afsb_util.dir/histogram.cc.o.d"
  "CMakeFiles/afsb_util.dir/interp.cc.o"
  "CMakeFiles/afsb_util.dir/interp.cc.o.d"
  "CMakeFiles/afsb_util.dir/json.cc.o"
  "CMakeFiles/afsb_util.dir/json.cc.o.d"
  "CMakeFiles/afsb_util.dir/logging.cc.o"
  "CMakeFiles/afsb_util.dir/logging.cc.o.d"
  "CMakeFiles/afsb_util.dir/memtrace.cc.o"
  "CMakeFiles/afsb_util.dir/memtrace.cc.o.d"
  "CMakeFiles/afsb_util.dir/rng.cc.o"
  "CMakeFiles/afsb_util.dir/rng.cc.o.d"
  "CMakeFiles/afsb_util.dir/stats.cc.o"
  "CMakeFiles/afsb_util.dir/stats.cc.o.d"
  "CMakeFiles/afsb_util.dir/str.cc.o"
  "CMakeFiles/afsb_util.dir/str.cc.o.d"
  "CMakeFiles/afsb_util.dir/table.cc.o"
  "CMakeFiles/afsb_util.dir/table.cc.o.d"
  "CMakeFiles/afsb_util.dir/threadpool.cc.o"
  "CMakeFiles/afsb_util.dir/threadpool.cc.o.d"
  "CMakeFiles/afsb_util.dir/units.cc.o"
  "CMakeFiles/afsb_util.dir/units.cc.o.d"
  "libafsb_util.a"
  "libafsb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
