# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("bio")
subdirs("io")
subdirs("msa")
subdirs("sys")
subdirs("cachesim")
subdirs("tensor")
subdirs("model")
subdirs("gpusim")
subdirs("prof")
subdirs("core")
