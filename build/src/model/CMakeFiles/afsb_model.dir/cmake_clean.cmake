file(REMOVE_RECURSE
  "CMakeFiles/afsb_model.dir/af3_model.cc.o"
  "CMakeFiles/afsb_model.dir/af3_model.cc.o.d"
  "CMakeFiles/afsb_model.dir/confidence.cc.o"
  "CMakeFiles/afsb_model.dir/confidence.cc.o.d"
  "CMakeFiles/afsb_model.dir/config.cc.o"
  "CMakeFiles/afsb_model.dir/config.cc.o.d"
  "CMakeFiles/afsb_model.dir/diffusion.cc.o"
  "CMakeFiles/afsb_model.dir/diffusion.cc.o.d"
  "CMakeFiles/afsb_model.dir/embedder.cc.o"
  "CMakeFiles/afsb_model.dir/embedder.cc.o.d"
  "CMakeFiles/afsb_model.dir/flops.cc.o"
  "CMakeFiles/afsb_model.dir/flops.cc.o.d"
  "CMakeFiles/afsb_model.dir/layers.cc.o"
  "CMakeFiles/afsb_model.dir/layers.cc.o.d"
  "CMakeFiles/afsb_model.dir/pairformer.cc.o"
  "CMakeFiles/afsb_model.dir/pairformer.cc.o.d"
  "libafsb_model.a"
  "libafsb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
