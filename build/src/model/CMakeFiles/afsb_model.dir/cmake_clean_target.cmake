file(REMOVE_RECURSE
  "libafsb_model.a"
)
