
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/af3_model.cc" "src/model/CMakeFiles/afsb_model.dir/af3_model.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/af3_model.cc.o.d"
  "/root/repo/src/model/confidence.cc" "src/model/CMakeFiles/afsb_model.dir/confidence.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/confidence.cc.o.d"
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/afsb_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/config.cc.o.d"
  "/root/repo/src/model/diffusion.cc" "src/model/CMakeFiles/afsb_model.dir/diffusion.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/diffusion.cc.o.d"
  "/root/repo/src/model/embedder.cc" "src/model/CMakeFiles/afsb_model.dir/embedder.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/embedder.cc.o.d"
  "/root/repo/src/model/flops.cc" "src/model/CMakeFiles/afsb_model.dir/flops.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/flops.cc.o.d"
  "/root/repo/src/model/layers.cc" "src/model/CMakeFiles/afsb_model.dir/layers.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/layers.cc.o.d"
  "/root/repo/src/model/pairformer.cc" "src/model/CMakeFiles/afsb_model.dir/pairformer.cc.o" "gcc" "src/model/CMakeFiles/afsb_model.dir/pairformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/afsb_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/afsb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
