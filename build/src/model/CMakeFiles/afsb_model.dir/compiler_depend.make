# Empty compiler generated dependencies file for afsb_model.
# This may be replaced when dependencies are built.
