
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/alphabet.cc" "src/bio/CMakeFiles/afsb_bio.dir/alphabet.cc.o" "gcc" "src/bio/CMakeFiles/afsb_bio.dir/alphabet.cc.o.d"
  "/root/repo/src/bio/complexity.cc" "src/bio/CMakeFiles/afsb_bio.dir/complexity.cc.o" "gcc" "src/bio/CMakeFiles/afsb_bio.dir/complexity.cc.o.d"
  "/root/repo/src/bio/fasta.cc" "src/bio/CMakeFiles/afsb_bio.dir/fasta.cc.o" "gcc" "src/bio/CMakeFiles/afsb_bio.dir/fasta.cc.o.d"
  "/root/repo/src/bio/input_spec.cc" "src/bio/CMakeFiles/afsb_bio.dir/input_spec.cc.o" "gcc" "src/bio/CMakeFiles/afsb_bio.dir/input_spec.cc.o.d"
  "/root/repo/src/bio/samples.cc" "src/bio/CMakeFiles/afsb_bio.dir/samples.cc.o" "gcc" "src/bio/CMakeFiles/afsb_bio.dir/samples.cc.o.d"
  "/root/repo/src/bio/seqgen.cc" "src/bio/CMakeFiles/afsb_bio.dir/seqgen.cc.o" "gcc" "src/bio/CMakeFiles/afsb_bio.dir/seqgen.cc.o.d"
  "/root/repo/src/bio/sequence.cc" "src/bio/CMakeFiles/afsb_bio.dir/sequence.cc.o" "gcc" "src/bio/CMakeFiles/afsb_bio.dir/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/afsb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
