file(REMOVE_RECURSE
  "CMakeFiles/afsb_bio.dir/alphabet.cc.o"
  "CMakeFiles/afsb_bio.dir/alphabet.cc.o.d"
  "CMakeFiles/afsb_bio.dir/complexity.cc.o"
  "CMakeFiles/afsb_bio.dir/complexity.cc.o.d"
  "CMakeFiles/afsb_bio.dir/fasta.cc.o"
  "CMakeFiles/afsb_bio.dir/fasta.cc.o.d"
  "CMakeFiles/afsb_bio.dir/input_spec.cc.o"
  "CMakeFiles/afsb_bio.dir/input_spec.cc.o.d"
  "CMakeFiles/afsb_bio.dir/samples.cc.o"
  "CMakeFiles/afsb_bio.dir/samples.cc.o.d"
  "CMakeFiles/afsb_bio.dir/seqgen.cc.o"
  "CMakeFiles/afsb_bio.dir/seqgen.cc.o.d"
  "CMakeFiles/afsb_bio.dir/sequence.cc.o"
  "CMakeFiles/afsb_bio.dir/sequence.cc.o.d"
  "libafsb_bio.a"
  "libafsb_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afsb_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
