# Empty compiler generated dependencies file for afsb_bio.
# This may be replaced when dependencies are built.
